//! `obs_overhead`: the zero-cost contract of the observability layer, A/B.
//!
//! Three arms over the same scenario round loop:
//!
//! * `plain`      — [`run_scenario`], the default entry point (internally the
//!   observed path monomorphized at [`NoopObserver`]);
//! * `noop`       — [`run_scenario_observed`] with an explicit
//!   [`NoopObserver`]. The contract is that this is the *same machine code*
//!   as `plain`: `Observer::ENABLED == false` makes every event construction
//!   dead code. CI enforces the ≤2% bound with the `obs_overhead_gate`
//!   binary (criterion runs single-shot there);
//! * `aggregator` — a real in-memory sink, measuring what attaching a cheap
//!   observer actually costs (informational, not gated).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rpc_obs::{Aggregator, NoopObserver};
use rpc_scenarios::prelude::*;
use rpc_scenarios::run_scenario_observed;

const SEED: u64 = 0xC0FFEE;

fn bench_obs_overhead(c: &mut Criterion) {
    let n = 1 << 10;
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    for protocol in [ProtocolSpec::PushPull, ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
        let scenario = Scenario::builder("bench", TopologySpec::ErdosRenyiPaper { n })
            .protocol(protocol)
            .build()
            .expect("bench scenario must validate");
        group.bench_with_input(
            BenchmarkId::new("plain", protocol.name()),
            &scenario,
            |b, scenario| b.iter(|| black_box(run_scenario(black_box(scenario), SEED, 1).rounds)),
        );
        group.bench_with_input(
            BenchmarkId::new("noop", protocol.name()),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    black_box(
                        run_scenario_observed(black_box(scenario), SEED, 1, &mut NoopObserver)
                            .rounds,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("aggregator", protocol.name()),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let mut agg = Aggregator::new();
                    let rounds =
                        run_scenario_observed(black_box(scenario), SEED, 1, &mut agg).rounds;
                    black_box((rounds, agg.total_events()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
