//! Criterion benchmark suite — one group per paper artefact.
//!
//! The groups mirror the experiment index in DESIGN.md:
//!
//! * `table1_config` — deriving the Table 1 constants,
//! * `fig1_overhead` — the three gossiping algorithms of Figure 1,
//! * `fig2_robustness_ratio` — memory-model gossiping under failures (Figs 2/3),
//! * `fig4_fastgossip_detail` — fast-gossiping across sizes,
//! * `fig5_robustness_runs` — repeated failure runs,
//! * `theorem1_scaling` — fast-gossiping on random vs complete graphs,
//! * `broadcast_vs_gossip` — the motivating separation experiment,
//! * `substrate` — graph generation and engine delivery throughput,
//! * `scenario_throughput` — the churn-heavy scenario at quick scale
//!   (steps/sec = rounds per iteration / measured time; the round count per
//!   run is deterministic, so the per-iteration time tracks step throughput).
//!
//! Benchmark sizes are deliberately moderate (2¹⁰–2¹²) so the whole suite runs
//! in a few minutes; the absolute numbers are not the reproduction target (the
//! experiment harness is), the benchmarks guard against performance
//! regressions in the library itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rpc_engine::{Simulation, Transfer};
use rpc_experiments::{fig1, robustness};
use rpc_gossip::prelude::*;
use rpc_graphs::prelude::*;

const SEED: u64 = 0xC0FFEE;

fn bench_table1_config(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_config");
    group.bench_function("paper_defaults_1e6", |b| {
        b.iter(|| {
            let fg = FastGossipingConfig::paper_defaults(black_box(1_000_000));
            let mg = MemoryGossipConfig::paper_defaults(black_box(1_000_000));
            black_box((fg, mg))
        })
    });
    group.finish();
}

fn bench_fig1_overhead(c: &mut Criterion) {
    let n = 1 << 10;
    let graph = ErdosRenyi::paper_density(n).generate(SEED);
    let mut group = c.benchmark_group("fig1_overhead");
    group.sample_size(10);
    group.bench_function("push_pull", |b| {
        b.iter(|| black_box(PushPullGossip::default().run(&graph, SEED)))
    });
    group.bench_function("fast_gossiping", |b| {
        b.iter(|| black_box(FastGossiping::paper(n).run(&graph, SEED)))
    });
    group.bench_function("memory", |b| {
        b.iter(|| black_box(MemoryGossip::paper(n).run(&graph, SEED)))
    });
    group.finish();
}

fn bench_fig2_robustness_ratio(c: &mut Criterion) {
    let n = 1 << 10;
    let graph = ErdosRenyi::paper_density(n).generate(SEED);
    let algorithm = MemoryGossip::new(MemoryGossipConfig::paper_defaults(n).with_trees(3));
    let mut group = c.benchmark_group("fig2_robustness_ratio");
    group.sample_size(10);
    for failures in [0usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(failures), &failures, |b, &failures| {
            b.iter(|| black_box(algorithm.run_with_failures(&graph, SEED, failures)))
        });
    }
    group.finish();
}

fn bench_fig4_fastgossip_detail(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_fastgossip_detail");
    group.sample_size(10);
    for exp in [10u32, 11, 12] {
        let n = 1usize << exp;
        let graph = ErdosRenyi::paper_density(n).generate(SEED);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(FastGossiping::paper(n).run(&graph, SEED)))
        });
    }
    group.finish();
}

fn bench_fig5_robustness_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_robustness_runs");
    group.sample_size(10);
    let spec = robustness::loss_ratio_spec(
        "fig5-bench",
        512,
        &[0, 32],
        3,
        SEED,
        rpc_scenarios::RepPolicy::fixed(3),
    );
    group.bench_function("thresholds_n512_f32_runs3", |b| {
        b.iter(|| {
            black_box(
                rpc_scenarios::SweepRunner::new()
                    .with_threads(1)
                    .run(black_box(&spec))
                    .total_reps(),
            )
        })
    });
    group.finish();
}

fn bench_theorem1_scaling(c: &mut Criterion) {
    let n = 1 << 10;
    let random = ErdosRenyi::paper_density(n).generate(SEED);
    let complete = CompleteGraph::new(n).generate(0);
    let mut group = c.benchmark_group("theorem1_scaling");
    group.sample_size(10);
    group.bench_function("fast_gossiping_random", |b| {
        b.iter(|| black_box(FastGossiping::paper(n).run(&random, SEED)))
    });
    group.bench_function("fast_gossiping_complete", |b| {
        b.iter(|| black_box(FastGossiping::paper(n).run(&complete, SEED)))
    });
    group.finish();
}

fn bench_broadcast_vs_gossip(c: &mut Criterion) {
    let n = 1 << 11;
    let random = ErdosRenyi::paper_density(n).generate(SEED);
    let complete = CompleteGraph::new(n).generate(0);
    let mut group = c.benchmark_group("broadcast_vs_gossip");
    group.sample_size(10);
    group.bench_function("pushpull_broadcast_complete", |b| {
        b.iter(|| black_box(PushPullBroadcast::default().run(&complete, SEED)))
    });
    group.bench_function("pushpull_broadcast_random", |b| {
        b.iter(|| black_box(PushPullBroadcast::default().run(&random, SEED)))
    });
    group.bench_function("pushpull_gossip_random", |b| {
        b.iter(|| black_box(PushPullGossip::default().run(&random, SEED)))
    });
    group.finish();
}

fn bench_fig1_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_harness");
    group.sample_size(10);
    let spec = fig1::spec(&[256, 512], SEED, rpc_scenarios::RepPolicy::fixed(1));
    group.bench_function("sweep_256_512", |b| {
        b.iter(|| {
            black_box(
                rpc_scenarios::SweepRunner::new()
                    .with_threads(1)
                    .run(black_box(&spec))
                    .total_reps(),
            )
        })
    });
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.bench_function("erdos_renyi_generate_n4096", |b| {
        let generator = ErdosRenyi::paper_density(1 << 12);
        b.iter(|| black_box(generator.generate(SEED)))
    });
    group.bench_function("configuration_model_generate_n4096", |b| {
        let generator = ConfigurationModel::paper_degree(1 << 12, 0.1);
        b.iter(|| black_box(generator.generate(SEED)))
    });
    group.bench_function("engine_deliver_full_round_n2048", |b| {
        let n = 1 << 11;
        let graph = CompleteGraph::new(n).generate(0);
        let transfers: Vec<Transfer> =
            (0..n as u32).map(|v| Transfer::new(v, (v + 1) % n as u32)).collect();
        b.iter(|| {
            let mut sim = Simulation::new(&graph, SEED);
            for _ in 0..4 {
                sim.deliver(black_box(&transfers));
            }
            black_box(sim.fully_informed_count())
        })
    });
    group.finish();
}

fn bench_scenario_throughput(c: &mut Criterion) {
    let n = 512;
    let scenario = rpc_scenarios::registry::find("churn-heavy", n)
        .expect("churn-heavy is a registry scenario");
    let mut group = c.benchmark_group("scenario_throughput");
    group.sample_size(10);
    group.bench_function("churn_heavy_n512", |b| {
        b.iter(|| black_box(rpc_scenarios::run_scenario(black_box(&scenario), SEED, 1)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_config,
    bench_fig1_overhead,
    bench_fig2_robustness_ratio,
    bench_fig4_fastgossip_detail,
    bench_fig5_robustness_runs,
    bench_theorem1_scaling,
    bench_broadcast_vs_gossip,
    bench_fig1_harness,
    bench_substrate,
    bench_scenario_throughput
);
criterion_main!(benches);
