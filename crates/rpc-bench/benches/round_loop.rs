//! Criterion benches for the protocol round loops — packed engine vs.
//! unpacked reference oracle.
//!
//! These guard the word-parallel hot path against regressions at sizes that
//! finish quickly under criterion: the push-pull baseline on every topology,
//! a multi-rumor streaming row (16 staggered injections, message universe
//! decoupled from `n`), plus the phase-based fast-gossiping and memory-model
//! loops (whose absorb/ open-avoid/walk traffic exercises different engine
//! primitives than plain push-pull). The tracked large-scale baseline
//! (n up to 100 000) is
//! produced by the `round_loop_baseline` binary and recorded in
//! `BENCH_round_loop.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rpc_bench::round_loop::{build_topology, run_streaming, STREAM_RUMORS};
use rpc_engine::{Engine, Simulation, UnpackedSimulation};
use rpc_gossip::{FastGossiping, MemoryGossip, PushPullGossip};

const SEED: u64 = 0xC0FFEE;
const MAX_ROUNDS: usize = 10_000;

fn bench_round_loop(c: &mut Criterion) {
    let n = 1 << 10;
    let mut group = c.benchmark_group("round_loop");
    group.sample_size(10);
    for topology in ["er-dense", "er-sparse", "regular", "complete"] {
        let graph = build_topology(topology, n, SEED);
        group.bench_with_input(BenchmarkId::new("packed", topology), &graph, |b, graph| {
            b.iter(|| {
                let mut sim = Simulation::new(black_box(graph), SEED);
                PushPullGossip::run_until_complete(&mut sim, MAX_ROUNDS);
                black_box(sim.metrics().rounds())
            })
        });
        group.bench_with_input(BenchmarkId::new("unpacked", topology), &graph, |b, graph| {
            b.iter(|| {
                let mut sim = UnpackedSimulation::new(black_box(graph), SEED);
                PushPullGossip::run_until_complete(&mut sim, MAX_ROUNDS);
                black_box(sim.metrics().rounds())
            })
        });
    }
    // The multi-rumor streaming row: 16 staggered injections into the
    // sparse working point, run until every rumor completes. Lives in the
    // same group so criterion reports it next to the classic loops.
    let graph = build_topology("er-sparse", n, SEED);
    group.bench_with_input(BenchmarkId::new("packed", "er-sparse-stream"), &graph, |b, graph| {
        b.iter(|| {
            let mut sim = Simulation::new_streaming(black_box(graph), SEED, STREAM_RUMORS);
            run_streaming(&mut sim);
            black_box(sim.metrics().rounds())
        })
    });
    group.bench_with_input(BenchmarkId::new("unpacked", "er-sparse-stream"), &graph, |b, graph| {
        b.iter(|| {
            let mut sim = UnpackedSimulation::new_streaming(black_box(graph), SEED, STREAM_RUMORS);
            run_streaming(&mut sim);
            black_box(sim.metrics().rounds())
        })
    });
    group.finish();
}

fn bench_fast_gossiping_round_loop(c: &mut Criterion) {
    // Algorithm 1 on the paper's er-sparse working point: distribution
    // rounds, random walks and the closing broadcast drive absorb and the
    // walk queues — primitives push-pull never touches.
    let n = 1 << 10;
    let graph = build_topology("er-sparse", n, SEED);
    let mut group = c.benchmark_group("fast_gossiping_round_loop");
    group.sample_size(10);
    group.bench_function("packed", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(black_box(&graph), SEED);
            FastGossiping::paper(n).run_on_engine(&mut sim);
            black_box(sim.metrics().rounds())
        })
    });
    group.bench_function("unpacked", |b| {
        b.iter(|| {
            let mut sim = UnpackedSimulation::new(black_box(&graph), SEED);
            FastGossiping::paper(n).run_on_engine(&mut sim);
            black_box(sim.metrics().rounds())
        })
    });
    group.finish();
}

fn bench_memory_model_round_loop(c: &mut Criterion) {
    // Algorithm 2: leader-tree building with open-avoid sampling, gather
    // and broadcast-back phases.
    let n = 1 << 10;
    let graph = build_topology("er-sparse", n, SEED);
    let mut group = c.benchmark_group("memory_model_round_loop");
    group.sample_size(10);
    group.bench_function("packed", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(black_box(&graph), SEED);
            MemoryGossip::paper(n).run_on_engine(&mut sim);
            black_box(sim.metrics().rounds())
        })
    });
    group.bench_function("unpacked", |b| {
        b.iter(|| {
            let mut sim = UnpackedSimulation::new(black_box(&graph), SEED);
            MemoryGossip::paper(n).run_on_engine(&mut sim);
            black_box(sim.metrics().rounds())
        })
    });
    group.finish();
}

fn bench_round_loop_churny(c: &mut Criterion) {
    // The masked-sampling path: a scenario with a permanent 20% hole in the
    // presence mask exercises random_neighbor_masked every round.
    let n = 1 << 10;
    let graph = build_topology("er-sparse", n, SEED);
    let departed: Vec<u32> = (0..n as u32).filter(|v| v % 5 == 0).collect();
    let mut group = c.benchmark_group("round_loop_masked");
    group.sample_size(10);
    group.bench_function("packed", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(&graph, SEED);
            sim.kill_nodes(black_box(&departed));
            PushPullGossip::run_until_complete(&mut sim, MAX_ROUNDS);
            black_box(sim.metrics().rounds())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_round_loop,
    bench_fast_gossiping_round_loop,
    bench_memory_model_round_loop,
    bench_round_loop_churny
);
criterion_main!(benches);
