//! `scenario_step`: the step-driven scenario executor vs the block protocol
//! loop.
//!
//! The scenario engine drives every protocol one round at a time through
//! `rpc_gossip::ProtocolDriver`, evaluating the stop rule between rounds.
//! These benches make the stepper's overhead visible against the block
//! `run_on_engine` loop (which is itself a thin loop over the same driver,
//! minus the per-round stop-rule evaluation and executor bookkeeping). Both
//! sides regenerate the graph per iteration so the comparison is
//! apples-to-apples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rpc_engine::Simulation;
use rpc_scenarios::prelude::*;
use rpc_scenarios::scenario_engine_seeds;

const SEED: u64 = 0xC0FFEE;

fn bench_scenario_step(c: &mut Criterion) {
    let n = 1 << 10;
    // Both arms run on exactly the graph and engine RNG stream the scenario
    // executor derives from SEED, so the measured delta is the stepper's
    // bookkeeping, not a workload difference.
    let (graph_seed, run_seed) = scenario_engine_seeds(SEED);
    let mut group = c.benchmark_group("scenario_step");
    group.sample_size(10);
    for protocol in [ProtocolSpec::PushPull, ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
        let scenario = Scenario::builder("bench", TopologySpec::ErdosRenyiPaper { n })
            .protocol(protocol)
            .build()
            .expect("bench scenario must validate");
        group.bench_with_input(
            BenchmarkId::new("stepped", protocol.name()),
            &scenario,
            |b, scenario| b.iter(|| black_box(run_scenario(black_box(scenario), SEED, 1).rounds)),
        );
        group.bench_with_input(
            BenchmarkId::new("block", protocol.name()),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let graph = scenario.topology.build().generate(graph_seed);
                    let mut sim = Simulation::new(black_box(&graph), run_seed);
                    black_box(protocol.run_on_engine(n, &mut sim).rounds())
                })
            },
        );
    }
    group.finish();
}

fn bench_stop_rules(c: &mut Criterion) {
    // Stop-rule evaluation cost per round: a coverage rule reads the packed
    // engine's O(1) tracked-rumor counter, a round budget only compares
    // counters — neither should cost measurably more than running to
    // completion over the same rounds.
    let n = 1 << 10;
    let mut group = c.benchmark_group("scenario_step_rules");
    group.sample_size(10);
    for (label, stop) in [
        ("complete", StopRule::Complete),
        ("rounds", StopRule::Rounds(24)),
        ("coverage", StopRule::Coverage(0.9)),
    ] {
        let scenario = Scenario::builder("bench", TopologySpec::ErdosRenyiPaper { n })
            .stop(stop)
            .build()
            .expect("bench scenario must validate");
        group.bench_with_input(BenchmarkId::new("push-pull", label), &scenario, |b, scenario| {
            b.iter(|| black_box(run_scenario(black_box(scenario), SEED, 1).rounds))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scenario_step, bench_stop_rules);
criterion_main!(benches);
