//! `sweep_cell`: the adaptive sweep engine's per-cell overhead.
//!
//! The sweep engine wraps every measured repetition in seed derivation,
//! metric extraction, Welford-prefix stop evaluation and (optionally) cache
//! bookkeeping. These benches pin that overhead against the raw cell
//! executor, so regressions in the orchestration layer — as opposed to the
//! simulation itself — show up isolated:
//!
//! * `run_cell` — one scenario repetition through the arena-backed cell
//!   executor, the unit the runner schedules;
//! * `runner_fixed` — a small fixed-rep sweep (2 sizes × 2 reps) through
//!   [`SweepRunner`] on one thread: the same four simulations plus the full
//!   engine path (keying, seeding, batching, aggregation);
//! * `runner_adaptive` — the identical grid under a CI stop rule that
//!   converges at the 2-rep minimum, measuring what the adaptive machinery
//!   adds over the fixed policy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rpc_scenarios::prelude::*;
use rpc_scenarios::{SweepRunner, SweepSpec};

const SEED: u64 = 0xC0FFEE;

fn grid(policy: RepPolicy) -> SweepSpec {
    SweepSpec::grid("bench", SEED, policy)
        .axis("n", [1usize << 9, 1 << 10])
        .cells(|point| {
            Some(CellJob::scenario(
                Scenario::builder("bench", TopologySpec::ErdosRenyiPaper { n: point.parse("n") })
                    .build()
                    .expect("bench scenario must validate"),
            ))
        })
        .expect("bench grid must validate")
}

fn bench_sweep_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_cell");
    group.sample_size(10);

    let scenario = Scenario::builder("bench", TopologySpec::ErdosRenyiPaper { n: 1 << 10 })
        .build()
        .expect("bench scenario must validate");
    let job = CellJob::scenario(scenario);
    let mut arena = ScenarioArena::default();
    group.bench_function("run_cell", |b| {
        b.iter(|| black_box(run_cell(&mut arena, black_box(&job), SEED).metrics.len()))
    });

    let fixed = grid(RepPolicy::fixed(2));
    group.bench_function("runner_fixed", |b| {
        b.iter(|| black_box(SweepRunner::new().with_threads(1).run(black_box(&fixed)).total_reps()))
    });

    let adaptive = grid(RepPolicy::adaptive(2, 8, CiStopRule::relative("rounds", 0.5)));
    group.bench_function("runner_adaptive", |b| {
        b.iter(|| {
            black_box(SweepRunner::new().with_threads(1).run(black_box(&adaptive)).total_reps())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sweep_cell);
criterion_main!(benches);
