//! Emits the tracked Monte Carlo batch baseline (`BENCH_scenario_batch.json`).
//!
//! Measures scenario *repetitions* — the unit of work of a Monte Carlo batch
//! — in two modes over identical seeds: `fresh` (allocate graph + simulation
//! per repetition) and `arena` (per-worker [`rpc_scenarios::ScenarioArena`]
//! reuse, the batch driver's path). Outcomes are asserted equal on every
//! repetition, and the run starts with a registry-wide fresh-vs-arena trace
//! comparison, so a passing baseline is also an equivalence check — CI runs
//! `--quick` for exactly that assertion.
//!
//! ```text
//! batch_baseline [--quick] [--out PATH] [--seed S] [--reps R]
//! ```
//!
//! * `--quick` — n = 1000 only, 30 repetitions + the registry smoke
//!   assertion (CI mode);
//! * default    — n ∈ {1000, 10 000} × all three protocols, 10 000
//!   repetitions at n = 1000 and 1000 at n = 10 000;
//! * `--out`   — output path (default `BENCH_scenario_batch.json`);
//! * `--seed`  — base seed (default `0xBA7C4`);
//! * `--reps`  — override the per-cell repetition count.

use std::io::Write as _;

use rpc_bench::scenario_batch::{
    batch_scenario, measure_cell, registry_smoke, speedup_at, to_json, BatchMeasurement, PROTOCOLS,
};

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_scenario_batch.json");
    let mut seed: u64 = 0xBA7C4;
    let mut reps_override: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).expect("--seed needs a number")
            }
            "--reps" => {
                reps_override =
                    Some(args.next().and_then(|s| s.parse().ok()).expect("--reps needs a number"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: batch_baseline [--quick] [--out PATH] [--seed S] [--reps R]");
                std::process::exit(2);
            }
        }
    }

    // The smoke assertion always runs: the reuse path must agree with the
    // fresh path on every registry scenario (outcome AND per-round trace).
    let smoke_n = if quick { 64 } else { 256 };
    eprintln!("registry fresh-vs-arena smoke at n={smoke_n} …");
    match registry_smoke(smoke_n, seed) {
        Ok(count) => eprintln!("  ok: {count} scenarios agree"),
        Err(message) => {
            eprintln!("  FAILED: {message}");
            std::process::exit(1);
        }
    }

    // (n, default repetitions): the n=1k cell carries the headline 10k-rep
    // measurement; n=10k runs fewer repetitions to keep the baseline
    // regenerable in minutes.
    let cells: &[(usize, usize)] =
        if quick { &[(1_000, 30)] } else { &[(1_000, 10_000), (10_000, 1_000)] };

    let mut results: Vec<BatchMeasurement> = Vec::new();
    for &(n, default_reps) in cells {
        for protocol in PROTOCOLS {
            let reps = reps_override.unwrap_or(default_reps);
            eprintln!("cell {protocol} n={n} ({reps} reps, interleaved) …");
            let scenario = batch_scenario(protocol, n);
            let (fresh, arena) = measure_cell(&scenario, protocol, seed, reps);
            for m in [fresh, arena] {
                eprintln!(
                    "  {:>6}: {:>12.1} ns/rep, {:>10.1} reps/s",
                    m.mode, m.median_ns_per_rep, m.reps_per_sec
                );
                results.push(m);
            }
            if let Some(speedup) = speedup_at(&results, protocol, n) {
                eprintln!("  speedup : {speedup:.2}x");
            }
        }
    }

    let json = to_json(&results, seed);
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
        }
    }
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    file.write_all(json.as_bytes()).expect("write BENCH json");
    eprintln!("wrote {out_path} ({} measurements)", results.len());
}
