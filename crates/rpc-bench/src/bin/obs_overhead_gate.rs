//! CI gate for the observability layer's zero-cost contract.
//!
//! Runs the scenario round loop A/B — plain [`run_scenario`] vs the observed
//! path monomorphized at [`NoopObserver`] — with interleaved repetitions, and
//! exits non-zero if the no-op observed median is more than `--tolerance`
//! slower than the plain median on any protocol. The vendored criterion
//! harness runs single-shot in CI, so this binary (not the `obs_overhead`
//! bench) is what enforces the ≤2% bound from the PR contract.
//!
//! ```text
//! obs_overhead_gate [--quick] [--reps R] [--tolerance F] [--seed S]
//! ```
//!
//! * `--reps`      — repetitions per arm (default 30; medians over
//!   interleaved samples so shared-VM stalls bias neither arm);
//! * `--tolerance` — allowed relative slowdown (default 0.02 = 2%);
//! * `--quick`     — 10 repetitions, push-pull only (CI smoke mode).

use std::time::Instant;

use rpc_obs::NoopObserver;
use rpc_scenarios::prelude::*;
use rpc_scenarios::run_scenario_observed;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 0 {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

fn main() {
    let mut quick = false;
    let mut reps: usize = 30;
    let mut tolerance: f64 = 0.02;
    let mut seed: u64 = 0xC0FFEE;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--reps" => {
                reps = args.next().and_then(|s| s.parse().ok()).expect("--reps needs a number")
            }
            "--tolerance" => {
                tolerance =
                    args.next().and_then(|s| s.parse().ok()).expect("--tolerance needs a number")
            }
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).expect("--seed needs a number")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: obs_overhead_gate [--quick] [--reps R] [--tolerance F] [--seed S]"
                );
                std::process::exit(2);
            }
        }
    }
    if quick {
        reps = reps.min(10);
    }

    let n = 1 << 10;
    let protocols: &[ProtocolSpec] = if quick {
        &[ProtocolSpec::PushPull]
    } else {
        &[ProtocolSpec::PushPull, ProtocolSpec::FastGossiping, ProtocolSpec::Memory]
    };

    let mut failed = false;
    for &protocol in protocols {
        let scenario = Scenario::builder("gate", TopologySpec::ErdosRenyiPaper { n })
            .protocol(protocol)
            .build()
            .expect("gate scenario must validate");
        // One warm-up pair so page faults and lazy init hit neither arm's
        // samples, then interleave: host noise (shared VM, frequency drift)
        // drifts over seconds, so alternating A/B keeps it common-mode.
        let _ = run_scenario(&scenario, seed, 1);
        let _ = run_scenario_observed(&scenario, seed, 1, &mut NoopObserver);
        let mut plain = Vec::with_capacity(reps);
        let mut noop = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            let a = run_scenario(&scenario, seed, 1).rounds;
            plain.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            let b = run_scenario_observed(&scenario, seed, 1, &mut NoopObserver).rounds;
            noop.push(t.elapsed().as_secs_f64());
            assert_eq!(a, b, "no-op observed run diverged from plain run");
        }
        let plain_ms = median(&mut plain) * 1e3;
        let noop_ms = median(&mut noop) * 1e3;
        let ratio = noop_ms / plain_ms;
        let verdict = if ratio <= 1.0 + tolerance { "ok" } else { "FAIL" };
        eprintln!(
            "{:<15} plain {plain_ms:>8.3} ms  noop {noop_ms:>8.3} ms  ratio {ratio:.4}  {verdict}",
            protocol.name(),
        );
        if ratio > 1.0 + tolerance {
            failed = true;
        }
    }

    if failed {
        eprintln!(
            "obs_overhead_gate: no-op observer exceeds the {:.1}% overhead budget",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    eprintln!("obs_overhead_gate: no-op observer within the {:.1}% budget", tolerance * 100.0);
}
