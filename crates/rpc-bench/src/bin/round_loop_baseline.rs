//! Emits the tracked round-loop baseline (`BENCH_round_loop.json`).
//!
//! Measures protocol round loops to natural termination on the packed
//! production engine and the unpacked reference oracle, and writes a
//! machine-readable JSON document so the repository's perf trajectory is
//! recorded per PR. Push-pull runs across the standard topology/size matrix;
//! the phase-based protocols (fast-gossiping, memory) and the multi-rumor
//! streaming row (`push-pull-stream`: 16 staggered injections, message
//! universe decoupled from `n`) are tracked on the paper's `er-sparse`
//! working point at n ∈ {1000, 10 000}, where their walk and tree machinery
//! still measures in seconds.
//!
//! ```text
//! round_loop_baseline [--quick] [--out PATH] [--seed S] [--reps R]
//! ```
//!
//! * `--quick` — n = 1000 only, 2 repetitions (CI smoke mode);
//! * default    — n ∈ {1000, 10 000, 100 000} (the complete graph stops at
//!   10 000: its quadratic adjacency would need tens of GB beyond that);
//! * `--out`   — output path (default `BENCH_round_loop.json`);
//! * `--seed`  — graph/run seed (default `0xC0FFEE`);
//! * `--reps`  — override the per-cell repetition count.

use std::io::Write as _;

use rpc_bench::round_loop::{
    build_topology, measure_both, speedup_at, to_json, RoundLoopMeasurement, PROTOCOLS,
    STREAM_PROTOCOL, TOPOLOGIES,
};

/// The complete graph stores `n (n-1)` adjacency entries; cap it where that
/// is still a few hundred MB.
const COMPLETE_MAX_N: usize = 10_000;

/// The phase protocols' tracking point: `er-sparse` up to this size. Their
/// random-walk / tree phases make 100k-node runs minutes-long — too slow for
/// a per-PR baseline without adding information about the delivery hot path.
const PHASE_MAX_N: usize = 10_000;

/// Default repetitions per cell, scaled inversely with cell cost: small
/// cells finish in milliseconds, so a median over 5 samples can be swallowed
/// whole by one multi-second host stall (this benchmark runs on shared VMs);
/// more repetitions there cost almost nothing and make the median robust.
/// Large cells take seconds each, where a stall can only skew a minority of
/// samples anyway.
fn default_reps(n: usize) -> usize {
    match n {
        _ if n <= 1_000 => 60,
        _ if n <= 10_000 => 9,
        _ => 5,
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_round_loop.json");
    let mut seed: u64 = 0xC0FFEE;
    let mut reps_override: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).expect("--seed needs a number")
            }
            "--reps" => {
                reps_override =
                    Some(args.next().and_then(|s| s.parse().ok()).expect("--reps needs a number"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: round_loop_baseline [--quick] [--out PATH] [--seed S] [--reps R]"
                );
                std::process::exit(2);
            }
        }
    }

    let sizes: &[usize] = if quick { &[1_000] } else { &[1_000, 10_000, 100_000] };
    let mut results: Vec<RoundLoopMeasurement> = Vec::new();

    for &n in sizes {
        for topology in TOPOLOGIES {
            if topology == "complete" && n > COMPLETE_MAX_N {
                eprintln!("skip  {topology} n={n}: quadratic adjacency exceeds the memory budget");
                continue;
            }
            let reps = reps_override.unwrap_or(if quick { 2 } else { default_reps(n) });
            let graph = build_topology(topology, n, seed);
            for protocol in PROTOCOLS.into_iter().chain([STREAM_PROTOCOL]) {
                // Phase protocols and the multi-rumor streaming row are
                // tracked on the er-sparse working point at moderate sizes
                // only (see PHASE_MAX_N).
                if protocol != "push-pull" && (topology != "er-sparse" || n > PHASE_MAX_N) {
                    continue;
                }
                eprintln!("graph {topology} n={n} protocol {protocol} …");
                // The engines' repetitions are interleaved so host-level
                // noise (shared VM, frequency drift) biases neither engine's
                // median.
                let (unpacked, packed) = measure_both(&graph, topology, protocol, seed, reps);
                for m in [unpacked, packed] {
                    eprintln!(
                        "  {:>8}: {} rounds, {:>12.1} ns/round, {:>14.1} msgs/s",
                        m.engine, m.rounds, m.median_ns_per_round, m.messages_per_sec
                    );
                    results.push(m);
                }
                if let Some(speedup) = speedup_at(&results, topology, protocol, n) {
                    eprintln!("  speedup : {speedup:.2}x");
                }
            }
        }
    }

    let json = to_json(&results, seed);
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
        }
    }
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    file.write_all(json.as_bytes()).expect("write BENCH json");
    eprintln!("wrote {out_path} ({} measurements)", results.len());
}
