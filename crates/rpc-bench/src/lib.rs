//! Shared helpers for the Criterion benchmark suite and the tracked
//! round-loop baseline.
//!
//! The criterion benchmarks live in `benches/`; this library crate exposes
//! the utilities they share so the bench files stay readable and the helpers
//! themselves are unit-testable. The [`round_loop`] module additionally backs
//! the `round_loop_baseline` binary, which measures the push-pull round loop
//! on the packed production engine and the unpacked reference oracle across
//! the standard topology/size matrix and emits the machine-readable
//! `BENCH_round_loop.json` that records the repository's perf trajectory.

use rpc_graphs::prelude::*;

/// Standard benchmark topologies: the paper-density Erdős–Rényi graph and the
/// complete graph of the same size, generated deterministically.
pub fn benchmark_graphs(n: usize, seed: u64) -> (Graph, Graph) {
    (ErdosRenyi::paper_density(n).generate(seed), CompleteGraph::new(n).generate(seed))
}

/// The tracked round-loop baseline: reproducible throughput measurements of
/// the push-pull round loop, packed engine vs. unpacked oracle.
pub mod round_loop {
    use std::time::Instant;

    use rpc_engine::{Engine, Simulation, UnpackedSimulation};
    use rpc_gossip::PushPullGossip;
    use rpc_graphs::log2n;
    use rpc_graphs::prelude::*;

    /// Safety cap on rounds per run; push-pull completes in Θ(log n) on every
    /// benchmark topology, so hitting this indicates a bug.
    const MAX_ROUNDS: usize = 10_000;

    /// The benchmark topology keys, in reporting order.
    pub const TOPOLOGIES: [&str; 4] = ["er-dense", "er-sparse", "regular", "complete"];

    /// Builds the graph behind a topology key:
    ///
    /// * `er-dense` — Erdős–Rényi with expected degree `4 log² n` (the
    ///   registry's dense working point, behaves almost like `K_n`);
    /// * `er-sparse` — Erdős–Rényi at the paper's density threshold
    ///   `p = log² n / n`;
    /// * `regular` — random regular graph with degree `≈ log² n`;
    /// * `complete` — `K_n` (quadratic adjacency: only use at moderate `n`).
    pub fn build_topology(kind: &str, n: usize, seed: u64) -> Graph {
        let log2 = log2n(n);
        let paper_degree = log2 * log2;
        match kind {
            "er-dense" => {
                let degree = (4.0 * paper_degree).min(n as f64 - 1.0);
                ErdosRenyi::with_expected_degree(n, degree).generate(seed)
            }
            "er-sparse" => ErdosRenyi::paper_density(n).generate(seed),
            "regular" => {
                let mut d = (paper_degree.round() as usize).clamp(2, n - 1);
                if n % 2 == 1 && d % 2 == 1 {
                    d += 1;
                }
                RandomRegular::new(n, d.min(n - 1)).generate(seed)
            }
            "complete" => CompleteGraph::new(n).generate(seed),
            other => panic!("unknown benchmark topology: {other}"),
        }
    }

    /// One measured configuration of the round-loop benchmark.
    #[derive(Clone, Debug, PartialEq)]
    pub struct RoundLoopMeasurement {
        /// Topology key (see [`TOPOLOGIES`]).
        pub topology: String,
        /// Number of nodes.
        pub n: usize,
        /// `"packed"` (production) or `"unpacked"` (reference baseline).
        pub engine: &'static str,
        /// Rounds until gossip completion (identical across engines and
        /// repetitions — both are deterministic in the seed).
        pub rounds: u64,
        /// Total packets sent over the run.
        pub total_packets: u64,
        /// Timed repetitions.
        pub reps: usize,
        /// Median wall-clock nanoseconds per round.
        pub median_ns_per_round: f64,
        /// Median delivered packet throughput (total packets / elapsed).
        pub messages_per_sec: f64,
    }

    /// Measures the packed engine's round loop on `graph`: `reps` full
    /// push-pull runs to completion, reporting the median ns/round and
    /// messages/sec.
    pub fn measure_packed(
        graph: &Graph,
        topology: &str,
        seed: u64,
        reps: usize,
    ) -> RoundLoopMeasurement {
        measure_with(topology, graph.num_nodes(), "packed", reps, || {
            let mut sim = Simulation::new(graph, seed);
            let start = Instant::now();
            PushPullGossip::run_until_complete(&mut sim, MAX_ROUNDS);
            (start.elapsed(), sim.metrics().rounds(), sim.metrics().total_packets())
        })
    }

    /// Measures the unpacked reference oracle on the same workload (see
    /// `rpc_engine::reference`): the recorded baseline the packed engine is
    /// judged against.
    pub fn measure_unpacked(
        graph: &Graph,
        topology: &str,
        seed: u64,
        reps: usize,
    ) -> RoundLoopMeasurement {
        measure_with(topology, graph.num_nodes(), "unpacked", reps, || {
            let mut sim = UnpackedSimulation::new(graph, seed);
            let start = Instant::now();
            PushPullGossip::run_until_complete(&mut sim, MAX_ROUNDS);
            (start.elapsed(), sim.metrics().rounds(), sim.metrics().total_packets())
        })
    }

    /// Measures both engines on the same workload with the repetitions
    /// *interleaved* (and the within-rep order alternating), so slow drift in
    /// the host's performance — noisy neighbours, frequency scaling, page
    /// cache state — hits both engines alike instead of biasing whichever
    /// block ran in the quiet minute. This is what the `round_loop_baseline`
    /// binary records; per-engine medians are taken over the paired samples.
    ///
    /// Returns `(unpacked, packed)`.
    pub fn measure_both(
        graph: &Graph,
        topology: &str,
        seed: u64,
        reps: usize,
    ) -> (RoundLoopMeasurement, RoundLoopMeasurement) {
        assert!(reps > 0, "at least one repetition is required");
        let mut unpacked = Samples::new(reps);
        let mut packed = Samples::new(reps);
        for rep in 0..reps {
            // Alternate which engine goes first so within-rep drift cancels
            // across the pair sequence.
            let unpacked_first = rep % 2 == 0;
            for engine_pick in 0..2 {
                if (engine_pick == 0) == unpacked_first {
                    let mut sim = UnpackedSimulation::new(graph, seed);
                    let start = Instant::now();
                    PushPullGossip::run_until_complete(&mut sim, MAX_ROUNDS);
                    unpacked.push(start.elapsed(), &sim);
                } else {
                    let mut sim = Simulation::new(graph, seed);
                    let start = Instant::now();
                    PushPullGossip::run_until_complete(&mut sim, MAX_ROUNDS);
                    packed.push(start.elapsed(), &sim);
                }
            }
        }
        (
            unpacked.finish(topology, graph.num_nodes(), "unpacked", reps),
            packed.finish(topology, graph.num_nodes(), "packed", reps),
        )
    }

    /// Per-engine timing samples of [`measure_both`] / `measure_with`.
    struct Samples {
        ns_per_round: Vec<f64>,
        msgs_per_sec: Vec<f64>,
        rounds: u64,
        total_packets: u64,
    }

    impl Samples {
        fn new(reps: usize) -> Self {
            Self {
                ns_per_round: Vec::with_capacity(reps),
                msgs_per_sec: Vec::with_capacity(reps),
                rounds: 0,
                total_packets: 0,
            }
        }

        fn push<E: Engine>(&mut self, elapsed: std::time::Duration, sim: &E) {
            self.record(elapsed, sim.metrics().rounds(), sim.metrics().total_packets());
        }

        fn record(&mut self, elapsed: std::time::Duration, r: u64, packets: u64) {
            assert!(r > 0 || packets == 0, "a run with packets must have rounds");
            self.rounds = r;
            self.total_packets = packets;
            let nanos = elapsed.as_nanos() as f64;
            self.ns_per_round.push(if r == 0 { 0.0 } else { nanos / r as f64 });
            self.msgs_per_sec.push(if nanos == 0.0 { 0.0 } else { packets as f64 / (nanos / 1e9) });
        }

        fn finish(
            mut self,
            topology: &str,
            n: usize,
            engine: &'static str,
            reps: usize,
        ) -> RoundLoopMeasurement {
            RoundLoopMeasurement {
                topology: topology.to_string(),
                n,
                engine,
                rounds: self.rounds,
                total_packets: self.total_packets,
                reps,
                median_ns_per_round: median(&mut self.ns_per_round),
                messages_per_sec: median(&mut self.msgs_per_sec),
            }
        }
    }

    fn measure_with(
        topology: &str,
        n: usize,
        engine: &'static str,
        reps: usize,
        mut run: impl FnMut() -> (std::time::Duration, u64, u64),
    ) -> RoundLoopMeasurement {
        assert!(reps > 0, "at least one repetition is required");
        let mut samples = Samples::new(reps);
        for _ in 0..reps {
            let (elapsed, r, packets) = run();
            samples.record(elapsed, r, packets);
        }
        samples.finish(topology, n, engine, reps)
    }

    fn median(values: &mut [f64]) -> f64 {
        values.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let mid = values.len() / 2;
        if values.len() % 2 == 1 {
            values[mid]
        } else {
            (values[mid - 1] + values[mid]) / 2.0
        }
    }

    /// The unpacked-vs-packed round-loop speedup for one (topology, n) cell,
    /// if both engines were measured.
    pub fn speedup_at(results: &[RoundLoopMeasurement], topology: &str, n: usize) -> Option<f64> {
        let find = |engine: &str| {
            results
                .iter()
                .find(|m| m.topology == topology && m.n == n && m.engine == engine)
                .map(|m| m.median_ns_per_round)
        };
        match (find("unpacked"), find("packed")) {
            (Some(unpacked), Some(packed)) if packed > 0.0 => Some(unpacked / packed),
            _ => None,
        }
    }

    /// Renders the measurements as the `BENCH_round_loop.json` document. The
    /// format is hand-rolled (no serde in the offline build environment) but
    /// strict JSON: an object with a `results` array of flat records.
    pub fn to_json(results: &[RoundLoopMeasurement], seed: u64) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"round_loop\",\n");
        out.push_str(
            "  \"description\": \"Push-pull round loop to gossip completion; \
             packed = word-parallel production engine, unpacked = pre-optimization \
             reference oracle (identical results, different representation)\",\n",
        );
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(
            "  \"units\": {\"median_ns_per_round\": \"ns\", \"messages_per_sec\": \"packets/s\"},\n",
        );
        out.push_str("  \"results\": [\n");
        for (i, m) in results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"topology\": \"{}\", \"n\": {}, \"engine\": \"{}\", \"rounds\": {}, \
                 \"total_packets\": {}, \"reps\": {}, \"median_ns_per_round\": {:.1}, \
                 \"messages_per_sec\": {:.1}}}{}\n",
                m.topology,
                m.n,
                m.engine,
                m.rounds,
                m.total_packets,
                m.reps,
                m.median_ns_per_round,
                m.messages_per_sec,
                if i + 1 == results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round_loop::*;

    #[test]
    fn benchmark_graphs_have_requested_size() {
        let (random, complete) = benchmark_graphs(256, 1);
        assert_eq!(random.num_nodes(), 256);
        assert_eq!(complete.num_nodes(), 256);
        assert_eq!(complete.num_edges(), 256 * 255 / 2);
    }

    #[test]
    fn every_topology_key_builds_a_graph() {
        for kind in TOPOLOGIES {
            let g = build_topology(kind, 129, 1); // odd n exercises the
                                                  // regular-degree adjustment
            assert_eq!(g.num_nodes(), 129, "{kind}");
            assert!(g.num_edges() > 0, "{kind}");
        }
        assert_eq!(build_topology("complete", 64, 0).num_edges(), 64 * 63 / 2);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark topology")]
    fn unknown_topology_key_panics() {
        let _ = build_topology("torus", 64, 0);
    }

    #[test]
    fn both_engines_measure_identical_round_and_packet_counts() {
        let g = build_topology("er-sparse", 192, 5);
        let packed = measure_packed(&g, "er-sparse", 7, 2);
        let unpacked = measure_unpacked(&g, "er-sparse", 7, 2);
        assert!(packed.rounds > 0);
        assert_eq!(packed.rounds, unpacked.rounds, "engines must agree on the run");
        assert_eq!(packed.total_packets, unpacked.total_packets);
        assert!(packed.median_ns_per_round > 0.0);
        assert!(packed.messages_per_sec > 0.0);
    }

    #[test]
    fn interleaved_measurement_agrees_with_the_separate_ones() {
        let g = build_topology("er-sparse", 160, 5);
        let (u, p) = measure_both(&g, "er-sparse", 7, 3);
        assert_eq!(u.engine, "unpacked");
        assert_eq!(p.engine, "packed");
        assert_eq!(u.rounds, p.rounds, "both engines must replay the same run");
        assert_eq!(u.total_packets, p.total_packets);
        assert_eq!(u.reps, 3);
        assert!(u.median_ns_per_round > 0.0 && p.median_ns_per_round > 0.0);
        assert!(speedup_at(&[u, p], "er-sparse", 160).is_some());
    }

    #[test]
    fn json_document_is_well_formed_and_speedup_is_computed() {
        let g = build_topology("complete", 96, 3);
        let results =
            vec![measure_unpacked(&g, "complete", 3, 2), measure_packed(&g, "complete", 3, 2)];
        let json = to_json(&results, 3);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"benchmark\": \"round_loop\""));
        assert!(json.contains("\"engine\": \"packed\""));
        assert!(json.contains("\"engine\": \"unpacked\""));
        assert_eq!(json.matches("\"topology\"").count(), 2);
        // Balanced braces/brackets (a cheap structural sanity check since the
        // offline environment has no JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(speedup_at(&results, "complete", 96).unwrap() > 0.0);
        assert_eq!(speedup_at(&results, "er-dense", 96), None);
    }
}
