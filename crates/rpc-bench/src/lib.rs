//! Shared helpers for the Criterion benchmark suite and the tracked
//! round-loop baseline.
//!
//! The criterion benchmarks live in `benches/`; this library crate exposes
//! the utilities they share so the bench files stay readable and the helpers
//! themselves are unit-testable. Two modules additionally back tracked
//! baseline binaries that record the repository's perf trajectory as
//! machine-readable JSON:
//!
//! * [`round_loop`] → `round_loop_baseline` → `BENCH_round_loop.json`:
//!   protocol round loops on the packed production engine vs. the unpacked
//!   reference oracle across the topology/size matrix;
//! * [`scenario_batch`] → `batch_baseline` → `BENCH_scenario_batch.json`:
//!   Monte Carlo scenario repetitions, fresh allocation vs. per-worker
//!   arena reuse (bit-identical outcomes, asserted per repetition).

use rpc_graphs::prelude::*;

pub mod scenario_batch;

/// Standard benchmark topologies: the paper-density Erdős–Rényi graph and the
/// complete graph of the same size, generated deterministically.
pub fn benchmark_graphs(n: usize, seed: u64) -> (Graph, Graph) {
    (ErdosRenyi::paper_density(n).generate(seed), CompleteGraph::new(n).generate(seed))
}

/// The benchmark protocol keys, in reporting order: the push-pull baseline
/// plus the paper's two phase-based algorithms. Shared by both tracked
/// baselines so they can never disagree on what a "protocol" cell is.
pub const PROTOCOLS: [&str; 3] = ["push-pull", "fast-gossiping", "memory"];

/// Median of a timing sample (sorts in place; mean of the middle pair for
/// even lengths). Shared by both tracked baselines.
pub(crate) fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let mid = values.len() / 2;
    if values.is_empty() {
        0.0
    } else if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// The tracked round-loop baseline: reproducible throughput measurements of
/// the push-pull round loop, packed engine vs. unpacked oracle.
pub mod round_loop {
    use std::time::Instant;

    use rpc_engine::{Engine, MessageId, Simulation, UnpackedSimulation};
    use rpc_gossip::{FastGossiping, MemoryGossip, PushPullGossip};
    use rpc_graphs::log2n;
    use rpc_graphs::prelude::*;

    /// Safety cap on rounds per run; push-pull completes in Θ(log n) on every
    /// benchmark topology, so hitting this indicates a bug.
    const MAX_ROUNDS: usize = 10_000;

    /// The benchmark topology keys, in reporting order.
    pub const TOPOLOGIES: [&str; 4] = ["er-dense", "er-sparse", "regular", "complete"];

    /// The benchmark protocol keys (the crate-level canonical list).
    pub use crate::PROTOCOLS;

    /// The protocol key of the multi-rumor streaming row: the push-pull loop
    /// over [`STREAM_RUMORS`] staggered injections (two rumors per round,
    /// sources striding the node space), run until every rumor completes.
    /// The message universe is the rumor count — decoupled from `n` — so
    /// this row exercises the word-parallel delivery path on a state layout
    /// no classic single-rumor bench reaches.
    pub const STREAM_PROTOCOL: &str = "push-pull-stream";

    /// Rumor count (and message universe) of the [`STREAM_PROTOCOL`] row.
    pub const STREAM_RUMORS: usize = 16;

    /// Runs one protocol to its natural end on any engine, with the same
    /// paper constants the scenario layer uses.
    fn run_protocol<E: Engine>(protocol: &str, sim: &mut E) {
        let n = sim.num_nodes();
        match protocol {
            "push-pull" => {
                PushPullGossip::run_until_complete(sim, MAX_ROUNDS);
            }
            "fast-gossiping" => {
                FastGossiping::paper(n).run_on_engine(sim);
            }
            "memory" => {
                MemoryGossip::paper(n).run_on_engine(sim);
            }
            STREAM_PROTOCOL => run_streaming(sim),
            other => panic!("unknown benchmark protocol: {other}"),
        }
    }

    /// Registers the streaming row's deterministic injection schedule (no
    /// RNG draws — the same staggered arrivals on every engine and rep) and
    /// runs push-pull until every rumor has completed or the safety cap.
    pub fn run_streaming<E: Engine>(sim: &mut E) {
        let n = sim.num_nodes();
        for m in 0..STREAM_RUMORS {
            sim.schedule_injection((m / 2) as u64, ((m * 97) % n) as NodeId, m as MessageId);
        }
        sim.track_message(0);
        PushPullGossip::run_until(sim, MAX_ROUNDS, |sim: &E| {
            (0..STREAM_RUMORS).all(|m| sim.rumor_complete(m as MessageId))
        });
    }

    /// Builds the engine a protocol row runs on: streaming rows get a
    /// rumor-count universe, classic rows the single-rumor layout.
    fn packed_sim<'g>(graph: &'g Graph, seed: u64, protocol: &str) -> Simulation<'g> {
        if protocol == STREAM_PROTOCOL {
            Simulation::new_streaming(graph, seed, STREAM_RUMORS)
        } else {
            Simulation::new(graph, seed)
        }
    }

    /// [`packed_sim`]'s twin for the unpacked reference oracle.
    fn unpacked_sim<'g>(graph: &'g Graph, seed: u64, protocol: &str) -> UnpackedSimulation<'g> {
        if protocol == STREAM_PROTOCOL {
            UnpackedSimulation::new_streaming(graph, seed, STREAM_RUMORS)
        } else {
            UnpackedSimulation::new(graph, seed)
        }
    }

    /// Builds the graph behind a topology key:
    ///
    /// * `er-dense` — Erdős–Rényi with expected degree `4 log² n` (the
    ///   registry's dense working point, behaves almost like `K_n`);
    /// * `er-sparse` — Erdős–Rényi at the paper's density threshold
    ///   `p = log² n / n`;
    /// * `regular` — random regular graph with degree `≈ log² n`;
    /// * `complete` — `K_n` (quadratic adjacency: only use at moderate `n`).
    pub fn build_topology(kind: &str, n: usize, seed: u64) -> Graph {
        let log2 = log2n(n);
        let paper_degree = log2 * log2;
        match kind {
            "er-dense" => {
                let degree = (4.0 * paper_degree).min(n as f64 - 1.0);
                ErdosRenyi::with_expected_degree(n, degree).generate(seed)
            }
            "er-sparse" => ErdosRenyi::paper_density(n).generate(seed),
            "regular" => {
                let mut d = (paper_degree.round() as usize).clamp(2, n - 1);
                if n % 2 == 1 && d % 2 == 1 {
                    d += 1;
                }
                RandomRegular::new(n, d.min(n - 1)).generate(seed)
            }
            "complete" => CompleteGraph::new(n).generate(seed),
            other => panic!("unknown benchmark topology: {other}"),
        }
    }

    /// One measured configuration of the round-loop benchmark.
    #[derive(Clone, Debug, PartialEq)]
    pub struct RoundLoopMeasurement {
        /// Topology key (see [`TOPOLOGIES`]).
        pub topology: String,
        /// Protocol key (see [`PROTOCOLS`]).
        pub protocol: String,
        /// Number of nodes.
        pub n: usize,
        /// `"packed"` (production) or `"unpacked"` (reference baseline).
        pub engine: &'static str,
        /// Rounds until gossip completion (identical across engines and
        /// repetitions — both are deterministic in the seed).
        pub rounds: u64,
        /// Total packets sent over the run.
        pub total_packets: u64,
        /// Timed repetitions.
        pub reps: usize,
        /// Median wall-clock nanoseconds per round.
        pub median_ns_per_round: f64,
        /// Median delivered packet throughput (total packets / elapsed).
        pub messages_per_sec: f64,
    }

    /// Measures the packed engine's round loop on `graph`: `reps` full
    /// `protocol` runs to their natural end, reporting the median ns/round
    /// and messages/sec.
    pub fn measure_packed(
        graph: &Graph,
        topology: &str,
        protocol: &str,
        seed: u64,
        reps: usize,
    ) -> RoundLoopMeasurement {
        measure_with(topology, protocol, graph.num_nodes(), "packed", reps, || {
            let mut sim = packed_sim(graph, seed, protocol);
            let start = Instant::now();
            run_protocol(protocol, &mut sim);
            (start.elapsed(), sim.metrics().rounds(), sim.metrics().total_packets())
        })
    }

    /// Measures the unpacked reference oracle on the same workload (see
    /// `rpc_engine::reference`): the recorded baseline the packed engine is
    /// judged against.
    pub fn measure_unpacked(
        graph: &Graph,
        topology: &str,
        protocol: &str,
        seed: u64,
        reps: usize,
    ) -> RoundLoopMeasurement {
        measure_with(topology, protocol, graph.num_nodes(), "unpacked", reps, || {
            let mut sim = unpacked_sim(graph, seed, protocol);
            let start = Instant::now();
            run_protocol(protocol, &mut sim);
            (start.elapsed(), sim.metrics().rounds(), sim.metrics().total_packets())
        })
    }

    /// Measures both engines on the same workload with the repetitions
    /// *interleaved* (and the within-rep order alternating), so slow drift in
    /// the host's performance — noisy neighbours, frequency scaling, page
    /// cache state — hits both engines alike instead of biasing whichever
    /// block ran in the quiet minute. This is what the `round_loop_baseline`
    /// binary records; per-engine medians are taken over the paired samples.
    ///
    /// Returns `(unpacked, packed)`.
    pub fn measure_both(
        graph: &Graph,
        topology: &str,
        protocol: &str,
        seed: u64,
        reps: usize,
    ) -> (RoundLoopMeasurement, RoundLoopMeasurement) {
        assert!(reps > 0, "at least one repetition is required");
        let mut unpacked = Samples::new(reps);
        let mut packed = Samples::new(reps);
        for rep in 0..reps {
            // Alternate which engine goes first so within-rep drift cancels
            // across the pair sequence.
            let unpacked_first = rep % 2 == 0;
            for engine_pick in 0..2 {
                if (engine_pick == 0) == unpacked_first {
                    let mut sim = unpacked_sim(graph, seed, protocol);
                    let start = Instant::now();
                    run_protocol(protocol, &mut sim);
                    unpacked.push(start.elapsed(), &sim);
                } else {
                    let mut sim = packed_sim(graph, seed, protocol);
                    let start = Instant::now();
                    run_protocol(protocol, &mut sim);
                    packed.push(start.elapsed(), &sim);
                }
            }
        }
        (
            unpacked.finish(topology, protocol, graph.num_nodes(), "unpacked", reps),
            packed.finish(topology, protocol, graph.num_nodes(), "packed", reps),
        )
    }

    /// Per-engine timing samples of [`measure_both`] / `measure_with`.
    struct Samples {
        ns_per_round: Vec<f64>,
        msgs_per_sec: Vec<f64>,
        rounds: u64,
        total_packets: u64,
    }

    impl Samples {
        fn new(reps: usize) -> Self {
            Self {
                ns_per_round: Vec::with_capacity(reps),
                msgs_per_sec: Vec::with_capacity(reps),
                rounds: 0,
                total_packets: 0,
            }
        }

        fn push<E: Engine>(&mut self, elapsed: std::time::Duration, sim: &E) {
            self.record(elapsed, sim.metrics().rounds(), sim.metrics().total_packets());
        }

        fn record(&mut self, elapsed: std::time::Duration, r: u64, packets: u64) {
            assert!(r > 0 || packets == 0, "a run with packets must have rounds");
            self.rounds = r;
            self.total_packets = packets;
            let nanos = elapsed.as_nanos() as f64;
            self.ns_per_round.push(if r == 0 { 0.0 } else { nanos / r as f64 });
            self.msgs_per_sec.push(if nanos == 0.0 { 0.0 } else { packets as f64 / (nanos / 1e9) });
        }

        fn finish(
            mut self,
            topology: &str,
            protocol: &str,
            n: usize,
            engine: &'static str,
            reps: usize,
        ) -> RoundLoopMeasurement {
            RoundLoopMeasurement {
                topology: topology.to_string(),
                protocol: protocol.to_string(),
                n,
                engine,
                rounds: self.rounds,
                total_packets: self.total_packets,
                reps,
                median_ns_per_round: crate::median(&mut self.ns_per_round),
                messages_per_sec: crate::median(&mut self.msgs_per_sec),
            }
        }
    }

    fn measure_with(
        topology: &str,
        protocol: &str,
        n: usize,
        engine: &'static str,
        reps: usize,
        mut run: impl FnMut() -> (std::time::Duration, u64, u64),
    ) -> RoundLoopMeasurement {
        assert!(reps > 0, "at least one repetition is required");
        let mut samples = Samples::new(reps);
        for _ in 0..reps {
            let (elapsed, r, packets) = run();
            samples.record(elapsed, r, packets);
        }
        samples.finish(topology, protocol, n, engine, reps)
    }

    /// The unpacked-vs-packed round-loop speedup for one
    /// (topology, protocol, n) cell, if both engines were measured.
    pub fn speedup_at(
        results: &[RoundLoopMeasurement],
        topology: &str,
        protocol: &str,
        n: usize,
    ) -> Option<f64> {
        let find = |engine: &str| {
            results
                .iter()
                .find(|m| {
                    m.topology == topology
                        && m.protocol == protocol
                        && m.n == n
                        && m.engine == engine
                })
                .map(|m| m.median_ns_per_round)
        };
        match (find("unpacked"), find("packed")) {
            (Some(unpacked), Some(packed)) if packed > 0.0 => Some(unpacked / packed),
            _ => None,
        }
    }

    /// Renders the measurements as the `BENCH_round_loop.json` document. The
    /// format is hand-rolled (no serde in the offline build environment) but
    /// strict JSON: an object with a `results` array of flat records.
    pub fn to_json(results: &[RoundLoopMeasurement], seed: u64) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"round_loop\",\n");
        out.push_str(
            "  \"description\": \"Protocol round loops to natural termination \
             (push-pull everywhere; fast-gossiping, memory and the \
             push-pull-stream multi-rumor row — 16 staggered injections, \
             message universe decoupled from n — on the paper's er-sparse \
             working point); packed = word-parallel production engine \
             with adaptive delivery dispatch, unpacked = pre-optimization \
             reference oracle (identical results, different representation)\",\n",
        );
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(
            "  \"units\": {\"median_ns_per_round\": \"ns\", \"messages_per_sec\": \"packets/s\"},\n",
        );
        out.push_str("  \"results\": [\n");
        for (i, m) in results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"topology\": \"{}\", \"protocol\": \"{}\", \"n\": {}, \
                 \"engine\": \"{}\", \"rounds\": {}, \
                 \"total_packets\": {}, \"reps\": {}, \"median_ns_per_round\": {:.1}, \
                 \"messages_per_sec\": {:.1}}}{}\n",
                m.topology,
                m.protocol,
                m.n,
                m.engine,
                m.rounds,
                m.total_packets,
                m.reps,
                m.median_ns_per_round,
                m.messages_per_sec,
                if i + 1 == results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round_loop::*;

    #[test]
    fn benchmark_graphs_have_requested_size() {
        let (random, complete) = benchmark_graphs(256, 1);
        assert_eq!(random.num_nodes(), 256);
        assert_eq!(complete.num_nodes(), 256);
        assert_eq!(complete.num_edges(), 256 * 255 / 2);
    }

    #[test]
    fn every_topology_key_builds_a_graph() {
        for kind in TOPOLOGIES {
            let g = build_topology(kind, 129, 1); // odd n exercises the
                                                  // regular-degree adjustment
            assert_eq!(g.num_nodes(), 129, "{kind}");
            assert!(g.num_edges() > 0, "{kind}");
        }
        assert_eq!(build_topology("complete", 64, 0).num_edges(), 64 * 63 / 2);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark topology")]
    fn unknown_topology_key_panics() {
        let _ = build_topology("torus", 64, 0);
    }

    #[test]
    fn both_engines_measure_identical_round_and_packet_counts() {
        let g = build_topology("er-sparse", 192, 5);
        let packed = measure_packed(&g, "er-sparse", "push-pull", 7, 2);
        let unpacked = measure_unpacked(&g, "er-sparse", "push-pull", 7, 2);
        assert!(packed.rounds > 0);
        assert_eq!(packed.rounds, unpacked.rounds, "engines must agree on the run");
        assert_eq!(packed.total_packets, unpacked.total_packets);
        assert!(packed.median_ns_per_round > 0.0);
        assert!(packed.messages_per_sec > 0.0);
    }

    #[test]
    fn phase_protocols_measure_on_both_engines() {
        let g = build_topology("er-sparse", 128, 5);
        for protocol in ["fast-gossiping", "memory"] {
            let (u, p) = measure_both(&g, "er-sparse", protocol, 9, 2);
            assert_eq!(u.rounds, p.rounds, "{protocol}: engines must replay the same run");
            assert_eq!(u.total_packets, p.total_packets, "{protocol}");
            assert!(u.rounds > 0, "{protocol} executed no rounds");
            assert_eq!(p.protocol, protocol);
        }
    }

    #[test]
    fn streaming_row_measures_identically_on_both_engines() {
        let g = build_topology("er-sparse", 160, 5);
        let (u, p) = measure_both(&g, "er-sparse", STREAM_PROTOCOL, 7, 2);
        assert_eq!(u.rounds, p.rounds, "engines must replay the same streaming run");
        assert_eq!(u.total_packets, p.total_packets);
        // All 16 rumors arrive two per round, so the run outlives the
        // injection window and ends by rumor completion, not the cap.
        assert!(u.rounds >= (STREAM_RUMORS / 2) as u64);
        assert!(u.rounds < 10_000);
        assert_eq!(p.protocol, STREAM_PROTOCOL);
    }

    #[test]
    fn interleaved_measurement_agrees_with_the_separate_ones() {
        let g = build_topology("er-sparse", 160, 5);
        let (u, p) = measure_both(&g, "er-sparse", "push-pull", 7, 3);
        assert_eq!(u.engine, "unpacked");
        assert_eq!(p.engine, "packed");
        assert_eq!(u.rounds, p.rounds, "both engines must replay the same run");
        assert_eq!(u.total_packets, p.total_packets);
        assert_eq!(u.reps, 3);
        assert!(u.median_ns_per_round > 0.0 && p.median_ns_per_round > 0.0);
        assert!(speedup_at(&[u, p], "er-sparse", "push-pull", 160).is_some());
    }

    #[test]
    fn json_document_is_well_formed_and_speedup_is_computed() {
        let g = build_topology("complete", 96, 3);
        let results = vec![
            measure_unpacked(&g, "complete", "push-pull", 3, 2),
            measure_packed(&g, "complete", "push-pull", 3, 2),
        ];
        let json = to_json(&results, 3);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"benchmark\": \"round_loop\""));
        assert!(json.contains("\"engine\": \"packed\""));
        assert!(json.contains("\"engine\": \"unpacked\""));
        assert!(json.contains("\"protocol\": \"push-pull\""));
        assert_eq!(json.matches("\"topology\"").count(), 2);
        // Balanced braces/brackets (a cheap structural sanity check since the
        // offline environment has no JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(speedup_at(&results, "complete", "push-pull", 96).unwrap() > 0.0);
        assert_eq!(speedup_at(&results, "er-dense", "push-pull", 96), None);
        assert_eq!(speedup_at(&results, "complete", "memory", 96), None);
    }
}
