//! Shared helpers for the Criterion benchmark suite.
//!
//! The actual benchmarks live in `benches/paper_experiments.rs`; this library
//! crate only exposes small utilities so that the bench file stays readable
//! and the helpers themselves are unit-testable.

use rpc_graphs::prelude::*;

/// Standard benchmark topologies: the paper-density Erdős–Rényi graph and the
/// complete graph of the same size, generated deterministically.
pub fn benchmark_graphs(n: usize, seed: u64) -> (Graph, Graph) {
    (ErdosRenyi::paper_density(n).generate(seed), CompleteGraph::new(n).generate(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_graphs_have_requested_size() {
        let (random, complete) = benchmark_graphs(256, 1);
        assert_eq!(random.num_nodes(), 256);
        assert_eq!(complete.num_nodes(), 256);
        assert_eq!(complete.num_edges(), 256 * 255 / 2);
    }
}
