//! The tracked Monte Carlo batch baseline (`BENCH_scenario_batch.json`).
//!
//! The production workload the ROADMAP targets is *many repetitions* of a
//! scenario — coverage estimation, robustness sweeps, parameter studies —
//! where every repetition regenerates its graph and simulation state. This
//! module measures the repetition itself as the unit of work, in two modes
//! over identical seeds:
//!
//! * **fresh** — [`rpc_scenarios::run_scenario`]: every repetition allocates
//!   its graph and its simulation from scratch (the pre-ISSUE-5 path);
//! * **arena** — [`rpc_scenarios::run_scenario_in`]: all repetitions run
//!   through one warmed-up [`ScenarioArena`], so graph buffers, state tables
//!   and delivery pools are reused (the batch driver's path).
//!
//! Both modes are bit-identical by contract; the measurement loop asserts
//! the outcomes equal on **every** repetition, so a full baseline run is
//! also a large-scale equivalence check. Repetitions of the two modes are
//! interleaved with alternating order, like the round-loop baseline, so
//! host-level noise biases neither mode's median.
//!
//! The workload is a short-horizon estimation cell on the complete graph —
//! the random phone call model's classical baseline topology — under a fixed
//! round budget: the regime where per-repetition setup (adjacency
//! construction, state-table allocation) dominates and the arena path pays.
//! Erdős–Rényi cells amortize differently: their per-repetition cost is
//! dominated by the *edge sampling* itself (one `ln()` per edge, pinned by
//! the bit-identity contract), which no buffer reuse can remove — the arena
//! still wins there, but by buffer-reuse margins, not multiples.

use std::time::Instant;

use rpc_engine::derive_seed;
use rpc_scenarios::registry;
use rpc_scenarios::{
    run_scenario, run_scenario_in, run_scenario_traced, run_scenario_traced_in, ProtocolSpec,
    Scenario, ScenarioArena, StopRule, TopologySpec,
};

/// The benchmark protocol keys (the crate-level canonical list).
pub use crate::PROTOCOLS;

/// Round budget of the benchmark cell. Four rounds is the shape of a
/// coverage-estimation repetition: enough traffic that the delivery hot path
/// matters, short enough that graph + simulation setup is a first-order cost.
pub const CELL_ROUNDS: u64 = 4;

/// Builds the benchmark scenario for one `(protocol, n)` cell.
pub fn batch_scenario(protocol: &str, n: usize) -> Scenario {
    let spec = match protocol {
        "push-pull" => ProtocolSpec::PushPull,
        "fast-gossiping" => ProtocolSpec::FastGossiping,
        "memory" => ProtocolSpec::Memory,
        other => panic!("unknown benchmark protocol: {other}"),
    };
    Scenario::builder(format!("batch-{protocol}"), TopologySpec::Complete { n })
        .protocol(spec)
        .stop(StopRule::Rounds(CELL_ROUNDS))
        .build()
        .expect("benchmark scenario must validate")
}

/// One measured mode of one `(protocol, n)` cell.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchMeasurement {
    /// Scenario name (`batch-<protocol>`).
    pub scenario: String,
    /// Protocol key (see [`PROTOCOLS`]).
    pub protocol: String,
    /// Nodes per graph.
    pub n: usize,
    /// `"fresh"` (allocate per repetition) or `"arena"` (reuse per worker).
    pub mode: &'static str,
    /// Timed repetitions.
    pub reps: usize,
    /// Median wall-clock nanoseconds per repetition.
    pub median_ns_per_rep: f64,
    /// Median repetition throughput (1e9 / ns-per-rep).
    pub reps_per_sec: f64,
}

/// Measures one cell in both modes with interleaved repetitions over
/// identical per-repetition seeds, asserting outcome equality on every
/// repetition. Returns `(fresh, arena)`.
pub fn measure_cell(
    scenario: &Scenario,
    protocol: &str,
    seed: u64,
    reps: usize,
) -> (BatchMeasurement, BatchMeasurement) {
    assert!(reps > 0, "at least one repetition is required");
    let mut arena = ScenarioArena::default();
    // One untimed warm-up so "arena" measures the steady state the batch
    // driver reaches after its first cell.
    let _ = run_scenario_in(&mut arena, scenario, derive_seed(seed, u64::MAX, 0), 1);
    let mut fresh_ns = Vec::with_capacity(reps);
    let mut arena_ns = Vec::with_capacity(reps);
    for rep in 0..reps {
        let rep_seed = derive_seed(seed, 1, rep as u64);
        // Alternate which mode goes first so slow host drift cancels.
        let fresh_first = rep % 2 == 0;
        let mut fresh_outcome = None;
        let mut arena_outcome = None;
        for pick in 0..2 {
            if (pick == 0) == fresh_first {
                let start = Instant::now();
                let outcome = run_scenario(scenario, rep_seed, 1);
                fresh_ns.push(start.elapsed().as_nanos() as f64);
                fresh_outcome = Some(outcome);
            } else {
                let start = Instant::now();
                let outcome = run_scenario_in(&mut arena, scenario, rep_seed, 1);
                arena_ns.push(start.elapsed().as_nanos() as f64);
                arena_outcome = Some(outcome);
            }
        }
        assert_eq!(
            fresh_outcome, arena_outcome,
            "arena diverged from fresh: {} rep {rep}",
            scenario.name
        );
    }
    let finish = |mode: &'static str, ns: &mut Vec<f64>| {
        let median_ns = crate::median(ns);
        BatchMeasurement {
            scenario: scenario.name.clone(),
            protocol: protocol.to_string(),
            n: scenario.num_nodes(),
            mode,
            reps,
            median_ns_per_rep: median_ns,
            reps_per_sec: if median_ns == 0.0 { 0.0 } else { 1e9 / median_ns },
        }
    };
    (finish("fresh", &mut fresh_ns), finish("arena", &mut arena_ns))
}

/// The fresh-vs-arena repetition speedup for one `(protocol, n)` cell, if
/// both modes were measured.
pub fn speedup_at(results: &[BatchMeasurement], protocol: &str, n: usize) -> Option<f64> {
    let find = |mode: &str| {
        results
            .iter()
            .find(|m| m.protocol == protocol && m.n == n && m.mode == mode)
            .map(|m| m.median_ns_per_rep)
    };
    match (find("fresh"), find("arena")) {
        (Some(fresh), Some(arena)) if arena > 0.0 => Some(fresh / arena),
        _ => None,
    }
}

/// Runs the whole registry once through one arena and once fresh, comparing
/// outcome **and** per-round trace. This is the CI smoke assertion: any
/// divergence between the reuse path and the fresh path fails the job.
pub fn registry_smoke(n: usize, seed: u64) -> Result<usize, String> {
    let mut arena = ScenarioArena::default();
    let scenarios = registry::builtin(n);
    for scenario in &scenarios {
        let fresh = run_scenario_traced(scenario, seed, 1);
        let reused = run_scenario_traced_in(&mut arena, scenario, seed, 1);
        if fresh != reused {
            return Err(format!(
                "arena path diverged from fresh path on registry scenario `{}`",
                scenario.name
            ));
        }
    }
    Ok(scenarios.len())
}

/// Renders the measurements as the `BENCH_scenario_batch.json` document
/// (hand-rolled strict JSON; the offline build has no serde).
pub fn to_json(results: &[BatchMeasurement], seed: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"scenario_batch\",\n");
    out.push_str(&format!(
        "  \"description\": \"Monte Carlo repetitions of a short-horizon scenario cell \
         (complete-graph topology, stop=rounds:{CELL_ROUNDS}, engine threads=1); fresh = allocate \
         graph+simulation per repetition, arena = per-worker ScenarioArena reuse \
         (bit-identical outcomes, asserted per repetition); modes interleaved with \
         alternating order\",\n"
    ));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(
        "  \"units\": {\"median_ns_per_rep\": \"ns\", \"reps_per_sec\": \"repetitions/s\"},\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"protocol\": \"{}\", \"n\": {}, \"mode\": \"{}\", \
             \"reps\": {}, \"median_ns_per_rep\": {:.1}, \"reps_per_sec\": {:.1}}}{}\n",
            m.scenario,
            m.protocol,
            m.n,
            m.mode,
            m.reps,
            m.median_ns_per_rep,
            m.reps_per_sec,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_scenarios_build_for_every_protocol() {
        for protocol in PROTOCOLS {
            let s = batch_scenario(protocol, 128);
            assert_eq!(s.num_nodes(), 128);
            assert_eq!(s.protocol.name(), protocol);
            assert_eq!(s.stop, StopRule::Rounds(CELL_ROUNDS));
        }
    }

    #[test]
    fn measure_cell_reports_both_modes_and_equal_outcomes() {
        let s = batch_scenario("push-pull", 96);
        let (fresh, arena) = measure_cell(&s, "push-pull", 7, 3);
        assert_eq!(fresh.mode, "fresh");
        assert_eq!(arena.mode, "arena");
        assert_eq!(fresh.reps, 3);
        assert!(fresh.median_ns_per_rep > 0.0 && arena.median_ns_per_rep > 0.0);
        assert!(fresh.reps_per_sec > 0.0 && arena.reps_per_sec > 0.0);
        let results = vec![fresh, arena];
        assert!(speedup_at(&results, "push-pull", 96).unwrap() > 0.0);
        assert_eq!(speedup_at(&results, "memory", 96), None);
    }

    #[test]
    fn registry_smoke_passes_on_the_builtin_registry() {
        let count = registry_smoke(64, 3).expect("arena must match fresh on the registry");
        assert_eq!(count, registry::BUILTIN_NAMES.len());
    }

    #[test]
    fn json_document_is_well_formed() {
        let s = batch_scenario("memory", 64);
        let (fresh, arena) = measure_cell(&s, "memory", 5, 2);
        let json = to_json(&[fresh, arena], 5);
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert!(json.contains("\"benchmark\": \"scenario_batch\""));
        assert!(json.contains("\"mode\": \"fresh\""));
        assert!(json.contains("\"mode\": \"arena\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
