//! The [`Engine`] trait: the simulation-primitive API algorithms drive.
//!
//! Every gossiping protocol in this repository interacts with the simulation
//! exclusively through the methods below — open a channel, deliver a batch of
//! transfers, absorb a message set, query liveness and completion. Capturing
//! that surface as a trait lets the same protocol code run on two engines:
//!
//! * [`crate::Simulation`] — the packed, word-parallel production engine
//!   ([`crate::bitset::BitSet`] masks, sparse deltas, allocation-free rounds);
//! * [`crate::reference::UnpackedSimulation`] — the straightforward
//!   `Vec<bool>`-and-scans oracle with the *same RNG draw sequence*, kept as
//!   the correctness reference and benchmark baseline.
//!
//! Because both engines consume randomness identically, a protocol driven on
//! both with the same graph and seed must produce bit-identical traces; the
//! `rpc-scenarios` property tests assert exactly that.

use rand::rngs::SmallRng;

use rpc_graphs::{Graph, NodeId};

use crate::message::{MessageId, MessageSet};
use crate::metrics::Metrics;
use crate::sim::Transfer;

/// The simulation primitives a gossiping algorithm needs — implemented by the
/// packed [`crate::Simulation`] and the unpacked
/// [`crate::reference::UnpackedSimulation`] oracle.
///
/// See the [module docs](self) for the bit-identical-traces contract.
pub trait Engine {
    /// The underlying graph.
    fn graph(&self) -> &Graph;

    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Size of the message universe the node states range over — equal to
    /// [`Engine::num_nodes`] in the classic gossiping configuration,
    /// decoupled from it on streaming simulations.
    fn universe(&self) -> usize;

    /// Opens a channel from `v` to a uniformly random (present) neighbour.
    fn open_channel(&mut self, v: NodeId) -> Option<NodeId>;

    /// Opens a channel from `v` to a uniformly random (present) neighbour
    /// outside `avoid`.
    fn open_channel_avoiding(&mut self, v: NodeId, avoid: &[NodeId]) -> Option<NodeId>;

    /// Applies one synchronous step's packet transfers; returns the number of
    /// newly learned (node, message) pairs.
    fn deliver(&mut self, transfers: &[Transfer]) -> usize;

    /// Merges `set` into node `v`'s combined message without packet
    /// accounting; returns how many messages were new.
    fn absorb(&mut self, v: NodeId, set: &MessageSet) -> usize;

    /// Current combined message of node `v`.
    fn state(&self, v: NodeId) -> &MessageSet;

    /// Whether node `v` knows original message `m`.
    fn knows(&self, v: NodeId, m: MessageId) -> bool;

    /// Whether node `v` is alive (has not crashed).
    fn is_alive(&self, v: NodeId) -> bool;

    /// Whether node `v` is present (has not churned out).
    fn is_present(&self, v: NodeId) -> bool;

    /// Whether node `v` is alive and present.
    fn is_participating(&self, v: NodeId) -> bool {
        self.is_alive(v) && self.is_present(v)
    }

    /// Number of alive nodes.
    fn alive_count(&self) -> usize;

    /// Number of present nodes.
    fn present_count(&self) -> usize;

    /// Number of alive-and-present nodes.
    fn participating_count(&self) -> usize;

    /// Number of alive-and-present nodes that are fully informed.
    fn participating_informed_count(&self) -> usize;

    /// Whether node `v` knows all `n` original messages.
    fn is_fully_informed(&self, v: NodeId) -> bool;

    /// Number of nodes (alive or failed) that know all original messages.
    fn fully_informed_count(&self) -> usize;

    /// Whether every participating node knows every original message.
    fn gossip_complete(&self) -> bool;

    /// Number of nodes that know original message `m` (diagnostic scan).
    fn informed_count_of(&self, m: MessageId) -> usize;

    /// Starts tracking original message `m` for cheap coverage queries.
    fn track_message(&mut self, m: MessageId);

    /// Number of nodes that know the tracked rumor. Panics if
    /// [`Engine::track_message`] was never called.
    fn tracked_informed_count(&self) -> usize;

    /// Injects rumor `m` at node `source` immediately; returns whether the
    /// node newly learned it. Draws nothing from the RNG — callers sample
    /// sources and timing from their own stream, which keeps both engines in
    /// RNG lockstep. A TTL-expired rumor is never re-injected.
    fn inject_rumor(&mut self, source: NodeId, m: MessageId) -> bool;

    /// Expires rumor `m`, removing it from every node's combined message;
    /// an expired rumor can never reappear.
    fn expire_rumor(&mut self, m: MessageId);

    /// Schedules rumor `m` to be injected at node `source` at the start of
    /// round `round`.
    fn schedule_injection(&mut self, round: u64, source: NodeId, m: MessageId);

    /// Schedules rumor `m` to expire at the start of round `round`.
    fn schedule_expiry(&mut self, round: u64, m: MessageId);

    /// Number of nodes whose combined message contains rumor `m` (the
    /// paper's `|I_m(t)|`, per rumor).
    fn rumor_informed_count(&self, m: MessageId) -> usize;

    /// Whether rumor `m` has been injected. In the classic configuration
    /// every original message is present from round 0, so this is `true`.
    fn rumor_injected(&self, m: MessageId) -> bool;

    /// Whether rumor `m` has expired (its TTL ran out).
    fn rumor_expired(&self, m: MessageId) -> bool;

    /// Whether every participating node knows rumor `m` — the per-rumor
    /// completion condition. A rumor that was never injected is not
    /// complete. Default O(n) scan with early exit, identical on both
    /// engines by construction.
    fn rumor_complete(&self, m: MessageId) -> bool {
        self.rumor_injected(m)
            && (0..self.num_nodes() as NodeId)
                .all(|v| !self.is_participating(v) || self.knows(v, m))
    }

    /// Crashes the given nodes immediately (paper failure model).
    fn fail_nodes(&mut self, nodes: &[NodeId]);

    /// Churns the given nodes out immediately.
    fn kill_nodes(&mut self, nodes: &[NodeId]);

    /// Brings previously departed nodes back immediately.
    fn revive_nodes(&mut self, nodes: &[NodeId]);

    /// Schedules a churn-out at the start of round `round`.
    fn schedule_kill(&mut self, round: u64, nodes: Vec<NodeId>);

    /// Schedules a rejoin at the start of round `round`.
    fn schedule_revive(&mut self, round: u64, nodes: Vec<NodeId>);

    /// Schedules a crash at the start of round `round`.
    fn schedule_crash(&mut self, round: u64, nodes: Vec<NodeId>);

    /// Schedules an edge-churn wave at the start of round `round`: the given
    /// CSR edge slots go down, replacing any previously down set.
    fn schedule_edge_outage(&mut self, round: u64, slots: Vec<NodeId>);

    /// Applies every scheduled liveness/injection event due at the current
    /// round immediately. Scheduled events are normally applied lazily from
    /// the engine primitives (`open_channel`, `deliver`); drivers that gate
    /// per-node work on liveness or informedness *before* calling a
    /// primitive invoke this at the top of each step so round-boundary
    /// events (crash bursts, rumor injections) are visible to those checks.
    /// Idempotent within a round; never draws randomness.
    fn apply_due_events(&mut self);

    /// Marks the given nodes Byzantine: they open channels and receive
    /// normally but silently drop every packet they should send.
    fn set_byzantine(&mut self, nodes: &[NodeId]);

    /// Whether node `v` is Byzantine.
    fn is_byzantine(&self, v: NodeId) -> bool;

    /// Number of Byzantine nodes.
    fn byzantine_count(&self) -> usize;

    /// Sets the per-packet loss probability (`p ∈ [0, 1)`).
    fn set_loss_probability(&mut self, p: f64);

    /// Communication metrics collected so far.
    fn metrics(&self) -> &Metrics;

    /// Mutable access to the metrics (exchange accounting, phase markers,
    /// round counting).
    fn metrics_mut(&mut self) -> &mut Metrics;

    /// The simulation's random source.
    fn rng_mut(&mut self) -> &mut SmallRng;
}

impl Engine for crate::sim::Simulation<'_> {
    fn graph(&self) -> &Graph {
        Self::graph(self)
    }
    fn num_nodes(&self) -> usize {
        Self::num_nodes(self)
    }
    fn universe(&self) -> usize {
        Self::universe(self)
    }
    fn open_channel(&mut self, v: NodeId) -> Option<NodeId> {
        Self::open_channel(self, v)
    }
    fn open_channel_avoiding(&mut self, v: NodeId, avoid: &[NodeId]) -> Option<NodeId> {
        Self::open_channel_avoiding(self, v, avoid)
    }
    fn deliver(&mut self, transfers: &[Transfer]) -> usize {
        Self::deliver(self, transfers)
    }
    fn absorb(&mut self, v: NodeId, set: &MessageSet) -> usize {
        Self::absorb(self, v, set)
    }
    fn state(&self, v: NodeId) -> &MessageSet {
        Self::state(self, v)
    }
    fn knows(&self, v: NodeId, m: MessageId) -> bool {
        Self::knows(self, v, m)
    }
    fn is_alive(&self, v: NodeId) -> bool {
        Self::is_alive(self, v)
    }
    fn is_present(&self, v: NodeId) -> bool {
        Self::is_present(self, v)
    }
    fn is_participating(&self, v: NodeId) -> bool {
        Self::is_participating(self, v)
    }
    fn alive_count(&self) -> usize {
        Self::alive_count(self)
    }
    fn present_count(&self) -> usize {
        Self::present_count(self)
    }
    fn participating_count(&self) -> usize {
        Self::participating_count(self)
    }
    fn participating_informed_count(&self) -> usize {
        Self::participating_informed_count(self)
    }
    fn is_fully_informed(&self, v: NodeId) -> bool {
        Self::is_fully_informed(self, v)
    }
    fn fully_informed_count(&self) -> usize {
        Self::fully_informed_count(self)
    }
    fn gossip_complete(&self) -> bool {
        Self::gossip_complete(self)
    }
    fn informed_count_of(&self, m: MessageId) -> usize {
        Self::informed_count_of(self, m)
    }
    fn track_message(&mut self, m: MessageId) {
        Self::track_message(self, m)
    }
    fn tracked_informed_count(&self) -> usize {
        Self::tracked_informed_count(self)
    }
    fn inject_rumor(&mut self, source: NodeId, m: MessageId) -> bool {
        Self::inject_rumor(self, source, m)
    }
    fn expire_rumor(&mut self, m: MessageId) {
        Self::expire_rumor(self, m)
    }
    fn schedule_injection(&mut self, round: u64, source: NodeId, m: MessageId) {
        Self::schedule_injection(self, round, source, m)
    }
    fn schedule_expiry(&mut self, round: u64, m: MessageId) {
        Self::schedule_expiry(self, round, m)
    }
    fn rumor_informed_count(&self, m: MessageId) -> usize {
        Self::rumor_informed_count(self, m)
    }
    fn rumor_injected(&self, m: MessageId) -> bool {
        Self::rumor_injected(self, m)
    }
    fn rumor_expired(&self, m: MessageId) -> bool {
        Self::rumor_expired(self, m)
    }
    fn fail_nodes(&mut self, nodes: &[NodeId]) {
        Self::fail_nodes(self, nodes)
    }
    fn kill_nodes(&mut self, nodes: &[NodeId]) {
        Self::kill_nodes(self, nodes)
    }
    fn revive_nodes(&mut self, nodes: &[NodeId]) {
        Self::revive_nodes(self, nodes)
    }
    fn schedule_kill(&mut self, round: u64, nodes: Vec<NodeId>) {
        Self::schedule_kill(self, round, nodes)
    }
    fn schedule_revive(&mut self, round: u64, nodes: Vec<NodeId>) {
        Self::schedule_revive(self, round, nodes)
    }
    fn schedule_crash(&mut self, round: u64, nodes: Vec<NodeId>) {
        Self::schedule_crash(self, round, nodes)
    }
    fn schedule_edge_outage(&mut self, round: u64, slots: Vec<NodeId>) {
        Self::schedule_edge_outage(self, round, slots)
    }
    fn apply_due_events(&mut self) {
        Self::apply_due_events(self)
    }
    fn set_byzantine(&mut self, nodes: &[NodeId]) {
        Self::set_byzantine(self, nodes)
    }
    fn is_byzantine(&self, v: NodeId) -> bool {
        Self::is_byzantine(self, v)
    }
    fn byzantine_count(&self) -> usize {
        Self::byzantine_count(self)
    }
    fn set_loss_probability(&mut self, p: f64) {
        Self::set_loss_probability(self, p)
    }
    fn metrics(&self) -> &Metrics {
        Self::metrics(self)
    }
    fn metrics_mut(&mut self) -> &mut Metrics {
        Self::metrics_mut(self)
    }
    fn rng_mut(&mut self) -> &mut SmallRng {
        Self::rng_mut(self)
    }
}
