//! A packed bitset over node ids — the word-parallel backbone of the hot path.
//!
//! The simulation keeps several per-node boolean facts: *alive* (not crashed),
//! *present* (not churned out), *fully informed*, *knows the tracked rumor*.
//! Storing each as a [`BitSet`] instead of a `Vec<bool>` turns the per-round
//! bookkeeping questions — "is any participating node still uninformed?",
//! "how many nodes know the rumor?" — into a handful of word-wise AND/AND-NOT
//! and `popcount` instructions over `n / 64` words, and lets the graph layer
//! test presence during neighbor sampling with a single shift and mask (see
//! [`rpc_graphs::Graph::random_neighbor_masked`]).
//!
//! Invariant: bits at positions `>= len` are always zero, so word-wise
//! aggregates ([`BitSet::count_ones`], [`BitSet::intersects`], …) never see
//! phantom entries even when `len` is not a multiple of 64.
//!
//! ```
//! use rpc_engine::BitSet;
//!
//! let mut participating = BitSet::new_full(100);
//! participating.clear_bit(17); // node 17 churns out
//! assert_eq!(participating.count_ones(), 99);
//! assert!(!participating.get(17));
//! ```

const WORD_BITS: usize = 64;

/// A fixed-length packed bitset with word-wise bulk operations.
///
/// Bit `i` lives in word `i / 64` at position `i % 64` (LSB-first), the same
/// layout as [`crate::MessageSet`] and the mask layout the graph layer's
/// masked sampling primitives consume via [`BitSet::words`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The all-zeros bitset over `len` bits.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(WORD_BITS)], len }
    }

    /// The all-ones bitset over `len` bits (tail bits beyond `len` stay zero).
    pub fn new_full(len: usize) -> Self {
        let mut set = Self { words: vec![u64::MAX; len.div_ceil(WORD_BITS)], len };
        set.mask_tail();
        set
    }

    /// Zeroes the bits at positions `>= len` in the last word.
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits the set ranges over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set ranges over zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set. Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside bitset of length {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Sets bit `i`; returns `true` if it was clear before. Panics if
    /// `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside bitset of length {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        let word = &mut self.words[i / WORD_BITS];
        let newly = *word & mask == 0;
        *word |= mask;
        newly
    }

    /// Clears bit `i`; returns `true` if it was set before. Panics if
    /// `i >= len`.
    #[inline]
    pub fn clear_bit(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside bitset of length {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        let word = &mut self.words[i / WORD_BITS];
        let was = *word & mask != 0;
        *word &= !mask;
        was
    }

    /// Reinitializes the set to `len` all-ones bits, reusing the allocation —
    /// the in-place counterpart of [`BitSet::new_full`].
    pub fn reset_full(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), u64::MAX);
        self.mask_tail();
    }

    /// Reinitializes the set to `len` all-zeros bits, reusing the allocation —
    /// the in-place counterpart of [`BitSet::new`].
    pub fn reset_empty(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
    }

    /// Sets every bit.
    pub fn set_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = u64::MAX);
        self.mask_tail();
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits (one `popcount` per word).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The packed word representation (LSB-first within each word). This is
    /// the view the graph layer's masked neighbor sampling consumes.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Unions `other` into `self`. Both sets must have the same length.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// `|self ∩ other|` without materializing the intersection.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether `self ∩ other` is non-empty.
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words.iter().zip(other.words.iter()).any(|(&a, &b)| a & b != 0)
    }

    /// `|self \ other|` — the number of bits set in `self` but not in `other`.
    pub fn and_not_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Whether `self \ other` is non-empty — the word-parallel form of "is
    /// there an element of `self` missing from `other`?".
    pub fn any_and_not(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words.iter().zip(other.words.iter()).any(|(&a, &b)| a & !b != 0)
    }

    /// Iterator over the set bit positions in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }
}

/// `|a ∩ b ∩ c|` over three equal-length bitsets in one pass — used for
/// "participating and fully informed" style counts without temporaries.
pub fn count_and3(a: &BitSet, b: &BitSet, c: &BitSet) -> usize {
    debug_assert!(a.len == b.len && b.len == c.len, "bitset length mismatch");
    a.words
        .iter()
        .zip(b.words.iter())
        .zip(c.words.iter())
        .map(|((&x, &y), &z)| (x & y & z).count_ones() as usize)
        .sum()
}

/// Whether `(a ∩ b) \ c` is non-empty, word-parallel. This is the completion
/// check "some alive, present node is not yet fully informed" evaluated in
/// `n / 64` AND/AND-NOT steps.
pub fn any_and2_not(a: &BitSet, b: &BitSet, c: &BitSet) -> bool {
    debug_assert!(a.len == b.len && b.len == c.len, "bitset length mismatch");
    a.words.iter().zip(b.words.iter()).zip(c.words.iter()).any(|((&x, &y), &z)| x & y & !z != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_full_at_non_word_multiples() {
        for len in [0usize, 1, 5, 63, 64, 65, 127, 128, 130] {
            let zero = BitSet::new(len);
            assert_eq!(zero.count_ones(), 0, "len {len}");
            assert!(zero.is_clear());
            let full = BitSet::new_full(len);
            assert_eq!(full.count_ones(), len, "len {len}");
            assert_eq!(full.len(), len);
            if len > 0 {
                assert!(full.get(len - 1));
            }
        }
    }

    #[test]
    fn set_clear_get_roundtrip() {
        let mut s = BitSet::new(100);
        assert!(s.set(64));
        assert!(!s.set(64), "second set reports already-set");
        assert!(s.get(64));
        assert!(!s.get(63));
        assert!(s.clear_bit(64));
        assert!(!s.clear_bit(64), "second clear reports already-clear");
        assert!(s.is_clear());
    }

    #[test]
    #[should_panic(expected = "outside bitset")]
    fn get_out_of_range_panics() {
        BitSet::new(10).get(10);
    }

    #[test]
    fn set_all_respects_tail_invariant() {
        let mut s = BitSet::new(70);
        s.set_all();
        assert_eq!(s.count_ones(), 70);
        // The tail bits of the last word must stay zero so word-wise
        // aggregates cannot see phantom nodes.
        assert_eq!(s.words()[1] >> 6, 0);
        s.clear_all();
        assert!(s.is_clear());
    }

    #[test]
    fn word_wise_combinators() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        for i in [0usize, 64, 129] {
            a.set(i);
        }
        b.set(64);
        b.set(100);
        assert_eq!(a.intersection_count(&b), 1);
        assert!(a.intersects(&b));
        assert_eq!(a.and_not_count(&b), 2);
        assert!(a.any_and_not(&b));
        assert!(!BitSet::new(130).any_and_not(&b));
        a.union_with(&b);
        assert_eq!(a.count_ones(), 4);
    }

    #[test]
    fn three_way_helpers() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        let mut c = BitSet::new(200);
        for i in 0..200 {
            a.set(i);
        }
        for i in (0..200).step_by(2) {
            b.set(i);
        }
        for i in (0..200).step_by(4) {
            c.set(i);
        }
        assert_eq!(count_and3(&a, &b, &c), 50);
        // (a ∩ b) \ c: even positions not divisible by 4.
        assert!(any_and2_not(&a, &b, &c));
        assert!(!any_and2_not(&a, &c, &b), "multiples of 4 are all even");
    }

    #[test]
    fn iter_ones_yields_ascending_positions() {
        let mut s = BitSet::new(300);
        for i in [299usize, 0, 63, 64, 65, 128] {
            s.set(i);
        }
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 128, 299]);
    }

    #[test]
    fn empty_bitset_is_well_behaved() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_clear());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.iter_ones().count(), 0);
    }
}
