//! Node-failure injection.
//!
//! The paper's robustness model (Section 4, Theorem 3 and the experiments in
//! Figures 2, 3 and 5): `f` nodes chosen uniformly at random fail; failures
//! are non-malicious — "a failed node does not communicate at all", and in
//! the simulation "these nodes simply do not store any incoming message and
//! refuse to transmit messages to other nodes". For the empirical robustness
//! study the nodes are deactivated between Phase I and Phase II of
//! Algorithm 2.

use rand::Rng;
use rpc_graphs::NodeId;

/// Draws `count` distinct nodes uniformly at random from `0..n`.
///
/// Panics if `count > n`. Uses a partial Fisher–Yates shuffle, `O(n)` memory
/// and `O(count)` swaps, so sampling even hundreds of thousands of failures
/// out of a million nodes is cheap.
pub fn sample_failures<R: Rng + ?Sized>(n: usize, count: usize, rng: &mut R) -> Vec<NodeId> {
    assert!(count <= n, "cannot fail more nodes than exist");
    let ids: Vec<NodeId> = (0..n as NodeId).collect();
    sample_from_pool(ids, count, rng)
}

/// Draws `count` distinct nodes uniformly at random from an arbitrary
/// candidate pool (consumed and partially shuffled). Panics if
/// `count > pool.len()`. Used by churn schedulers that must exclude
/// already-departed nodes from the next wave.
pub fn sample_from_pool<R: Rng + ?Sized>(
    mut pool: Vec<NodeId>,
    count: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    assert!(count <= pool.len(), "cannot sample more nodes than the pool holds");
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// When, relative to an algorithm's phases, the failures are injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FailureTime {
    /// No failures at all.
    #[default]
    Never,
    /// Before the algorithm starts.
    BeforeStart,
    /// Between Phase I (tree construction) and Phase II (gathering) — the
    /// point used by the paper's robustness experiments, chosen because it is
    /// the worst case analysed in Theorem 3.
    BetweenPhases,
}

/// A complete failure scenario: how many nodes fail and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FailurePlan {
    /// Number of uniformly random failing nodes.
    pub count: usize,
    /// Injection time.
    pub time: FailureTime,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// `count` random failures injected between Phase I and Phase II.
    pub fn between_phases(count: usize) -> Self {
        Self { count, time: FailureTime::BetweenPhases }
    }

    /// `count` random failures present from the start.
    pub fn before_start(count: usize) -> Self {
        Self { count, time: FailureTime::BeforeStart }
    }

    /// Whether this plan injects any failure.
    pub fn is_active(&self) -> bool {
        self.count > 0 && self.time != FailureTime::Never
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn samples_are_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let sample = sample_failures(1000, 250, &mut rng);
        assert_eq!(sample.len(), 250);
        let set: HashSet<_> = sample.iter().copied().collect();
        assert_eq!(set.len(), 250, "samples must be distinct");
        assert!(sample.iter().all(|&v| (v as usize) < 1000));
    }

    #[test]
    fn sampling_everything_returns_all_nodes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sample = sample_failures(32, 32, &mut rng);
        sample.sort_unstable();
        assert_eq!(sample, (0..32u32).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_zero_is_empty() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(sample_failures(10, 0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot fail more nodes")]
    fn oversampling_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = sample_failures(5, 6, &mut rng);
    }

    #[test]
    fn pool_sampling_respects_the_pool() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pool: Vec<u32> = vec![3, 7, 11, 19, 23];
        for _ in 0..50 {
            let sample = sample_from_pool(pool.clone(), 3, &mut rng);
            assert_eq!(sample.len(), 3);
            let set: HashSet<_> = sample.iter().copied().collect();
            assert_eq!(set.len(), 3, "samples must be distinct");
            assert!(sample.iter().all(|v| pool.contains(v)));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample more nodes")]
    fn pool_oversampling_panics() {
        let mut rng = SmallRng::seed_from_u64(6);
        let _ = sample_from_pool(vec![1, 2], 3, &mut rng);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Each node should be picked with probability 1/2 when half the nodes
        // fail; check no node is wildly over/under represented across trials.
        let n = 100;
        let mut counts = vec![0u32; n];
        for seed in 0..400u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            for v in sample_failures(n, n / 2, &mut rng) {
                counts[v as usize] += 1;
            }
        }
        for &c in &counts {
            assert!((120..=280).contains(&c), "count {c} outside plausible range");
        }
    }

    #[test]
    fn failure_plan_flags() {
        assert!(!FailurePlan::none().is_active());
        assert!(FailurePlan::between_phases(10).is_active());
        assert!(!FailurePlan { count: 0, time: FailureTime::BeforeStart }.is_active());
        assert!(FailurePlan::before_start(1).is_active());
    }
}
