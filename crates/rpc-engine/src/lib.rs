//! # rpc-engine
//!
//! Simulation engine for the **random phone call model** (Demers et al. 1987,
//! Karp et al. 2000) as used in *"On the Influence of Graph Density on
//! Randomized Gossiping"* (Elsässer & Kaaser, 2015).
//!
//! The engine provides the substrate that all gossiping and broadcasting
//! algorithms of the paper run on:
//!
//! * [`message`] — combined messages as dense bitsets over the message
//!   universe (the `n` original messages in the classic configuration, an
//!   arbitrary rumor space in streaming mode), with cheap unions;
//! * [`bitset`] — the packed per-node [`BitSet`] behind the word-parallel
//!   hot path (liveness masks, completion checks, coverage popcounts);
//! * [`sim`] — the synchronous simulation state: per-node knowledge, channel
//!   opening (uniform and `open-avoid`), packet delivery with faithful
//!   "messages arrive next step" timing, and node failures;
//! * [`api`] — the [`Engine`] trait: the primitive surface algorithms drive,
//!   implemented by [`Simulation`] and the unpacked oracle;
//! * [`mod@reference`] — [`reference::UnpackedSimulation`], the pre-optimization
//!   `Vec<bool>`-and-scans engine with the same RNG draw sequence, kept as
//!   correctness oracle and benchmark baseline;
//! * [`metrics`] — communication accounting in the two conventions used by
//!   the paper (per packet and per channel exchange);
//! * [`walks`] — random-walk tokens and per-node queues (Algorithm 1,
//!   Phase II);
//! * [`memory`] — the constant-size contact lists of the memory model
//!   (Section 4);
//! * [`failures`] — uniform node-failure sampling and injection plans
//!   (Theorem 3 / Figures 2, 3, 5);
//! * [`parallel`] — crossbeam-based parallel computation of sparse per-step
//!   message deltas (bit-identical to the sequential path);
//! * [`seeding`] — SplitMix64 seed derivation shared by every replication
//!   harness, so Monte Carlo results are identical for any thread count.
//!
//! Beyond the paper's static model, the simulation supports *dynamic*
//! scenarios used by the `rpc-scenarios` crate: per-packet message loss
//! ([`Simulation::with_loss_probability`]) and scheduled churn / crash events
//! ([`Simulation::schedule_kill`], [`Simulation::schedule_revive`],
//! [`Simulation::schedule_crash`]) that fire at round boundaries without any
//! cooperation from the algorithm being simulated. In *streaming* mode
//! ([`Simulation::new_streaming`]) the rumor space is decoupled from the node
//! count entirely: rumors are injected mid-run ([`Simulation::inject_rumor`],
//! [`Simulation::schedule_injection`]) and may expire globally
//! ([`Simulation::schedule_expiry`]), with per-rumor informed counts
//! maintained incrementally by the same word-parallel delivery kernels.
//!
//! ```
//! use rpc_engine::prelude::*;
//! use rpc_graphs::prelude::*;
//!
//! let graph = CompleteGraph::new(8).generate(0);
//! let mut sim = Simulation::new(&graph, 42);
//! // One push from node 0 to a random neighbour.
//! if let Some(u) = sim.open_channel(0) {
//!     sim.deliver(&[Transfer::new(0, u)]);
//!     assert!(sim.knows(u, 0));
//! }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod bitset;
pub mod failures;
pub mod memory;
pub mod message;
pub mod metrics;
pub mod parallel;
pub mod reference;
pub mod seeding;
pub mod sim;
pub mod walks;

pub use api::Engine;
pub use bitset::BitSet;
pub use failures::{sample_failures, sample_from_pool, FailurePlan, FailureTime};
pub use memory::{Contact, ContactLists, ContactMemory, MEMORY_SLOTS};
pub use message::{MessageId, MessageSet};
pub use metrics::{Accounting, Metrics, PhaseSnapshot};
pub use reference::UnpackedSimulation;
// Observability counter types, re-exported so engine users need not name
// `rpc-obs` for plain diagnostics reads (`Metrics::core_rounds` etc.).
pub use rpc_obs::{CoreRounds, DeliveryCore, DispatchRecord, PoolStats, ReuseStats};
pub use seeding::{derive_seed, hash_key, splitmix64};
pub use sim::{DeliverySemantics, Simulation, SimulationArena, Transfer};
pub use walks::{Walk, WalkQueues};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::api::Engine;
    pub use crate::bitset::BitSet;
    pub use crate::failures::{sample_failures, sample_from_pool, FailurePlan, FailureTime};
    pub use crate::memory::{Contact, ContactLists, ContactMemory};
    pub use crate::message::{MessageId, MessageSet};
    pub use crate::metrics::{Accounting, Metrics};
    pub use crate::reference::UnpackedSimulation;
    pub use crate::seeding::{derive_seed, hash_key, splitmix64};
    pub use crate::sim::{DeliverySemantics, Simulation, SimulationArena, Transfer};
    pub use crate::walks::{Walk, WalkQueues};
}
