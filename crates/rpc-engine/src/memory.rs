//! Constant-size per-node contact memory (the memory model of Section 4).
//!
//! "The nodes can store up to four different links they called on in the past,
//! and they are also able to avoid these links as well as to reuse them in a
//! certain time step." Each node `v` owns a list `l_v` of length four; entry
//! `l_v[i]` stores the address of a previously contacted neighbour, and —
//! because Algorithm 2 replays the contact *paths* backwards in time — the
//! step in which the contact happened.

use rpc_graphs::NodeId;

/// Number of memory slots per node, fixed to four by the paper's model.
pub const MEMORY_SLOTS: usize = 4;

/// A remembered contact: which neighbour was called, and in which step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contact {
    /// The neighbour that was contacted.
    pub node: NodeId,
    /// The global step in which the contact was made.
    pub step: u64,
}

/// The list `l_v` of one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContactMemory {
    slots: [Option<Contact>; MEMORY_SLOTS],
}

impl ContactMemory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a contact in `slot` (`slot < 4`), overwriting any previous entry.
    pub fn store(&mut self, slot: usize, node: NodeId, step: u64) {
        self.slots[slot] = Some(Contact { node, step });
    }

    /// The contact stored in `slot`, if any.
    pub fn get(&self, slot: usize) -> Option<Contact> {
        self.slots[slot]
    }

    /// All currently remembered neighbour addresses (the `open-avoid` list).
    pub fn addresses(&self) -> Vec<NodeId> {
        self.slots.iter().flatten().map(|c| c.node).collect()
    }

    /// The neighbour contacted in `step`, if remembered.
    pub fn find_by_step(&self, step: u64) -> Option<NodeId> {
        self.slots.iter().flatten().find(|c| c.step == step).map(|c| c.node)
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Whether no contact is remembered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.slots = [None; MEMORY_SLOTS];
    }
}

/// Contact memories for all nodes of a network (one tree / one run of
/// Algorithm 2 phase I keeps one such table; the robustness experiments keep
/// several independent tables).
#[derive(Clone, Debug)]
pub struct ContactLists {
    lists: Vec<ContactMemory>,
}

impl ContactLists {
    /// Empty memories for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { lists: vec![ContactMemory::new(); n] }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.lists.len()
    }

    /// Immutable access to node `v`'s memory.
    pub fn get(&self, v: NodeId) -> &ContactMemory {
        &self.lists[v as usize]
    }

    /// Mutable access to node `v`'s memory.
    pub fn get_mut(&mut self, v: NodeId) -> &mut ContactMemory {
        &mut self.lists[v as usize]
    }

    /// Nodes that remember a contact made in `step` — exactly the nodes that
    /// open a channel in the corresponding gather step of Algorithm 2 Phase II.
    pub fn nodes_with_step(&self, step: u64) -> Vec<(NodeId, NodeId)> {
        self.lists
            .iter()
            .enumerate()
            .filter_map(|(v, m)| m.find_by_step(step).map(|u| (v as NodeId, u)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_retrieve() {
        let mut m = ContactMemory::new();
        assert!(m.is_empty());
        m.store(0, 7, 12);
        m.store(3, 9, 15);
        assert_eq!(m.get(0), Some(Contact { node: 7, step: 12 }));
        assert_eq!(m.get(1), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.addresses(), vec![7, 9]);
    }

    #[test]
    fn overwriting_a_slot_replaces_it() {
        let mut m = ContactMemory::new();
        m.store(2, 1, 5);
        m.store(2, 3, 8);
        assert_eq!(m.get(2), Some(Contact { node: 3, step: 8 }));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn find_by_step_matches_exact_step_only() {
        let mut m = ContactMemory::new();
        m.store(0, 4, 10);
        m.store(1, 5, 11);
        assert_eq!(m.find_by_step(10), Some(4));
        assert_eq!(m.find_by_step(11), Some(5));
        assert_eq!(m.find_by_step(12), None);
        m.clear();
        assert_eq!(m.find_by_step(10), None);
    }

    #[test]
    fn contact_lists_group_nodes_by_step() {
        let mut lists = ContactLists::new(5);
        lists.get_mut(1).store(0, 2, 42);
        lists.get_mut(3).store(1, 4, 42);
        lists.get_mut(4).store(0, 0, 43);
        let mut at_42 = lists.nodes_with_step(42);
        at_42.sort_unstable();
        assert_eq!(at_42, vec![(1, 2), (3, 4)]);
        assert_eq!(lists.nodes_with_step(41), vec![]);
        assert_eq!(lists.num_nodes(), 5);
    }

    #[test]
    #[should_panic]
    fn slot_index_out_of_range_panics() {
        ContactMemory::new().store(MEMORY_SLOTS, 0, 0);
    }
}
