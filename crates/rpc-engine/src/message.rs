//! Message sets.
//!
//! In the gossiping problem every node `v` starts with its own original
//! message `m_v` and combines every message it receives into one packet
//! (`m_v(t) = ⋃ m_v^{(in)}(i)`, Section 2). A node's knowledge is therefore a
//! subset of the `n` original messages, which we represent as a dense bitset:
//! union (the `⋃` above) is a word-wise OR, and the number of *newly learned*
//! messages — needed to maintain completion counters cheaply — falls out of
//! the same pass.

/// Identifier of an original message; message `i` is the message node `i`
/// started with.
pub type MessageId = u32;

const WORD_BITS: usize = 64;

/// A set of original messages, stored as a dense bitset over `0..universe`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageSet {
    words: Vec<u64>,
    universe: usize,
}

impl MessageSet {
    /// The empty set over a universe of `universe` messages.
    pub fn empty(universe: usize) -> Self {
        Self { words: vec![0; universe.div_ceil(WORD_BITS)], universe }
    }

    /// The singleton `{id}`. Panics if `id >= universe`.
    pub fn singleton(universe: usize, id: MessageId) -> Self {
        let mut set = Self::empty(universe);
        set.insert(id);
        set
    }

    /// The full set `{0, …, universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut words = vec![u64::MAX; universe.div_ceil(WORD_BITS)];
        if let Some(last) = words.last_mut() {
            let rem = universe % WORD_BITS;
            if rem != 0 {
                *last = (1u64 << rem) - 1;
            }
            if universe == 0 {
                *last = 0;
            }
        }
        Self { words, universe }
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts `id`; returns `true` if it was not present before.
    /// Panics if `id >= universe`.
    pub fn insert(&mut self, id: MessageId) -> bool {
        let id = id as usize;
        assert!(id < self.universe, "message id {id} outside universe {}", self.universe);
        let (w, b) = (id / WORD_BITS, id % WORD_BITS);
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        newly
    }

    /// Whether `id` is contained in the set.
    pub fn contains(&self, id: MessageId) -> bool {
        let id = id as usize;
        if id >= self.universe {
            return false;
        }
        self.words[id / WORD_BITS] & (1u64 << (id % WORD_BITS)) != 0
    }

    /// Number of messages in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the set contains the whole universe.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Unions `other` into `self`; returns how many messages were newly added.
    ///
    /// Both sets must range over the same universe.
    pub fn union_from(&mut self, other: &MessageSet) -> usize {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut added = 0usize;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            added += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        added
    }

    /// Overwrites `self` with a copy of `other` (reusing the allocation).
    pub fn copy_from(&mut self, other: &MessageSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Removes every element, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements of `self` that are *not* in `other`
    /// (`|self \ other|`). Used to count messages lost to failures.
    pub fn difference_len(&self, other: &MessageSet) -> usize {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Iterator over the contained message ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some((wi * WORD_BITS) as MessageId + b)
                }
            })
        })
    }

    /// Approximate heap size in bytes (used by the experiment harness to warn
    /// before launching runs that would not fit in memory).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = MessageSet::empty(130);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.is_full());
        let f = MessageSet::full(130);
        assert!(f.is_full());
        assert_eq!(f.len(), 130);
        assert!(f.contains(0));
        assert!(f.contains(129));
        assert!(!f.contains(130));
    }

    #[test]
    fn full_handles_word_boundary_universes() {
        for n in [0usize, 1, 63, 64, 65, 128] {
            let f = MessageSet::full(n);
            assert_eq!(f.len(), n, "universe {n}");
            assert!(n == 0 || f.is_full());
        }
    }

    #[test]
    fn insert_and_contains() {
        let mut s = MessageSet::empty(100);
        assert!(s.insert(7));
        assert!(!s.insert(7), "second insert reports already-present");
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        MessageSet::empty(10).insert(10);
    }

    #[test]
    fn singleton_contains_exactly_one() {
        let s = MessageSet::singleton(1000, 512);
        assert_eq!(s.len(), 1);
        assert!(s.contains(512));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![512]);
    }

    #[test]
    fn union_counts_new_messages() {
        let mut a = MessageSet::singleton(200, 3);
        let mut b = MessageSet::singleton(200, 3);
        b.insert(100);
        b.insert(150);
        assert_eq!(a.union_from(&b), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.union_from(&b), 0, "second union adds nothing");
    }

    #[test]
    fn union_until_full() {
        let n = 70;
        let mut acc = MessageSet::empty(n);
        for i in 0..n {
            let added = acc.union_from(&MessageSet::singleton(n, i as MessageId));
            assert_eq!(added, 1);
        }
        assert!(acc.is_full());
    }

    #[test]
    fn copy_from_and_clear() {
        let mut a = MessageSet::empty(64);
        let b = MessageSet::full(64);
        a.copy_from(&b);
        assert!(a.is_full());
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn difference_len_counts_missing() {
        let mut a = MessageSet::empty(100);
        a.insert(1);
        a.insert(2);
        a.insert(3);
        let mut b = MessageSet::empty(100);
        b.insert(2);
        assert_eq!(a.difference_len(&b), 2);
        assert_eq!(b.difference_len(&a), 0);
    }

    #[test]
    fn iter_yields_sorted_ids() {
        let mut s = MessageSet::empty(300);
        for id in [299u32, 0, 64, 63, 65, 128] {
            s.insert(id);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 128, 299]);
    }

    #[test]
    fn heap_bytes_scales_with_universe() {
        assert!(MessageSet::empty(1 << 16).heap_bytes() >= (1 << 16) / 8);
    }
}
