//! Message sets.
//!
//! In the gossiping problem every node `v` starts with its own original
//! message `m_v` and combines every message it receives into one packet
//! (`m_v(t) = ⋃ m_v^{(in)}(i)`, Section 2). A node's knowledge is therefore a
//! subset of the `n` original messages, which we represent as a dense bitset:
//! union (the `⋃` above) is a word-wise OR, and the number of *newly learned*
//! messages — needed to maintain completion counters cheaply — falls out of
//! the same pass.
//!
//! Each set additionally maintains a one-bit-per-word *summary* (bit `w` set
//! ⇒ word `w` may be nonzero — conservative, never the other way round). The
//! summary costs 1/64 of the payload and lets the delta kernel in
//! [`crate::parallel`] visit only the words a sender can actually contribute
//! to, which is what makes the early rounds of a gossip run (nearly-empty
//! states) almost free.

/// Identifier of an original message; message `i` is the message node `i`
/// started with.
pub type MessageId = u32;

const WORD_BITS: usize = 64;

/// A set of original messages, stored as a dense bitset over `0..universe`
/// plus a conservative nonzero-word summary.
#[derive(Clone, Debug)]
pub struct MessageSet {
    words: Vec<u64>,
    universe: usize,
    /// Bit `w` set ⇒ `words[w]` may be nonzero. Maintained conservatively:
    /// a set summary bit over a zero word is allowed (costs one wasted visit),
    /// a clear summary bit over a nonzero word is not.
    summary: Vec<u64>,
}

impl PartialEq for MessageSet {
    /// Equality is *semantic*: two sets are equal iff they contain the same
    /// messages. The conservative summary is a visit hint, not content, and
    /// is deliberately excluded.
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe && self.words == other.words
    }
}

impl Eq for MessageSet {}

impl MessageSet {
    /// The empty set over a universe of `universe` messages.
    pub fn empty(universe: usize) -> Self {
        let num_words = universe.div_ceil(WORD_BITS);
        Self {
            words: vec![0; num_words],
            universe,
            summary: vec![0; num_words.div_ceil(WORD_BITS)],
        }
    }

    /// The singleton `{id}`. Panics if `id >= universe`.
    pub fn singleton(universe: usize, id: MessageId) -> Self {
        let mut set = Self::empty(universe);
        set.insert(id);
        set
    }

    /// The full set `{0, …, universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut words = vec![u64::MAX; universe.div_ceil(WORD_BITS)];
        if let Some(last) = words.last_mut() {
            let rem = universe % WORD_BITS;
            if rem != 0 {
                *last = (1u64 << rem) - 1;
            }
            if universe == 0 {
                *last = 0;
            }
        }
        let num_words = words.len();
        let mut summary = vec![u64::MAX; num_words.div_ceil(WORD_BITS)];
        if let Some(last) = summary.last_mut() {
            let rem = num_words % WORD_BITS;
            if rem != 0 {
                *last = (1u64 << rem) - 1;
            }
            if num_words == 0 {
                *last = 0;
            }
        }
        Self { words, universe, summary }
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts `id`; returns `true` if it was not present before.
    /// Panics if `id >= universe`.
    pub fn insert(&mut self, id: MessageId) -> bool {
        let id = id as usize;
        assert!(id < self.universe, "message id {id} outside universe {}", self.universe);
        let (w, b) = (id / WORD_BITS, id % WORD_BITS);
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.summary[w / WORD_BITS] |= 1u64 << (w % WORD_BITS);
        newly
    }

    /// Removes `id`; returns `true` if it was present. The conservative
    /// summary bit is deliberately left set (a stale hint costs one wasted
    /// visit, clearing it would require re-checking the whole word's
    /// neighborhood). Panics if `id >= universe`.
    pub fn remove(&mut self, id: MessageId) -> bool {
        let id = id as usize;
        assert!(id < self.universe, "message id {id} outside universe {}", self.universe);
        let (w, b) = (id / WORD_BITS, id % WORD_BITS);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Whether `id` is contained in the set.
    pub fn contains(&self, id: MessageId) -> bool {
        let id = id as usize;
        if id >= self.universe {
            return false;
        }
        self.words[id / WORD_BITS] & (1u64 << (id % WORD_BITS)) != 0
    }

    /// Number of messages in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the set contains the whole universe.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Unions `other` into `self`; returns how many messages were newly added.
    ///
    /// Both sets must range over the same universe.
    pub fn union_from(&mut self, other: &MessageSet) -> usize {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut added = 0usize;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            added += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        for (s, &o) in self.summary.iter_mut().zip(other.summary.iter()) {
            *s |= o;
        }
        added
    }

    /// Overwrites `self` with a copy of `other` (reusing the allocation).
    pub fn copy_from(&mut self, other: &MessageSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.copy_from_slice(&other.words);
        self.summary.copy_from_slice(&other.summary);
    }

    /// Reinitializes the set to the singleton `{id}` over `universe`,
    /// reusing the allocations — the in-place counterpart of
    /// [`MessageSet::singleton`], used by the simulation reset path so a
    /// reused state table never reallocates when the universe is unchanged.
    pub(crate) fn reset_singleton(&mut self, universe: usize, id: MessageId) {
        let num_words = universe.div_ceil(WORD_BITS);
        self.universe = universe;
        self.words.clear();
        self.words.resize(num_words, 0);
        self.summary.clear();
        self.summary.resize(num_words.div_ceil(WORD_BITS), 0);
        self.insert(id);
    }

    /// Reinitializes the set to the empty set over `universe`, reusing the
    /// allocations — the in-place counterpart of [`MessageSet::empty`], used
    /// by the streaming reset path (every node starts knowing nothing).
    pub(crate) fn reset_empty(&mut self, universe: usize) {
        let num_words = universe.div_ceil(WORD_BITS);
        self.universe = universe;
        self.words.clear();
        self.words.resize(num_words, 0);
        self.summary.clear();
        self.summary.resize(num_words.div_ceil(WORD_BITS), 0);
    }

    /// Removes every element, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.summary.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements of `self` that are *not* in `other`
    /// (`|self \ other|`). Used to count messages lost to failures.
    pub fn difference_len(&self, other: &MessageSet) -> usize {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Iterator over the contained message ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some((wi * WORD_BITS) as MessageId + b)
                }
            })
        })
    }

    /// Approximate heap size in bytes (used by the experiment harness to warn
    /// before launching runs that would not fit in memory).
    pub fn heap_bytes(&self) -> usize {
        (self.words.capacity() + self.summary.capacity()) * std::mem::size_of::<u64>()
    }

    /// The packed word representation (LSB-first within each word), the same
    /// layout as [`crate::BitSet`]. Word `i` holds messages `64 i .. 64 i + 63`;
    /// bits at positions `>= universe` are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The conservative nonzero-word summary: bit `w` (LSB-first) covers
    /// `words()[w]`; a clear bit guarantees that word is zero.
    pub fn summary(&self) -> &[u64] {
        &self.summary
    }

    /// ORs `bits` into word `word_idx` and updates the summary. Test-only:
    /// the one way to plant a conservative (stale) summary bit over a zero
    /// word, which the semantic-equality test needs. The caller must
    /// guarantee `bits` only covers positions `< universe` (checked in debug
    /// builds).
    #[cfg(test)]
    pub(crate) fn or_word(&mut self, word_idx: usize, bits: u64) {
        debug_assert!(
            word_idx < self.words.len(),
            "word {word_idx} outside universe {}",
            self.universe
        );
        debug_assert!(
            word_idx + 1 < self.words.len()
                || self.universe % WORD_BITS == 0
                || bits >> (self.universe % WORD_BITS) == 0,
            "bits beyond the universe boundary"
        );
        self.words[word_idx] |= bits;
        self.summary[word_idx / WORD_BITS] |= 1u64 << (word_idx % WORD_BITS);
    }

    /// ORs `bits` into word `word_idx` and returns how many of them were new,
    /// updating the summary — the sparse in-place commit kernel.
    pub(crate) fn or_word_counting(&mut self, word_idx: usize, bits: u64) -> usize {
        let word = &mut self.words[word_idx];
        let new = bits & !*word;
        if new == 0 {
            return 0;
        }
        *word |= new;
        self.summary[word_idx / WORD_BITS] |= 1u64 << (word_idx % WORD_BITS);
        new.count_ones() as usize
    }

    /// Overwrites `self` with `base ∪ s₁ ∪ … ∪ s_k` and returns
    /// `|result \ base|` — the fused one-pass kernel of the delivery hot
    /// path. The loops are branch-free over whole words so they vectorize;
    /// every word of `self` is written (stale buffer content is fine).
    pub(crate) fn assign_union_counting(
        &mut self,
        base: &MessageSet,
        senders: &[&MessageSet],
    ) -> usize {
        debug_assert!(senders.iter().all(|s| s.universe == base.universe), "universe mismatch");
        debug_assert_eq!(self.universe, base.universe, "universe mismatch");
        let out = &mut self.words[..];
        let mut added = 0usize;
        match senders {
            [] => {
                out.copy_from_slice(&base.words);
            }
            [a] => {
                for ((o, &c), &s) in out.iter_mut().zip(base.words.iter()).zip(a.words.iter()) {
                    added += (s & !c).count_ones() as usize;
                    *o = c | s;
                }
            }
            [a, b] => {
                for (((o, &c), &s1), &s2) in
                    out.iter_mut().zip(base.words.iter()).zip(a.words.iter()).zip(b.words.iter())
                {
                    let or = s1 | s2;
                    added += (or & !c).count_ones() as usize;
                    *o = c | or;
                }
            }
            _ => {
                for (wi, (o, &c)) in out.iter_mut().zip(base.words.iter()).enumerate() {
                    let mut or = 0u64;
                    for s in senders {
                        or |= s.words[wi];
                    }
                    added += (or & !c).count_ones() as usize;
                    *o = c | or;
                }
            }
        }
        // The summary is the OR of the inputs' summaries (conservative).
        self.summary.copy_from_slice(&base.summary);
        for s in senders {
            for (acc, &w) in self.summary.iter_mut().zip(s.summary.iter()) {
                *acc |= w;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The summary invariant: every nonzero word has its summary bit set.
    fn summary_is_conservative(s: &MessageSet) -> bool {
        s.words()
            .iter()
            .enumerate()
            .all(|(w, &bits)| bits == 0 || s.summary()[w / 64] & (1u64 << (w % 64)) != 0)
    }

    #[test]
    fn empty_and_full() {
        let e = MessageSet::empty(130);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.is_full());
        let f = MessageSet::full(130);
        assert!(f.is_full());
        assert_eq!(f.len(), 130);
        assert!(f.contains(0));
        assert!(f.contains(129));
        assert!(!f.contains(130));
        assert!(summary_is_conservative(&e) && summary_is_conservative(&f));
    }

    #[test]
    fn full_handles_word_boundary_universes() {
        for n in [0usize, 1, 63, 64, 65, 128] {
            let f = MessageSet::full(n);
            assert_eq!(f.len(), n, "universe {n}");
            assert!(n == 0 || f.is_full());
            assert!(summary_is_conservative(&f), "universe {n}");
        }
    }

    #[test]
    fn insert_and_contains() {
        let mut s = MessageSet::empty(100);
        assert!(s.insert(7));
        assert!(!s.insert(7), "second insert reports already-present");
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert_eq!(s.len(), 1);
        assert!(summary_is_conservative(&s));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        MessageSet::empty(10).insert(10);
    }

    #[test]
    fn remove_clears_the_bit_and_keeps_the_summary_conservative() {
        let mut s = MessageSet::empty(100);
        s.insert(7);
        s.insert(70);
        assert!(s.remove(7));
        assert!(!s.remove(7), "second remove reports already-absent");
        assert!(!s.contains(7));
        assert!(s.contains(70));
        assert_eq!(s.len(), 1);
        assert!(summary_is_conservative(&s));
        // Semantic equality ignores the stale summary bit left behind.
        assert_eq!(s, MessageSet::singleton(100, 70));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn remove_out_of_range_panics() {
        MessageSet::empty(10).remove(10);
    }

    #[test]
    fn singleton_contains_exactly_one() {
        let s = MessageSet::singleton(1000, 512);
        assert_eq!(s.len(), 1);
        assert!(s.contains(512));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![512]);
        // Exactly one summary bit: word 512 / 64 = 8.
        assert_eq!(s.summary()[0], 1u64 << 8);
    }

    #[test]
    fn union_counts_new_messages() {
        let mut a = MessageSet::singleton(200, 3);
        let mut b = MessageSet::singleton(200, 3);
        b.insert(100);
        b.insert(150);
        assert_eq!(a.union_from(&b), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.union_from(&b), 0, "second union adds nothing");
        assert!(summary_is_conservative(&a));
    }

    #[test]
    fn union_until_full() {
        let n = 70;
        let mut acc = MessageSet::empty(n);
        for i in 0..n {
            let added = acc.union_from(&MessageSet::singleton(n, i as MessageId));
            assert_eq!(added, 1);
        }
        assert!(acc.is_full());
        assert!(summary_is_conservative(&acc));
    }

    #[test]
    fn copy_from_and_clear() {
        let mut a = MessageSet::empty(64);
        let b = MessageSet::full(64);
        a.copy_from(&b);
        assert!(a.is_full());
        assert!(summary_is_conservative(&a));
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.summary()[0], 0, "clear resets the summary");
    }

    #[test]
    fn difference_len_counts_missing() {
        let mut a = MessageSet::empty(100);
        a.insert(1);
        a.insert(2);
        a.insert(3);
        let mut b = MessageSet::empty(100);
        b.insert(2);
        assert_eq!(a.difference_len(&b), 2);
        assert_eq!(b.difference_len(&a), 0);
    }

    #[test]
    fn iter_yields_sorted_ids() {
        let mut s = MessageSet::empty(300);
        for id in [299u32, 0, 64, 63, 65, 128] {
            s.insert(id);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 128, 299]);
    }

    #[test]
    fn equality_ignores_the_summary_hint() {
        let mut a = MessageSet::empty(200);
        a.insert(70);
        let mut b = MessageSet::empty(200);
        b.insert(70);
        // A stale (conservative) summary bit over a zero word must not break
        // semantic equality.
        b.or_word(0, 0);
        assert_ne!(a.summary(), b.summary());
        assert_eq!(a, b);
        let mut c = MessageSet::empty(200);
        c.insert(0);
        assert_ne!(a, c);
    }

    #[test]
    fn heap_bytes_scales_with_universe() {
        assert!(MessageSet::empty(1 << 16).heap_bytes() >= (1 << 16) / 8);
    }

    #[test]
    fn summary_covers_words_past_the_first_summary_word() {
        // A universe large enough that the summary itself spans two words:
        // > 64 * 64 = 4096 messages.
        let mut s = MessageSet::empty(5000);
        s.insert(4999);
        assert!(summary_is_conservative(&s));
        let w = 4999 / 64; // word 78 -> summary word 1
        assert_eq!(s.summary()[1] & (1u64 << (w - 64)), 1u64 << (w - 64));
    }
}
