//! Communication accounting.
//!
//! The paper follows the counting convention of Berenbrink et al. (ICALP'10):
//! a packet sent through an open channel counts once, no matter how many
//! original messages it combines, and opening a channel is itself a countable
//! event. Section 5 plots the *average number of messages sent per node* and
//! notes that for the simple Push-Pull algorithm this equals the number of
//! rounds — i.e. a bidirectional exchange over one channel is charged once to
//! the node that opened the channel. Both conventions are provided here.

/// How "messages sent per node" is computed from the raw packet counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Accounting {
    /// Every push packet and every pull packet counts 1 for its sender.
    PerPacket,
    /// A (possibly bidirectional) exchange over a single open channel counts 1,
    /// charged to the node that opened the channel. This reproduces the
    /// paper's "messages per node = rounds" identity for Push-Pull and is the
    /// default for Figure 1.
    #[default]
    PerChannelExchange,
}

/// Snapshot of the aggregate counters at a phase boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSnapshot {
    /// Phase label supplied by the algorithm (e.g. `"phase1-distribution"`).
    pub label: String,
    /// Round count at the end of the phase.
    pub rounds: u64,
    /// Total packets sent by the end of the phase.
    pub packets: u64,
    /// Total channel exchanges by the end of the phase.
    pub exchanges: u64,
    /// Total channels opened by the end of the phase.
    pub channels_opened: u64,
}

use rpc_obs::{CoreRounds, DispatchRecord};

/// Per-run communication metrics.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    rounds: u64,
    channels_opened: u64,
    total_packets: u64,
    total_exchanges: u64,
    packets_per_node: Vec<u64>,
    exchanges_per_node: Vec<u64>,
    phases: Vec<PhaseSnapshot>,
    core_rounds: CoreRounds,
    last_dispatch: Option<DispatchRecord>,
}

impl Metrics {
    /// Creates metrics for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { packets_per_node: vec![0; n], exchanges_per_node: vec![0; n], ..Self::default() }
    }

    /// Number of nodes this metric tracks.
    pub fn num_nodes(&self) -> usize {
        self.packets_per_node.len()
    }

    /// Resets every counter for a fresh run over `n` nodes, reusing the
    /// per-node allocations — equivalent to `*self = Metrics::new(n)`.
    pub fn reset(&mut self, n: usize) {
        self.rounds = 0;
        self.channels_opened = 0;
        self.total_packets = 0;
        self.total_exchanges = 0;
        self.packets_per_node.clear();
        self.packets_per_node.resize(n, 0);
        self.exchanges_per_node.clear();
        self.exchanges_per_node.resize(n, 0);
        self.phases.clear();
        self.core_rounds = CoreRounds::default();
        self.last_dispatch = None;
    }

    /// Marks the end of one synchronous step/round.
    pub fn finish_round(&mut self) {
        self.rounds += 1;
    }

    /// Adds `k` rounds at once (used when a phase's length is known upfront).
    pub fn add_rounds(&mut self, k: u64) {
        self.rounds += k;
    }

    /// Records that `v` opened a communication channel.
    pub fn record_channel_open(&mut self, v: u32) {
        debug_assert!((v as usize) < self.packets_per_node.len());
        self.channels_opened += 1;
        let _ = v;
    }

    /// Records a packet (push or pull) sent by `sender`.
    pub fn record_packet(&mut self, sender: u32) {
        self.total_packets += 1;
        self.packets_per_node[sender as usize] += 1;
    }

    /// Records one channel exchange charged to the channel `opener`.
    pub fn record_exchange(&mut self, opener: u32) {
        self.total_exchanges += 1;
        self.exchanges_per_node[opener as usize] += 1;
    }

    /// Stores a snapshot of the cumulative counters under `label`.
    pub fn mark_phase(&mut self, label: impl Into<String>) {
        self.phases.push(PhaseSnapshot {
            label: label.into(),
            rounds: self.rounds,
            packets: self.total_packets,
            exchanges: self.total_exchanges,
            channels_opened: self.channels_opened,
        });
    }

    /// Phase snapshots in the order they were recorded.
    pub fn phases(&self) -> &[PhaseSnapshot] {
        &self.phases
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total number of opened channels.
    pub fn channels_opened(&self) -> u64 {
        self.channels_opened
    }

    /// Total packets sent (push + pull).
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Total channel exchanges.
    pub fn total_exchanges(&self) -> u64 {
        self.total_exchanges
    }

    /// Total transmissions under the given accounting convention.
    pub fn total_transmissions(&self, accounting: Accounting) -> u64 {
        match accounting {
            Accounting::PerPacket => self.total_packets,
            Accounting::PerChannelExchange => self.total_exchanges,
        }
    }

    /// Average number of messages sent per node under the given accounting —
    /// the y-axis of Figure 1.
    pub fn messages_per_node(&self, accounting: Accounting) -> f64 {
        let n = self.packets_per_node.len();
        if n == 0 {
            return 0.0;
        }
        self.total_transmissions(accounting) as f64 / n as f64
    }

    /// Maximum number of packets sent by any single node.
    pub fn max_packets_per_node(&self) -> u64 {
        self.packets_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Per-node packet counts (for distribution plots / tests).
    pub fn packets_per_node(&self) -> &[u64] {
        &self.packets_per_node
    }

    /// Per-node exchange counts.
    pub fn exchanges_per_node(&self) -> &[u64] {
        &self.exchanges_per_node
    }

    /// Records one adaptive-dispatch decision (delivery core + inputs).
    ///
    /// Diagnostics only: the chosen core depends on the configured thread
    /// count, so these counters are deliberately kept out of the result
    /// equality the scenario layer checks across thread counts.
    pub fn record_dispatch(&mut self, record: DispatchRecord) {
        self.core_rounds.record(record.core);
        self.last_dispatch = Some(record);
    }

    /// How many deferred-delivery batches each core executed this run.
    pub fn core_rounds(&self) -> CoreRounds {
        self.core_rounds
    }

    /// The most recent dispatch decision, if any delivery has happened.
    pub fn last_dispatch(&self) -> Option<DispatchRecord> {
        self.last_dispatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_and_exchange_accounting_are_independent() {
        let mut m = Metrics::new(4);
        m.record_channel_open(0);
        m.record_packet(0);
        m.record_packet(1);
        m.record_exchange(0);
        assert_eq!(m.total_transmissions(Accounting::PerPacket), 2);
        assert_eq!(m.total_transmissions(Accounting::PerChannelExchange), 1);
        assert_eq!(m.channels_opened(), 1);
        assert_eq!(m.messages_per_node(Accounting::PerPacket), 0.5);
        assert_eq!(m.messages_per_node(Accounting::PerChannelExchange), 0.25);
    }

    #[test]
    fn rounds_accumulate() {
        let mut m = Metrics::new(1);
        m.finish_round();
        m.finish_round();
        m.add_rounds(3);
        assert_eq!(m.rounds(), 5);
    }

    #[test]
    fn per_node_counters_track_senders() {
        let mut m = Metrics::new(3);
        m.record_packet(2);
        m.record_packet(2);
        m.record_packet(0);
        assert_eq!(m.packets_per_node(), &[1, 0, 2]);
        assert_eq!(m.max_packets_per_node(), 2);
    }

    #[test]
    fn phase_snapshots_capture_cumulative_state() {
        let mut m = Metrics::new(2);
        m.record_packet(0);
        m.finish_round();
        m.mark_phase("phase1");
        m.record_packet(1);
        m.record_exchange(1);
        m.finish_round();
        m.mark_phase("phase2");
        let phases = m.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].label, "phase1");
        assert_eq!(phases[0].packets, 1);
        assert_eq!(phases[0].rounds, 1);
        assert_eq!(phases[1].packets, 2);
        assert_eq!(phases[1].exchanges, 1);
        assert_eq!(phases[1].rounds, 2);
    }

    #[test]
    fn empty_metrics_yield_zero_averages() {
        let m = Metrics::new(0);
        assert_eq!(m.messages_per_node(Accounting::PerPacket), 0.0);
    }

    #[test]
    fn dispatch_records_accumulate_and_reset() {
        use rpc_obs::DeliveryCore;
        let mut m = Metrics::new(4);
        let record = DispatchRecord {
            core: DeliveryCore::Eager,
            n: 4,
            packets: 9,
            sparse: false,
            cache_resident: false,
            threads: 1,
        };
        m.record_dispatch(record);
        m.record_dispatch(DispatchRecord { core: DeliveryCore::Scalar, ..record });
        assert_eq!(m.core_rounds(), CoreRounds { scalar: 1, eager: 1, batch: 0 });
        assert_eq!(m.last_dispatch().unwrap().core, DeliveryCore::Scalar);
        m.reset(4);
        assert_eq!(m.core_rounds(), CoreRounds::default());
        assert!(m.last_dispatch().is_none());
    }
}
