//! Parallel, allocation-free computation of per-receiver state updates.
//!
//! The expensive part of a simulation step is combining message bitsets. With
//! deferred delivery semantics every receiver's new state depends only on the
//! senders' begin-of-step states, so all updates can be computed independently
//! from a shared immutable view of the states and committed afterwards.
//!
//! Three kernels cover the shape of a gossip run, picked per receiver from
//! the senders' set sizes (`known`) and the fully-informed mask:
//!
//! * **sparse senders** (early rounds) — walk the senders' nonzero-word
//!   summaries ([`MessageSet::summary`]) and emit only the *candidate new
//!   words* (`s ∧ ¬r` at the sender's nonzero indices). The sequential
//!   commit ORs them into the receiver in place, counting as it goes — no
//!   full-width buffer is ever touched, so a round with nearly-empty states
//!   costs KBs instead of a full state copy per receiver.
//! * **fused dense** (mixing rounds) — one branch-free, vectorizable pass
//!   per word building the receiver's *complete new state* in a pooled
//!   buffer: `or = ⋁ sᵢ; added += popcount(or ∧ ¬r); out = r ∨ or`. The
//!   commit is an O(1) pointer swap; the begin-of-step state returns to the
//!   pool. Compared to the classic delta pipeline (copy, union, counting
//!   union into the receiver) this halves the memory traffic.
//! * **fully informed sender** (endgame) — the union is the whole universe,
//!   so no sender payload is read at all: one pass over the receiver emits
//!   its *complement* as candidate words. Receivers are nearly full by the
//!   time fully informed senders exist, so the payload is a handful of words
//!   and the commit stays in place — the endgame rounds cost a read of each
//!   receiver instead of a full buffer write.
//!
//! Once the state table has outgrown the CPU caches, receivers are processed
//! in *sender-chain order*: after one receiver's update
//! is computed, processing continues with one of its senders, whose state —
//! the next base — was just streamed through the cache. The order is a pure
//! function of the transfer batch and never changes results. For parallel
//! runs the ordered receivers are split into contiguous chunks, one per
//! worker thread (crossbeam scoped threads); the result is identical for any
//! thread count, and also identical to the eager sequential path in
//! [`Simulation::deliver`](crate::Simulation::deliver), which interleaves
//! these kernels with reader-gated commits.

use rpc_graphs::NodeId;
use rpc_obs::{DeliveryCore, DispatchRecord, PoolStats};

use crate::message::MessageSet;
use crate::sim::Transfer;

const WORD_BITS: usize = 64;

/// How one receiver's step outcome is applied at commit time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdatePayload {
    /// Candidate new words `(word index, bits)` with the receiver's
    /// begin-of-step content already masked out. Word indices may repeat
    /// (one run per sender); the in-place commit ORs them into the live
    /// state and counts actual news, which deduplicates naturally.
    Sparse(Vec<(u32, u64)>),
    /// The receiver's complete begin-of-next-step state (pooled buffer) plus
    /// the precomputed newly-learned count; committed by pointer swap.
    Replace {
        /// `|state \ old state|`.
        added: usize,
        /// The complete new state.
        state: MessageSet,
    },
}

/// One receiver's computed step outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceiverUpdate {
    /// The receiving node.
    pub to: NodeId,
    /// What to apply at commit time.
    pub payload: UpdatePayload,
}

/// Reusable buffers for [`compute_updates`], handed back by
/// [`Simulation::deliver`](crate::Simulation::deliver)'s commit loop.
#[derive(Debug, Default)]
pub struct UpdatePools {
    /// Full-width state buffers for [`UpdatePayload::Replace`].
    pub states: Vec<MessageSet>,
    /// Entry vectors for [`UpdatePayload::Sparse`].
    pub entries: Vec<Vec<(u32, u64)>>,
    /// Scratch for the chain ordering: node id → pending group index.
    pub(crate) group_of: Vec<u32>,
    /// Scratch for the chain ordering: the processing order (group indices).
    pub(crate) order: Vec<u32>,
    /// Checkout/fresh/high-water counters, maintained on the sequential
    /// cores. The batch core's worker-local pools (from the crate-private
    /// `split_off`) are consumed inside the crossbeam scope and never merged
    /// back, so their checkouts go uncounted — a documented limitation, kept
    /// so the hot parallel path stays untouched.
    pub stats: PoolStats,
}

impl UpdatePools {
    /// Pops a reusable entry vector, counting the checkout in [`Self::stats`].
    pub(crate) fn checkout_entries(&mut self) -> Vec<(u32, u64)> {
        let popped = self.entries.pop();
        self.stats.record_checkout(popped.is_none());
        popped.unwrap_or_default()
    }

    /// Pops a reusable full-width state buffer (allocating one for `universe`
    /// if the pool is empty), counting the checkout in [`Self::stats`].
    pub(crate) fn checkout_state(&mut self, universe: usize) -> MessageSet {
        let popped = self.states.pop();
        self.stats.record_checkout(popped.is_none());
        popped.unwrap_or_else(|| MessageSet::empty(universe))
    }

    fn split_off(&mut self, threads: usize) -> Vec<UpdatePools> {
        let mut pools = Vec::with_capacity(threads);
        let state_share = self.states.len() / threads;
        let entry_share = self.entries.len() / threads;
        for _ in 0..threads {
            let st = self.states.len().saturating_sub(state_share);
            let en = self.entries.len().saturating_sub(entry_share);
            pools.push(UpdatePools {
                states: self.states.split_off(st),
                entries: self.entries.split_off(en),
                ..UpdatePools::default()
            });
        }
        pools
    }
}

/// Computes, for every receiver appearing in `sorted_transfers` (which must
/// be sorted by receiver), its step outcome — either the candidate new words
/// or its complete new state, see [`UpdatePayload`].
///
/// `known` holds every node's current set size (`|state(v)|`, as maintained
/// by the simulation) and `full_words` the packed mask of fully informed
/// nodes (one bit per node, the layout of `BitSet::words`); together they
/// drive the kernel choice per receiver. The choice only affects speed: the
/// committed result is identical for every kernel, thread count, and mask.
///
/// `pools` supplies reusable buffers; the caller pushes them back after
/// committing.
pub fn compute_updates(
    states: &[MessageSet],
    sorted_transfers: &[Transfer],
    known: &[u32],
    full_words: &[u64],
    threads: usize,
    pools: &mut UpdatePools,
) -> Vec<ReceiverUpdate> {
    debug_assert!(
        sorted_transfers.windows(2).all(|w| w[0].to <= w[1].to),
        "transfers must be sorted by receiver"
    );
    let groups = group_by_receiver(sorted_transfers);
    if groups.is_empty() {
        return Vec::new();
    }
    // Order the receivers along sender chains: after computing receiver `v`,
    // continue with one of `v`'s senders (if it is itself a pending
    // receiver). That sender's full state was just streamed through the
    // cache as kernel input, so the next group's base-state read is an L2
    // hit instead of a cold DRAM read — in the memory-bound mixing rounds
    // this removes one of the ~5 full-width streams per receiver. The order
    // is a pure function of the transfer batch, and commits are
    // per-receiver-disjoint, so results are unchanged.
    let (mut order, group_of) =
        (std::mem::take(&mut pools.order), std::mem::take(&mut pools.group_of));
    let group_of = if cache_resident(states) {
        // Small problem: plain receiver order, no reordering overhead.
        order.clear();
        order.extend(0..groups.len() as u32);
        group_of
    } else {
        let (o, g) = chain_order(&groups, sorted_transfers, states.len(), order, group_of);
        order = o;
        g
    };
    let threads = threads.max(1).min(groups.len());
    let mut results: Vec<Vec<ReceiverUpdate>> = Vec::new();
    if threads == 1 {
        results.push(compute_group_updates(
            states,
            sorted_transfers,
            known,
            full_words,
            &groups,
            &order,
            pools,
        ));
    } else {
        // Hand each worker an equal share of the reusable buffers.
        let worker_pools = pools.split_off(threads);
        let chunk_size = order.len().div_ceil(threads);
        let chunks: Vec<&[u32]> = order.chunks(chunk_size).collect();

        let groups = &groups;
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (chunk, mut local_pools) in chunks.into_iter().zip(worker_pools) {
                handles.push(scope.spawn(move |_| {
                    compute_group_updates(
                        states,
                        sorted_transfers,
                        known,
                        full_words,
                        groups,
                        chunk,
                        &mut local_pools,
                    )
                }));
            }
            for handle in handles {
                results.push(handle.join().expect("update worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
    }

    pools.order = order;
    pools.group_of = group_of;
    results.into_iter().flatten().collect()
}

/// Whether the whole state table plausibly fits in the CPU caches. Below
/// this size the chain ordering and the eager commit cannot save DRAM
/// traffic (there is none to save) and their per-round bookkeeping is pure
/// overhead, so the delivery paths fall back to straight receiver order and
/// batch commits.
pub(crate) fn cache_resident(states: &[MessageSet]) -> bool {
    cache_resident_table(states.len(), states.first().map_or(0, |s| s.words().len()))
}

/// The [`cache_resident`] predicate on raw table dimensions (`rows` states of
/// `state_words` words each), so the unpacked oracle — which has no
/// [`MessageSet`] table — can classify dispatch decisions identically.
pub(crate) fn cache_resident_table(rows: usize, state_words: usize) -> bool {
    const CACHE_BUDGET_BYTES: usize = 8 << 20;
    rows * state_words * 8 < CACHE_BUDGET_BYTES
}

/// Classifies one deferred batch onto a delivery core — the single source of
/// truth for the adaptive dispatch in
/// [`Simulation::deliver`](crate::Simulation::deliver) and for the unpacked
/// oracle's mirrored diagnostics. `packets` is the batch size *after* loss,
/// crash and fully-informed filtering.
pub(crate) fn classify_dispatch(
    n: usize,
    packets: usize,
    threads: usize,
    cache_resident: bool,
) -> DispatchRecord {
    let sparse = packets * 8 < n;
    let core = if threads == 1 {
        if sparse || cache_resident {
            DeliveryCore::Scalar
        } else {
            DeliveryCore::Eager
        }
    } else {
        DeliveryCore::Batch
    };
    DispatchRecord { core, n, packets, sparse, cache_resident, threads }
}

/// Not a pending receiver (or already ordered).
pub(crate) const NO_GROUP: u32 = u32::MAX;

/// Computes the cache-friendly processing order described in
/// [`compute_updates`]: a permutation of the group indices that greedily
/// follows, from each receiver, its first sender that is itself still a
/// pending receiver. `order` and `group_of` are reusable scratch buffers,
/// returned filled (`order`) and exhausted (`group_of`, all [`NO_GROUP`]).
pub(crate) fn chain_order(
    groups: &[Group],
    transfers: &[Transfer],
    num_nodes: usize,
    mut order: Vec<u32>,
    mut group_of: Vec<u32>,
) -> (Vec<u32>, Vec<u32>) {
    group_of.clear();
    group_of.resize(num_nodes, NO_GROUP);
    for (gi, (to, _)) in groups.iter().enumerate() {
        group_of[*to as usize] = gi as u32;
    }
    order.clear();
    order.reserve(groups.len());
    for start in 0..groups.len() {
        let mut cur = start;
        if group_of[groups[cur].0 as usize] == NO_GROUP {
            continue; // already ordered as part of an earlier chain
        }
        loop {
            let (to, range) = &groups[cur];
            group_of[*to as usize] = NO_GROUP;
            order.push(cur as u32);
            let Some(next) = transfers[range.clone()]
                .iter()
                .map(|t| group_of[t.from as usize])
                .find(|&g| g != NO_GROUP)
            else {
                break;
            };
            cur = next as usize;
        }
    }
    debug_assert_eq!(order.len(), groups.len(), "the order must be a permutation");
    (order, group_of)
}

pub(crate) type Group = (NodeId, std::ops::Range<usize>);

pub(crate) fn group_by_receiver(sorted_transfers: &[Transfer]) -> Vec<Group> {
    let mut groups = Vec::new();
    let mut start = 0usize;
    while start < sorted_transfers.len() {
        let to = sorted_transfers[start].to;
        let mut end = start + 1;
        while end < sorted_transfers.len() && sorted_transfers[end].to == to {
            end += 1;
        }
        groups.push((to, start..end));
        start = end;
    }
    groups
}

fn compute_group_updates(
    states: &[MessageSet],
    transfers: &[Transfer],
    known: &[u32],
    full_words: &[u64],
    groups: &[Group],
    order: &[u32],
    pools: &mut UpdatePools,
) -> Vec<ReceiverUpdate> {
    let mut out = Vec::with_capacity(order.len());
    for &oi in order {
        let (to, range) = &groups[oi as usize];
        let payload =
            compute_one_update(states, &transfers[range.clone()], *to, known, full_words, pools);
        out.push(ReceiverUpdate { to: *to, payload });
    }
    out
}

/// Computes one receiver's step outcome from its transfer group (all
/// transfers with `t.to == to`), choosing a kernel as described in the
/// [module docs](self). This is the shared core of the batch path above and
/// the eager sequential path in [`Simulation::deliver`].
///
/// [`Simulation::deliver`]: crate::Simulation::deliver
pub(crate) fn compute_one_update(
    states: &[MessageSet],
    group: &[Transfer],
    to: NodeId,
    known: &[u32],
    full_words: &[u64],
    pools: &mut UpdatePools,
) -> UpdatePayload {
    let is_full = |v: NodeId| {
        let v = v as usize;
        full_words.get(v / WORD_BITS).is_some_and(|w| w & (1u64 << (v % WORD_BITS)) != 0)
    };
    let recv = &states[to as usize];
    let universe = recv.universe();
    let word_count = recv.words().len();

    if group.iter().any(|t| is_full(t.from)) {
        // Endgame: some sender knows everything, so the new state is the
        // whole universe. Emit the receiver's complement as candidate
        // words — no sender payload is read, and since receivers are
        // nearly full by the time full senders exist, the payload is a
        // handful of words instead of a full-width buffer.
        let mut entries = pools.checkout_entries();
        entries.clear();
        let recv_words = recv.words();
        let rem = universe % WORD_BITS;
        for (wi, &r) in recv_words.iter().enumerate() {
            let mut missing = !r;
            if rem != 0 && wi + 1 == recv_words.len() {
                missing &= (1u64 << rem) - 1;
            }
            if missing != 0 {
                entries.push((wi as u32, missing));
            }
        }
        return UpdatePayload::Sparse(entries);
    }

    let sender_bits: usize = group.iter().map(|t| known[t.from as usize] as usize).sum();
    // The sparse kernel's scattered word reads defeat the prefetcher, so
    // it only pays off while the candidate words are far fewer than the
    // receiver's cache lines; past that, the streaming fused kernel wins.
    if 32 * sender_bits <= word_count {
        // Early rounds: the senders' sets are tiny relative to the word
        // count — emit only the candidate new words, no buffer at all.
        let mut entries = pools.checkout_entries();
        entries.clear();
        let recv_words = recv.words();
        for t in group {
            let sender = &states[t.from as usize];
            let words = sender.words();
            for (si, &sum) in sender.summary().iter().enumerate() {
                let mut bits = sum;
                while bits != 0 {
                    let wi = si * WORD_BITS + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let new = words[wi] & !recv_words[wi];
                    if new != 0 {
                        entries.push((wi as u32, new));
                    }
                }
            }
        }
        UpdatePayload::Sparse(entries)
    } else {
        // Mixing rounds: one fused, branch-free, vectorizable pass
        // building the complete new state.
        let mut buf = pools.checkout_state(universe);
        debug_assert_eq!(buf.universe(), universe, "pooled buffer universe mismatch");
        let added = match group {
            [a] => buf.assign_union_counting(recv, &[&states[a.from as usize]]),
            [a, b] => buf
                .assign_union_counting(recv, &[&states[a.from as usize], &states[b.from as usize]]),
            _ => {
                let senders: Vec<&MessageSet> =
                    group.iter().map(|t| &states[t.from as usize]).collect();
                buf.assign_union_counting(recv, &senders)
            }
        };
        UpdatePayload::Replace { added, state: buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageSet;

    fn states(n: usize) -> Vec<MessageSet> {
        (0..n).map(|v| MessageSet::singleton(n, v as u32)).collect()
    }

    fn known_of(states: &[MessageSet]) -> Vec<u32> {
        states.iter().map(|s| s.len() as u32).collect()
    }

    /// Applies updates the way the simulation's commit loop does and returns
    /// the per-receiver added counts.
    fn commit(states: &mut [MessageSet], updates: Vec<ReceiverUpdate>) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        for u in updates {
            let to = u.to as usize;
            match u.payload {
                UpdatePayload::Sparse(entries) => {
                    let mut added = 0usize;
                    let mut reference = states[to].clone();
                    for &(wi, bits) in &entries {
                        added += reference.or_word_counting(wi as usize, bits);
                    }
                    states[to] = reference;
                    out.push((u.to, added));
                }
                UpdatePayload::Replace { added, state } => {
                    states[to] = state;
                    out.push((u.to, added));
                }
            }
        }
        out
    }

    #[test]
    fn grouping_splits_runs_of_equal_receivers() {
        let transfers = vec![
            Transfer::new(5, 1),
            Transfer::new(6, 1),
            Transfer::new(7, 2),
            Transfer::new(8, 4),
        ];
        let groups = group_by_receiver(&transfers);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (1, 0..2));
        assert_eq!(groups[1], (2, 2..3));
        assert_eq!(groups[2], (4, 3..4));
    }

    #[test]
    fn updates_commit_to_union_of_receiver_and_senders() {
        let mut s = states(80);
        let transfers = vec![Transfer::new(3, 0), Transfer::new(65, 0), Transfer::new(6, 7)];
        let known = known_of(&s);
        let mut pools = UpdatePools::default();
        let updates = compute_updates(&s, &transfers, &known, &[], 1, &mut pools);
        assert_eq!(updates.len(), 2);
        let added = commit(&mut s, updates);
        assert_eq!(added, vec![(0, 2), (7, 1)]);
        assert_eq!(s[0].iter().collect::<Vec<_>>(), vec![0, 3, 65]);
        assert_eq!(s[7].iter().collect::<Vec<_>>(), vec![6, 7]);
    }

    #[test]
    fn duplicate_candidate_words_are_counted_once() {
        // Two sparse senders offering the same message: the in-place commit
        // must count it exactly once. The universe is large enough (128
        // words) that four sender bits select the sparse kernel
        // (`32 * sender_bits <= word_count`).
        let mut s = states(8192);
        s[3].insert(42);
        s[5].insert(42);
        let known = known_of(&s);
        let transfers = vec![Transfer::new(3, 0), Transfer::new(5, 0)];
        let mut pools = UpdatePools::default();
        let updates = compute_updates(&s, &transfers, &known, &[], 1, &mut pools);
        assert!(matches!(updates[0].payload, UpdatePayload::Sparse(_)));
        let added = commit(&mut s, updates);
        assert_eq!(added, vec![(0, 3)], "42 must be counted once, not twice");
        assert_eq!(s[0].iter().collect::<Vec<_>>(), vec![0, 3, 5, 42]);
    }

    #[test]
    fn dense_and_sparse_kernels_agree() {
        // Mixed sender-set sizes across receivers: whatever kernel the
        // threshold picks, every receiver must end with the same union and
        // count as a straightforward reference union.
        let n = 200;
        let mut s = states(n);
        for i in 0..n as u32 {
            s[10].insert(i % 97);
            s[11].insert((i * 7) % n as u32);
        }
        let known = known_of(&s);
        let transfers = vec![
            Transfer::new(10, 0), // dense (big senders)
            Transfer::new(11, 0),
            Transfer::new(12, 1), // sparse (singleton sender)
        ];
        let mut pools = UpdatePools::default();
        let updates = compute_updates(&s, &transfers, &known, &[], 1, &mut pools);
        let mut reference = s.clone();
        let mut expected = Vec::new();
        for to in [0u32, 1] {
            let mut new_state = s[to as usize].clone();
            let mut added = 0usize;
            for t in transfers.iter().filter(|t| t.to == to) {
                added += new_state.union_from(&s[t.from as usize]);
            }
            reference[to as usize] = new_state;
            expected.push((to, added));
        }
        let added = commit(&mut s, updates);
        assert_eq!(added, expected);
        assert_eq!(s[0], reference[0]);
        assert_eq!(s[1], reference[1]);
    }

    #[test]
    fn full_sender_shortcut_matches_the_plain_union() {
        let n = 130; // not a multiple of 64: the tail mask matters
        let mut s = states(n);
        s[5] = MessageSet::full(n);
        let known = known_of(&s);
        let mut full_words = vec![0u64; 3];
        full_words[0] |= 1 << 5;
        let transfers = vec![Transfer::new(5, 0), Transfer::new(1, 0)];
        let mut pools = UpdatePools::default();
        let with_mask = compute_updates(&s, &transfers, &known, &full_words, 1, &mut pools);
        match &with_mask[0].payload {
            UpdatePayload::Sparse(entries) => {
                // The endgame kernel emits exactly the receiver's complement:
                // every missing bit once, nothing beyond the universe.
                let total: usize =
                    entries.iter().map(|&(_, bits)| bits.count_ones() as usize).sum();
                assert_eq!(total, n - 1);
                assert!(entries.iter().all(|&(wi, _)| (wi as usize) < s[0].words().len()));
            }
            other => panic!("expected the sparse complement, got {other:?}"),
        }
        let mut s_masked = s.clone();
        let mut s_plain = s.clone();
        commit(&mut s_masked, with_mask);
        let without_mask = compute_updates(&s, &transfers, &known, &[], 1, &mut pools);
        commit(&mut s_plain, without_mask);
        assert_eq!(s_masked[0], s_plain[0]);
    }

    #[test]
    fn parallel_and_sequential_updates_agree() {
        let n = 190; // deliberately not a multiple of 64
        let s = states(n);
        let known = known_of(&s);
        let mut transfers = Vec::new();
        for v in 0..n as u32 {
            transfers.push(Transfer::new((v + 1) % n as u32, v));
            transfers.push(Transfer::new((v + 5) % n as u32, v));
        }
        transfers.sort_unstable_by_key(|t| t.to);
        let mut pools = UpdatePools::default();
        let mut seq = compute_updates(&s, &transfers, &known, &[], 1, &mut pools);
        let mut par = compute_updates(&s, &transfers, &known, &[], 4, &mut pools);
        seq.sort_by_key(|u| u.to);
        par.sort_by_key(|u| u.to);
        assert_eq!(seq, par);
    }

    #[test]
    fn pool_buffers_are_reused_and_overwritten() {
        let n = 80;
        let mut s = states(n);
        // A big sender forces the Replace kernel, which must take the stale
        // pooled buffer and fully overwrite it.
        for i in 0..60u32 {
            s[1].insert(i);
        }
        let known = known_of(&s);
        let transfers = vec![Transfer::new(1, 0)];
        let mut pools = UpdatePools::default();
        pools.states.push(MessageSet::full(n)); // stale content must vanish
        let updates = compute_updates(&s, &transfers, &known, &[], 1, &mut pools);
        assert!(pools.states.is_empty(), "buffer should have been taken from the pool");
        match &updates[0].payload {
            UpdatePayload::Replace { added, state } => {
                assert_eq!(*added, 59);
                assert_eq!(state.len(), 60);
            }
            other => panic!("expected a replacement, got {other:?}"),
        }
    }

    #[test]
    fn empty_transfer_list_yields_no_updates() {
        let s = states(4);
        let mut pools = UpdatePools::default();
        assert!(compute_updates(&s, &[], &[1, 1, 1, 1], &[], 3, &mut pools).is_empty());
    }
}
