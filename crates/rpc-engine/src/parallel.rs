//! Parallel computation of per-receiver message deltas.
//!
//! The expensive part of a simulation step is the union of message bitsets.
//! With deferred delivery semantics every receiver's delta depends only on the
//! senders' begin-of-step states, so all deltas can be computed independently
//! and in parallel from a shared immutable view of the states, then committed
//! sequentially. Receivers are partitioned into contiguous chunks, one per
//! worker thread (crossbeam scoped threads); with a single thread the code
//! degenerates to a plain loop, and the result is identical for any thread
//! count.

use rpc_graphs::NodeId;

use crate::message::MessageSet;
use crate::sim::Transfer;

/// Computes, for every receiver appearing in `sorted_transfers` (which must be
/// sorted by receiver), the union of its senders' current states.
///
/// `pool` supplies reusable scratch bitsets; buffers are taken from it when
/// available and the caller is expected to push the returned buffers back
/// after committing them.
pub fn compute_deltas(
    states: &[MessageSet],
    sorted_transfers: &[Transfer],
    threads: usize,
    pool: &mut Vec<MessageSet>,
) -> Vec<(NodeId, MessageSet)> {
    debug_assert!(
        sorted_transfers.windows(2).all(|w| w[0].to <= w[1].to),
        "transfers must be sorted by receiver"
    );
    let groups = group_by_receiver(sorted_transfers);
    if groups.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(groups.len());
    if threads == 1 {
        return compute_group_deltas(states, sorted_transfers, &groups, pool);
    }

    // Hand each worker an equal share of the reusable buffers.
    let mut pools: Vec<Vec<MessageSet>> = Vec::with_capacity(threads);
    let share = pool.len() / threads;
    for _ in 0..threads {
        let tail = pool.len().saturating_sub(share);
        pools.push(pool.split_off(tail));
    }

    let chunk_size = groups.len().div_ceil(threads);
    let chunks: Vec<&[(NodeId, std::ops::Range<usize>)]> = groups.chunks(chunk_size).collect();

    let mut results: Vec<Vec<(NodeId, MessageSet)>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk, mut local_pool) in chunks.into_iter().zip(pools) {
            handles.push(scope.spawn(move |_| {
                compute_group_deltas(states, sorted_transfers, chunk, &mut local_pool)
            }));
        }
        for handle in handles {
            results.push(handle.join().expect("delta worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    results.into_iter().flatten().collect()
}

type Group = (NodeId, std::ops::Range<usize>);

fn group_by_receiver(sorted_transfers: &[Transfer]) -> Vec<Group> {
    let mut groups = Vec::new();
    let mut start = 0usize;
    while start < sorted_transfers.len() {
        let to = sorted_transfers[start].to;
        let mut end = start + 1;
        while end < sorted_transfers.len() && sorted_transfers[end].to == to {
            end += 1;
        }
        groups.push((to, start..end));
        start = end;
    }
    groups
}

fn compute_group_deltas(
    states: &[MessageSet],
    transfers: &[Transfer],
    groups: &[Group],
    pool: &mut Vec<MessageSet>,
) -> Vec<(NodeId, MessageSet)> {
    let universe = states.first().map(|s| s.universe()).unwrap_or(0);
    let mut out = Vec::with_capacity(groups.len());
    for (to, range) in groups {
        let mut delta = pool.pop().unwrap_or_else(|| MessageSet::empty(universe));
        let mut first = true;
        for t in &transfers[range.clone()] {
            let sender_state = &states[t.from as usize];
            if first {
                delta.copy_from(sender_state);
                first = false;
            } else {
                delta.union_from(sender_state);
            }
        }
        out.push((*to, delta));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageSet;

    fn states(n: usize) -> Vec<MessageSet> {
        (0..n).map(|v| MessageSet::singleton(n, v as u32)).collect()
    }

    #[test]
    fn grouping_splits_runs_of_equal_receivers() {
        let transfers = vec![
            Transfer::new(5, 1),
            Transfer::new(6, 1),
            Transfer::new(7, 2),
            Transfer::new(8, 4),
        ];
        let groups = group_by_receiver(&transfers);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (1, 0..2));
        assert_eq!(groups[1], (2, 2..3));
        assert_eq!(groups[2], (4, 3..4));
    }

    #[test]
    fn deltas_are_union_of_sender_states() {
        let s = states(8);
        let transfers = vec![Transfer::new(3, 0), Transfer::new(5, 0), Transfer::new(6, 7)];
        let mut pool = Vec::new();
        let deltas = compute_deltas(&s, &transfers, 1, &mut pool);
        assert_eq!(deltas.len(), 2);
        let d0 = &deltas.iter().find(|(to, _)| *to == 0).unwrap().1;
        assert!(d0.contains(3) && d0.contains(5) && !d0.contains(6));
        let d7 = &deltas.iter().find(|(to, _)| *to == 7).unwrap().1;
        assert_eq!(d7.len(), 1);
    }

    #[test]
    fn parallel_and_sequential_deltas_agree() {
        let n = 64;
        let s = states(n);
        let mut transfers = Vec::new();
        for v in 0..n as u32 {
            transfers.push(Transfer::new((v + 1) % n as u32, v));
            transfers.push(Transfer::new((v + 5) % n as u32, v));
        }
        transfers.sort_unstable_by_key(|t| t.to);
        let mut pool = Vec::new();
        let mut seq = compute_deltas(&s, &transfers, 1, &mut pool);
        let mut par = compute_deltas(&s, &transfers, 4, &mut pool);
        seq.sort_by_key(|(to, _)| *to);
        par.sort_by_key(|(to, _)| *to);
        assert_eq!(seq, par);
    }

    #[test]
    fn pool_buffers_are_reused() {
        let s = states(16);
        let transfers = vec![Transfer::new(1, 0)];
        let mut pool = vec![MessageSet::full(16)]; // stale content must be overwritten
        let deltas = compute_deltas(&s, &transfers, 1, &mut pool);
        assert!(pool.is_empty(), "buffer should have been taken from the pool");
        assert_eq!(deltas[0].1.len(), 1);
        assert!(deltas[0].1.contains(1));
    }

    #[test]
    fn empty_transfer_list_yields_no_deltas() {
        let s = states(4);
        let mut pool = Vec::new();
        assert!(compute_deltas(&s, &[], 3, &mut pool).is_empty());
    }
}
