//! The unpacked reference engine — correctness oracle and benchmark baseline.
//!
//! [`UnpackedSimulation`] preserves the pre-optimization implementation of the
//! simulation hot path: `Vec<bool>` liveness bookkeeping, O(n) scans for the
//! completion check and coverage queries, dense per-receiver delta bitsets,
//! a freshly allocated effective-transfer buffer per delivery, and masked
//! neighbor sampling that materializes the filtered neighbor list when
//! rejection sampling gives up.
//!
//! It exists for two reasons:
//!
//! 1. **Oracle** — it consumes randomness in *exactly* the same order as the
//!    packed [`crate::Simulation`] (same rejection-sampling attempts, same
//!    fallback draw over the same candidate count, same loss-sampling order),
//!    so any protocol driven on both engines with the same graph and seed
//!    must produce bit-identical traces. The `rpc-scenarios` property tests
//!    assert this for randomized scenarios and the whole registry.
//! 2. **Baseline** — the `rpc-bench` round-loop harness measures it next to
//!    the packed engine, so `BENCH_round_loop.json` records how much the
//!    word-parallel hot path actually buys on each topology.
//!
//! It is deliberately sequential (no worker threads) and unoptimized; do not
//! use it for large production runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rpc_graphs::{Graph, NodeId};

use crate::api::Engine;
use crate::message::{MessageId, MessageSet};
use crate::metrics::Metrics;
use crate::sim::{LivenessEvent, LivenessKind, Transfer};

/// The unpacked (pre-optimization) simulation engine. Same API and RNG draw
/// sequence as [`crate::Simulation`], `Vec<bool>`-and-scans bookkeeping.
#[derive(Debug)]
pub struct UnpackedSimulation<'g> {
    graph: &'g Graph,
    states: Vec<MessageSet>,
    known: Vec<u32>,
    /// Size of the message universe; equal to the node count in the classic
    /// configuration, decoupled from it in streaming mode.
    universe: usize,
    /// Whether this simulation was built via [`Self::new_streaming`]. Only
    /// streaming simulations keep injection/expiry flags, mirroring the
    /// packed engine's optional `RumorSpace`.
    streaming: bool,
    /// Per-rumor injection flags (streaming only; empty otherwise).
    injected: Vec<bool>,
    /// Per-rumor expiry flags (streaming only; empty otherwise).
    expired: Vec<bool>,
    alive: Vec<bool>,
    alive_count: usize,
    present: Vec<bool>,
    departed_count: usize,
    fully_informed: usize,
    tracked: Option<MessageId>,
    metrics: Metrics,
    rng: SmallRng,
    loss_probability: f64,
    schedule: Vec<LivenessEvent>,
    next_event: usize,
    scratch_pool: Vec<MessageSet>,
    /// Behaviour mask mirroring the packed engine's Byzantine bitset.
    byzantine: Vec<bool>,
    byzantine_count: usize,
    /// Edge presence flags over the CSR edge slots, mirroring the packed
    /// engine's `edge_up` bitset; only consulted while `edge_down_count > 0`.
    edge_up: Vec<bool>,
    edge_down_count: usize,
}

impl<'g> UnpackedSimulation<'g> {
    /// Creates an unpacked simulation in the gossiping start configuration.
    /// Seeding matches [`crate::Simulation::new`] bit for bit.
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        let n = graph.num_nodes();
        let states = (0..n).map(|v| MessageSet::singleton(n, v as MessageId)).collect();
        Self {
            graph,
            states,
            known: vec![1; n],
            universe: n,
            streaming: false,
            injected: Vec::new(),
            expired: Vec::new(),
            alive: vec![true; n],
            alive_count: n,
            present: vec![true; n],
            departed_count: 0,
            fully_informed: if n <= 1 { n } else { 0 },
            tracked: None,
            metrics: Metrics::new(n),
            rng: SmallRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03),
            loss_probability: 0.0,
            schedule: Vec::new(),
            next_event: 0,
            scratch_pool: Vec::new(),
            byzantine: vec![false; n],
            byzantine_count: 0,
            edge_up: Vec::new(),
            edge_down_count: 0,
        }
    }

    /// Creates an unpacked simulation in the *streaming* start configuration,
    /// mirroring [`crate::Simulation::new_streaming`]: a `universe`-rumor
    /// message space decoupled from the node count, every node starting
    /// empty. Seeding matches bit for bit and nothing extra is drawn.
    pub fn new_streaming(graph: &'g Graph, seed: u64, universe: usize) -> Self {
        let n = graph.num_nodes();
        let mut sim = Self::new(graph, seed);
        sim.states = (0..n).map(|_| MessageSet::empty(universe)).collect();
        sim.known = vec![0; n];
        sim.universe = universe;
        sim.streaming = true;
        sim.injected = vec![false; universe];
        sim.expired = vec![false; universe];
        sim.fully_informed = if universe == 0 { n } else { 0 };
        sim
    }

    /// Number of original messages node `v` knows.
    pub fn num_known(&self, v: NodeId) -> usize {
        self.known[v as usize] as usize
    }

    fn push_event(&mut self, event: LivenessEvent) {
        self.schedule.push(event);
        self.schedule[self.next_event..].sort_by_key(|e| e.round);
    }

    /// Mirrors [`crate::Simulation::apply_due_events`]: applies due
    /// scheduled events immediately, idempotently, and draw-free.
    pub fn apply_due_events(&mut self) {
        self.poll_events();
    }

    fn poll_events(&mut self) {
        if self.next_event >= self.schedule.len() {
            return;
        }
        let round = self.metrics.rounds();
        while self.next_event < self.schedule.len() && self.schedule[self.next_event].round <= round
        {
            let kind = self.schedule[self.next_event].kind;
            let nodes = std::mem::take(&mut self.schedule[self.next_event].nodes);
            self.next_event += 1;
            match kind {
                LivenessKind::Kill => Engine::kill_nodes(self, &nodes),
                LivenessKind::Revive => Engine::revive_nodes(self, &nodes),
                LivenessKind::Crash => Engine::fail_nodes(self, &nodes),
                LivenessKind::EdgeOutage => self.apply_edge_outage(&nodes),
                LivenessKind::Inject { source, rumor } => {
                    Engine::inject_rumor(self, source, rumor);
                }
                LivenessKind::Expire { rumor } => Engine::expire_rumor(self, rumor),
            }
        }
    }

    /// Mirrors [`crate::Simulation::apply_edge_outage`]: the listed CSR edge
    /// slots go down, replacing any previously down set.
    fn apply_edge_outage(&mut self, slots: &[NodeId]) {
        self.edge_up.clear();
        self.edge_up.resize(self.graph.num_edge_slots(), true);
        let mut down = 0usize;
        for &slot in slots {
            if self.edge_up[slot as usize] {
                self.edge_up[slot as usize] = false;
                down += 1;
            }
        }
        self.edge_down_count = down;
    }

    fn bump_known(&mut self, v: NodeId, added: usize) {
        if added == 0 {
            return;
        }
        self.known[v as usize] += added as u32;
        if self.known[v as usize] as usize == self.universe {
            self.fully_informed += 1;
        }
    }

    /// The pre-optimization effective-packet filter: allocates a fresh buffer
    /// on every call. The iteration order — and therefore the loss-sampling
    /// order — matches the packed engine exactly.
    fn count_packets(&mut self, transfers: &[Transfer]) -> Vec<Transfer> {
        let mut effective = Vec::with_capacity(transfers.len());
        for &t in transfers {
            if !self.alive[t.from as usize] || !self.present[t.from as usize] {
                continue;
            }
            if self.byzantine_count > 0 && self.byzantine[t.from as usize] {
                continue;
            }
            if !self.present[t.to as usize] {
                continue;
            }
            self.metrics.record_packet(t.from);
            if t.from == t.to {
                continue;
            }
            if self.loss_probability > 0.0 && self.rng.gen_bool(self.loss_probability) {
                continue;
            }
            effective.push(t);
        }
        effective
    }

    /// Dense deferred delivery: one full-width delta bitset per receiver,
    /// built with copy + union and committed with a counting union.
    fn deliver_deferred(&mut self, transfers: &[Transfer]) -> usize {
        let mut effective = self.count_packets(transfers);
        if effective.is_empty() {
            return 0;
        }
        // Mirror the packed engine's dispatch diagnostics so the oracle's
        // per-core counts agree at the sequential thread count it models.
        // The packed engine classifies *after* dropping crashed and fully
        // informed receivers, so apply the same predicate to the count (the
        // delta loop below re-checks `alive` at commit time anyway).
        let n = self.states.len();
        let universe = self.universe;
        let classified = effective
            .iter()
            .filter(|t| {
                self.alive[t.to as usize] && (self.known[t.to as usize] as usize) < universe.max(1)
            })
            .count();
        if classified > 0 {
            self.metrics.record_dispatch(crate::parallel::classify_dispatch(
                n,
                classified,
                1,
                crate::parallel::cache_resident(&self.states),
            ));
        }
        effective.sort_unstable_by_key(|t| t.to);
        let mut deltas: Vec<(NodeId, MessageSet)> = Vec::new();
        let mut start = 0usize;
        while start < effective.len() {
            let to = effective[start].to;
            let mut end = start + 1;
            while end < effective.len() && effective[end].to == to {
                end += 1;
            }
            let mut delta = self.scratch_pool.pop().unwrap_or_else(|| MessageSet::empty(universe));
            let mut first = true;
            for t in &effective[start..end] {
                let sender_state = &self.states[t.from as usize];
                if first {
                    delta.copy_from(sender_state);
                    first = false;
                } else {
                    delta.union_from(sender_state);
                }
            }
            deltas.push((to, delta));
            start = end;
        }
        let mut total_added = 0usize;
        for (to, delta) in &deltas {
            if self.alive[*to as usize] {
                let added = self.states[*to as usize].union_from(delta);
                self.bump_known(*to, added);
                total_added += added;
            }
        }
        for (_, delta) in deltas {
            self.scratch_pool.push(delta);
        }
        total_added
    }

    /// The pre-optimization masked sampling: rejection sampling over the raw
    /// neighbor slice, then a materialized filtered list. The draw sequence
    /// (32 attempts, then one draw over the eligible count) is identical to
    /// `Graph::random_neighbor_masked` on the packed presence words.
    fn random_neighbor_masked(&mut self, v: NodeId) -> Option<NodeId> {
        let nbrs = self.graph.neighbors(v);
        if nbrs.is_empty() {
            return None;
        }
        for _ in 0..32 {
            let candidate = nbrs[self.rng.gen_range(0..nbrs.len())];
            if self.present[candidate as usize] {
                return Some(candidate);
            }
        }
        let pool: Vec<NodeId> =
            nbrs.iter().copied().filter(|&u| self.present[u as usize]).collect();
        if pool.is_empty() {
            None
        } else {
            Some(pool[self.rng.gen_range(0..pool.len())])
        }
    }

    /// Masked `open-avoid` sampling, same draw sequence as the packed engine.
    fn random_neighbor_masked_avoiding(&mut self, v: NodeId, avoid: &[NodeId]) -> Option<NodeId> {
        let nbrs = self.graph.neighbors(v);
        if nbrs.is_empty() {
            return None;
        }
        for _ in 0..32 {
            let candidate = nbrs[self.rng.gen_range(0..nbrs.len())];
            if self.present[candidate as usize] && !avoid.contains(&candidate) {
                return Some(candidate);
            }
        }
        let pool: Vec<NodeId> = nbrs
            .iter()
            .copied()
            .filter(|&u| self.present[u as usize] && !avoid.contains(&u))
            .collect();
        if pool.is_empty() {
            None
        } else {
            Some(pool[self.rng.gen_range(0..pool.len())])
        }
    }

    /// Edge-masked sampling, mirroring `Graph::random_neighbor_edge_masked`:
    /// the eligibility predicate also requires the candidate's CSR edge slot
    /// to be up, and the node (presence) mask only participates while churn
    /// is active (`use_node_mask`). Draw sequence: 32 rejection attempts over
    /// the raw neighbor slice, then one draw over the eligible pool.
    fn random_neighbor_edge_masked(&mut self, v: NodeId, use_node_mask: bool) -> Option<NodeId> {
        let nbrs = self.graph.neighbors(v);
        if nbrs.is_empty() {
            return None;
        }
        let base = self.graph.edge_slot_range(v).start;
        for _ in 0..32 {
            let i = self.rng.gen_range(0..nbrs.len());
            let candidate = nbrs[i];
            if self.edge_up[base + i] && (!use_node_mask || self.present[candidate as usize]) {
                return Some(candidate);
            }
        }
        let pool: Vec<NodeId> = nbrs
            .iter()
            .enumerate()
            .filter(|&(i, &u)| {
                self.edge_up[base + i] && (!use_node_mask || self.present[u as usize])
            })
            .map(|(_, &u)| u)
            .collect();
        if pool.is_empty() {
            None
        } else {
            Some(pool[self.rng.gen_range(0..pool.len())])
        }
    }

    /// Edge-masked `open-avoid` sampling, mirroring
    /// `Graph::random_neighbor_edge_masked_avoiding`.
    fn random_neighbor_edge_masked_avoiding(
        &mut self,
        v: NodeId,
        avoid: &[NodeId],
        use_node_mask: bool,
    ) -> Option<NodeId> {
        let nbrs = self.graph.neighbors(v);
        if nbrs.is_empty() {
            return None;
        }
        let base = self.graph.edge_slot_range(v).start;
        for _ in 0..32 {
            let i = self.rng.gen_range(0..nbrs.len());
            let candidate = nbrs[i];
            if self.edge_up[base + i]
                && (!use_node_mask || self.present[candidate as usize])
                && !avoid.contains(&candidate)
            {
                return Some(candidate);
            }
        }
        let pool: Vec<NodeId> = nbrs
            .iter()
            .enumerate()
            .filter(|&(i, &u)| {
                self.edge_up[base + i]
                    && (!use_node_mask || self.present[u as usize])
                    && !avoid.contains(&u)
            })
            .map(|(_, &u)| u)
            .collect();
        if pool.is_empty() {
            None
        } else {
            Some(pool[self.rng.gen_range(0..pool.len())])
        }
    }
}

impl Engine for UnpackedSimulation<'_> {
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn num_nodes(&self) -> usize {
        self.states.len()
    }

    fn universe(&self) -> usize {
        self.universe
    }

    fn open_channel(&mut self, v: NodeId) -> Option<NodeId> {
        self.poll_events();
        if !self.alive[v as usize] || !self.present[v as usize] {
            return None;
        }
        let target = if self.edge_down_count > 0 {
            let use_node_mask = self.departed_count > 0;
            self.random_neighbor_edge_masked(v, use_node_mask)?
        } else if self.departed_count == 0 {
            self.graph.random_neighbor(v, &mut self.rng)?
        } else {
            self.random_neighbor_masked(v)?
        };
        self.metrics.record_channel_open(v);
        Some(target)
    }

    fn open_channel_avoiding(&mut self, v: NodeId, avoid: &[NodeId]) -> Option<NodeId> {
        self.poll_events();
        if !self.alive[v as usize] || !self.present[v as usize] {
            return None;
        }
        let target = if self.edge_down_count > 0 {
            let use_node_mask = self.departed_count > 0;
            self.random_neighbor_edge_masked_avoiding(v, avoid, use_node_mask)?
        } else if self.departed_count == 0 {
            self.graph.random_neighbor_avoiding(v, avoid, &mut self.rng)?
        } else {
            self.random_neighbor_masked_avoiding(v, avoid)?
        };
        self.metrics.record_channel_open(v);
        Some(target)
    }

    fn deliver(&mut self, transfers: &[Transfer]) -> usize {
        self.poll_events();
        self.deliver_deferred(transfers)
    }

    fn absorb(&mut self, v: NodeId, set: &MessageSet) -> usize {
        if !self.alive[v as usize] || !self.present[v as usize] {
            return 0;
        }
        let added = self.states[v as usize].union_from(set);
        self.bump_known(v, added);
        added
    }

    fn state(&self, v: NodeId) -> &MessageSet {
        &self.states[v as usize]
    }

    fn knows(&self, v: NodeId, m: MessageId) -> bool {
        self.states[v as usize].contains(m)
    }

    fn is_alive(&self, v: NodeId) -> bool {
        self.alive[v as usize]
    }

    fn is_present(&self, v: NodeId) -> bool {
        self.present[v as usize]
    }

    fn alive_count(&self) -> usize {
        self.alive_count
    }

    fn present_count(&self) -> usize {
        self.states.len() - self.departed_count
    }

    fn participating_count(&self) -> usize {
        (0..self.states.len()).filter(|&v| self.alive[v] && self.present[v]).count()
    }

    fn participating_informed_count(&self) -> usize {
        let u = self.universe;
        (0..self.states.len())
            .filter(|&v| self.alive[v] && self.present[v] && self.known[v] as usize == u)
            .count()
    }

    fn is_fully_informed(&self, v: NodeId) -> bool {
        self.known[v as usize] as usize == self.universe
    }

    fn fully_informed_count(&self) -> usize {
        self.fully_informed
    }

    /// The pre-optimization completion check: an O(n) scan over the counters.
    fn gossip_complete(&self) -> bool {
        (0..self.states.len() as NodeId).all(|v| {
            !self.alive[v as usize] || !self.present[v as usize] || self.is_fully_informed(v)
        })
    }

    fn informed_count_of(&self, m: MessageId) -> usize {
        self.states.iter().filter(|s| s.contains(m)).count()
    }

    fn track_message(&mut self, m: MessageId) {
        assert!((m as usize) < self.universe, "message id {m} outside universe");
        self.tracked = Some(m);
    }

    /// The pre-optimization coverage query: an O(n) scan per call.
    fn tracked_informed_count(&self) -> usize {
        let m = self.tracked.expect("no tracked message; call track_message first");
        self.informed_count_of(m)
    }

    /// Mirrors [`crate::Simulation::inject_rumor`] exactly: the expiry guard
    /// and injected flag first, then the liveness check, then the insert.
    fn inject_rumor(&mut self, source: NodeId, m: MessageId) -> bool {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        if self.streaming {
            if self.expired[m as usize] {
                return false;
            }
            self.injected[m as usize] = true;
        }
        if !self.alive[source as usize] || !self.present[source as usize] {
            return false;
        }
        let newly = self.states[source as usize].insert(m);
        if newly {
            self.bump_known(source, 1);
        }
        newly
    }

    /// Mirrors [`crate::Simulation::expire_rumor`] with the pre-optimization
    /// bookkeeping: an O(n) removal scan, no incremental per-rumor counts.
    fn expire_rumor(&mut self, m: MessageId) {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        if self.streaming {
            if self.expired[m as usize] {
                return;
            }
            self.expired[m as usize] = true;
        }
        for v in 0..self.states.len() {
            if self.states[v].remove(m) {
                if self.known[v] as usize == self.universe {
                    self.fully_informed -= 1;
                }
                self.known[v] -= 1;
            }
        }
    }

    fn schedule_injection(&mut self, round: u64, source: NodeId, m: MessageId) {
        self.push_event(LivenessEvent {
            round,
            kind: LivenessKind::Inject { source, rumor: m },
            nodes: Vec::new(),
        });
    }

    fn schedule_expiry(&mut self, round: u64, m: MessageId) {
        self.push_event(LivenessEvent {
            round,
            kind: LivenessKind::Expire { rumor: m },
            nodes: Vec::new(),
        });
    }

    /// The pre-optimization per-rumor coverage query: an O(n) scan, where
    /// the packed engine answers from an incrementally maintained counter.
    fn rumor_informed_count(&self, m: MessageId) -> usize {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        self.informed_count_of(m)
    }

    fn rumor_injected(&self, m: MessageId) -> bool {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        !self.streaming || self.injected[m as usize]
    }

    fn rumor_expired(&self, m: MessageId) -> bool {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        self.streaming && self.expired[m as usize]
    }

    fn fail_nodes(&mut self, nodes: &[NodeId]) {
        for &v in nodes {
            if std::mem::replace(&mut self.alive[v as usize], false) {
                self.alive_count -= 1;
            }
        }
    }

    fn kill_nodes(&mut self, nodes: &[NodeId]) {
        for &v in nodes {
            if std::mem::replace(&mut self.present[v as usize], false) {
                self.departed_count += 1;
            }
        }
    }

    fn revive_nodes(&mut self, nodes: &[NodeId]) {
        for &v in nodes {
            if !std::mem::replace(&mut self.present[v as usize], true) {
                self.departed_count -= 1;
            }
        }
    }

    fn schedule_kill(&mut self, round: u64, nodes: Vec<NodeId>) {
        self.push_event(LivenessEvent { round, kind: LivenessKind::Kill, nodes });
    }

    fn schedule_revive(&mut self, round: u64, nodes: Vec<NodeId>) {
        self.push_event(LivenessEvent { round, kind: LivenessKind::Revive, nodes });
    }

    fn schedule_crash(&mut self, round: u64, nodes: Vec<NodeId>) {
        self.push_event(LivenessEvent { round, kind: LivenessKind::Crash, nodes });
    }

    fn schedule_edge_outage(&mut self, round: u64, slots: Vec<NodeId>) {
        self.push_event(LivenessEvent { round, kind: LivenessKind::EdgeOutage, nodes: slots });
    }

    fn apply_due_events(&mut self) {
        Self::apply_due_events(self)
    }

    fn set_byzantine(&mut self, nodes: &[NodeId]) {
        for &v in nodes {
            if !self.byzantine[v as usize] {
                self.byzantine[v as usize] = true;
                self.byzantine_count += 1;
            }
        }
    }

    fn is_byzantine(&self, v: NodeId) -> bool {
        self.byzantine[v as usize]
    }

    fn byzantine_count(&self) -> usize {
        self.byzantine_count
    }

    fn set_loss_probability(&mut self, p: f64) {
        assert!(p.is_finite() && (0.0..1.0).contains(&p), "loss probability must lie in [0, 1)");
        self.loss_probability = p;
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use rpc_graphs::prelude::*;

    /// Drives both engines through an identical mixed workload — channel
    /// openings under churn, lossy deliveries, scheduled events, absorbs —
    /// and asserts bit-identical observable state after every step.
    #[test]
    fn unpacked_engine_mirrors_the_packed_engine_step_for_step() {
        let n = 150usize; // not a multiple of 64
        let g = ErdosRenyi::with_expected_degree(n, 9.0).generate(17);
        let mut packed = Simulation::new(&g, 23).with_loss_probability(0.2);
        let mut unpacked = UnpackedSimulation::new(&g, 23);
        unpacked.set_loss_probability(0.2);
        for sim in [&mut packed as &mut dyn Engine, &mut unpacked as &mut dyn Engine] {
            sim.schedule_kill(2, vec![5, 6, 7]);
            sim.schedule_revive(5, vec![5, 6]);
            sim.schedule_crash(7, vec![10, 11]);
            sim.track_message(3);
        }
        for round in 0..12u64 {
            let mut transfers_p = Vec::new();
            let mut transfers_u = Vec::new();
            for v in 0..n as NodeId {
                let a = packed.open_channel(v);
                let b = unpacked.open_channel(v);
                assert_eq!(a, b, "channel choice diverged at round {round}, node {v}");
                if let Some(u) = a {
                    transfers_p.push(Transfer::new(v, u));
                    transfers_p.push(Transfer::new(u, v));
                    transfers_u.push(Transfer::new(v, u));
                    transfers_u.push(Transfer::new(u, v));
                }
            }
            let added_p = packed.deliver(&transfers_p);
            let added_u = unpacked.deliver(&transfers_u);
            assert_eq!(added_p, added_u, "delivery diverged at round {round}");
            packed.metrics_mut().finish_round();
            unpacked.metrics_mut().finish_round();
            assert_eq!(packed.fully_informed_count(), unpacked.fully_informed_count());
            assert_eq!(packed.tracked_informed_count(), unpacked.tracked_informed_count());
            assert_eq!(packed.gossip_complete(), unpacked.gossip_complete());
            assert_eq!(packed.participating_count(), unpacked.participating_count());
            assert_eq!(
                packed.participating_informed_count(),
                unpacked.participating_informed_count()
            );
            assert_eq!(packed.metrics().total_packets(), unpacked.metrics().total_packets());
        }
        for v in 0..n as NodeId {
            assert_eq!(Engine::state(&packed, v), Engine::state(&unpacked, v), "state of {v}");
        }
    }

    #[test]
    fn open_avoid_draws_match_under_churn() {
        let g = RandomRegular::new(60, 6).generate(3);
        let mut packed = Simulation::new(&g, 9);
        let mut unpacked = UnpackedSimulation::new(&g, 9);
        packed.kill_nodes(&[1, 2, 3, 4, 5]);
        Engine::kill_nodes(&mut unpacked, &[1, 2, 3, 4, 5]);
        for v in 0..60 {
            let avoid = [(v + 1) % 60, (v + 2) % 60];
            assert_eq!(
                packed.open_channel_avoiding(v, &avoid),
                unpacked.open_channel_avoiding(v, &avoid),
                "open-avoid diverged for node {v}"
            );
        }
    }

    /// Byzantine senders and a scheduled edge outage exercise the new
    /// hostile-environment paths in both engines at once; every draw must
    /// stay in lockstep including the per-slot edge eligibility checks.
    #[test]
    fn hostile_dimensions_stay_in_lockstep_across_engines() {
        let n = 90usize;
        let g = ErdosRenyi::with_expected_degree(n, 8.0).generate(41);
        // Take down one directed slot of roughly every fourth edge.
        let down: Vec<NodeId> = (0..g.num_edge_slots()).step_by(4).map(|s| s as NodeId).collect();
        let mut packed = Simulation::new(&g, 77).with_loss_probability(0.1);
        let mut unpacked = UnpackedSimulation::new(&g, 77);
        unpacked.set_loss_probability(0.1);
        for sim in [&mut packed as &mut dyn Engine, &mut unpacked as &mut dyn Engine] {
            sim.set_byzantine(&[3, 4, 5, 6]);
            sim.schedule_edge_outage(2, down.clone());
            sim.schedule_kill(4, vec![10, 11]);
            sim.schedule_edge_outage(6, Vec::new()); // full topology restored
        }
        for round in 0..10u64 {
            let mut transfers = Vec::new();
            for v in 0..n as NodeId {
                let a = packed.open_channel(v);
                let b = unpacked.open_channel(v);
                assert_eq!(a, b, "channel choice diverged at round {round}, node {v}");
                if let Some(u) = a {
                    transfers.push(Transfer::new(v, u));
                    transfers.push(Transfer::new(u, v));
                }
            }
            assert_eq!(packed.deliver(&transfers), unpacked.deliver(&transfers));
            packed.metrics_mut().finish_round();
            unpacked.metrics_mut().finish_round();
            assert_eq!(packed.metrics().total_packets(), unpacked.metrics().total_packets());
            assert_eq!(packed.fully_informed_count(), unpacked.fully_informed_count());
        }
        for v in 0..n as NodeId {
            assert_eq!(Engine::state(&packed, v), Engine::state(&unpacked, v), "state of {v}");
        }
        // A Byzantine node sent nothing in either engine.
        for &b in &[3u32, 4, 5, 6] {
            assert_eq!(packed.metrics().packets_per_node()[b as usize], 0);
            assert_eq!(unpacked.metrics().packets_per_node()[b as usize], 0);
        }
    }

    /// Streaming lockstep: scheduled injections and expiries under loss and
    /// churn must leave both engines with bit-identical states, per-rumor
    /// counts and flags — the engine-level half of the injection contract
    /// (neither engine draws for injections; schedules are data).
    #[test]
    fn streaming_injections_stay_in_lockstep_across_engines() {
        let n = 120usize;
        let universe = 24usize;
        let g = ErdosRenyi::with_expected_degree(n, 9.0).generate(29);
        let mut packed = Simulation::new_streaming(&g, 31, universe).with_loss_probability(0.15);
        let mut unpacked = UnpackedSimulation::new_streaming(&g, 31, universe);
        unpacked.set_loss_probability(0.15);
        for sim in [&mut packed as &mut dyn Engine, &mut unpacked as &mut dyn Engine] {
            for m in 0..universe as u32 {
                sim.schedule_injection(m as u64 % 6, ((m * 11) % n as u32) as NodeId, m);
            }
            sim.schedule_expiry(5, 2);
            sim.schedule_expiry(8, 7);
            sim.schedule_kill(3, vec![4, 5]);
            sim.schedule_crash(6, vec![9]);
            sim.track_message(0);
        }
        for round in 0..14u64 {
            let mut transfers = Vec::new();
            for v in 0..n as NodeId {
                let a = packed.open_channel(v);
                let b = unpacked.open_channel(v);
                assert_eq!(a, b, "channel choice diverged at round {round}, node {v}");
                if let Some(u) = a {
                    transfers.push(Transfer::new(v, u));
                    transfers.push(Transfer::new(u, v));
                }
            }
            assert_eq!(
                packed.deliver(&transfers),
                unpacked.deliver(&transfers),
                "delivery diverged at round {round}"
            );
            packed.metrics_mut().finish_round();
            unpacked.metrics_mut().finish_round();
            for m in 0..universe as u32 {
                assert_eq!(
                    packed.rumor_informed_count(m),
                    unpacked.rumor_informed_count(m),
                    "per-rumor count diverged at round {round}, rumor {m}"
                );
                assert_eq!(packed.rumor_injected(m), unpacked.rumor_injected(m));
                assert_eq!(packed.rumor_expired(m), unpacked.rumor_expired(m));
                assert_eq!(packed.rumor_complete(m), unpacked.rumor_complete(m));
            }
            assert_eq!(packed.fully_informed_count(), unpacked.fully_informed_count());
            assert_eq!(packed.tracked_informed_count(), unpacked.tracked_informed_count());
        }
        for v in 0..n as NodeId {
            assert_eq!(Engine::state(&packed, v), Engine::state(&unpacked, v), "state of {v}");
        }
        assert!(packed.rumor_expired(2) && packed.rumor_expired(7));
        assert_eq!(packed.rumor_informed_count(2), 0, "expired rumor never reappears");
    }

    #[test]
    fn dense_mask_fallback_matches_packed_fallback() {
        // Kill all but one neighbor so rejection sampling usually fails and
        // both engines take their exact fallback path.
        let g = CompleteGraph::new(40).generate(0);
        let mut packed = Simulation::new(&g, 4);
        let mut unpacked = UnpackedSimulation::new(&g, 4);
        let departed: Vec<NodeId> = (2..40).collect();
        packed.kill_nodes(&departed);
        Engine::kill_nodes(&mut unpacked, &departed);
        for _ in 0..50 {
            assert_eq!(packed.open_channel(0), unpacked.open_channel(0));
        }
        // With every neighbor departed, both report isolation identically.
        packed.kill_nodes(&[1]);
        Engine::kill_nodes(&mut unpacked, &[1]);
        assert_eq!(packed.open_channel(0), None);
        assert_eq!(unpacked.open_channel(0), None);
    }
}
