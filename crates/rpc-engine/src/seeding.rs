//! Deterministic seed derivation shared by every replication harness.
//!
//! Monte Carlo drivers need one independent seed per `(scenario, replication)`
//! cell, and the assignment must not depend on how the work is distributed
//! across threads. [`derive_seed`] feeds the coordinates through SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014), the standard seed-stretching finalizer:
//! consecutive indices land on uncorrelated 64-bit values, so the derived
//! seeds are safe to hand to [`rand::rngs::SmallRng`] even when the base seed
//! and the indices are tiny integers like `0, 1, 2, …`.

/// The SplitMix64 finalizer: a bijective avalanche mix of one 64-bit word.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed for replication `replication_idx` of scenario
/// `scenario_idx` from `base_seed`.
///
/// The derivation is a fixed function of the three coordinates — it does not
/// depend on thread count, iteration order, or any global state — so batch
/// drivers can fan replications out across any number of workers and still
/// reproduce results bit-for-bit.
pub fn derive_seed(base_seed: u64, scenario_idx: u64, replication_idx: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(base_seed) ^ scenario_idx) ^ replication_idx)
}

/// Hashes an arbitrary byte string to one well-mixed 64-bit value (FNV-1a
/// folded through [`splitmix64`]).
///
/// Sweep harnesses key their cells by stable *names* (`"fig1/n=1024/…"`)
/// rather than by grid position, so that inserting or caching cells never
/// reassigns seeds; this helper turns such a key into the `scenario_idx`
/// coordinate of [`derive_seed`]. Like `derive_seed` it is a pure function of
/// its input — no global state, no platform dependence.
pub fn hash_key(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference values from the public-domain SplitMix64 implementation
        // (Vigna), seed 1234567 and 0.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1234567), 0x599e_d017_fb08_fc85);
    }

    #[test]
    fn derived_seeds_are_distinct_across_the_grid() {
        let mut seen = HashSet::new();
        for base in [0u64, 1, 42] {
            for s in 0..16u64 {
                for r in 0..16u64 {
                    seen.insert(derive_seed(base, s, r));
                }
            }
        }
        assert_eq!(seen.len(), 3 * 16 * 16, "seed collisions in a small grid");
    }

    #[test]
    fn derivation_is_a_pure_function_of_coordinates() {
        assert_eq!(derive_seed(7, 3, 9), derive_seed(7, 3, 9));
        assert_ne!(derive_seed(7, 3, 9), derive_seed(7, 9, 3), "coordinates must not commute");
        assert_ne!(derive_seed(7, 0, 0), derive_seed(8, 0, 0));
    }

    #[test]
    fn key_hashes_are_stable_and_distinct() {
        assert_eq!(hash_key(b"fig1/n=1024"), hash_key(b"fig1/n=1024"));
        let keys = ["", "a", "b", "ab", "ba", "fig1/n=1024", "fig1/n=2048"];
        let hashed: HashSet<u64> = keys.iter().map(|k| hash_key(k.as_bytes())).collect();
        assert_eq!(hashed.len(), keys.len(), "collisions among distinct keys");
    }
}
