//! The synchronous random phone call simulation state.
//!
//! A [`Simulation`] bundles the network graph, every node's current combined
//! message, the liveness masks used by the failure and churn models, the
//! communication metrics and the random source. Algorithms drive it with three
//! primitives:
//!
//! 1. [`Simulation::open_channel`] / [`Simulation::open_channel_avoiding`] —
//!    "in each step every node opens a communication channel to a randomly
//!    chosen neighbor" (Section 2), optionally avoiding remembered contacts
//!    (Section 4);
//! 2. [`Simulation::deliver`] — applies a batch of push/pull packet transfers
//!    for one synchronous step;
//! 3. [`Simulation::absorb`] — merges an arbitrary message set into one node
//!    (used for random-walk tokens, whose payload travels separately from the
//!    node states).
//!
//! Delivery obeys the model's timing: all packets of a step are computed from
//! the senders' states *at the beginning of the step* ("`m_v(t)` is the union
//! of all messages received in steps `< t`"). See [`DeliverySemantics`].
//!
//! ## The packed hot path
//!
//! All per-node boolean bookkeeping is packed into [`BitSet`]s — `alive`
//! (not crashed), `present` (not churned out) and `full` (fully informed) —
//! so the per-round control questions are word-parallel:
//!
//! * the completion check walks `(alive ∧ present) ∧ ¬full` one word at a
//!   time instead of scanning `n` counters ([`Simulation::gossip_complete`]);
//! * neighbor sampling under churn tests the presence mask with a shift and
//!   an AND per candidate (`Graph::random_neighbor_masked` consumes
//!   [`BitSet::words`] directly);
//! * coverage queries for a tracked rumor are maintained incrementally and
//!   answered from a popcount-backed counter
//!   ([`Simulation::tracked_informed_count`]).
//!
//! Delivery itself is allocation-free in steady state: the effective-transfer
//! buffer, the counting-sort buckets, and the kernel buffers (see
//! [`crate::parallel`] for the three delivery kernels) are pooled and reused
//! across rounds, and receivers that are already fully informed (or crashed)
//! are dropped before any kernel work happens. Once the state table outgrows
//! the CPU caches, the sequential path additionally processes receivers in
//! *sender-chain order* and commits each node eagerly as soon as its last
//! pending reader has been computed — the begin-of-step snapshot semantics
//! are preserved exactly, but the base state and the pooled output buffer of
//! a fused update are then usually cache-hot instead of cold DRAM reads
//! (see [`crate::parallel`] for the scheduling details).
//!
//! The unoptimized PR 2 implementation of this type survives as
//! [`crate::reference::UnpackedSimulation`] — same API, same RNG draw
//! sequence, `Vec<bool>` bookkeeping — and serves as the correctness oracle
//! and benchmark baseline for this hot path.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rpc_graphs::{Graph, NodeId};

use crate::bitset::{any_and2_not, count_and3, BitSet};
use crate::message::{MessageId, MessageSet};
use crate::metrics::Metrics;
use crate::parallel::{
    cache_resident, chain_order, classify_dispatch, compute_one_update, compute_updates,
    group_by_receiver, UpdatePayload, UpdatePools,
};

/// How packet deliveries within one synchronous step are applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeliverySemantics {
    /// Faithful to the model: every packet of the step carries the sender's
    /// combined message as it was at the *beginning* of the step; messages
    /// received in step `t` become usable in step `t + 1`. (Default.)
    #[default]
    Deferred,
    /// Packets are applied one by one in submission order, so a message can
    /// traverse several hops within a single step. Cheaper (no staging
    /// buffers) and useful for quick exploration, but slightly optimistic
    /// about round counts.
    Immediate,
}

/// A single packet transfer: `from` sends its current combined message to `to`.
///
/// Whether this is a *push* (sender opened the channel) or a *pull* (receiver
/// opened the channel) only matters for the accounting, which the algorithms
/// perform via [`Metrics`]; the engine treats both identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

impl Transfer {
    /// Convenience constructor.
    pub fn new(from: NodeId, to: NodeId) -> Self {
        Self { from, to }
    }
}

/// What a scheduled liveness event does to its node set. Kept private: users
/// go through [`Simulation::schedule_kill`] / [`Simulation::schedule_revive`]
/// / [`Simulation::schedule_crash`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LivenessKind {
    /// Churn out: the nodes leave the network entirely.
    Kill,
    /// Churn in: previously departed nodes rejoin with their old state.
    Revive,
    /// Crash: the paper's failure model — the nodes stay addressable but
    /// neither transmit nor store (Section 5).
    Crash,
    /// Edge-churn wave: the event's `nodes` are CSR edge *slot* indices
    /// (see `Graph::edge_slot_range`), not node ids. The listed slots go
    /// down, **replacing** the previously down set — edges from earlier
    /// waves implicitly come back up.
    EdgeOutage,
    /// Rumor injection: `rumor` enters the network at node `source`
    /// (see [`Simulation::inject_rumor`]). The event's `nodes` list is empty.
    Inject { source: NodeId, rumor: MessageId },
    /// Rumor TTL expiry: `rumor` is removed from every node's state
    /// (see [`Simulation::expire_rumor`]). The event's `nodes` list is empty.
    Expire { rumor: MessageId },
}

/// A liveness change applied at the start of the given round.
#[derive(Clone, Debug)]
pub(crate) struct LivenessEvent {
    pub(crate) round: u64,
    pub(crate) kind: LivenessKind,
    pub(crate) nodes: Vec<NodeId>,
}

/// Per-rumor bookkeeping of a *streaming* simulation: informed counts
/// maintained incrementally by every delivery path, plus injection and
/// expiry flags. Only present on simulations built via
/// [`Simulation::new_streaming`] / [`SimulationArena::checkout_streaming`];
/// the classic gossiping configuration pays one `Option` check per commit
/// and nothing else.
#[derive(Clone, Debug)]
pub(crate) struct RumorSpace {
    /// `counts[m]` = number of node states containing rumor `m` (the paper's
    /// `|I_m(t)|` per rumor, maintained so coverage queries are O(1)).
    counts: Vec<u32>,
    /// Whether rumor `m` has ever been injected.
    injected: Vec<bool>,
    /// Whether rumor `m` has expired; an expired rumor is rejected by
    /// [`Simulation::inject_rumor`] forever.
    expired: Vec<bool>,
}

impl RumorSpace {
    fn new(universe: usize) -> Self {
        Self {
            counts: vec![0; universe],
            injected: vec![false; universe],
            expired: vec![false; universe],
        }
    }

    fn reset(&mut self, universe: usize) {
        self.counts.clear();
        self.counts.resize(universe, 0);
        self.injected.clear();
        self.injected.resize(universe, false);
        self.expired.clear();
        self.expired.resize(universe, false);
    }

    /// Credits every rumor whose bit is set in `new` but not in `old`
    /// (one node just gained it). `old` and `new` are the packed words of
    /// one node's state before and after a union.
    fn count_gains(&mut self, old: &[u64], new: &[u64]) {
        for (wi, (&o, &nw)) in old.iter().zip(new.iter()).enumerate() {
            self.record_word_gain(wi, nw & !o);
        }
    }

    /// Credits each rumor in `new_bits` — the bits of packed word `wi` that
    /// one node newly learned.
    fn record_word_gain(&mut self, wi: usize, mut new_bits: u64) {
        while new_bits != 0 {
            let b = new_bits.trailing_zeros() as usize;
            new_bits &= new_bits - 1;
            self.counts[wi * 64 + b] += 1;
        }
    }
}

/// Incrementally maintained knowledge of one tracked original message.
#[derive(Clone, Debug)]
struct TrackedRumor {
    id: MessageId,
    /// Which nodes know the rumor — kept in lockstep with the states.
    knowers: BitSet,
    /// `knowers.count_ones()`, maintained incrementally so coverage stop
    /// rules are O(1) per round.
    count: usize,
}

/// The mutable state of one simulation run.
#[derive(Debug)]
pub struct Simulation<'g> {
    graph: &'g Graph,
    states: Vec<MessageSet>,
    known: Vec<u32>,
    /// Size of the message universe the states range over. Equal to the node
    /// count in the classic gossiping start configuration; decoupled from it
    /// in streaming mode (see [`Simulation::new_streaming`]).
    universe: usize,
    /// Per-rumor informed counts and injection/expiry flags; `Some` exactly
    /// on streaming simulations.
    rumors: Option<RumorSpace>,
    /// Snapshot of one node's packed words taken before a whole-set union so
    /// the per-rumor counts can be updated from the word diff (streaming
    /// simulations only).
    rumor_diff_scratch: Vec<u64>,
    alive: BitSet,
    alive_count: usize,
    /// Churn mask: a cleared bit means the node has departed the network.
    /// Unlike a crashed node (cleared `alive` bit), a departed node is also
    /// excluded from its neighbors' channel selection.
    present: BitSet,
    departed_count: usize,
    /// Fully informed nodes (`known[v] == universe`), maintained by
    /// `bump_known` so the completion check is word-parallel.
    full: BitSet,
    fully_informed: usize,
    tracked: Option<TrackedRumor>,
    metrics: Metrics,
    rng: SmallRng,
    semantics: DeliverySemantics,
    threads: usize,
    /// Per-packet loss probability applied inside [`Simulation::deliver`].
    loss_probability: f64,
    /// Scheduled liveness events, sorted by round; `next_event` is the cursor
    /// into the already-applied prefix.
    schedule: Vec<LivenessEvent>,
    next_event: usize,
    /// Reusable buffers for the delivery kernels (see [`crate::parallel`]);
    /// the commit swaps replacement buffers into the state table and returns
    /// the previous states here.
    update_pools: UpdatePools,
    /// Reusable effective-transfer buffer for [`Simulation::deliver`].
    transfer_scratch: Vec<Transfer>,
    /// Reusable receiver-grouped transfer buffer (counting-sort output).
    grouped_scratch: Vec<Transfer>,
    /// Reusable per-node counters for the counting sort.
    bucket_scratch: Vec<u32>,
    /// Reusable per-node pending-reader counters for the eager sequential
    /// commit (how many not-yet-computed receivers still read this node's
    /// begin-of-step state).
    reader_scratch: Vec<u32>,
    /// Reusable per-node stash of computed-but-not-yet-committable payloads
    /// for the eager sequential commit.
    pending_scratch: Vec<Option<UpdatePayload>>,
    /// Reusable staging list of the scalar small-n delivery kernel:
    /// `(receiver, newly-learned count, complete next state)` per receiver,
    /// drained by the swap-commit phase.
    scalar_scratch: Vec<(NodeId, usize, MessageSet)>,
    /// Behaviour mask: a set bit marks a Byzantine node that silently drops
    /// every packet it should send while still opening channels and
    /// receiving normally.
    byzantine: BitSet,
    byzantine_count: usize,
    /// Edge presence mask over the graph's CSR edge slots: a cleared bit
    /// means the directed slot is down and excluded from channel selection.
    /// Only consulted while `edge_down_count > 0`, so it is sized lazily by
    /// [`Self::apply_edge_outage`] and may hold stale bits otherwise.
    edge_up: BitSet,
    edge_down_count: usize,
}

/// XOR salt folded into every engine seed, shared by [`Simulation::new`],
/// [`Simulation::reset`] and the unpacked oracle so all construction paths
/// seed identically.
pub(crate) const RNG_SEED_SALT: u64 = 0xd1b5_4a32_d192_ed03;

impl<'g> Simulation<'g> {
    /// Creates a simulation in the gossiping start configuration: node `v`
    /// knows exactly its own original message `m_v = {v}`.
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        let n = graph.num_nodes();
        let states = (0..n).map(|v| MessageSet::singleton(n, v as MessageId)).collect();
        Self {
            graph,
            states,
            known: vec![1; n],
            universe: n,
            rumors: None,
            rumor_diff_scratch: Vec::new(),
            alive: BitSet::new_full(n),
            alive_count: n,
            present: BitSet::new_full(n),
            departed_count: 0,
            full: if n <= 1 { BitSet::new_full(n) } else { BitSet::new(n) },
            fully_informed: if n <= 1 { n } else { 0 },
            tracked: None,
            metrics: Metrics::new(n),
            rng: SmallRng::seed_from_u64(seed ^ RNG_SEED_SALT),
            semantics: DeliverySemantics::Deferred,
            threads: 1,
            loss_probability: 0.0,
            schedule: Vec::new(),
            next_event: 0,
            update_pools: UpdatePools::default(),
            transfer_scratch: Vec::new(),
            grouped_scratch: Vec::new(),
            bucket_scratch: Vec::new(),
            reader_scratch: Vec::new(),
            pending_scratch: Vec::new(),
            scalar_scratch: Vec::new(),
            byzantine: BitSet::new(n),
            byzantine_count: 0,
            edge_up: BitSet::new(0),
            edge_down_count: 0,
        }
    }

    /// Creates a simulation in the *streaming* start configuration: the
    /// message universe holds `universe` rumors, decoupled from the node
    /// count, and every node starts knowing nothing. Rumors enter the
    /// network via [`Self::inject_rumor`] / [`Self::schedule_injection`] and
    /// spread through the ordinary delivery paths — the word-parallel
    /// kernels are rumor-agnostic and unchanged. Per-rumor informed counts
    /// ([`Self::rumor_informed_count`]) are maintained incrementally.
    ///
    /// Seeding matches [`Simulation::new`] bit for bit; a streaming
    /// simulation draws nothing extra from the RNG.
    pub fn new_streaming(graph: &'g Graph, seed: u64, universe: usize) -> Self {
        let n = graph.num_nodes();
        let states = (0..n).map(|_| MessageSet::empty(universe)).collect();
        Self {
            graph,
            states,
            known: vec![0; n],
            universe,
            rumors: Some(RumorSpace::new(universe)),
            rumor_diff_scratch: Vec::new(),
            alive: BitSet::new_full(n),
            alive_count: n,
            present: BitSet::new_full(n),
            departed_count: 0,
            // An empty universe leaves nothing to learn: everyone is
            // vacuously fully informed from the start.
            full: if universe == 0 { BitSet::new_full(n) } else { BitSet::new(n) },
            fully_informed: if universe == 0 { n } else { 0 },
            tracked: None,
            metrics: Metrics::new(n),
            rng: SmallRng::seed_from_u64(seed ^ RNG_SEED_SALT),
            semantics: DeliverySemantics::Deferred,
            threads: 1,
            loss_probability: 0.0,
            schedule: Vec::new(),
            next_event: 0,
            update_pools: UpdatePools::default(),
            transfer_scratch: Vec::new(),
            grouped_scratch: Vec::new(),
            bucket_scratch: Vec::new(),
            reader_scratch: Vec::new(),
            pending_scratch: Vec::new(),
            scalar_scratch: Vec::new(),
            byzantine: BitSet::new(n),
            byzantine_count: 0,
            edge_up: BitSet::new(0),
            edge_down_count: 0,
        }
    }

    /// Resets the simulation to the gossiping start configuration of a fresh
    /// run over `graph` with `seed`, reusing every allocation it can: the
    /// state table (when the universe size is unchanged), the liveness
    /// bitsets, the metrics' per-node counters, the delivery pools and all
    /// scratch buffers survive across runs. This is what makes Monte Carlo
    /// repetitions allocation-free in steady state (see [`SimulationArena`]).
    ///
    /// Observable behaviour after `reset` is identical to
    /// `Simulation::new(graph, seed)`: same RNG stream, same start states,
    /// empty event schedule, zeroed metrics. The configuration knobs keep
    /// their builder-applied values (`threads`, delivery semantics) except
    /// the loss probability, which resets to `0.0` — like the builders, it is
    /// simply re-applicable per run via [`Self::set_loss_probability`].
    pub fn reset(&mut self, graph: &'g Graph, seed: u64) {
        self.reset_core(graph, seed, graph.num_nodes(), false);
    }

    /// Resets the simulation to the streaming start configuration of a fresh
    /// run, reusing allocations like [`Self::reset`]. Observable behaviour
    /// after `reset_streaming` is identical to
    /// `Simulation::new_streaming(graph, seed, universe)`.
    pub fn reset_streaming(&mut self, graph: &'g Graph, seed: u64, universe: usize) {
        self.reset_core(graph, seed, universe, true);
    }

    fn reset_core(&mut self, graph: &'g Graph, seed: u64, universe: usize, streaming: bool) {
        let n = graph.num_nodes();
        self.graph = graph;
        self.universe = universe;
        let same_universe = self.states.len() == n
            && self.states.first().map_or(true, |s| s.universe() == universe);
        if same_universe {
            for (v, state) in self.states.iter_mut().enumerate() {
                if streaming {
                    state.reset_empty(universe);
                } else {
                    state.reset_singleton(universe, v as MessageId);
                }
            }
        } else {
            self.states.clear();
            if streaming {
                self.states.extend((0..n).map(|_| MessageSet::empty(universe)));
            } else {
                self.states.extend((0..n).map(|v| MessageSet::singleton(universe, v as MessageId)));
            }
            // Pooled full-width buffers of the old universe no longer fit.
            self.update_pools.states.clear();
        }
        let initial_known: u32 = if streaming { 0 } else { 1 };
        self.known.clear();
        self.known.resize(n, initial_known);
        if streaming {
            let mut rs = self.rumors.take().unwrap_or_else(|| RumorSpace::new(universe));
            rs.reset(universe);
            self.rumors = Some(rs);
        } else {
            self.rumors = None;
        }
        self.alive.reset_full(n);
        self.alive_count = n;
        self.present.reset_full(n);
        self.departed_count = 0;
        if initial_known as usize == universe {
            self.full.reset_full(n);
            self.fully_informed = n;
        } else {
            self.full.reset_empty(n);
            self.fully_informed = 0;
        }
        self.tracked = None;
        self.metrics.reset(n);
        self.update_pools.stats = rpc_obs::PoolStats::default();
        self.rng = SmallRng::seed_from_u64(seed ^ RNG_SEED_SALT);
        self.loss_probability = 0.0;
        self.schedule.clear();
        self.next_event = 0;
        self.byzantine.reset_empty(n);
        self.byzantine_count = 0;
        // `edge_up` is only read while `edge_down_count > 0`, and every
        // EdgeOutage application rebuilds it at full width first, so stale
        // contents from a previous run are unobservable.
        self.edge_down_count = 0;
    }

    /// Selects the delivery semantics (default [`DeliverySemantics::Deferred`]).
    pub fn with_semantics(mut self, semantics: DeliverySemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Number of worker threads used to apply large delivery batches
    /// (default 1 = fully sequential). The result is identical regardless of
    /// the thread count; threads only speed up the bitset unions.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the per-packet message-loss probability (default `0.0`). Each
    /// packet that would be delivered is instead dropped with probability `p`,
    /// drawn from the simulation's own RNG so runs stay deterministic in the
    /// seed for any thread count. Lost packets are still counted as sent.
    ///
    /// Panics unless `p ∈ [0, 1)`.
    pub fn with_loss_probability(mut self, p: f64) -> Self {
        self.set_loss_probability(p);
        self
    }

    /// See [`Self::with_loss_probability`].
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!(p.is_finite() && (0.0..1.0).contains(&p), "loss probability must lie in [0, 1)");
        self.loss_probability = p;
    }

    /// The configured per-packet loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.states.len()
    }

    /// Size of the message universe the node states range over. Equal to
    /// [`Self::num_nodes`] in the classic gossiping configuration, decoupled
    /// from it on streaming simulations (see [`Self::new_streaming`]).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Communication metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Buffer-pool counters for this run (reset with the simulation).
    /// Sequential delivery cores only — the batch core's worker-local pools
    /// are not merged back (see [`UpdatePools`]).
    pub fn pool_stats(&self) -> rpc_obs::PoolStats {
        self.update_pools.stats
    }

    /// Mutable access to the metrics (used by algorithms for exchange
    /// accounting and phase markers).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The simulation's random source. All randomness of a run flows through
    /// this generator, so a run is fully determined by the graph and the seed.
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Current combined message of node `v`.
    pub fn state(&self, v: NodeId) -> &MessageSet {
        &self.states[v as usize]
    }

    /// Whether node `v` knows original message `m`.
    pub fn knows(&self, v: NodeId, m: MessageId) -> bool {
        self.states[v as usize].contains(m)
    }

    /// Number of original messages node `v` knows.
    pub fn num_known(&self, v: NodeId) -> usize {
        self.known[v as usize] as usize
    }

    /// Whether node `v` knows the entire message universe.
    pub fn is_fully_informed(&self, v: NodeId) -> bool {
        self.known[v as usize] as usize == self.universe
    }

    /// Number of nodes (alive or failed) that know all original messages.
    pub fn fully_informed_count(&self) -> usize {
        self.fully_informed
    }

    /// Whether every *participating* (alive and present) node knows every
    /// original message — the completion condition of the gossiping problem.
    /// Crashed and churned-out nodes are exempt.
    ///
    /// Word-parallel: walks `(alive ∧ present) ∧ ¬full` in `n / 64` steps and
    /// stops at the first word containing an uninformed participant.
    pub fn gossip_complete(&self) -> bool {
        !any_and2_not(&self.alive, &self.present, &self.full)
    }

    /// Number of nodes that know original message `m` (the paper's `|I_m(t)|`).
    /// This is an `O(n)` scan intended for tests and phase diagnostics; for a
    /// per-round coverage stop rule use [`Self::track_message`] and the O(1)
    /// [`Self::tracked_informed_count`] instead.
    pub fn informed_count_of(&self, m: MessageId) -> usize {
        self.states.iter().filter(|s| s.contains(m)).count()
    }

    /// Starts tracking original message `m` ("the rumor"): from now on the
    /// set of nodes knowing `m` is maintained incrementally alongside the
    /// deliveries, so [`Self::tracked_informed_count`] is O(1) instead of an
    /// O(n) scan per query. Tracking may be enabled at any point; the initial
    /// knower set is computed once from the current states.
    pub fn track_message(&mut self, m: MessageId) {
        let n = self.num_nodes();
        let universe = self.universe;
        assert!((m as usize) < universe, "message id {m} outside universe {universe}");
        let mut knowers = BitSet::new(n);
        let mut count = 0usize;
        for (v, state) in self.states.iter().enumerate() {
            if state.contains(m) {
                knowers.set(v);
                count += 1;
            }
        }
        self.tracked = Some(TrackedRumor { id: m, knowers, count });
    }

    /// The message id currently tracked via [`Self::track_message`], if any.
    pub fn tracked_message(&self) -> Option<MessageId> {
        self.tracked.as_ref().map(|t| t.id)
    }

    /// Number of nodes that know the tracked rumor. O(1): the count is
    /// maintained by the delivery paths. Panics if [`Self::track_message`]
    /// was never called.
    pub fn tracked_informed_count(&self) -> usize {
        self.tracked.as_ref().expect("no tracked message; call track_message first").count
    }

    /// Injects rumor `m` at node `source` immediately: the rumor becomes
    /// part of `source`'s combined message and spreads through the ordinary
    /// delivery paths from the next packet on. Returns `true` if the node
    /// newly learned the rumor. Injection into a crashed or departed node is
    /// dropped (the arrival is recorded, nothing is stored), and a
    /// TTL-expired rumor is never re-injected. Draws nothing from the RNG —
    /// callers sample sources and timing from their own stream, which is
    /// what keeps both engines in RNG lockstep.
    pub fn inject_rumor(&mut self, source: NodeId, m: MessageId) -> bool {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        if let Some(rs) = &mut self.rumors {
            if rs.expired[m as usize] {
                return false;
            }
            rs.injected[m as usize] = true;
        }
        if !self.alive.get(source as usize) || !self.present.get(source as usize) {
            return false;
        }
        let newly = self.states[source as usize].insert(m);
        if newly {
            if let Some(rs) = &mut self.rumors {
                rs.counts[m as usize] += 1;
            }
            self.bump_known(source, 1);
            self.refresh_tracked(source);
        }
        newly
    }

    /// Expires rumor `m`: removes it from every node's combined message and
    /// zeroes its informed count. An expired rumor can never reappear — the
    /// removal is global, so no copy survives to spread, and subsequent
    /// [`Self::inject_rumor`] calls for it are rejected. Nodes that were
    /// fully informed lose that status permanently (the rumor no longer
    /// exists to be re-learned).
    pub fn expire_rumor(&mut self, m: MessageId) {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        if let Some(rs) = &mut self.rumors {
            if rs.expired[m as usize] {
                return;
            }
            rs.expired[m as usize] = true;
            rs.counts[m as usize] = 0;
        }
        let universe = self.universe;
        for v in 0..self.states.len() {
            if self.states[v].remove(m) {
                if self.known[v] as usize == universe && self.full.clear_bit(v) {
                    self.fully_informed -= 1;
                }
                self.known[v] -= 1;
            }
        }
        if let Some(t) = &mut self.tracked {
            if t.id == m {
                t.knowers.reset_empty(self.states.len());
                t.count = 0;
            }
        }
    }

    /// Number of nodes whose combined message contains rumor `m` — the
    /// paper's `|I_m(t)|`, per rumor. O(1) on streaming simulations (the
    /// delivery paths maintain the count incrementally); falls back to the
    /// O(n) scan of [`Self::informed_count_of`] otherwise.
    pub fn rumor_informed_count(&self, m: MessageId) -> usize {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        match &self.rumors {
            Some(rs) => rs.counts[m as usize] as usize,
            None => self.informed_count_of(m),
        }
    }

    /// Whether rumor `m` has been injected. In the classic configuration
    /// every original message is present from round 0, so this is `true`.
    pub fn rumor_injected(&self, m: MessageId) -> bool {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        self.rumors.as_ref().map_or(true, |rs| rs.injected[m as usize])
    }

    /// Whether rumor `m` has expired (its TTL ran out).
    pub fn rumor_expired(&self, m: MessageId) -> bool {
        assert!((m as usize) < self.universe, "message id {m} outside universe {}", self.universe);
        self.rumors.as_ref().is_some_and(|rs| rs.expired[m as usize])
    }

    /// Whether node `v` is alive (has not failed).
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive.get(v as usize)
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Marks the given nodes as failed. Failed nodes do not open channels, do
    /// not transmit and do not store incoming messages (Section 5).
    pub fn fail_nodes(&mut self, nodes: &[NodeId]) {
        for &v in nodes {
            if self.alive.clear_bit(v as usize) {
                self.alive_count -= 1;
            }
        }
    }

    /// Whether node `v` is present (has not churned out of the network).
    pub fn is_present(&self, v: NodeId) -> bool {
        self.present.get(v as usize)
    }

    /// Number of present nodes.
    pub fn present_count(&self) -> usize {
        self.num_nodes() - self.departed_count
    }

    /// Whether node `v` currently participates in the protocol: it is alive
    /// (not crashed) and present (not churned out).
    pub fn is_participating(&self, v: NodeId) -> bool {
        self.alive.get(v as usize) && self.present.get(v as usize)
    }

    /// Number of participating (alive and present) nodes — one popcount pass
    /// over `alive ∧ present`.
    pub fn participating_count(&self) -> usize {
        self.alive.intersection_count(&self.present)
    }

    /// Number of participating nodes that are fully informed — one popcount
    /// pass over `alive ∧ present ∧ full`.
    pub fn participating_informed_count(&self) -> usize {
        count_and3(&self.alive, &self.present, &self.full)
    }

    /// Churns the given nodes out of the network immediately. A departed node
    /// opens no channels, neither sends nor receives any packet, and — unlike
    /// a crashed node — is excluded from its neighbors' channel selection, as
    /// if its edges were removed (the CSR adjacency itself stays immutable).
    pub fn kill_nodes(&mut self, nodes: &[NodeId]) {
        for &v in nodes {
            if self.present.clear_bit(v as usize) {
                self.departed_count += 1;
            }
        }
    }

    /// Brings previously departed nodes back into the network. A revived node
    /// keeps the combined message it had when it left; reviving a node that
    /// never departed is a no-op.
    pub fn revive_nodes(&mut self, nodes: &[NodeId]) {
        for &v in nodes {
            if self.present.set(v as usize) {
                self.departed_count -= 1;
            }
        }
    }

    /// Schedules the given nodes to churn out at the start of round `round`
    /// (rounds are counted by [`Metrics::finish_round`], so round `r` is the
    /// step executed after `r` completed rounds).
    pub fn schedule_kill(&mut self, round: u64, nodes: Vec<NodeId>) {
        self.push_event(LivenessEvent { round, kind: LivenessKind::Kill, nodes });
    }

    /// Schedules previously departed nodes to rejoin at the start of round
    /// `round`.
    pub fn schedule_revive(&mut self, round: u64, nodes: Vec<NodeId>) {
        self.push_event(LivenessEvent { round, kind: LivenessKind::Revive, nodes });
    }

    /// Schedules the given nodes to crash (the paper's failure model: still
    /// addressable, but neither transmitting nor storing) at the start of
    /// round `round`.
    pub fn schedule_crash(&mut self, round: u64, nodes: Vec<NodeId>) {
        self.push_event(LivenessEvent { round, kind: LivenessKind::Crash, nodes });
    }

    /// Schedules an edge-churn wave at the start of round `round`: the given
    /// CSR edge slots (see [`Graph::edge_slot_range`]) go down, replacing any
    /// previously down set. Passing an empty slot list restores the full
    /// topology.
    pub fn schedule_edge_outage(&mut self, round: u64, slots: Vec<NodeId>) {
        self.push_event(LivenessEvent { round, kind: LivenessKind::EdgeOutage, nodes: slots });
    }

    /// Schedules rumor `m` to be injected at node `source` at the start of
    /// round `round` (see [`Self::inject_rumor`]). Events scheduled for the
    /// same round apply in insertion order, so callers that schedule
    /// environment events first keep them ahead of the injections.
    pub fn schedule_injection(&mut self, round: u64, source: NodeId, m: MessageId) {
        self.push_event(LivenessEvent {
            round,
            kind: LivenessKind::Inject { source, rumor: m },
            nodes: Vec::new(),
        });
    }

    /// Schedules rumor `m` to expire at the start of round `round`
    /// (see [`Self::expire_rumor`]).
    pub fn schedule_expiry(&mut self, round: u64, m: MessageId) {
        self.push_event(LivenessEvent {
            round,
            kind: LivenessKind::Expire { rumor: m },
            nodes: Vec::new(),
        });
    }

    /// Takes the given CSR edge slots down immediately, replacing any
    /// previously down set. Down slots are excluded from channel selection in
    /// both directions independently (callers pass both directed slots of an
    /// undirected edge to sever it symmetrically).
    pub fn apply_edge_outage(&mut self, slots: &[NodeId]) {
        self.edge_up.reset_full(self.graph.num_edge_slots());
        let mut down = 0usize;
        for &slot in slots {
            if self.edge_up.clear_bit(slot as usize) {
                down += 1;
            }
        }
        self.edge_down_count = down;
    }

    /// Marks the given nodes Byzantine: they keep opening channels and
    /// receiving normally, but silently drop every packet they should send —
    /// a Byzantine sender never appears in the effective transfer stream and
    /// its packet counter stays untouched.
    pub fn set_byzantine(&mut self, nodes: &[NodeId]) {
        for &v in nodes {
            if self.byzantine.set(v as usize) {
                self.byzantine_count += 1;
            }
        }
    }

    /// Whether node `v` is Byzantine (see [`Self::set_byzantine`]).
    pub fn is_byzantine(&self, v: NodeId) -> bool {
        self.byzantine.get(v as usize)
    }

    /// Number of Byzantine nodes.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine_count
    }

    fn push_event(&mut self, event: LivenessEvent) {
        self.schedule.push(event);
        // Keep the unapplied suffix sorted by round; the sort is stable, so
        // events scheduled for the same round apply in insertion order.
        self.schedule[self.next_event..].sort_by_key(|e| e.round);
    }

    /// Applies every scheduled event that is due at the current round. Called
    /// lazily from the engine primitives so algorithms need no churn-specific
    /// code: the round counter advances via [`Metrics::finish_round`] and the
    /// next engine call picks the events up.
    #[inline]
    fn poll_events(&mut self) {
        if self.next_event >= self.schedule.len() {
            return;
        }
        let round = self.metrics.rounds();
        while self.next_event < self.schedule.len() && self.schedule[self.next_event].round <= round
        {
            let kind = self.schedule[self.next_event].kind;
            let nodes = std::mem::take(&mut self.schedule[self.next_event].nodes);
            self.next_event += 1;
            match kind {
                LivenessKind::Kill => self.kill_nodes(&nodes),
                LivenessKind::Revive => self.revive_nodes(&nodes),
                LivenessKind::Crash => self.fail_nodes(&nodes),
                LivenessKind::EdgeOutage => self.apply_edge_outage(&nodes),
                LivenessKind::Inject { source, rumor } => {
                    self.inject_rumor(source, rumor);
                }
                LivenessKind::Expire { rumor } => self.expire_rumor(rumor),
            }
        }
    }

    /// Applies every scheduled liveness/injection event due at the current
    /// round *now*, without waiting for the next engine primitive. The
    /// lazy `poll_events` application runs from `open_channel` /
    /// `deliver`, which is invisible to drivers that gate their per-node
    /// work on liveness or informedness *before* touching a primitive
    /// (e.g. a broadcast driver that only opens channels for informed
    /// nodes). Such drivers call this once at the top of each step; it is
    /// idempotent within a round and draws nothing from the RNG.
    pub fn apply_due_events(&mut self) {
        self.poll_events();
    }

    /// Opens a channel from `v` to a uniformly random neighbour and records
    /// the channel opening. Returns `None` if `v` has failed, departed, or is
    /// isolated. Departed neighbours are excluded from the selection; crashed
    /// neighbours remain selectable (they silently drop what they receive),
    /// matching the paper's failure semantics.
    pub fn open_channel(&mut self, v: NodeId) -> Option<NodeId> {
        self.poll_events();
        if !self.alive.get(v as usize) || !self.present.get(v as usize) {
            return None;
        }
        let target = if self.edge_down_count > 0 {
            let node_words = (self.departed_count > 0).then(|| self.present.words());
            self.graph.random_neighbor_edge_masked(
                v,
                node_words,
                self.edge_up.words(),
                &mut self.rng,
            )?
        } else if self.departed_count == 0 {
            self.graph.random_neighbor(v, &mut self.rng)?
        } else {
            self.graph.random_neighbor_masked(v, self.present.words(), &mut self.rng)?
        };
        self.metrics.record_channel_open(v);
        Some(target)
    }

    /// Opens a channel from `v` to a uniformly random neighbour outside
    /// `avoid` (the memory model's `open-avoid`). Returns `None` if `v` has
    /// failed or departed, or every neighbour is excluded.
    pub fn open_channel_avoiding(&mut self, v: NodeId, avoid: &[NodeId]) -> Option<NodeId> {
        self.poll_events();
        if !self.alive.get(v as usize) || !self.present.get(v as usize) {
            return None;
        }
        let target = if self.edge_down_count > 0 {
            let node_words = (self.departed_count > 0).then(|| self.present.words());
            self.graph.random_neighbor_edge_masked_avoiding(
                v,
                avoid,
                node_words,
                self.edge_up.words(),
                &mut self.rng,
            )?
        } else if self.departed_count == 0 {
            self.graph.random_neighbor_avoiding(v, avoid, &mut self.rng)?
        } else {
            self.graph.random_neighbor_masked_avoiding(
                v,
                avoid,
                self.present.words(),
                &mut self.rng,
            )?
        };
        self.metrics.record_channel_open(v);
        Some(target)
    }

    /// Merges `set` into node `v`'s combined message, returning how many
    /// messages were new to `v`. No packet is recorded — callers account for
    /// the transmission that carried `set` themselves (e.g. random walks).
    /// Failed and departed nodes ignore the merge.
    pub fn absorb(&mut self, v: NodeId, set: &MessageSet) -> usize {
        if !self.alive.get(v as usize) || !self.present.get(v as usize) {
            return 0;
        }
        if self.rumors.is_some() {
            // Snapshot the old words so the per-rumor counts can be updated
            // from the diff after the union.
            self.rumor_diff_scratch.clear();
            self.rumor_diff_scratch.extend_from_slice(self.states[v as usize].words());
        }
        let added = self.states[v as usize].union_from(set);
        if added > 0 {
            if let Some(rs) = &mut self.rumors {
                rs.count_gains(&self.rumor_diff_scratch, self.states[v as usize].words());
            }
        }
        self.bump_known(v, added);
        if added > 0 {
            self.refresh_tracked(v);
        }
        added
    }

    fn bump_known(&mut self, v: NodeId, added: usize) {
        if added == 0 {
            return;
        }
        self.known[v as usize] += added as u32;
        if self.known[v as usize] as usize == self.universe {
            self.full.set(v as usize);
            self.fully_informed += 1;
        }
    }

    /// Re-derives node `v`'s tracked-rumor bit from its state (used by the
    /// paths that union whole message sets rather than sparse deltas).
    fn refresh_tracked(&mut self, v: NodeId) {
        if let Some(tracked) = &mut self.tracked {
            if !tracked.knowers.get(v as usize) && self.states[v as usize].contains(tracked.id) {
                tracked.knowers.set(v as usize);
                tracked.count += 1;
            }
        }
    }

    /// Applies one synchronous step's packet transfers.
    ///
    /// * Packets from failed senders are dropped (they "refuse to transmit").
    /// * Packets to failed receivers are transmitted — and therefore counted —
    ///   but not stored.
    /// * Transfers from or to *departed* (churned-out) nodes are dropped
    ///   entirely and never counted: the connection fails before a packet is
    ///   put on the wire.
    /// * With a non-zero loss probability, each surviving packet is dropped in
    ///   transit with that probability (counted as sent, never stored).
    /// * Every transmitted packet increments the sender's packet counter in
    ///   the metrics. Channel-exchange accounting is the caller's
    ///   responsibility because only the caller knows which node opened the
    ///   channel.
    ///
    /// Returns the total number of (node, message) pairs that became known in
    /// this step, which is `0` exactly when the step made no progress.
    pub fn deliver(&mut self, transfers: &[Transfer]) -> usize {
        self.poll_events();
        match self.semantics {
            DeliverySemantics::Deferred => self.deliver_deferred(transfers),
            DeliverySemantics::Immediate => self.deliver_immediate(transfers),
        }
    }

    /// Filters `transfers` down to the packets that are actually put on the
    /// wire, recording packet metrics and sampling loss along the way. The
    /// survivors are appended to `out` (cleared first).
    fn count_packets(&mut self, transfers: &[Transfer], out: &mut Vec<Transfer>) {
        out.clear();
        out.reserve(transfers.len());
        for &t in transfers {
            if !self.alive.get(t.from as usize) || !self.present.get(t.from as usize) {
                continue; // failed nodes do not transmit, departed nodes are gone
            }
            if self.byzantine_count > 0 && self.byzantine.get(t.from as usize) {
                continue; // Byzantine senders silently drop: nothing sent, nothing counted
            }
            if !self.present.get(t.to as usize) {
                continue; // the connection to a departed node fails silently
            }
            self.metrics.record_packet(t.from);
            if t.from == t.to {
                continue; // self-delivery is a no-op (possible via self-loops)
            }
            if self.loss_probability > 0.0 && self.rng.gen_bool(self.loss_probability) {
                continue; // lost in transit: sent (counted) but never stored
            }
            out.push(t);
        }
    }

    fn deliver_deferred(&mut self, transfers: &[Transfer]) -> usize {
        let mut effective = std::mem::take(&mut self.transfer_scratch);
        self.count_packets(transfers, &mut effective);
        // Packets to crashed receivers were counted but are never stored, and
        // fully informed receivers cannot learn anything — drop both before
        // any delta work happens.
        let n = self.num_nodes();
        let universe = self.universe;
        let (alive, known) = (&self.alive, &self.known);
        effective.retain(|t| {
            alive.get(t.to as usize) && (known[t.to as usize] as usize) < universe.max(1)
        });
        if effective.is_empty() {
            self.transfer_scratch = effective;
            return 0;
        }
        // A batch is *sparse* when it carries far fewer packets than the
        // network has nodes (the memory model's tree phases send a handful
        // of packets per round; a push-pull round sends 2n). Every O(n)
        // per-round pass — counting-sort buckets, prefix offsets, the eager
        // core's reader/pending tables — is pure overhead then, so sparse
        // batches take O(m log m) / O(m · words) paths instead.
        //
        // The classification is computed once, up front, as a
        // `DispatchRecord` and recorded into the metrics — the record *is*
        // the dispatch (the match below routes on `dispatch.core`), so the
        // diagnostics the observability layer reports can never drift from
        // what actually ran.
        let dispatch =
            classify_dispatch(n, effective.len(), self.threads, cache_resident(&self.states));
        self.metrics.record_dispatch(dispatch);
        let sparse_batch = dispatch.sparse;
        // Group by receiver so each receiver's new state is computed exactly
        // once from the senders' begin-of-step states. Dense batches use a
        // counting sort over the node ids — O(m + n), two linear passes,
        // reusing the bucket and output buffers across rounds; sparse
        // batches comparison-sort the few transfers instead. Within-group
        // sender order may differ between the two, which cannot change
        // results: a receiver's update is a union over its senders'
        // begin-of-step states, and unions are commutative.
        {
            let grouped = &mut self.grouped_scratch;
            if sparse_batch {
                grouped.clear();
                grouped.extend_from_slice(&effective);
                grouped.sort_unstable_by_key(|t| t.to);
            } else {
                let buckets = &mut self.bucket_scratch;
                buckets.clear();
                buckets.resize(n, 0);
                for t in &effective {
                    buckets[t.to as usize] += 1;
                }
                let mut offset = 0u32;
                for b in buckets.iter_mut() {
                    let count = *b;
                    *b = offset;
                    offset += count;
                }
                grouped.clear();
                grouped.resize(effective.len(), Transfer::new(0, 0));
                for &t in &effective {
                    let slot = &mut buckets[t.to as usize];
                    grouped[*slot as usize] = t;
                    *slot += 1;
                }
            }
        }
        // Adaptive dispatch over the three delivery cores (the per-receiver
        // kernels live one level below, in `parallel::compute_one_update`):
        //
        // * sequential + cache-resident state table *or* a sparse batch →
        //   the *scalar* core: with no DRAM traffic to optimize (or too few
        //   packets to amortize any per-node table), the group table, kernel
        //   dispatch and update collection of the other cores are pure
        //   overhead — this is what makes the packed engine win at n = 1k
        //   (where it used to trail the unpacked oracle) and on the memory
        //   model's packet-light rounds;
        // * sequential + larger-than-cache dense batches → the *eager*
        //   chain-ordered core (reader-gated commits keep fused bases
        //   cache-hot);
        // * multi-threaded → the *batch* core, whose commit barrier the
        //   workers need anyway.
        let total_added = match dispatch.core {
            rpc_obs::DeliveryCore::Scalar => self.deliver_grouped_scalar(),
            rpc_obs::DeliveryCore::Eager => self.deliver_grouped_eager(),
            rpc_obs::DeliveryCore::Batch => self.deliver_grouped_batch(),
        };
        self.transfer_scratch = effective;
        total_added
    }

    /// Sequential small-n delivery core — the *scalar kernel* of the
    /// adaptive dispatch. While the whole state table is cache-resident the
    /// chain ordering, kernel choice and update collection of the other
    /// cores cost more than the word work they could save, so this path
    /// walks the receiver-grouped transfers directly: one lean fused pass
    /// per receiver builds its complete next state in a pooled buffer
    /// (phase 1), then every buffer is committed by an O(1) swap (phase 2).
    /// No group table, no `ReceiverUpdate` collection, no per-round
    /// allocation. Payloads are computed exclusively from begin-of-step
    /// states, so the result is identical to the eager and batch cores.
    fn deliver_grouped_scalar(&mut self) -> usize {
        let universe = self.universe;
        let Simulation {
            states,
            known,
            full,
            fully_informed,
            tracked,
            rumors,
            update_pools,
            grouped_scratch,
            scalar_scratch,
            ..
        } = self;
        let grouped: &[Transfer] = grouped_scratch;
        debug_assert!(scalar_scratch.is_empty(), "stale scalar staging list");
        let mut start = 0usize;
        while start < grouped.len() {
            let to = grouped[start].to;
            let mut end = start + 1;
            while end < grouped.len() && grouped[end].to == to {
                end += 1;
            }
            let recv = &states[to as usize];
            let mut buf = update_pools.checkout_state(universe);
            let added = match &grouped[start..end] {
                [a] => buf.assign_union_counting(recv, &[&states[a.from as usize]]),
                [a, b, rest @ ..] => {
                    let mut added = buf.assign_union_counting(
                        recv,
                        &[&states[a.from as usize], &states[b.from as usize]],
                    );
                    // Further senders fold in one at a time; the counted news
                    // telescopes to |union \ begin-of-step receiver| because
                    // each union counts only bits new to the running result.
                    for t in rest {
                        added += buf.union_from(&states[t.from as usize]);
                    }
                    added
                }
                [] => unreachable!("receiver group cannot be empty"),
            };
            scalar_scratch.push((to, added, buf));
            start = end;
        }
        // Phase 2: every payload was computed from begin-of-step states, so
        // the swap commits may run in any order without changing results.
        let mut total_added = 0usize;
        for (to, added, state) in scalar_scratch.drain(..) {
            total_added += commit_payload(
                states,
                known,
                full,
                fully_informed,
                tracked,
                rumors,
                universe,
                update_pools,
                to,
                UpdatePayload::Replace { added, state },
            );
        }
        total_added
    }

    /// Sequential delivery core: computes each receiver's payload in chain
    /// order and commits a node's payload *as soon as its last pending reader
    /// has been computed* (tracked with per-node reader counts). A sender is
    /// therefore never committed while any receiver still needs its
    /// begin-of-step state — the result is identical to the batch path — but
    /// the buffer a commit returns to the LIFO pool is typically the state
    /// the kernel just streamed through the cache, so the next fused
    /// receiver's buffer pop avoids a cold read-for-ownership of 200 bytes
    /// per 100 nodes of universe. Together with the chain ordering this
    /// keeps two of the ~five full-width streams per receiver in cache in
    /// the memory-bound mixing rounds.
    fn deliver_grouped_eager(&mut self) -> usize {
        let universe = self.universe;
        let Simulation {
            states,
            known,
            full,
            fully_informed,
            tracked,
            rumors,
            update_pools,
            grouped_scratch,
            reader_scratch,
            pending_scratch,
            ..
        } = self;
        let grouped: &[Transfer] = grouped_scratch;
        let n = states.len();
        let groups = group_by_receiver(grouped);
        let (order, group_of) = chain_order(
            &groups,
            grouped,
            n,
            std::mem::take(&mut update_pools.order),
            std::mem::take(&mut update_pools.group_of),
        );
        let counts = reader_scratch;
        counts.clear();
        counts.resize(n, 0);
        for t in grouped {
            counts[t.from as usize] += 1;
        }
        let pending = pending_scratch;
        pending.clear();
        pending.resize_with(n, || None);
        let mut total_added = 0usize;
        for &oi in &order {
            let (to, range) = &groups[oi as usize];
            let group = &grouped[range.clone()];
            let payload = compute_one_update(states, group, *to, known, full.words(), update_pools);
            if counts[*to as usize] == 0 {
                // Every reader of `to` has already been computed (or there
                // were none): safe to commit immediately.
                total_added += commit_payload(
                    states,
                    known,
                    full,
                    fully_informed,
                    tracked,
                    rumors,
                    universe,
                    update_pools,
                    *to,
                    payload,
                );
            } else {
                pending[*to as usize] = Some(payload);
            }
            for t in group {
                let c = &mut counts[t.from as usize];
                *c -= 1;
                if *c == 0 {
                    if let Some(p) = pending[t.from as usize].take() {
                        total_added += commit_payload(
                            states,
                            known,
                            full,
                            fully_informed,
                            tracked,
                            rumors,
                            universe,
                            update_pools,
                            t.from,
                            p,
                        );
                    }
                }
            }
        }
        debug_assert!(pending.iter().all(Option::is_none), "payload left uncommitted");
        update_pools.order = order;
        update_pools.group_of = group_of;
        total_added
    }

    /// Multi-threaded delivery core: all payloads are computed from the
    /// frozen begin-of-step states by [`compute_updates`], then committed in
    /// one sequential pass. Bit-identical to the eager sequential path.
    fn deliver_grouped_batch(&mut self) -> usize {
        let updates = compute_updates(
            &self.states,
            &self.grouped_scratch,
            &self.known,
            self.full.words(),
            self.threads,
            &mut self.update_pools,
        );
        let universe = self.universe;
        let Simulation {
            states, known, full, fully_informed, tracked, rumors, update_pools, ..
        } = self;
        let mut total_added = 0usize;
        for update in updates {
            total_added += commit_payload(
                states,
                known,
                full,
                fully_informed,
                tracked,
                rumors,
                universe,
                update_pools,
                update.to,
                update.payload,
            );
        }
        total_added
    }

    fn deliver_immediate(&mut self, transfers: &[Transfer]) -> usize {
        let mut effective = std::mem::take(&mut self.transfer_scratch);
        self.count_packets(transfers, &mut effective);
        let mut total_added = 0usize;
        for t in &effective {
            if !self.alive.get(t.to as usize) {
                continue;
            }
            let (from, to) = (t.from as usize, t.to as usize);
            if self.rumors.is_some() {
                self.rumor_diff_scratch.clear();
                self.rumor_diff_scratch.extend_from_slice(self.states[to].words());
            }
            // Split the state slice so we can read `from` while writing `to`.
            let added = if from < to {
                let (left, right) = self.states.split_at_mut(to);
                right[0].union_from(&left[from])
            } else {
                let (left, right) = self.states.split_at_mut(from);
                left[to].union_from(&right[0])
            };
            if added > 0 {
                if let Some(rs) = &mut self.rumors {
                    rs.count_gains(&self.rumor_diff_scratch, self.states[to].words());
                }
            }
            self.bump_known(t.to, added);
            if added > 0 {
                self.refresh_tracked(t.to);
            }
            total_added += added;
        }
        self.transfer_scratch = effective;
        total_added
    }
}

/// Applies one receiver's computed payload to the live state and maintains
/// the derived bookkeeping: the knowledge counter, the fully-informed mask
/// and count, and the tracked rumor. Returns how many messages were newly
/// learned. Shared by the eager and the batch commit paths — the payload is
/// always computed from begin-of-step states, so applying it is
/// order-independent across receivers.
#[allow(clippy::too_many_arguments)]
fn commit_payload(
    states: &mut [MessageSet],
    known: &mut [u32],
    full: &mut BitSet,
    fully_informed: &mut usize,
    tracked: &mut Option<TrackedRumor>,
    rumors: &mut Option<RumorSpace>,
    universe: usize,
    pools: &mut UpdatePools,
    to: NodeId,
    payload: UpdatePayload,
) -> usize {
    let added = match payload {
        UpdatePayload::Sparse(entries) => {
            // In-place commit: OR the candidate words into the live state,
            // counting actual news (duplicates across senders deduplicate
            // against the already-updated words).
            let state = &mut states[to as usize];
            let mut added = 0usize;
            for &(wi, bits) in &entries {
                if let Some(rs) = rumors.as_mut() {
                    rs.record_word_gain(wi as usize, bits & !state.words()[wi as usize]);
                }
                added += state.or_word_counting(wi as usize, bits);
            }
            pools.entries.push(entries);
            added
        }
        UpdatePayload::Replace { added, mut state } => {
            // O(1) commit: the computed buffer becomes the state, the old
            // state becomes a pool buffer.
            std::mem::swap(&mut states[to as usize], &mut state);
            if added > 0 {
                if let Some(rs) = rumors.as_mut() {
                    rs.count_gains(state.words(), states[to as usize].words());
                }
            }
            pools.states.push(state);
            pools.stats.record_parked(pools.states.len());
            added
        }
    };
    if added > 0 {
        known[to as usize] += added as u32;
        if known[to as usize] as usize == universe {
            full.set(to as usize);
            *fully_informed += 1;
        }
        if let Some(t) = tracked {
            if !t.knowers.get(to as usize) && states[to as usize].contains(t.id) {
                t.knowers.set(to as usize);
                t.count += 1;
            }
        }
    }
    added
}

/// Reusable backing storage for a [`Simulation`], detached from any graph.
///
/// A `Simulation` borrows its graph, so it cannot live inside the same
/// struct that owns the graph storage across repetitions. The arena solves
/// this by holding only the graph-independent parts — the state table,
/// bitsets, metrics counters, delivery pools and scratch buffers — between
/// runs: [`SimulationArena::checkout`] assembles a simulation over the
/// caller's graph reference (behaving exactly like [`Simulation::new`]), and
/// [`SimulationArena::recycle`] takes the storage back when the run is done.
/// One arena per worker thread makes Monte Carlo repetitions allocation-free
/// in steady state.
///
/// ```
/// use rpc_engine::{Simulation, SimulationArena};
/// use rpc_graphs::prelude::*;
///
/// let graph = CompleteGraph::new(16).generate(0);
/// let mut arena = SimulationArena::default();
/// for seed in 0..3 {
///     let mut sim = arena.checkout(&graph, seed);
///     let u = sim.open_channel(0).unwrap();
///     sim.deliver(&[rpc_engine::Transfer::new(0, u)]);
///     arena.recycle(sim);
/// }
/// ```
#[derive(Debug, Default)]
pub struct SimulationArena {
    parked: Option<SimulationStorage>,
    stats: rpc_obs::ReuseStats,
}

/// The graph-independent parts of a [`Simulation`] kept alive between runs.
#[derive(Debug)]
struct SimulationStorage {
    states: Vec<MessageSet>,
    known: Vec<u32>,
    rumors: Option<RumorSpace>,
    rumor_diff_scratch: Vec<u64>,
    alive: BitSet,
    present: BitSet,
    full: BitSet,
    metrics: Metrics,
    update_pools: UpdatePools,
    transfer_scratch: Vec<Transfer>,
    grouped_scratch: Vec<Transfer>,
    bucket_scratch: Vec<u32>,
    reader_scratch: Vec<u32>,
    pending_scratch: Vec<Option<UpdatePayload>>,
    scalar_scratch: Vec<(NodeId, usize, MessageSet)>,
    schedule: Vec<LivenessEvent>,
    byzantine: BitSet,
    edge_up: BitSet,
}

impl SimulationArena {
    /// Builds a simulation over `graph`, reusing parked storage when
    /// available. The returned simulation is indistinguishable from
    /// `Simulation::new(graph, seed)` — default configuration; re-apply
    /// [`Simulation::with_threads`] / loss per run as needed.
    pub fn checkout<'g>(&mut self, graph: &'g Graph, seed: u64) -> Simulation<'g> {
        self.checkout_with(graph, seed, None)
    }

    /// Builds a *streaming* simulation over `graph` with the given rumor
    /// universe, reusing parked storage when available — the arena
    /// counterpart of [`Simulation::new_streaming`], from which the result
    /// is indistinguishable.
    pub fn checkout_streaming<'g>(
        &mut self,
        graph: &'g Graph,
        seed: u64,
        universe: usize,
    ) -> Simulation<'g> {
        self.checkout_with(graph, seed, Some(universe))
    }

    fn checkout_with<'g>(
        &mut self,
        graph: &'g Graph,
        seed: u64,
        streaming: Option<usize>,
    ) -> Simulation<'g> {
        self.stats.record(self.parked.is_some());
        let Some(st) = self.parked.take() else {
            return match streaming {
                Some(universe) => Simulation::new_streaming(graph, seed, universe),
                None => Simulation::new(graph, seed),
            };
        };
        let mut sim = Simulation {
            graph,
            states: st.states,
            known: st.known,
            universe: 0,
            rumors: st.rumors,
            rumor_diff_scratch: st.rumor_diff_scratch,
            alive: st.alive,
            alive_count: 0,
            present: st.present,
            departed_count: 0,
            full: st.full,
            fully_informed: 0,
            tracked: None,
            metrics: st.metrics,
            rng: SmallRng::seed_from_u64(seed ^ RNG_SEED_SALT),
            semantics: DeliverySemantics::Deferred,
            threads: 1,
            loss_probability: 0.0,
            schedule: st.schedule,
            next_event: 0,
            update_pools: st.update_pools,
            transfer_scratch: st.transfer_scratch,
            grouped_scratch: st.grouped_scratch,
            bucket_scratch: st.bucket_scratch,
            reader_scratch: st.reader_scratch,
            pending_scratch: st.pending_scratch,
            scalar_scratch: st.scalar_scratch,
            byzantine: st.byzantine,
            byzantine_count: 0,
            edge_up: st.edge_up,
            edge_down_count: 0,
        };
        // The reset re-derives every run-dependent field from the graph, so
        // the placeholder counts above never become observable.
        match streaming {
            Some(universe) => sim.reset_streaming(graph, seed, universe),
            None => sim.reset(graph, seed),
        }
        sim
    }

    /// Reuse-vs-fresh counters over this arena's checkouts.
    pub fn stats(&self) -> rpc_obs::ReuseStats {
        self.stats
    }

    /// Takes a simulation's storage back for the next [`Self::checkout`].
    /// The graph borrow ends here; run results should be read off the
    /// simulation before recycling.
    pub fn recycle(&mut self, sim: Simulation<'_>) {
        let Simulation {
            states,
            known,
            rumors,
            rumor_diff_scratch,
            alive,
            present,
            full,
            metrics,
            update_pools,
            transfer_scratch,
            grouped_scratch,
            bucket_scratch,
            reader_scratch,
            pending_scratch,
            scalar_scratch,
            mut schedule,
            byzantine,
            edge_up,
            ..
        } = sim;
        schedule.clear();
        self.parked = Some(SimulationStorage {
            states,
            known,
            rumors,
            rumor_diff_scratch,
            alive,
            present,
            full,
            metrics,
            update_pools,
            transfer_scratch,
            grouped_scratch,
            bucket_scratch,
            reader_scratch,
            pending_scratch,
            scalar_scratch,
            schedule,
            byzantine,
            edge_up,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_graphs::prelude::*;
    use rpc_graphs::topology::path;

    fn complete(n: usize) -> Graph {
        CompleteGraph::new(n).generate(0)
    }

    #[test]
    fn initial_state_is_own_message_only() {
        let g = complete(8);
        let sim = Simulation::new(&g, 1);
        for v in 0..8u32 {
            assert!(sim.knows(v, v));
            assert_eq!(sim.num_known(v), 1);
            assert!(!sim.is_fully_informed(v));
        }
        assert_eq!(sim.fully_informed_count(), 0);
        assert!(!sim.gossip_complete());
        assert_eq!(sim.informed_count_of(3), 1);
    }

    #[test]
    fn single_node_network_is_immediately_complete() {
        let g = complete(1);
        let sim = Simulation::new(&g, 1);
        assert!(sim.gossip_complete());
        assert_eq!(sim.fully_informed_count(), 1);
        assert_eq!(sim.participating_count(), 1);
        assert_eq!(sim.participating_informed_count(), 1);
    }

    #[test]
    fn deliver_merges_messages_and_counts_packets() {
        let g = complete(4);
        let mut sim = Simulation::new(&g, 2);
        let added = sim.deliver(&[Transfer::new(0, 1), Transfer::new(2, 1)]);
        assert_eq!(added, 2);
        assert!(sim.knows(1, 0) && sim.knows(1, 2) && sim.knows(1, 1));
        assert_eq!(sim.num_known(1), 3);
        assert_eq!(sim.metrics().total_packets(), 2);
        assert_eq!(sim.informed_count_of(0), 2);
    }

    #[test]
    fn deferred_delivery_uses_begin_of_step_states() {
        // Chain 0 -> 1 -> 2 submitted in one step: with deferred semantics
        // node 2 must NOT yet learn message 0 (it only gets node 1's old state).
        let g = complete(3);
        let mut sim = Simulation::new(&g, 3).with_semantics(DeliverySemantics::Deferred);
        sim.deliver(&[Transfer::new(0, 1), Transfer::new(1, 2)]);
        assert!(sim.knows(1, 0));
        assert!(sim.knows(2, 1));
        assert!(!sim.knows(2, 0), "message must not travel two hops in one step");
    }

    #[test]
    fn immediate_delivery_allows_in_step_chaining() {
        let g = complete(3);
        let mut sim = Simulation::new(&g, 3).with_semantics(DeliverySemantics::Immediate);
        sim.deliver(&[Transfer::new(0, 1), Transfer::new(1, 2)]);
        assert!(sim.knows(2, 0), "immediate semantics forwards within the step");
    }

    #[test]
    fn deferred_and_immediate_agree_on_final_fixpoint() {
        // Repeatedly exchanging along a path eventually informs everyone in
        // both modes; only the round counts may differ.
        let g = path(6);
        for semantics in [DeliverySemantics::Deferred, DeliverySemantics::Immediate] {
            let mut sim = Simulation::new(&g, 9).with_semantics(semantics);
            for _ in 0..20 {
                let mut transfers = Vec::new();
                for v in 0..6u32 {
                    for &u in g.neighbors(v) {
                        transfers.push(Transfer::new(v, u));
                    }
                }
                sim.deliver(&transfers);
            }
            assert!(sim.gossip_complete(), "semantics {semantics:?} did not converge");
        }
    }

    #[test]
    fn parallel_delivery_matches_sequential() {
        let g = ErdosRenyi::with_expected_degree(256, 12.0).generate(4);
        let mut transfers = Vec::new();
        let mut seq = Simulation::new(&g, 5);
        let mut par = Simulation::new(&g, 5).with_threads(4);
        // Build a deterministic, fairly dense transfer batch.
        for v in g.nodes() {
            for &u in g.neighbors(v).iter().take(3) {
                transfers.push(Transfer::new(v, u));
            }
        }
        for _ in 0..4 {
            let a = seq.deliver(&transfers);
            let b = par.deliver(&transfers);
            assert_eq!(a, b);
        }
        for v in g.nodes() {
            assert_eq!(seq.num_known(v), par.num_known(v));
            assert_eq!(seq.state(v), par.state(v));
        }
    }

    #[test]
    fn dispatch_diagnostics_track_the_adaptive_core_choice() {
        // n = 1k: the state table (1024 × 16 words) is far below the cache
        // budget, so every dense sequential round must take the scalar core;
        // with worker threads configured the same batch must go to the batch
        // core. The outcome (who knows what) is identical either way — only
        // the diagnostics differ.
        let g = ErdosRenyi::with_expected_degree(1024, 8.0).generate(7);
        let mut transfers = Vec::new();
        for v in g.nodes() {
            if let Some(&u) = g.neighbors(v).first() {
                transfers.push(Transfer::new(v, u));
            }
        }
        assert!(transfers.len() * 8 >= 1024, "batch must be dense for this test");

        let mut seq = Simulation::new(&g, 11);
        seq.deliver(&transfers);
        seq.deliver(&transfers);
        let cores = seq.metrics().core_rounds();
        assert_eq!((cores.scalar, cores.eager, cores.batch), (2, 0, 0));
        let last = seq.metrics().last_dispatch().expect("delivery happened");
        assert_eq!(last.core, rpc_obs::DeliveryCore::Scalar);
        assert!(last.cache_resident && !last.sparse);
        assert_eq!((last.n, last.threads), (1024, 1));

        let mut par = Simulation::new(&g, 11).with_threads(4);
        par.deliver(&transfers);
        let cores = par.metrics().core_rounds();
        assert_eq!((cores.scalar, cores.eager, cores.batch), (0, 0, 1));
        assert_eq!(par.metrics().last_dispatch().unwrap().core, rpc_obs::DeliveryCore::Batch);

        // A near-empty batch classifies as sparse (still the scalar core).
        let mut sparse = Simulation::new(&g, 11);
        sparse.deliver(&transfers[..3]);
        let last = sparse.metrics().last_dispatch().unwrap();
        assert!(last.sparse);
        assert_eq!(last.core, rpc_obs::DeliveryCore::Scalar);
        assert_eq!(last.packets, 3);
    }

    #[test]
    fn pool_and_arena_stats_observe_reuse() {
        let g = complete(64);
        let mut arena = SimulationArena::default();
        for seed in 0..2u64 {
            let mut sim = arena.checkout(&g, seed);
            let mut transfers = Vec::new();
            for v in g.nodes() {
                for &u in g.neighbors(v).iter().take(2) {
                    transfers.push(Transfer::new(v, u));
                }
            }
            sim.deliver(&transfers);
            let stats = sim.pool_stats();
            assert!(stats.checkouts > 0, "dense delivery must check buffers out");
            assert!(stats.fresh <= stats.checkouts);
            arena.recycle(sim);
        }
        assert_eq!(arena.stats(), rpc_obs::ReuseStats { reused: 1, fresh: 1 });
    }

    #[test]
    fn failed_nodes_neither_send_nor_store() {
        let g = complete(4);
        let mut sim = Simulation::new(&g, 7);
        sim.fail_nodes(&[2]);
        assert!(!sim.is_alive(2));
        assert_eq!(sim.alive_count(), 3);
        let added = sim.deliver(&[
            Transfer::new(2, 0), // dropped: failed sender
            Transfer::new(1, 2), // counted but not stored: failed receiver
            Transfer::new(3, 0), // normal
        ]);
        assert_eq!(added, 1);
        assert!(!sim.knows(0, 2));
        assert!(!sim.knows(2, 1));
        assert!(sim.knows(0, 3));
        // Only the packets from alive senders are counted.
        assert_eq!(sim.metrics().total_packets(), 2);
        assert_eq!(sim.open_channel(2), None, "failed nodes do not open channels");
    }

    #[test]
    fn gossip_complete_ignores_failed_nodes() {
        let g = complete(3);
        let mut sim = Simulation::new(&g, 8);
        sim.fail_nodes(&[2]);
        // Fully inform nodes 0 and 1 only.
        sim.deliver(&[Transfer::new(0, 1), Transfer::new(1, 0)]);
        sim.deliver(&[Transfer::new(2, 0)]); // dropped, 2 is dead
        let full = MessageSet::full(3);
        sim.absorb(0, &full);
        sim.absorb(1, &full);
        assert!(sim.gossip_complete());
    }

    #[test]
    fn absorb_updates_counters_and_respects_failures() {
        let g = complete(4);
        let mut sim = Simulation::new(&g, 9);
        let mut set = MessageSet::empty(4);
        set.insert(0);
        set.insert(3);
        assert_eq!(sim.absorb(1, &set), 2);
        assert_eq!(sim.num_known(1), 3);
        sim.fail_nodes(&[2]);
        assert_eq!(sim.absorb(2, &set), 0);
        assert_eq!(sim.num_known(2), 1);
    }

    #[test]
    fn open_channel_returns_neighbors_and_counts() {
        let g = path(3);
        let mut sim = Simulation::new(&g, 10);
        for _ in 0..20 {
            let u = sim.open_channel(1).unwrap();
            assert!(u == 0 || u == 2);
        }
        assert_eq!(sim.metrics().channels_opened(), 20);
        let avoided = sim.open_channel_avoiding(1, &[0]).unwrap();
        assert_eq!(avoided, 2);
        assert_eq!(sim.open_channel_avoiding(1, &[0, 2]), None);
    }

    #[test]
    fn fully_informed_counter_reaches_n_when_everyone_knows_everything() {
        let g = complete(5);
        let mut sim = Simulation::new(&g, 11);
        let full = MessageSet::full(5);
        for v in 0..5u32 {
            sim.absorb(v, &full);
        }
        assert_eq!(sim.fully_informed_count(), 5);
        assert!(sim.gossip_complete());
        assert_eq!(sim.participating_informed_count(), 5);
    }

    #[test]
    fn departed_nodes_are_invisible_to_the_network() {
        let g = complete(4);
        let mut sim = Simulation::new(&g, 21);
        sim.kill_nodes(&[2]);
        assert!(!sim.is_present(2));
        assert!(!sim.is_participating(2));
        assert_eq!(sim.present_count(), 3);
        assert_eq!(sim.participating_count(), 3);
        // A departed node opens no channels and is never selected as a target.
        assert_eq!(sim.open_channel(2), None);
        for _ in 0..50 {
            let u = sim.open_channel(0).unwrap();
            assert_ne!(u, 2, "departed node selected as channel target");
        }
        // Transfers from and to the departed node are dropped without any
        // packet accounting.
        let added = sim.deliver(&[Transfer::new(2, 0), Transfer::new(1, 2), Transfer::new(3, 0)]);
        assert_eq!(added, 1);
        assert_eq!(sim.metrics().total_packets(), 1);
        assert_eq!(sim.metrics().packets_per_node(), &[0, 0, 0, 1]);
        assert_eq!(sim.num_known(2), 1);
        // absorb is ignored as well.
        assert_eq!(sim.absorb(2, &MessageSet::full(4)), 0);
    }

    #[test]
    fn revived_nodes_rejoin_with_their_old_state() {
        let g = complete(3);
        let mut sim = Simulation::new(&g, 22);
        sim.deliver(&[Transfer::new(1, 0)]);
        sim.kill_nodes(&[0]);
        sim.deliver(&[Transfer::new(2, 0)]); // dropped, 0 is away
        sim.revive_nodes(&[0]);
        assert!(sim.is_present(0));
        assert_eq!(sim.present_count(), 3);
        assert!(sim.knows(0, 1), "state must survive the downtime");
        assert!(!sim.knows(0, 2), "messages sent while away are not received");
        let added = sim.deliver(&[Transfer::new(2, 0)]);
        assert_eq!(added, 1);
    }

    #[test]
    fn gossip_complete_ignores_departed_nodes() {
        let g = complete(3);
        let mut sim = Simulation::new(&g, 23);
        sim.kill_nodes(&[2]);
        let full = MessageSet::full(3);
        sim.absorb(0, &full);
        sim.absorb(1, &full);
        assert!(sim.gossip_complete());
        sim.revive_nodes(&[2]);
        assert!(!sim.gossip_complete(), "rejoined node counts again");
    }

    #[test]
    fn all_departed_network_is_vacuously_complete() {
        // The all-dead presence mask: every word of alive ∧ present is zero,
        // so the word-parallel completion check finds no uninformed
        // participant and no channel can be opened.
        let g = complete(100); // not a multiple of 64: exercises the tail word
        let mut sim = Simulation::new(&g, 31);
        let everyone: Vec<NodeId> = (0..100).collect();
        sim.kill_nodes(&everyone);
        assert_eq!(sim.present_count(), 0);
        assert_eq!(sim.participating_count(), 0);
        assert_eq!(sim.participating_informed_count(), 0);
        assert!(sim.gossip_complete(), "no participants means nothing left to inform");
        for v in 0..100u32 {
            assert_eq!(sim.open_channel(v), None);
        }
        assert_eq!(sim.deliver(&[Transfer::new(0, 1)]), 0);
        assert_eq!(sim.metrics().total_packets(), 0);
        // Reviving one node makes it a (fully informed? no) participant again.
        sim.revive_nodes(&[7]);
        assert!(!sim.gossip_complete());
    }

    #[test]
    fn scheduled_events_fire_at_their_round() {
        let g = complete(4);
        let mut sim = Simulation::new(&g, 24);
        sim.schedule_kill(1, vec![3]);
        sim.schedule_revive(2, vec![3]);
        sim.schedule_crash(2, vec![1]);
        // Round 0: nothing due yet.
        sim.deliver(&[Transfer::new(3, 0)]);
        assert!(sim.knows(0, 3));
        sim.metrics_mut().finish_round();
        // Round 1: node 3 departs before any round-1 traffic.
        assert_eq!(sim.open_channel(3), None);
        sim.deliver(&[Transfer::new(3, 1)]);
        assert!(!sim.knows(1, 3));
        sim.metrics_mut().finish_round();
        // Round 2: node 3 rejoins, node 1 crashes.
        assert!(sim.open_channel(3).is_some());
        assert!(!sim.is_alive(1));
        assert!(sim.is_present(1), "crashed nodes remain addressable");
    }

    #[test]
    fn full_loss_blocks_all_progress_but_counts_packets() {
        let g = complete(4);
        let mut sim = Simulation::new(&g, 25).with_loss_probability(0.999_999);
        let added = sim.deliver(&[Transfer::new(0, 1), Transfer::new(2, 3)]);
        assert_eq!(added, 0);
        assert_eq!(sim.metrics().total_packets(), 2, "lost packets still count as sent");
    }

    #[test]
    fn loss_is_deterministic_in_seed_and_thread_count() {
        let g = ErdosRenyi::with_expected_degree(128, 10.0).generate(6);
        let mut transfers = Vec::new();
        for v in g.nodes() {
            for &u in g.neighbors(v).iter().take(2) {
                transfers.push(Transfer::new(v, u));
            }
        }
        let run = |threads: usize| {
            let mut sim = Simulation::new(&g, 77).with_loss_probability(0.3).with_threads(threads);
            let mut total = 0usize;
            for _ in 0..6 {
                total += sim.deliver(&transfers);
            }
            let knowledge: Vec<usize> = g.nodes().map(|v| sim.num_known(v)).collect();
            (total, knowledge)
        };
        assert_eq!(run(1), run(4), "loss must not depend on the thread count");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_probability_must_be_a_probability() {
        let g = complete(2);
        let _ = Simulation::new(&g, 1).with_loss_probability(1.5);
    }

    #[test]
    fn self_transfers_are_counted_but_change_nothing() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)]);
        let mut sim = Simulation::new(&g, 12);
        let added = sim.deliver(&[Transfer::new(0, 0)]);
        assert_eq!(added, 0);
        assert_eq!(sim.metrics().total_packets(), 1);
    }

    #[test]
    fn tracked_rumor_count_matches_the_scan() {
        let g = ErdosRenyi::with_expected_degree(150, 10.0).generate(9);
        let mut sim = Simulation::new(&g, 13);
        sim.track_message(42);
        assert_eq!(sim.tracked_message(), Some(42));
        assert_eq!(sim.tracked_informed_count(), 1);
        // Drive a few dozen random-ish deterministic steps and compare the
        // incremental count against the O(n) scan after every one.
        for round in 0..30u32 {
            let mut transfers = Vec::new();
            for v in g.nodes() {
                let nbrs = g.neighbors(v);
                if !nbrs.is_empty() {
                    let u = nbrs[(v as usize + round as usize) % nbrs.len()];
                    transfers.push(Transfer::new(v, u));
                    transfers.push(Transfer::new(u, v));
                }
            }
            sim.deliver(&transfers);
            assert_eq!(
                sim.tracked_informed_count(),
                sim.informed_count_of(42),
                "incremental tracked count diverged at round {round}"
            );
        }
    }

    #[test]
    fn tracked_rumor_is_maintained_by_absorb_and_immediate_delivery() {
        let g = complete(5);
        let mut sim = Simulation::new(&g, 14).with_semantics(DeliverySemantics::Immediate);
        sim.track_message(0);
        assert_eq!(sim.tracked_informed_count(), 1);
        sim.deliver(&[Transfer::new(0, 1), Transfer::new(1, 2)]);
        assert_eq!(sim.tracked_informed_count(), 3, "immediate chaining spreads the rumor");
        sim.absorb(4, &MessageSet::singleton(5, 0));
        assert_eq!(sim.tracked_informed_count(), 4);
        assert_eq!(sim.tracked_informed_count(), sim.informed_count_of(0));
    }

    #[test]
    #[should_panic(expected = "no tracked message")]
    fn tracked_count_without_tracking_panics() {
        let g = complete(2);
        let sim = Simulation::new(&g, 1);
        let _ = sim.tracked_informed_count();
    }

    #[test]
    fn streaming_start_configuration_decouples_universe_from_node_count() {
        let g = complete(8);
        let sim = Simulation::new_streaming(&g, 1, 3);
        assert_eq!(sim.num_nodes(), 8);
        assert_eq!(sim.universe(), 3);
        for v in 0..8u32 {
            assert_eq!(sim.num_known(v), 0);
            assert!(!sim.is_fully_informed(v));
        }
        for m in 0..3u32 {
            assert_eq!(sim.rumor_informed_count(m), 0);
            assert!(!sim.rumor_injected(m));
            assert!(!sim.rumor_expired(m));
        }
        assert!(!sim.gossip_complete(), "uninjected rumors still count toward full knowledge");
    }

    #[test]
    fn injected_rumors_spread_and_counts_stay_incremental() {
        let g = complete(6);
        let mut sim = Simulation::new_streaming(&g, 2, 2);
        assert!(sim.inject_rumor(0, 0));
        assert!(!sim.inject_rumor(0, 0), "second injection is a no-op");
        assert!(sim.rumor_injected(0));
        assert_eq!(sim.rumor_informed_count(0), 1);
        sim.deliver(&[Transfer::new(0, 1), Transfer::new(0, 2)]);
        assert_eq!(sim.rumor_informed_count(0), 3);
        assert_eq!(sim.rumor_informed_count(0), sim.informed_count_of(0));
        assert_eq!(sim.rumor_informed_count(1), 0, "uninjected rumor stays unknown");
        // Injecting the second rumor at a node that already knows the first
        // completes it on the spot; forwarding completes the receiver too.
        sim.inject_rumor(1, 1);
        assert!(sim.is_fully_informed(1));
        sim.deliver(&[Transfer::new(1, 0)]);
        assert!(sim.knows(0, 0) && sim.knows(0, 1));
        assert!(sim.is_fully_informed(0));
        assert_eq!(sim.fully_informed_count(), 2);
    }

    #[test]
    fn injection_into_dead_or_departed_nodes_is_dropped() {
        let g = complete(4);
        let mut sim = Simulation::new_streaming(&g, 3, 2);
        sim.fail_nodes(&[1]);
        sim.kill_nodes(&[2]);
        assert!(!sim.inject_rumor(1, 0), "crashed node stores nothing");
        assert!(!sim.inject_rumor(2, 0), "departed node stores nothing");
        assert_eq!(sim.rumor_informed_count(0), 0);
        assert!(sim.rumor_injected(0), "the arrival itself is recorded");
    }

    #[test]
    fn expired_rumor_vanishes_globally_and_never_reappears() {
        let g = complete(5);
        let mut sim = Simulation::new_streaming(&g, 4, 2);
        sim.inject_rumor(0, 0);
        sim.inject_rumor(3, 1);
        sim.deliver(&[Transfer::new(0, 1), Transfer::new(0, 2), Transfer::new(3, 0)]);
        assert_eq!(sim.rumor_informed_count(0), 3);
        sim.expire_rumor(0);
        assert!(sim.rumor_expired(0));
        assert_eq!(sim.rumor_informed_count(0), 0);
        assert_eq!(sim.informed_count_of(0), 0, "no copy survives anywhere");
        assert!(!sim.inject_rumor(0, 0), "expired rumor is rejected forever");
        assert_eq!(sim.rumor_informed_count(0), 0);
        // The other rumor is untouched and keeps spreading.
        assert_eq!(sim.rumor_informed_count(1), 2);
        sim.deliver(&[Transfer::new(0, 4)]);
        assert_eq!(sim.rumor_informed_count(1), 3);
    }

    #[test]
    fn expiry_revokes_fully_informed_status() {
        let g = complete(3);
        let mut sim = Simulation::new_streaming(&g, 5, 2);
        sim.inject_rumor(0, 0);
        sim.inject_rumor(0, 1);
        assert!(sim.is_fully_informed(0));
        assert_eq!(sim.fully_informed_count(), 1);
        sim.expire_rumor(1);
        assert!(!sim.is_fully_informed(0));
        assert_eq!(sim.fully_informed_count(), 0);
        assert_eq!(sim.num_known(0), 1);
    }

    #[test]
    fn scheduled_injections_fire_after_environment_events_of_the_same_round() {
        let g = complete(4);
        let mut sim = Simulation::new_streaming(&g, 6, 1);
        // Node 2 crashes at round 1 *before* the same-round injection into it
        // (stable sort keeps insertion order within a round).
        sim.schedule_crash(1, vec![2]);
        sim.schedule_injection(1, 2, 0);
        sim.metrics_mut().finish_round();
        sim.deliver(&[]);
        assert!(!sim.is_alive(2));
        assert_eq!(sim.rumor_informed_count(0), 0, "injection hit the already-crashed node");
        assert!(sim.rumor_injected(0));
    }

    #[test]
    fn scheduled_expiry_fires_at_its_round() {
        let g = complete(4);
        let mut sim = Simulation::new_streaming(&g, 7, 1);
        sim.inject_rumor(0, 0);
        sim.schedule_expiry(2, 0);
        sim.deliver(&[Transfer::new(0, 1)]);
        sim.metrics_mut().finish_round();
        assert_eq!(sim.rumor_informed_count(0), 2);
        sim.metrics_mut().finish_round();
        sim.deliver(&[Transfer::new(0, 2)]); // poll applies the expiry first
        assert_eq!(sim.rumor_informed_count(0), 0);
        assert!(sim.rumor_expired(0));
    }

    #[test]
    fn per_rumor_counts_agree_across_delivery_cores() {
        let g = ErdosRenyi::with_expected_degree(200, 10.0).generate(8);
        let mut seq = Simulation::new_streaming(&g, 9, 48);
        let mut par = Simulation::new_streaming(&g, 9, 48).with_threads(4);
        let mut imm =
            Simulation::new_streaming(&g, 9, 48).with_semantics(DeliverySemantics::Immediate);
        for sim in [&mut seq, &mut par, &mut imm] {
            for m in 0..48u32 {
                sim.inject_rumor((m * 4) % 200, m);
            }
        }
        for round in 0..12u32 {
            let mut transfers = Vec::new();
            for v in g.nodes() {
                let nbrs = g.neighbors(v);
                if !nbrs.is_empty() {
                    let u = nbrs[(v as usize + round as usize) % nbrs.len()];
                    transfers.push(Transfer::new(v, u));
                    transfers.push(Transfer::new(u, v));
                }
            }
            seq.deliver(&transfers);
            par.deliver(&transfers);
            imm.deliver(&transfers);
            for m in 0..48u32 {
                let scan = seq.informed_count_of(m);
                assert_eq!(seq.rumor_informed_count(m), scan, "seq diverged, rumor {m}");
                assert_eq!(par.rumor_informed_count(m), scan, "par diverged, rumor {m}");
                assert_eq!(
                    imm.rumor_informed_count(m),
                    imm.informed_count_of(m),
                    "immediate-mode count diverged, rumor {m}"
                );
            }
        }
        for v in g.nodes() {
            assert_eq!(seq.state(v), par.state(v), "state of {v}");
        }
    }

    #[test]
    fn absorb_maintains_per_rumor_counts() {
        let g = complete(5);
        let mut sim = Simulation::new_streaming(&g, 10, 4);
        let mut set = MessageSet::empty(4);
        set.insert(1);
        set.insert(3);
        assert_eq!(sim.absorb(2, &set), 2);
        assert_eq!(sim.rumor_informed_count(1), 1);
        assert_eq!(sim.rumor_informed_count(3), 1);
        assert_eq!(sim.rumor_informed_count(0), 0);
    }

    #[test]
    fn reset_streaming_replays_a_fresh_streaming_run_bit_for_bit() {
        let g = ErdosRenyi::with_expected_degree(120, 9.0).generate(12);
        let mut reused = Simulation::new_streaming(&g, 1, 16).with_loss_probability(0.2);
        for m in 0..16u32 {
            reused.schedule_injection(m as u64 % 5, (m * 7) % 120, m);
        }
        reused.schedule_expiry(8, 3);
        let _ = fingerprint(&mut reused, 6);
        reused.reset_streaming(&g, 42, 16);
        let mut fresh = Simulation::new_streaming(&g, 42, 16);
        for sim in [&mut reused, &mut fresh] {
            for m in 0..16u32 {
                sim.schedule_injection(m as u64 % 4, (m * 3) % 120, m);
            }
            sim.schedule_expiry(6, 5);
        }
        assert_eq!(fingerprint(&mut reused, 8), fingerprint(&mut fresh, 8));
        for v in g.nodes() {
            assert_eq!(reused.state(v), fresh.state(v), "state of {v}");
        }
        for m in 0..16u32 {
            assert_eq!(reused.rumor_informed_count(m), fresh.rumor_informed_count(m));
            assert_eq!(reused.rumor_expired(m), fresh.rumor_expired(m));
        }
    }

    #[test]
    fn arena_checkout_streaming_equals_fresh_construction() {
        let g = ErdosRenyi::with_expected_degree(100, 8.0).generate(13);
        let mut arena = SimulationArena::default();
        // Classic, streaming, streaming with another universe, classic again:
        // mode switches must never leak stale bookkeeping.
        for (streaming, seed) in [(None, 1u64), (Some(12), 2), (Some(30), 3), (None, 4)] {
            let mut sim = match streaming {
                Some(u) => arena.checkout_streaming(&g, seed, u),
                None => arena.checkout(&g, seed),
            };
            let mut fresh = match streaming {
                Some(u) => Simulation::new_streaming(&g, seed, u),
                None => Simulation::new(&g, seed),
            };
            if let Some(u) = streaming {
                for m in 0..u as u32 {
                    sim.schedule_injection(m as u64 % 3, (m * 5) % 100, m);
                    fresh.schedule_injection(m as u64 % 3, (m * 5) % 100, m);
                }
            }
            assert_eq!(fingerprint(&mut sim, 6), fingerprint(&mut fresh, 6));
            assert_eq!(sim.universe(), fresh.universe());
            for v in g.nodes() {
                assert_eq!(sim.state(v), fresh.state(v));
            }
            arena.recycle(sim);
        }
    }

    /// Drives a deterministic mixed workload and returns the full observable
    /// fingerprint: channel choices, delivery counts, final states, metrics.
    fn fingerprint(
        sim: &mut Simulation<'_>,
        rounds: u32,
    ) -> (Vec<Option<NodeId>>, Vec<usize>, u64) {
        let n = sim.num_nodes();
        let mut channels = Vec::new();
        let mut added = Vec::new();
        for _ in 0..rounds {
            let mut transfers = Vec::new();
            for v in 0..n as NodeId {
                let u = sim.open_channel(v);
                channels.push(u);
                if let Some(u) = u {
                    transfers.push(Transfer::new(v, u));
                    transfers.push(Transfer::new(u, v));
                }
            }
            added.push(sim.deliver(&transfers));
            sim.metrics_mut().finish_round();
        }
        (channels, added, sim.metrics().total_packets())
    }

    #[test]
    fn reset_replays_a_fresh_simulation_bit_for_bit() {
        let g = ErdosRenyi::with_expected_degree(200, 10.0).generate(3);
        // Dirty a simulation thoroughly: loss, churn schedule, tracking.
        let mut reused = Simulation::new(&g, 1).with_loss_probability(0.3);
        reused.track_message(7);
        reused.schedule_kill(1, vec![2, 3]);
        reused.schedule_crash(2, vec![9]);
        let _ = fingerprint(&mut reused, 6);
        // Reset and replay against a genuinely fresh simulation.
        reused.reset(&g, 42);
        let mut fresh = Simulation::new(&g, 42);
        assert_eq!(reused.loss_probability(), 0.0, "loss must reset");
        assert_eq!(fingerprint(&mut reused, 8), fingerprint(&mut fresh, 8));
        for v in g.nodes() {
            assert_eq!(reused.state(v), fresh.state(v), "state of {v}");
            assert_eq!(reused.num_known(v), fresh.num_known(v));
        }
        assert_eq!(reused.fully_informed_count(), fresh.fully_informed_count());
        assert_eq!(reused.gossip_complete(), fresh.gossip_complete());
    }

    #[test]
    fn reset_handles_universe_changes_in_both_directions() {
        let big = ErdosRenyi::with_expected_degree(300, 9.0).generate(5);
        let small = CompleteGraph::new(17).generate(0);
        let mut sim = Simulation::new(&big, 1);
        let _ = fingerprint(&mut sim, 4);
        for (graph, seed) in [(&small, 9u64), (&big, 10), (&small, 11)] {
            sim.reset(graph, seed);
            let mut fresh = Simulation::new(graph, seed);
            assert_eq!(sim.num_nodes(), graph.num_nodes());
            assert_eq!(fingerprint(&mut sim, 5), fingerprint(&mut fresh, 5));
        }
    }

    #[test]
    fn reset_single_node_is_immediately_complete() {
        let big = complete(8);
        let one = complete(1);
        let mut sim = Simulation::new(&big, 2);
        let _ = fingerprint(&mut sim, 2);
        sim.reset(&one, 3);
        assert!(sim.gossip_complete());
        assert_eq!(sim.fully_informed_count(), 1);
    }

    #[test]
    fn arena_checkout_equals_fresh_construction() {
        let g = ErdosRenyi::with_expected_degree(150, 8.0).generate(11);
        let small = CompleteGraph::new(12).generate(0);
        let mut arena = SimulationArena::default();
        // Big run, small run, big run — stale storage must never leak.
        for (graph, seed) in [(&g, 1u64), (&small, 2), (&g, 3)] {
            let mut sim = arena.checkout(graph, seed).with_loss_probability(0.1);
            let mut fresh = Simulation::new(graph, seed).with_loss_probability(0.1);
            assert_eq!(fingerprint(&mut sim, 6), fingerprint(&mut fresh, 6));
            for v in graph.nodes() {
                assert_eq!(sim.state(v), fresh.state(v));
            }
            arena.recycle(sim);
        }
    }

    #[test]
    fn scalar_and_batch_delivery_cores_agree() {
        // Small n → sequential delivery takes the scalar core; threads > 1
        // takes the batch core. Groups with 1, 2 and 3+ senders, a fully
        // informed sender, and a tracked rumor must all commit identically.
        let g = CompleteGraph::new(96).generate(0);
        let mut scalar = Simulation::new(&g, 5);
        let mut batch = Simulation::new(&g, 5).with_threads(4);
        for sim in [&mut scalar, &mut batch] {
            sim.track_message(3);
            sim.absorb(7, &MessageSet::full(96)); // endgame-shaped sender
        }
        let mut transfers = Vec::new();
        for v in 0..96u32 {
            transfers.push(Transfer::new(v, (v + 1) % 96)); // 1 sender each
            if v % 2 == 0 {
                transfers.push(Transfer::new(v, (v + 2) % 96)); // 2nd sender
            }
            if v % 4 == 0 {
                transfers.push(Transfer::new(v, (v + 4) % 96)); // 3rd/4th
                transfers.push(Transfer::new(v, (v + 8) % 96));
            }
        }
        for round in 0..5 {
            let a = scalar.deliver(&transfers);
            let b = batch.deliver(&transfers);
            assert_eq!(a, b, "added diverged at round {round}");
            assert_eq!(scalar.tracked_informed_count(), batch.tracked_informed_count());
        }
        for v in g.nodes() {
            assert_eq!(scalar.state(v), batch.state(v), "state of {v}");
            assert_eq!(scalar.num_known(v), batch.num_known(v));
        }
        assert_eq!(scalar.fully_informed_count(), batch.fully_informed_count());
    }
}
