//! Random-walk tokens and per-node walk queues (Phase II of Algorithm 1).
//!
//! In the random-walk phase of fast-gossiping a node starts a walk with
//! probability `ℓ/log n`; a walk carries a combined message and a counter of
//! the *moves* it has made. "To ensure that no random walk is lost, each node
//! collects all incoming messages (which correspond to random walks) and
//! stores them in a queue to send them out one by one in the following steps"
//! (Section 3.2). Walks whose move counter exceeds `c_moves · log n` are no
//! longer enqueued.

use std::collections::VecDeque;

use crate::message::MessageSet;

/// A random-walk token: the combined message it carries plus its move count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Walk {
    /// Combined message carried by the walk.
    pub messages: MessageSet,
    /// Number of real moves the walk has made so far (`moves(m)` in Alg. 1).
    pub moves: u32,
}

impl Walk {
    /// A fresh walk carrying `messages`, with zero moves.
    pub fn new(messages: MessageSet) -> Self {
        Self { messages, moves: 0 }
    }
}

/// The per-node FIFO queues `q_v` of Algorithm 1, Phase II.
#[derive(Clone, Debug)]
pub struct WalkQueues {
    queues: Vec<VecDeque<Walk>>,
}

impl WalkQueues {
    /// Empty queues for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { queues: vec![VecDeque::new(); n] }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.queues.len()
    }

    /// `q_v.add(walk)` — append a walk at the end of node `v`'s queue.
    pub fn add(&mut self, v: u32, walk: Walk) {
        self.queues[v as usize].push_back(walk);
    }

    /// `q_v.pop()` — remove and return the first walk of node `v`'s queue.
    pub fn pop(&mut self, v: u32) -> Option<Walk> {
        self.queues[v as usize].pop_front()
    }

    /// `empty(q_v)` — whether node `v`'s queue is empty.
    pub fn is_empty(&self, v: u32) -> bool {
        self.queues[v as usize].is_empty()
    }

    /// Queue length of node `v`.
    pub fn len(&self, v: u32) -> usize {
        self.queues[v as usize].len()
    }

    /// Total number of queued walks across all nodes.
    pub fn total_walks(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Longest queue over all nodes (Lemma 6 bounds this by
    /// `O(log n / log log n)` w.h.p.).
    pub fn max_queue_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).max().unwrap_or(0)
    }

    /// Nodes that currently hold at least one walk (these become *active*
    /// before the broadcast sub-phase).
    pub fn nodes_with_walks(&self) -> Vec<u32> {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Removes all walks from all queues (end of a round).
    pub fn clear(&mut self) {
        self.queues.iter_mut().for_each(|q| q.clear());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(universe: usize, id: u32) -> Walk {
        Walk::new(MessageSet::singleton(universe, id))
    }

    #[test]
    fn queues_are_fifo() {
        let mut q = WalkQueues::new(3);
        q.add(1, walk(8, 0));
        q.add(1, walk(8, 5));
        assert_eq!(q.len(1), 2);
        assert!(q.pop(1).unwrap().messages.contains(0));
        assert!(q.pop(1).unwrap().messages.contains(5));
        assert!(q.pop(1).is_none());
        assert!(q.is_empty(1));
    }

    #[test]
    fn totals_and_active_nodes() {
        let mut q = WalkQueues::new(4);
        q.add(0, walk(4, 1));
        q.add(2, walk(4, 2));
        q.add(2, walk(4, 3));
        assert_eq!(q.total_walks(), 3);
        assert_eq!(q.max_queue_len(), 2);
        assert_eq!(q.nodes_with_walks(), vec![0, 2]);
        q.clear();
        assert_eq!(q.total_walks(), 0);
    }

    #[test]
    fn fresh_walk_has_zero_moves() {
        assert_eq!(walk(4, 0).moves, 0);
    }
}
