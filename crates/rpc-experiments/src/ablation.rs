//! Parameter ablations for Algorithm 1 (fast-gossiping).
//!
//! The paper's abstract: "our simulations illustrate that by tuning the
//! parameters of our algorithms, we can significantly reduce the communication
//! overhead compared to the traditional push-pull approach". This module makes
//! that tuning measurable: a sweep grid over the random-walk probability
//! (as multiples of the Table 1 value `1/log n`) and the per-round broadcast
//! length, each cell a [`CellJob::FastTuned`] run.

use rpc_scenarios::{CellJob, RepPolicy, SweepReport, SweepSpec};

use crate::report::{sweep_table, Table};

/// The ablation sweep: `walk_prob_factor × broadcast_steps` at one size.
pub fn spec(
    n: usize,
    probability_factors: &[f64],
    broadcast_steps: &[usize],
    seed: u64,
    policy: RepPolicy,
) -> SweepSpec {
    SweepSpec::grid("ablation", seed, policy)
        .axis("n", [n])
        .axis("walk_prob_factor", probability_factors.iter().copied())
        .axis("broadcast_steps", broadcast_steps.iter().copied())
        .cells(|point| {
            Some(CellJob::FastTuned {
                n: point.parse("n"),
                walk_probability_factor: point.parse("walk_prob_factor"),
                broadcast_steps: point.parse("broadcast_steps"),
            })
        })
        .expect("ablation grid is well-formed")
}

/// Renders the ablation sweep as a table.
pub fn table(report: &SweepReport) -> Table {
    sweep_table("Ablation — fast-gossiping parameter tuning", report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_scenarios::SweepRunner;

    #[test]
    fn sweep_produces_one_cell_per_combination() {
        let report =
            SweepRunner::new().run(&spec(256, &[0.5, 1.0], &[1, 2], 3, RepPolicy::fixed(1)));
        assert_eq!(report.cells.len(), 4);
        assert!(report.cells.iter().all(|c| c.mean("completed") == Some(1.0)));
        assert_eq!(table(&report).len(), 4);
    }

    #[test]
    fn walk_probability_sweep_always_completes_and_adds_walk_packets() {
        let report = SweepRunner::new().run(&spec(512, &[1.0, 4.0], &[2], 5, RepPolicy::fixed(2)));
        let get = |factor: &str| {
            report.cells.iter().find(|c| c.axis("walk_prob_factor") == Some(factor)).unwrap()
        };
        let base = get("1");
        let heavy = get("4");
        assert_eq!(base.mean("completed"), Some(1.0));
        assert_eq!(heavy.mean("completed"), Some(1.0));
        // More walks add walk packets, though a faster phase II can claw some
        // of that back in phase III — allow a generous margin.
        let (b, h) =
            (base.mean("packets_per_node").unwrap(), heavy.mean("packets_per_node").unwrap());
        assert!(h >= b * 0.75, "heavy {h:.2} vs base {b:.2}");
    }

    #[test]
    fn immediate_semantics_never_needs_more_rounds() {
        // A comparison of the engine's two delivery semantics on the Push-Pull
        // baseline — kept as a test-only oracle; the sweeps always use the
        // faithful deferred timing.
        use rpc_engine::{derive_seed, DeliverySemantics, Simulation};
        use rpc_gossip::prelude::*;
        use rpc_graphs::prelude::*;

        let n = 512;
        let generator = ErdosRenyi::paper_density(n);
        let mut totals = (0.0f64, 0.0f64);
        for i in 0..2u64 {
            let seed = derive_seed(7, 0, i);
            let graph = generator.generate(seed ^ (i << 32));
            for (idx, semantics) in
                [DeliverySemantics::Deferred, DeliverySemantics::Immediate].into_iter().enumerate()
            {
                let mut sim = Simulation::new(&graph, seed).with_semantics(semantics);
                let steps = PushPullGossip::run_until_complete(&mut sim, 10_000);
                if idx == 0 {
                    totals.0 += steps as f64;
                } else {
                    totals.1 += steps as f64;
                }
            }
        }
        assert!(totals.0 > 0.0 && totals.1 > 0.0);
        assert!(
            totals.1 <= totals.0 + 1e-9,
            "immediate ({}) should not be slower than deferred ({})",
            totals.1,
            totals.0
        );
    }
}
