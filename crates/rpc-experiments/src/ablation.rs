//! Parameter ablations for Algorithm 1 (fast-gossiping).
//!
//! The paper's abstract: "our simulations illustrate that by tuning the
//! parameters of our algorithms, we can significantly reduce the communication
//! overhead compared to the traditional push-pull approach". This module makes
//! that tuning measurable: it sweeps the random-walk probability and the
//! per-round broadcast length around the Table 1 values and reports the
//! resulting overhead, plus a comparison of the two delivery semantics of the
//! engine (faithful deferred timing vs optimistic immediate forwarding).

use rpc_engine::Accounting;
use rpc_gossip::prelude::*;
use rpc_graphs::prelude::*;

use crate::report::{fmt3, Table};
use crate::sweep::seeds;

/// One measured point of the parameter ablation.
#[derive(Clone, Debug)]
pub struct AblationPoint {
    /// Graph size.
    pub n: usize,
    /// Multiplier applied to the Table 1 walk probability.
    pub walk_probability_factor: f64,
    /// Broadcast steps per round.
    pub broadcast_steps: usize,
    /// Average packets per node.
    pub packets_per_node: f64,
    /// Average rounds.
    pub rounds: f64,
    /// Fraction of completed runs.
    pub completion_rate: f64,
}

/// Sweeps the walk probability (as multiples of the Table 1 value `1/log n`)
/// and the per-round broadcast step count.
pub fn run(
    n: usize,
    probability_factors: &[f64],
    broadcast_steps: &[usize],
    repetitions: usize,
    base_seed: u64,
) -> Vec<AblationPoint> {
    let generator = ErdosRenyi::paper_density(n);
    let baseline = FastGossipingConfig::paper_defaults(n);
    let mut points = Vec::new();
    for &factor in probability_factors {
        for &steps in broadcast_steps {
            let config = FastGossipingConfig {
                walk_probability: (baseline.walk_probability * factor).min(1.0),
                broadcast_steps: steps,
                ..baseline
            };
            let algorithm = FastGossiping::new(config);
            let mut packets = 0.0;
            let mut rounds = 0.0;
            let mut completed = 0usize;
            let run_seeds = seeds(base_seed, repetitions);
            for (i, &seed) in run_seeds.iter().enumerate() {
                let graph = generator.generate(seed ^ ((i as u64) << 32));
                let outcome = algorithm.run(&graph, seed);
                packets += outcome.messages_per_node(Accounting::PerPacket);
                rounds += outcome.rounds() as f64;
                completed += usize::from(outcome.completed());
            }
            let reps = repetitions.max(1) as f64;
            points.push(AblationPoint {
                n,
                walk_probability_factor: factor,
                broadcast_steps: steps,
                packets_per_node: packets / reps,
                rounds: rounds / reps,
                completion_rate: completed as f64 / reps,
            });
        }
    }
    points
}

/// Renders the ablation points as a table.
pub fn table(points: &[AblationPoint]) -> Table {
    let mut table = Table::new(
        "Ablation — fast-gossiping parameter tuning",
        &[
            "n",
            "walk_prob_factor",
            "broadcast_steps",
            "packets_per_node",
            "rounds",
            "completion_rate",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            fmt3(p.walk_probability_factor),
            p.broadcast_steps.to_string(),
            fmt3(p.packets_per_node),
            fmt3(p.rounds),
            fmt3(p.completion_rate),
        ]);
    }
    table
}

/// Compares the engine's two delivery semantics on the Push-Pull baseline:
/// the faithful deferred timing versus optimistic in-step forwarding. Returns
/// `(deferred_rounds, immediate_rounds)` averaged over `repetitions`.
pub fn delivery_semantics_rounds(n: usize, repetitions: usize, base_seed: u64) -> (f64, f64) {
    use rpc_engine::{DeliverySemantics, Simulation};

    let generator = ErdosRenyi::paper_density(n);
    let mut totals = (0.0f64, 0.0f64);
    for (i, &seed) in seeds(base_seed, repetitions).iter().enumerate() {
        let graph = generator.generate(seed ^ ((i as u64) << 32));
        for (idx, semantics) in
            [DeliverySemantics::Deferred, DeliverySemantics::Immediate].into_iter().enumerate()
        {
            let mut sim = Simulation::new(&graph, seed).with_semantics(semantics);
            let steps = PushPullGossip::run_until_complete(&mut sim, 10_000);
            if idx == 0 {
                totals.0 += steps as f64;
            } else {
                totals.1 += steps as f64;
            }
        }
    }
    let reps = repetitions.max(1) as f64;
    (totals.0 / reps, totals.1 / reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_combination() {
        let points = run(256, &[0.5, 1.0], &[1, 2], 1, 3);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.completion_rate == 1.0));
        assert_eq!(table(&points).len(), 4);
    }

    #[test]
    fn walk_probability_sweep_always_completes_and_adds_walk_packets() {
        let points = run(512, &[1.0, 4.0], &[2], 2, 5);
        let base = points.iter().find(|p| p.walk_probability_factor == 1.0).unwrap();
        let heavy = points.iter().find(|p| p.walk_probability_factor == 4.0).unwrap();
        assert_eq!(base.completion_rate, 1.0);
        assert_eq!(heavy.completion_rate, 1.0);
        // More walks add walk packets, though a faster phase II can claw some
        // of that back in phase III — allow a generous margin.
        assert!(heavy.packets_per_node >= base.packets_per_node * 0.75);
    }

    #[test]
    fn immediate_semantics_never_needs_more_rounds() {
        let (deferred, immediate) = delivery_semantics_rounds(512, 2, 7);
        assert!(deferred > 0.0 && immediate > 0.0);
        assert!(
            immediate <= deferred + 1e-9,
            "immediate ({immediate}) should not be slower than deferred ({deferred})"
        );
    }
}
