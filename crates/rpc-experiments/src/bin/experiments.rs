//! Command-line entry point that regenerates the paper's figures and tables.
//!
//! ```text
//! experiments <subcommand> [--quick|--large] [--max-n N] [--reps K]
//!             [--max-reps K] [--ci-rel T] [--seed S] [--threads T]
//!             [--out DIR] [--cache FILE] [--only NAME]...
//!             [--trace-out FILE] [--profile]
//!
//! subcommands:
//!   table1      Table 1  — simulation constants
//!   fig1        Figure 1 — messages per node for Push-Pull / Algorithm 1 / Algorithm 2
//!   fig2        Figure 2 — robustness ratio (largest size)
//!   fig3        Figure 3 — robustness ratio (two sizes)
//!   fig4        Figure 4 — fast-gossiping detail
//!   fig5        Figure 5 — loss thresholds
//!   theory      Theorems 1 & 2 shape check
//!   separation  Broadcast-vs-gossip density contrast
//!   ablation    Fast-gossiping parameter tuning
//!   phases      Per-phase packet breakdown
//!   scenario    Built-in scenario registry as one sweep
//!   sweep       Every sweep-backed experiment above (respects --only)
//!   all         sweep + separation
//!   profile     Aggregate a recorded trace into a per-cell timing table
//!   node        Serve one gossip node over JSON lines on stdin/stdout
//!   cluster     Run a scenario as an in-process node cluster under a nemesis
//! ```
//!
//! `node` and `cluster` take their own flags (they are runtime commands, not
//! sweeps):
//!
//! ```text
//! experiments node [--state-path FILE]
//! experiments cluster [--scenario NAME] [--n N] [--seed S]
//!                     [--nemesis SPEC] [--trace-out FILE] [--require-complete]
//! ```
//!
//! `node` speaks the Maelstrom-style wire protocol of `rpc-runtime`: it waits
//! for an `init` envelope naming a registry scenario, then answers
//! `start_round`/`gossip`/`read` until EOF. `--state-path` persists the rumor
//! store after every message so a supervisor can kill and restart the process
//! without losing rumors. `cluster` wires n such actors to the coordinator
//! over in-process channels and injects faults per the `--nemesis` grammar
//! (`drop=0.1,delay=0.2:3,duplicate=0.05,partition=4:2,crash=3@5+4,seed=9`);
//! `--require-complete` exits nonzero unless the stop rule was satisfied.
//!
//! `--profile` (or `--trace-out FILE`) streams every sweep's observability
//! events — dispatch decisions, pool/arena stats, per-repetition wall-clock —
//! as JSON lines and reports live progress on stderr; `experiments profile`
//! then folds that trace into a per-cell, per-delivery-core timing table.
//! Tracing never changes results: observed runs are bit-identical to
//! unobserved ones (see `rpc-obs`).
//!
//! Every simulation experiment is a declarative `SweepSpec` executed by the
//! adaptive sweep engine: repetitions per cell run until a 95% CI stop rule on
//! the experiment's headline metric is met (or `--reps K` forces a fixed
//! budget), `--cache FILE` makes interrupted runs resume from finished cells,
//! and all reported numbers are bit-identical for any `--threads` value.
//!
//! Results are printed as Markdown and, when `--out DIR` is given, written as
//! one CSV file per experiment plus a JSON sweep report (same stem) carrying
//! the per-cell CI aggregates.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use rpc_experiments::{
    ablation, fig1, fig4, phases, profile, report::Table, robustness, scenario, separation, table1,
    theory_check, RunOpts,
};
use rpc_obs::TraceWriter;
use rpc_runtime::{
    run_cluster, run_cluster_observed, serve, ClusterConfig, NemesisSpec, RetryPolicy,
    RuntimeOutcome, StdioTransport,
};
use rpc_scenarios::{
    arithmetic_failure_sweep, dense_size_sweep, failure_sweep, registry, size_sweep, SweepReport,
};

/// Prints the table as Markdown and, with `--out`, writes `<stem>.csv` plus —
/// for sweep-backed experiments — the `<stem>.json` report.
fn emit(table: &Table, stem: &str, report: Option<&SweepReport>, opts: &RunOpts) {
    println!("{}", table.to_markdown());
    if let Some(dir) = &opts.out_dir {
        let csv = dir.join(format!("{stem}.csv"));
        match table.write_csv(&csv) {
            Ok(()) => eprintln!("wrote {}", csv.display()),
            Err(e) => eprintln!("failed to write {}: {e}", csv.display()),
        }
        if let Some(report) = report {
            let json = dir.join(format!("{stem}.json"));
            match std::fs::write(&json, report.to_json()) {
                Ok(()) => eprintln!("wrote {}", json.display()),
                Err(e) => eprintln!("failed to write {}: {e}", json.display()),
            }
        }
    }
}

fn run_table1(opts: &RunOpts) {
    emit(&table1::run(&[1_000, 10_000, 100_000, 1_000_000]), "table1_constants", None, opts);
}

fn run_fig1(opts: &RunOpts) {
    let sizes = size_sweep(opts.scale.min_n, opts.scale.max_n);
    let spec = fig1::spec(&sizes, opts.scale.seed, opts.policy("packets_per_node"));
    let report = opts.run_spec(&spec);
    emit(&fig1::table(&report), "fig1_overhead", Some(&report), opts);
}

fn run_fig2(opts: &RunOpts) {
    // The paper uses n = 10^6; we use the largest size of the configured scale.
    let n = opts.scale.max_n;
    let failures = failure_sweep((n / 1000).max(2), n / 10);
    let spec = robustness::loss_ratio_spec(
        "fig2",
        n,
        &failures,
        3,
        opts.scale.seed,
        opts.policy("loss_ratio"),
    );
    let report = opts.run_spec(&spec);
    let title = format!("Figure 2 — additional loss ratio, n = {n}");
    emit(&robustness::loss_ratio_table(&title, &report), "fig2_robustness", Some(&report), opts);
}

fn run_fig3(opts: &RunOpts) {
    for (idx, n) in [opts.scale.max_n / 8, opts.scale.max_n / 2].into_iter().enumerate() {
        let n = n.max(512);
        let failures = failure_sweep((n / 1000).max(2), n / 10);
        let spec = robustness::loss_ratio_spec(
            &format!("fig3-n{n}"),
            n,
            &failures,
            3,
            opts.scale.seed,
            opts.policy("loss_ratio"),
        );
        let report = opts.run_spec(&spec);
        let title = format!("Figure 3.{} — additional loss ratio, n = {n}", idx + 1);
        emit(
            &robustness::loss_ratio_table(&title, &report),
            &format!("fig3_robustness_n{n}"),
            Some(&report),
            opts,
        );
    }
}

fn run_fig4(opts: &RunOpts) {
    let sizes = dense_size_sweep(opts.scale.max_n / 8, opts.scale.max_n);
    let spec = fig4::spec(&sizes, opts.scale.seed, opts.policy("packets_per_node"));
    let report = opts.run_spec(&spec);
    emit(&fig4::table(&report), "fig4_fastgossip_detail", Some(&report), opts);
}

fn run_fig5(opts: &RunOpts) {
    for (idx, n) in [opts.scale.max_n / 8, opts.scale.max_n / 2].into_iter().enumerate() {
        let n = n.max(512);
        let step = (n / 20).max(1);
        let failures = arithmetic_failure_sweep(step, n / 4);
        // At least five runs per point so the exceedance percentages resolve.
        let spec = robustness::loss_ratio_spec(
            &format!("fig5-n{n}"),
            n,
            &failures,
            3,
            opts.scale.seed,
            opts.policy_with_min(5, "lost_messages"),
        );
        let report = opts.run_spec(&spec);
        let title = format!("Figure 5.{} — runs losing more than T messages, n = {n}", idx + 1);
        emit(
            &robustness::loss_thresholds_table(&title, &report),
            &format!("fig5_thresholds_n{n}"),
            Some(&report),
            opts,
        );
    }
}

fn run_theory(opts: &RunOpts) {
    let sizes = size_sweep(opts.scale.min_n, opts.scale.max_n.min(1 << 14));
    let spec = theory_check::spec(&sizes, opts.scale.seed, opts.policy("packets_per_node"));
    let report = opts.run_spec(&spec);
    emit(&theory_check::table(&report), "theory_shape_check", Some(&report), opts);
}

fn run_separation(opts: &RunOpts) {
    let sizes = size_sweep(opts.scale.min_n, opts.scale.max_n.min(1 << 14));
    let points = separation::run(&sizes, opts.scale.repetitions, opts.scale.seed);
    emit(&separation::table(&points), "separation_broadcast_vs_gossip", None, opts);
}

fn run_ablation(opts: &RunOpts) {
    let n = (opts.scale.max_n / 4).max(1024);
    let spec = ablation::spec(
        n,
        &[0.5, 1.0, 2.0, 4.0],
        &[1, 2, 3],
        opts.scale.seed,
        opts.policy("packets_per_node"),
    );
    let report = opts.run_spec(&spec);
    emit(&ablation::table(&report), "ablation_fast_gossiping", Some(&report), opts);
}

fn run_phases(opts: &RunOpts) {
    let n = (opts.scale.max_n / 4).max(1024);
    let spec = phases::spec(n, opts.scale.seed, opts.policy("packets_per_node"));
    let report = opts.run_spec(&spec);
    emit(&phases::table(&report), "phase_breakdown", Some(&report), opts);
}

fn run_scenarios(opts: &RunOpts) {
    // Scenario graphs use a quarter of the sweep's largest size: the registry
    // runs 24 scenarios (all three protocols under complete/rounds/coverage
    // stop rules, the hostile-dimension set — zone crashes, loss bursts,
    // edge churn, Byzantine senders — the multi-rumor streaming set, and the
    // node-runtime trio that the differential suite replays), so this keeps
    // `--quick` in CI territory while the default/large scales still
    // exercise real sizes.
    let n = (opts.scale.max_n / 4).max(256);
    let spec = scenario::spec(n, opts.scale.seed, opts.policy("rounds"));
    let report = opts.run_spec(&spec);
    emit(&scenario::table(&report), "scenarios", Some(&report), opts);
}

/// The sweep-backed experiments in `sweep`/`all` execution order. `table1`
/// rides along (constants only, no spec); `separation` is the one simulation
/// experiment outside the engine and runs only under `all` or its own
/// subcommand.
type NamedExperiment = (&'static str, fn(&RunOpts));

const SWEEP_EXPERIMENTS: &[NamedExperiment] = &[
    ("table1", run_table1),
    ("fig1", run_fig1),
    ("fig2", run_fig2),
    ("fig3", run_fig3),
    ("fig4", run_fig4),
    ("fig5", run_fig5),
    ("theory", run_theory),
    ("ablation", run_ablation),
    ("phases", run_phases),
    ("scenario", run_scenarios),
];

fn run_sweep(opts: &RunOpts) {
    for (name, run) in SWEEP_EXPERIMENTS {
        if opts.should_run(name) {
            run(opts);
        }
    }
}

/// Aggregates a JSON-lines trace (from `--profile` / `--trace-out`) into the
/// per-cell, per-core timing table.
fn run_profile(opts: &RunOpts) -> Result<(), String> {
    let path = opts.trace_path().unwrap_or_else(|| {
        opts.out_dir
            .as_deref()
            .map_or_else(|| std::path::PathBuf::from("trace.jsonl"), |dir| dir.join("trace.jsonl"))
    });
    let rows = profile::load(&path)?;
    if rows.is_empty() {
        return Err(format!("trace {} contains no sweep cells", path.display()));
    }
    emit(&profile::table(&rows), "profile", None, opts);
    if let Some(dir) = &opts.out_dir {
        let json = dir.join("profile.json");
        match std::fs::write(&json, profile::to_json(&rows)) {
            Ok(()) => eprintln!("wrote {}", json.display()),
            Err(e) => eprintln!("failed to write {}: {e}", json.display()),
        }
    }
    Ok(())
}

/// With tracing enabled, start every invocation from an empty trace file:
/// the per-sweep writers append, so without this reruns would accumulate
/// stale events and the `profile` table would double-count.
fn truncate_trace(opts: &RunOpts) {
    if let Some(path) = opts.trace_path() {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
            }
        }
        if let Err(e) = std::fs::File::create(&path) {
            eprintln!("cannot truncate trace {}: {e}", path.display());
        }
    }
}

/// `experiments node [--state-path FILE]` — the deployable actor: serve one
/// gossip node over JSON lines on stdin/stdout until EOF.
fn run_node(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut state_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--state-path" => {
                let path = args.next().ok_or("--state-path needs a file argument")?;
                state_path = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown node flag: {other}")),
        }
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut transport = StdioTransport::new(stdin.lock(), stdout.lock());
    serve(&mut transport, state_path.as_deref()).map_err(|e| e.to_string())
}

/// `experiments cluster ...` — run one registry scenario as an in-process
/// cluster of node actors under a (possibly hostile) nemesis and print the
/// outcome summary.
fn run_cluster_cmd(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut scenario_name = "sparse-er".to_string();
    let mut n = 16usize;
    let mut seed = 1u64;
    let mut nemesis = NemesisSpec::default();
    let mut trace_out: Option<PathBuf> = None;
    let mut require_complete = false;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs an argument"));
        match arg.as_str() {
            "--scenario" => scenario_name = value("--scenario")?,
            "--n" => {
                n = value("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?;
            }
            "--seed" => {
                seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--nemesis" => nemesis = NemesisSpec::parse(&value("--nemesis")?)?,
            "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--require-complete" => require_complete = true,
            other => return Err(format!("unknown cluster flag: {other}")),
        }
    }

    let scenario = registry::find(&scenario_name, n)
        .ok_or_else(|| format!("no registry scenario named {scenario_name:?}"))?;
    // The registry clamps sizes so every scenario stays well-formed; report
    // the size the cluster will actually run at, not the one requested.
    if scenario.topology.num_nodes() != n {
        eprintln!("note: registry clamped --n {n} to {}", scenario.topology.num_nodes());
        n = scenario.topology.num_nodes();
    }
    let config = ClusterConfig { policy: RetryPolicy::default(), nemesis };
    let outcome = match &trace_out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create trace {}: {e}", path.display()))?;
            let mut sink = TraceWriter::new(std::io::BufWriter::new(file));
            let outcome = run_cluster_observed(&scenario, seed, &config, &mut sink)
                .map_err(|e| e.to_string())?;
            let mut writer = sink.finish().map_err(|e| format!("trace {}: {e}", path.display()))?;
            writer.flush().map_err(|e| format!("trace {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
            outcome
        }
        None => run_cluster(&scenario, seed, &config).map_err(|e| e.to_string())?,
    };

    print_cluster_summary(&scenario_name, n, seed, &outcome);
    if require_complete && !outcome.completed {
        return Err(format!("stop rule not satisfied: {:?}", outcome.stopped_by));
    }
    Ok(())
}

/// Prints the cluster outcome in the same key/value style the sweep tables
/// use for their stderr progress lines.
fn print_cluster_summary(scenario: &str, n: usize, seed: u64, outcome: &RuntimeOutcome) {
    println!("cluster {scenario} n={n} seed={seed}");
    println!("  completed        {}", outcome.completed);
    println!("  stopped_by       {:?}", outcome.stopped_by);
    println!("  rounds           {}", outcome.rounds);
    println!("  packets          {}", outcome.total_packets);
    println!("  exchanges        {}", outcome.total_exchanges);
    println!("  retries          {}", outcome.retries);
    println!("  degraded_rounds  {}", outcome.quorum_advances);
    let f = &outcome.faults;
    println!(
        "  faults           dropped={} delayed={} duplicated={} partition_drops={} \
         crash_drops={} crashes={} restarts={}",
        f.dropped, f.delayed, f.duplicated, f.partition_drops, f.crash_drops, f.crashes, f.restarts
    );
    let informed = outcome.final_counts.iter().filter(|&&c| c > 0).count();
    println!("  informed_nodes   {informed}/{n}");
    println!("  forged_rumors    {}", outcome.forged);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "help".to_string());
    // The runtime commands parse their own flags — they are not sweeps and
    // take none of the sweep options.
    if command == "node" || command == "cluster" {
        let result = if command == "node" { run_node(args) } else { run_cluster_cmd(args) };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match RunOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if command != "profile" {
        truncate_trace(&opts);
    }
    match command.as_str() {
        "table1" => run_table1(&opts),
        "fig1" => run_fig1(&opts),
        "fig2" => run_fig2(&opts),
        "fig3" => run_fig3(&opts),
        "fig4" => run_fig4(&opts),
        "fig5" => run_fig5(&opts),
        "theory" => run_theory(&opts),
        "separation" => run_separation(&opts),
        "ablation" => run_ablation(&opts),
        "phases" => run_phases(&opts),
        "scenario" => run_scenarios(&opts),
        "sweep" => run_sweep(&opts),
        "all" => {
            run_sweep(&opts);
            if opts.should_run("separation") {
                run_separation(&opts);
            }
        }
        "profile" => {
            if let Err(e) = run_profile(&opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "help" | "--help" | "-h" => {
            println!(
                "usage: experiments \
                 <table1|fig1|fig2|fig3|fig4|fig5|theory|separation|ablation|phases|scenario|sweep|all|profile> \
                 [--quick|--large] [--max-n N] [--reps K] [--max-reps K] [--ci-rel T] \
                 [--seed S] [--threads T] [--out DIR] [--cache FILE] [--only NAME]... \
                 [--trace-out FILE] [--profile]\n       \
                 experiments node [--state-path FILE]\n       \
                 experiments cluster [--scenario NAME] [--n N] [--seed S] [--nemesis SPEC] \
                 [--trace-out FILE] [--require-complete]"
            );
        }
        other => {
            eprintln!("unknown subcommand: {other} (try `experiments help`)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
