//! Command-line entry point that regenerates the paper's figures and tables.
//!
//! ```text
//! experiments <subcommand> [--quick|--large] [--max-n N] [--reps K] [--seed S]
//!             [--threads T] [--out DIR]
//!
//! subcommands:
//!   table1      Table 1  — simulation constants
//!   fig1        Figure 1 — messages per node for Push-Pull / Algorithm 1 / Algorithm 2
//!   fig2        Figure 2 — robustness ratio (largest size)
//!   fig3        Figure 3 — robustness ratio (two sizes)
//!   fig4        Figure 4 — fast-gossiping detail
//!   fig5        Figure 5 — loss thresholds
//!   theory      Theorems 1 & 2 shape check
//!   separation  Broadcast-vs-gossip density contrast
//!   scenario    Built-in scenario registry via the Monte Carlo batch driver
//!   all         Everything above
//! ```
//!
//! `--threads` (default: available parallelism) feeds both the engine's
//! parallel delivery path (`compute_updates`) and the scenario `BatchDriver`;
//! every reported number is bit-identical for any value.
//!
//! Results are printed as Markdown and, when `--out DIR` is given, written as
//! one CSV file per experiment.

use std::path::PathBuf;
use std::process::ExitCode;

use rpc_experiments::{
    ablation, fig1, fig4, phases, report::Table, robustness, scenario, separation, sweep, table1,
    theory_check, Scale,
};

struct Options {
    command: String,
    scale: Scale,
    threads: usize,
    out_dir: Option<PathBuf>,
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "help".to_string());
    let mut scale = Scale::default_scale();
    let mut threads = default_threads();
    let mut out_dir = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--large" => scale = Scale::large(),
            "--max-n" => {
                let value = args.next().ok_or("--max-n needs a value")?;
                scale.max_n = value.parse().map_err(|_| format!("invalid --max-n: {value}"))?;
            }
            "--reps" => {
                let value = args.next().ok_or("--reps needs a value")?;
                scale.repetitions =
                    value.parse().map_err(|_| format!("invalid --reps: {value}"))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                scale.seed = value.parse().map_err(|_| format!("invalid --seed: {value}"))?;
            }
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                threads = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or(format!("invalid --threads: {value}"))?;
            }
            "--out" => {
                let value = args.next().ok_or("--out needs a directory")?;
                out_dir = Some(PathBuf::from(value));
            }
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(Options { command, scale, threads, out_dir })
}

fn emit(table: &Table, file: &str, out_dir: &Option<PathBuf>) {
    println!("{}", table.to_markdown());
    if let Some(dir) = out_dir {
        let path = dir.join(file);
        match table.write_csv(&path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

fn run_fig1(scale: Scale, threads: usize, out: &Option<PathBuf>) {
    let sizes = sweep::size_sweep(scale.min_n, scale.max_n);
    let points = fig1::run_threaded(&sizes, scale.repetitions, scale.seed, threads);
    emit(&fig1::table(&points), "fig1_overhead.csv", out);
}

fn run_scenarios(scale: Scale, threads: usize, out: &Option<PathBuf>) {
    // Scenario graphs use a quarter of the sweep's largest size: the registry
    // runs 12 scenarios x reps replications (all three protocols under
    // complete/rounds/coverage stop rules), so this keeps `--quick` in CI
    // territory while the default/large scales still exercise real sizes.
    let n = (scale.max_n / 4).max(256);
    let reports = scenario::run(n, scale.repetitions, scale.seed, threads);
    emit(&scenario::table(&reports), "scenarios.csv", out);
}

fn run_fig2(scale: Scale, out: &Option<PathBuf>) {
    // The paper uses n = 10^6; we use the largest size of the configured scale.
    let n = scale.max_n;
    let failures = sweep::failure_sweep((n / 1000).max(2), n / 10);
    let points = robustness::loss_ratio(n, &failures, 3, scale.repetitions, scale.seed);
    emit(
        &robustness::loss_ratio_table(
            &format!("Figure 2 — additional loss ratio, n = {n}"),
            &points,
        ),
        "fig2_robustness.csv",
        out,
    );
}

fn run_fig3(scale: Scale, out: &Option<PathBuf>) {
    for (idx, n) in [scale.max_n / 8, scale.max_n / 2].into_iter().enumerate() {
        let n = n.max(512);
        let failures = sweep::failure_sweep((n / 1000).max(2), n / 10);
        let points = robustness::loss_ratio(n, &failures, 3, scale.repetitions, scale.seed);
        emit(
            &robustness::loss_ratio_table(
                &format!("Figure 3.{} — additional loss ratio, n = {n}", idx + 1),
                &points,
            ),
            &format!("fig3_robustness_n{n}.csv"),
            out,
        );
    }
}

fn run_fig4(scale: Scale, out: &Option<PathBuf>) {
    let sizes = sweep::dense_size_sweep(scale.max_n / 8, scale.max_n);
    let points = fig4::run(&sizes, scale.repetitions, scale.seed);
    emit(&fig4::table(&points), "fig4_fastgossip_detail.csv", out);
}

fn run_fig5(scale: Scale, out: &Option<PathBuf>) {
    for (idx, n) in [scale.max_n / 8, scale.max_n / 2].into_iter().enumerate() {
        let n = n.max(512);
        let step = (n / 20).max(1);
        let failures = sweep::arithmetic_failure_sweep(step, n / 4);
        let runs = scale.repetitions.max(5);
        let points = robustness::loss_thresholds(n, &failures, 3, runs, scale.seed);
        emit(
            &robustness::loss_thresholds_table(
                &format!("Figure 5.{} — runs losing more than T messages, n = {n}", idx + 1),
                &points,
            ),
            &format!("fig5_thresholds_n{n}.csv"),
            out,
        );
    }
}

fn run_ablation(scale: Scale, out: &Option<PathBuf>) {
    let n = (scale.max_n / 4).max(1024);
    let points = ablation::run(n, &[0.5, 1.0, 2.0, 4.0], &[1, 2, 3], scale.repetitions, scale.seed);
    emit(&ablation::table(&points), "ablation_fast_gossiping.csv", out);
    let (deferred, immediate) =
        ablation::delivery_semantics_rounds(n, scale.repetitions, scale.seed);
    println!(
        "delivery semantics at n = {n}: deferred = {deferred:.2} rounds, immediate = {immediate:.2} rounds\n"
    );
}

fn run_phases(scale: Scale, out: &Option<PathBuf>) {
    let n = (scale.max_n / 4).max(1024);
    let points = phases::run(n, scale.repetitions, scale.seed);
    emit(&phases::table(&points), "phase_breakdown.csv", out);
}

fn run_table1(out: &Option<PathBuf>) {
    let table = table1::run(&[1_000, 10_000, 100_000, 1_000_000]);
    emit(&table, "table1_constants.csv", out);
}

fn run_theory(scale: Scale, out: &Option<PathBuf>) {
    let sizes = sweep::size_sweep(scale.min_n, scale.max_n.min(1 << 14));
    let points = theory_check::run(&sizes, scale.repetitions, scale.seed);
    emit(&theory_check::table(&points), "theory_shape_check.csv", out);
}

fn run_separation(scale: Scale, out: &Option<PathBuf>) {
    let sizes = sweep::size_sweep(scale.min_n, scale.max_n.min(1 << 14));
    let points = separation::run(&sizes, scale.repetitions, scale.seed);
    emit(&separation::table(&points), "separation_broadcast_vs_gossip.csv", out);
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = options.scale;
    let threads = options.threads;
    let out = options.out_dir;
    match options.command.as_str() {
        "table1" => run_table1(&out),
        "fig1" => run_fig1(scale, threads, &out),
        "fig2" => run_fig2(scale, &out),
        "fig3" => run_fig3(scale, &out),
        "fig4" => run_fig4(scale, &out),
        "fig5" => run_fig5(scale, &out),
        "theory" => run_theory(scale, &out),
        "separation" => run_separation(scale, &out),
        "ablation" => run_ablation(scale, &out),
        "phases" => run_phases(scale, &out),
        "scenario" => run_scenarios(scale, threads, &out),
        "all" => {
            run_table1(&out);
            run_fig1(scale, threads, &out);
            run_fig2(scale, &out);
            run_fig3(scale, &out);
            run_fig4(scale, &out);
            run_fig5(scale, &out);
            run_theory(scale, &out);
            run_separation(scale, &out);
            run_ablation(scale, &out);
            run_phases(scale, &out);
            run_scenarios(scale, threads, &out);
        }
        "help" | "--help" | "-h" => {
            println!(
                "usage: experiments \
                 <table1|fig1|fig2|fig3|fig4|fig5|theory|separation|ablation|phases|scenario|all> \
                 [--quick|--large] [--max-n N] [--reps K] [--seed S] [--threads T] [--out DIR]"
            );
        }
        other => {
            eprintln!("unknown subcommand: {other} (try `experiments help`)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
