//! Figure 1 — communication overhead of the three gossiping methods.
//!
//! "The plot shows the average number of messages sent per node using a simple
//! push-pull-approach, Algorithm 1, and Algorithm 2" on Erdős–Rényi graphs
//! with `p = log² n / n`, for sizes 10³–10⁶. The expected shape:
//!
//! * Push-Pull grows like `log n` (messages per node = rounds),
//! * fast-gossiping grows like `log n / log log n` and an **increasing gap**
//!   to Push-Pull opens as `n` grows,
//! * the memory model stays bounded by a small constant (the paper reports 5).
//!
//! The experiment is a [`SweepSpec`] grid `n × algorithm`; the adaptive CI
//! stop watches `packets_per_node`, the figure's y-axis.

use rpc_scenarios::{AxisPoint, TopologySpec};
use rpc_scenarios::{CellJob, ProtocolSpec, RepPolicy, Scenario, SweepReport, SweepSpec};

use crate::report::{sweep_table, Table};

/// The three algorithm labels of the figure, in plot order.
pub const ALGORITHMS: [&str; 3] = ["push-pull", "fast-gossiping", "memory"];

/// Resolves an `algorithm` axis value to its protocol.
pub(crate) fn protocol_for(label: &str) -> ProtocolSpec {
    match label {
        "push-pull" => ProtocolSpec::PushPull,
        "fast-gossiping" => ProtocolSpec::FastGossiping,
        "memory" => ProtocolSpec::Memory,
        other => panic!("unknown algorithm axis value `{other}`"),
    }
}

/// Builds a scenario cell for one `(n, algorithm)` grid point.
pub(crate) fn algorithm_cell(name: &str, point: &AxisPoint) -> CellJob {
    let n: usize = point.parse("n");
    CellJob::scenario(
        Scenario::builder(name, TopologySpec::ErdosRenyiPaper { n })
            .protocol(protocol_for(point.get("algorithm")))
            .build()
            .expect("paper-density scenario is valid"),
    )
}

/// The Figure 1 sweep: every size crossed with every algorithm.
pub fn spec(sizes: &[usize], seed: u64, policy: RepPolicy) -> SweepSpec {
    SweepSpec::grid("fig1", seed, policy)
        .axis("n", sizes.iter().copied())
        .axis("algorithm", ALGORITHMS)
        .cells(|point| Some(algorithm_cell("fig1", point)))
        .expect("fig1 grid is well-formed")
}

/// Renders the sweep report as the Figure 1 table (one row per
/// `(n, algorithm)` cell).
pub fn table(report: &SweepReport) -> Table {
    sweep_table("Figure 1 — average messages per node on G(n, log^2 n / n)", report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_scenarios::SweepRunner;

    #[test]
    fn produces_one_cell_per_size_and_algorithm() {
        let report = SweepRunner::new().run(&spec(&[128, 256], 1, RepPolicy::fixed(1)));
        assert_eq!(report.cells.len(), 6);
        assert!(report.cells.iter().all(|c| c.mean("completed") == Some(1.0)));
        let t = table(&report);
        assert_eq!(t.len(), 6);
        assert!(t.to_csv().contains("push-pull"));
        assert!(t.columns.contains(&"stopped_complete".to_string()));
    }

    #[test]
    fn figure_shape_holds_at_small_scale() {
        // Even at n = 1024 the ordering of the three curves must match the
        // figure: memory < fast-gossiping < push-pull (packet accounting).
        let report = SweepRunner::new().run(&spec(&[1024], 3, RepPolicy::fixed(2)));
        let get = |name: &str| {
            report
                .cells
                .iter()
                .find(|c| c.axis("algorithm") == Some(name))
                .and_then(|c| c.mean("packets_per_node"))
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        let push_pull = get("push-pull");
        let fast = get("fast-gossiping");
        let memory = get("memory");
        assert!(memory < fast, "memory ({memory:.2}) >= fast ({fast:.2})");
        assert!(fast < push_pull, "fast ({fast:.2}) >= push-pull ({push_pull:.2})");
    }
}
