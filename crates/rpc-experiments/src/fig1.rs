//! Figure 1 — communication overhead of the three gossiping methods.
//!
//! "The plot shows the average number of messages sent per node using a simple
//! push-pull-approach, Algorithm 1, and Algorithm 2" on Erdős–Rényi graphs
//! with `p = log² n / n`, for sizes 10³–10⁶. The expected shape:
//!
//! * Push-Pull grows like `log n` (messages per node = rounds),
//! * fast-gossiping grows like `log n / log log n` and an **increasing gap**
//!   to Push-Pull opens as `n` grows,
//! * the memory model stays bounded by a small constant (the paper reports 5).

use rpc_engine::{Accounting, Simulation};
use rpc_gossip::prelude::*;
use rpc_graphs::prelude::*;

use crate::report::{fmt3, Table};
use crate::sweep::seeds;

/// One measured point of Figure 1.
#[derive(Clone, Debug)]
pub struct Fig1Point {
    /// Graph size.
    pub n: usize,
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Average messages per node (per-channel-exchange accounting, the
    /// convention of the figure).
    pub messages_per_node: f64,
    /// Average messages per node under per-packet accounting.
    pub packets_per_node: f64,
    /// Average number of rounds.
    pub rounds: f64,
    /// Fraction of runs that completed gossiping.
    pub completion_rate: f64,
}

/// Runs the Figure 1 experiment for the given sizes, averaging over
/// `repetitions` seeded runs per point. Single-threaded; see [`run_threaded`].
pub fn run(sizes: &[usize], repetitions: usize, base_seed: u64) -> Vec<Fig1Point> {
    run_threaded(sizes, repetitions, base_seed, 1)
}

/// Like [`run`], but with `threads` engine workers applying each delivery
/// batch (`rpc_engine::parallel::compute_updates`). The measured numbers are
/// bit-identical for every thread count; threads only shorten the wall-clock
/// time of the big bitset unions.
pub fn run_threaded(
    sizes: &[usize],
    repetitions: usize,
    base_seed: u64,
    threads: usize,
) -> Vec<Fig1Point> {
    let mut points = Vec::new();
    for &n in sizes {
        let generator = ErdosRenyi::paper_density(n);
        let algorithms: Vec<Box<dyn GossipAlgorithm>> = vec![
            Box::new(PushPullGossip::default()),
            Box::new(FastGossiping::paper(n)),
            Box::new(MemoryGossip::paper(n)),
        ];
        for algorithm in &algorithms {
            let mut messages = 0.0;
            let mut packets = 0.0;
            let mut rounds = 0.0;
            let mut completed = 0usize;
            let run_seeds = seeds(base_seed, repetitions);
            for (i, &seed) in run_seeds.iter().enumerate() {
                let graph = generator.generate(seed ^ (i as u64) << 32);
                let mut sim = Simulation::new(&graph, seed).with_threads(threads);
                let outcome = algorithm.run_on(&mut sim);
                messages += outcome.messages_per_node(Accounting::PerChannelExchange);
                packets += outcome.messages_per_node(Accounting::PerPacket);
                rounds += outcome.rounds() as f64;
                completed += usize::from(outcome.completed());
            }
            let reps = repetitions.max(1) as f64;
            points.push(Fig1Point {
                n,
                algorithm: algorithm.name(),
                messages_per_node: messages / reps,
                packets_per_node: packets / reps,
                rounds: rounds / reps,
                completion_rate: completed as f64 / reps,
            });
        }
    }
    points
}

/// Renders Figure 1 points as a table (one row per `(n, algorithm)` pair).
pub fn table(points: &[Fig1Point]) -> Table {
    let mut table = Table::new(
        "Figure 1 — average messages per node on G(n, log^2 n / n)",
        &["n", "algorithm", "messages_per_node", "packets_per_node", "rounds", "completion_rate"],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            p.algorithm.to_string(),
            fmt3(p.messages_per_node),
            fmt3(p.packets_per_node),
            fmt3(p.rounds),
            fmt3(p.completion_rate),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_point_per_size_and_algorithm() {
        let points = run(&[128, 256], 1, 1);
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(|p| p.completion_rate == 1.0));
        let t = table(&points);
        assert_eq!(t.len(), 6);
        assert!(t.to_csv().contains("push-pull"));
    }

    #[test]
    fn threaded_run_is_bit_identical_to_single_threaded() {
        let single = run(&[256], 2, 5);
        let multi = run_threaded(&[256], 2, 5, 4);
        assert_eq!(single.len(), multi.len());
        for (a, b) in single.iter().zip(&multi) {
            assert_eq!(a.messages_per_node, b.messages_per_node, "{}", a.algorithm);
            assert_eq!(a.packets_per_node, b.packets_per_node, "{}", a.algorithm);
            assert_eq!(a.rounds, b.rounds, "{}", a.algorithm);
        }
    }

    #[test]
    fn figure_shape_holds_at_small_scale() {
        // Even at n = 1024 the ordering of the three curves must match the
        // figure: memory < fast-gossiping < push-pull (packet accounting).
        let points = run(&[1024], 2, 3);
        let get = |name: &str| {
            points
                .iter()
                .find(|p| p.algorithm == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .packets_per_node
        };
        let push_pull = get("push-pull");
        let fast = get("fast-gossiping");
        let memory = get("memory");
        assert!(memory < fast, "memory ({memory:.2}) >= fast ({fast:.2})");
        assert!(fast < push_pull, "fast ({fast:.2}) >= push-pull ({push_pull:.2})");
    }
}
