//! Figure 4 — detailed view of Algorithm 1's messages per node.
//!
//! The appendix plot zooms into the fast-gossiping curve of Figure 1 on a
//! denser grid of (large) sizes and shows two effects: jumps whenever a phase
//! gains an extra step (the phase lengths are discrete functions of `n`), and
//! a *decrease* between jumps because the relative number of random walks,
//! `1/log n` per node, shrinks while the step counts stay constant.
//!
//! The sweep runs fast-gossiping with the per-phase probe enabled, so each
//! cell carries `{phase}_ppn` metrics; the configured phase lengths are
//! appended as derived columns.

use rpc_gossip::FastGossipingConfig;
use rpc_scenarios::{CellJob, ProtocolSpec, RepPolicy, Scenario, SweepReport, SweepSpec};
use rpc_scenarios::{CellResult, TopologySpec};

use crate::report::{sweep_table_with, Table};

/// The Figure 4 sweep: fast-gossiping across a dense size grid, traced
/// per phase.
pub fn spec(sizes: &[usize], seed: u64, policy: RepPolicy) -> SweepSpec {
    SweepSpec::grid("fig4", seed, policy)
        .axis("n", sizes.iter().copied())
        .cells(|point| {
            let n: usize = point.parse("n");
            Some(CellJob::scenario_with_phases(
                Scenario::builder("fig4", TopologySpec::ErdosRenyiPaper { n })
                    .protocol(ProtocolSpec::FastGossiping)
                    .build()
                    .expect("paper-density scenario is valid"),
            ))
        })
        .expect("fig4 grid is well-formed")
}

fn cell_n(cell: &CellResult) -> usize {
    cell.axis("n").and_then(|v| v.parse().ok()).expect("fig4 cells carry an `n` axis")
}

/// Renders the sweep report as the Figure 4 table, with the deterministic
/// phase lengths (`phase1_steps`, `phase2_rounds`) derived from each cell's
/// size.
pub fn table(report: &SweepReport) -> Table {
    let phase1 = |cell: &CellResult| {
        FastGossipingConfig::paper_defaults(cell_n(cell)).phase1_steps.to_string()
    };
    let phase2 = |cell: &CellResult| {
        FastGossipingConfig::paper_defaults(cell_n(cell)).phase2_rounds.to_string()
    };
    sweep_table_with(
        "Figure 4 — fast-gossiping messages per node (detail)",
        report,
        &[("phase1_steps", &phase1), ("phase2_rounds", &phase2)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_scenarios::SweepRunner;

    #[test]
    fn records_phase_parameters_alongside_measurements() {
        let report = SweepRunner::new().run(&spec(&[256, 512], 5, RepPolicy::fixed(1)));
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            let total = cell.mean("packets_per_node").unwrap();
            let walks = cell.mean("phase2-random-walks_ppn").unwrap();
            assert!(total > 0.0);
            assert!(walks <= total);
        }
        let t = table(&report);
        assert_eq!(t.len(), 2);
        let p1 = t.columns.iter().position(|c| c == "phase1_steps").unwrap();
        for row in &t.rows {
            assert!(row[p1].parse::<usize>().unwrap() >= 1);
        }
    }
}
