//! Figure 4 — detailed view of Algorithm 1's messages per node.
//!
//! The appendix plot zooms into the fast-gossiping curve of Figure 1 on a
//! denser grid of (large) sizes and shows two effects: jumps whenever a phase
//! gains an extra step (the phase lengths are discrete functions of `n`), and
//! a *decrease* between jumps because the relative number of random walks,
//! `1/log n` per node, shrinks while the step counts stay constant.

use rpc_engine::Accounting;
use rpc_gossip::prelude::*;
use rpc_graphs::prelude::*;

use crate::report::{fmt3, Table};
use crate::sweep::seeds;

/// One measured point of Figure 4.
#[derive(Clone, Debug)]
pub struct Fig4Point {
    /// Graph size.
    pub n: usize,
    /// Average messages per node (per-packet accounting).
    pub packets_per_node: f64,
    /// Phase I step count used at this size.
    pub phase1_steps: usize,
    /// Phase II round count used at this size.
    pub phase2_rounds: usize,
    /// Packets per node spent in the random-walk phase only.
    pub phase2_packets_per_node: f64,
}

/// Runs the Figure 4 experiment on the given (dense) size grid.
pub fn run(sizes: &[usize], repetitions: usize, base_seed: u64) -> Vec<Fig4Point> {
    let mut points = Vec::new();
    for &n in sizes {
        let config = FastGossipingConfig::paper_defaults(n);
        let algorithm = FastGossiping::new(config);
        let generator = ErdosRenyi::paper_density(n);
        let mut packets = 0.0;
        let mut phase2_packets = 0.0;
        let run_seeds = seeds(base_seed, repetitions);
        for (i, &seed) in run_seeds.iter().enumerate() {
            let graph = generator.generate(seed ^ ((i as u64) << 32));
            let outcome = algorithm.run(&graph, seed);
            packets += outcome.messages_per_node(Accounting::PerPacket);
            phase2_packets +=
                outcome.packets_in_phase("phase2-random-walks").unwrap_or(0) as f64 / n as f64;
        }
        let reps = repetitions.max(1) as f64;
        points.push(Fig4Point {
            n,
            packets_per_node: packets / reps,
            phase1_steps: config.phase1_steps,
            phase2_rounds: config.phase2_rounds,
            phase2_packets_per_node: phase2_packets / reps,
        });
    }
    points
}

/// Renders Figure 4 points as a table.
pub fn table(points: &[Fig4Point]) -> Table {
    let mut table = Table::new(
        "Figure 4 — fast-gossiping messages per node (detail)",
        &["n", "packets_per_node", "phase1_steps", "phase2_rounds", "phase2_packets_per_node"],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            fmt3(p.packets_per_node),
            p.phase1_steps.to_string(),
            p.phase2_rounds.to_string(),
            fmt3(p.phase2_packets_per_node),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_phase_parameters_alongside_measurements() {
        let points = run(&[256, 512], 1, 5);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.packets_per_node > 0.0);
            assert!(p.phase2_packets_per_node <= p.packets_per_node);
            assert!(p.phase1_steps >= 1 && p.phase2_rounds >= 1);
        }
        assert_eq!(table(&points).len(), 2);
    }
}
