//! # rpc-experiments
//!
//! The experiment harness that regenerates every figure and table of the
//! paper's evaluation (Section 5 and Appendix C), plus shape checks for the
//! analytical results. Each simulation experiment is a thin pair of
//! functions: a `spec(...)` building a declarative
//! [`rpc_scenarios::SweepSpec`] (which axes, which cells, which repetition
//! policy) and a `table(...)` post-processing the executed
//! [`rpc_scenarios::SweepReport`] into a [`report::Table`] renderable as
//! Markdown or CSV. All grid iteration, seeding, adaptive CI stopping,
//! threading and caching lives in the sweep engine:
//!
//! | paper artefact | module | CLI subcommand |
//! |---|---|---|
//! | Table 1 (simulation constants) | [`table1`] | `table1` |
//! | Figure 1 (messages/node, 3 algorithms) | [`fig1`] | `fig1` |
//! | Figure 2 (robustness ratio, large n) | [`robustness`] | `fig2` |
//! | Figure 3 (robustness ratio, 2 sizes) | [`robustness`] | `fig3` |
//! | Figure 4 (fast-gossiping detail) | [`fig4`] | `fig4` |
//! | Figure 5 (loss thresholds) | [`robustness`] | `fig5` |
//! | Theorems 1 & 2 shape check | [`theory_check`] | `theory` |
//! | Broadcast-vs-gossip motivation | [`separation`] | `separation` |
//! | Parameter-tuning ablation (abstract's tuning claim) | [`ablation`] | `ablation` |
//! | Per-phase packet breakdown | [`phases`] | `phases` |
//! | Scenario registry (churn/loss/crash workloads) | [`scenario`] | `scenario` |
//!
//! The `sweep` subcommand runs every sweep-backed experiment in one go,
//! sharing a cell cache so interrupted runs resume where they stopped.
//! [`table1`] samples no randomness (constants only) and [`separation`] drives
//! a protocol without a stepper, so those two stay outside the sweep engine.
//!
//! The default sizes are scaled to laptop hardware (the paper used four
//! 64-core machines with 512 GB–1 TB of RAM and graphs up to 10⁶ nodes; see
//! DESIGN.md for the substitution argument). Every experiment takes the sizes
//! as parameters, so larger runs only require different CLI flags.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig1;
pub mod fig4;
pub mod opts;
pub mod phases;
pub mod profile;
pub mod report;
pub mod robustness;
pub mod scenario;
pub mod separation;
pub mod table1;
pub mod theory_check;

pub use opts::RunOpts;
pub use report::Table;

/// Scale of an experiment run: how large the graphs are and how many
/// repetitions are averaged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Smallest graph size of size sweeps.
    pub min_n: usize,
    /// Largest graph size of size sweeps.
    pub max_n: usize,
    /// Repetitions per measured point.
    pub repetitions: usize,
    /// Base seed for all runs.
    pub seed: u64,
}

impl Scale {
    /// Quick scale for CI and smoke tests (seconds).
    pub fn quick() -> Self {
        Self { min_n: 1 << 10, max_n: 1 << 12, repetitions: 1, seed: 1 }
    }

    /// Default laptop scale (about a minute per experiment).
    pub fn default_scale() -> Self {
        Self { min_n: 1 << 10, max_n: 1 << 15, repetitions: 3, seed: 1 }
    }

    /// Large scale approximating the paper's sweep as far as memory allows.
    pub fn large() -> Self {
        Self { min_n: 1 << 10, max_n: 1 << 17, repetitions: 3, seed: 1 }
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::opts::RunOpts;
    pub use crate::report::Table;
    pub use crate::Scale;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::quick().max_n <= Scale::default_scale().max_n);
        assert!(Scale::default_scale().max_n <= Scale::large().max_n);
        assert!(Scale::quick().repetitions >= 1);
    }
}
