//! Shared run options parsed once for every `experiments` subcommand.
//!
//! Historically each subcommand hand-rolled its own flag handling; [`RunOpts`]
//! centralises it: scale presets, thread count, output/cache paths, and the
//! repetition policy knobs (`--reps` forces a fixed budget, `--max-reps` and
//! `--ci-rel` tune the adaptive CI stop). The same options drive both the
//! unified `sweep` subcommand and the per-figure subcommands.

use std::fs::OpenOptions;
use std::io::BufWriter;
use std::path::PathBuf;

use rpc_obs::{ProgressReporter, TraceWriter};
use rpc_scenarios::{CiStopRule, RepPolicy, SweepReport, SweepRunner, SweepSpec};

use crate::Scale;

/// Options shared by every experiment subcommand.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Graph sizes and base seed.
    pub scale: Scale,
    /// Worker threads for sweep execution (0 = auto-detect).
    pub threads: usize,
    /// Directory for CSV/JSON output; `None` prints Markdown only.
    pub out_dir: Option<PathBuf>,
    /// Cell-cache file for resumable sweeps.
    pub cache: Option<PathBuf>,
    /// `--reps N`: run exactly N repetitions per cell (disables the CI stop).
    pub fixed_reps: Option<usize>,
    /// `--max-reps N`: adaptive budget ceiling (default: 4 × the minimum).
    pub max_reps: Option<usize>,
    /// `--ci-rel T`: relative CI half-width tolerance (default 0.1).
    pub ci_rel: Option<f64>,
    /// `--only NAME` (repeatable): restrict `sweep`/`all` to these experiments.
    pub only: Vec<String>,
    /// `--trace-out FILE`: write the observability event stream (JSON lines)
    /// to this file. Implies tracing even without `--profile`.
    pub trace_out: Option<PathBuf>,
    /// `--profile`: trace to the default path (`<out-dir>/trace.jsonl`, or
    /// `trace.jsonl` without `--out`) and report live sweep progress on
    /// stderr.
    pub profile: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            scale: Scale::default_scale(),
            threads: 0,
            out_dir: None,
            cache: None,
            fixed_reps: None,
            max_reps: None,
            ci_rel: None,
            only: Vec::new(),
            trace_out: None,
            profile: false,
        }
    }
}

impl RunOpts {
    /// Parses the flag list (everything after the subcommand). Returns a
    /// human-readable error for unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.scale = Scale::quick(),
                "--large" => opts.scale = Scale::large(),
                "--max-n" => opts.scale.max_n = parse_value(&arg, args.next())?,
                "--reps" => opts.fixed_reps = Some(parse_value(&arg, args.next())?),
                "--max-reps" => opts.max_reps = Some(parse_value(&arg, args.next())?),
                "--ci-rel" => opts.ci_rel = Some(parse_value(&arg, args.next())?),
                "--seed" => opts.scale.seed = parse_value(&arg, args.next())?,
                "--threads" => opts.threads = parse_value(&arg, args.next())?,
                "--out" => {
                    opts.out_dir = Some(PathBuf::from(required(&arg, args.next())?));
                }
                "--cache" => {
                    opts.cache = Some(PathBuf::from(required(&arg, args.next())?));
                }
                "--only" => opts.only.push(required(&arg, args.next())?),
                "--trace-out" => {
                    opts.trace_out = Some(PathBuf::from(required(&arg, args.next())?));
                }
                "--profile" => opts.profile = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The repetition policy for an experiment whose CI stop watches `metric`.
    ///
    /// `--reps` forces a fixed budget; otherwise the policy is adaptive with
    /// the scale's repetition count as the minimum, `--max-reps` (default
    /// 4 × minimum) as the ceiling, and a relative CI half-width tolerance of
    /// `--ci-rel` (default 0.1) on `metric`.
    pub fn policy(&self, metric: &str) -> RepPolicy {
        self.policy_with_min(1, metric)
    }

    /// Like [`RunOpts::policy`] but with a floor on the repetition count —
    /// threshold experiments (Figure 5) need at least five runs per point for
    /// the exceedance percentages to be meaningful.
    pub fn policy_with_min(&self, floor: usize, metric: &str) -> RepPolicy {
        if let Some(reps) = self.fixed_reps {
            return RepPolicy::fixed(reps.max(floor));
        }
        let min = self.scale.repetitions.max(floor).max(2);
        let max = self.max_reps.unwrap_or(min * 4).max(min);
        RepPolicy::adaptive(min, max, CiStopRule::relative(metric, self.ci_rel.unwrap_or(0.1)))
    }

    /// A sweep runner configured with the requested threads and cell cache.
    pub fn runner(&self) -> SweepRunner {
        let mut runner = SweepRunner::new();
        if self.threads > 0 {
            runner = runner.with_threads(self.threads);
        }
        if let Some(cache) = &self.cache {
            runner = runner.with_cache(cache);
        }
        runner
    }

    /// Whether `--only` filters allow the named experiment.
    pub fn should_run(&self, name: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|o| o == name)
    }

    /// The JSON-lines trace destination, if tracing is enabled:
    /// `--trace-out` wins, `--profile` alone falls back to
    /// `<out-dir>/trace.jsonl` (or `trace.jsonl` in the working directory).
    pub fn trace_path(&self) -> Option<PathBuf> {
        if let Some(path) = &self.trace_out {
            return Some(path.clone());
        }
        self.profile.then(|| {
            self.out_dir
                .as_deref()
                .map_or_else(|| PathBuf::from("trace.jsonl"), |dir| dir.join("trace.jsonl"))
        })
    }

    /// Executes a sweep spec with the configured runner, attaching the
    /// JSON-lines trace writer and the live stderr progress reporter when
    /// tracing is enabled. The report is bit-identical either way — observers
    /// are write-only sinks (see `rpc-obs`).
    ///
    /// The trace file is opened in append mode so the experiments of one
    /// invocation share a single stream; the CLI truncates it once at
    /// startup.
    pub fn run_spec(&self, spec: &SweepSpec) -> SweepReport {
        let runner = self.runner();
        let Some(path) = self.trace_path() else {
            return runner.run(spec);
        };
        let file = match OpenOptions::new().create(true).append(true).open(&path) {
            Ok(file) => file,
            Err(e) => {
                eprintln!("cannot open trace file {}: {e}; tracing disabled", path.display());
                return runner.run(spec);
            }
        };
        let mut obs = (TraceWriter::new(BufWriter::new(file)), ProgressReporter::stderr());
        let report = runner.run_with(spec, &mut obs);
        if let Err(e) = obs.0.finish() {
            eprintln!("trace write to {} failed: {e}", path.display());
        }
        report
    }
}

fn required(flag: &str, value: Option<String>) -> Result<String, String> {
    value.ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let raw = required(flag, value)?;
    raw.parse().map_err(|_| format!("{flag}: invalid value `{raw}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> RunOpts {
        RunOpts::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn defaults_match_the_default_scale() {
        let opts = parse(&[]);
        assert_eq!(opts.scale, Scale::default_scale());
        assert_eq!(opts.threads, 0);
        assert!(opts.out_dir.is_none() && opts.cache.is_none());
    }

    #[test]
    fn scale_and_value_flags_apply_in_order() {
        let opts = parse(&["--quick", "--max-n", "8192", "--seed", "7", "--threads", "3"]);
        assert_eq!(opts.scale.max_n, 8192);
        assert_eq!(opts.scale.seed, 7);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.scale.min_n, Scale::quick().min_n);
    }

    #[test]
    fn reps_forces_a_fixed_policy() {
        let opts = parse(&["--reps", "4"]);
        let policy = opts.policy("rounds");
        assert_eq!(policy, RepPolicy::fixed(4));
        // The floor still applies to fixed budgets.
        assert_eq!(opts.policy_with_min(5, "rounds"), RepPolicy::fixed(5));
    }

    #[test]
    fn adaptive_policy_uses_scale_reps_and_overrides() {
        let opts = parse(&["--max-reps", "20", "--ci-rel", "0.05"]);
        let policy = opts.policy("packets_per_node");
        assert_eq!(policy.min_reps, 3);
        assert_eq!(policy.max_reps, 20);
        let ci = policy.ci.as_ref().unwrap();
        assert_eq!(ci.metric, "packets_per_node");
        assert_eq!(ci.tolerance, 0.05);
        assert!(ci.relative);
    }

    #[test]
    fn only_filters_experiments() {
        let opts = parse(&["--only", "fig1", "--only", "table1"]);
        assert!(opts.should_run("fig1") && opts.should_run("table1"));
        assert!(!opts.should_run("fig2"));
        assert!(parse(&[]).should_run("fig2"));
    }

    #[test]
    fn unknown_and_malformed_flags_error() {
        assert!(RunOpts::parse(["--bogus".to_string()]).is_err());
        assert!(RunOpts::parse(["--reps".to_string()]).is_err());
        assert!(RunOpts::parse(["--reps".to_string(), "many".to_string()]).is_err());
    }
}
