//! Per-phase breakdown of the two paper algorithms.
//!
//! Theorem 1's proof splits fast-gossiping into distribution, random-walk and
//! broadcast phases with individually bounded communication; Algorithm 2 has
//! the tree / gather / broadcast split. This experiment reports how the
//! measured packets distribute over the phases, which is the first thing to
//! look at when the aggregate numbers drift from the paper's.
//!
//! The sweep enables the per-phase probe ([`rpc_scenarios::Probe::Phases`])
//! so each cell
//! carries one `{phase}_ppn` metric per recorded phase; the table is wide
//! (one column pair per phase), with blanks where an algorithm lacks a phase.

use rpc_scenarios::{CellJob, RepPolicy, Scenario, SweepReport, SweepSpec, TopologySpec};

use crate::fig1::protocol_for;
use crate::report::{sweep_table, Table};

/// The phase-breakdown sweep: the two phase-based algorithms at one size,
/// traced per phase.
pub fn spec(n: usize, seed: u64, policy: RepPolicy) -> SweepSpec {
    SweepSpec::grid("phases", seed, policy)
        .axis("n", [n])
        .axis("algorithm", ["fast-gossiping", "memory"])
        .cells(|point| {
            Some(CellJob::scenario_with_phases(
                Scenario::builder("phases", TopologySpec::ErdosRenyiPaper { n: point.parse("n") })
                    .protocol(protocol_for(point.get("algorithm")))
                    .build()
                    .expect("paper-density scenario is valid"),
            ))
        })
        .expect("phases grid is well-formed")
}

/// Renders the phase breakdown as a (wide) table.
pub fn table(report: &SweepReport) -> Table {
    sweep_table("Per-phase packet breakdown", report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_scenarios::SweepRunner;

    #[test]
    fn phase_packets_sum_to_the_total_per_algorithm() {
        let report = SweepRunner::new().run(&spec(256, 11, RepPolicy::fixed(1)));
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            let total = cell.mean("packets_per_node").unwrap();
            let phase_sum: f64 = cell
                .metrics
                .iter()
                .filter(|m| m.name.ends_with("_ppn"))
                .map(|m| m.stats.mean)
                .sum();
            assert!(
                (phase_sum - total).abs() < 1e-9 * total.max(1.0),
                "{}: phases sum to {phase_sum}, total {total}",
                cell.key
            );
        }
        let t = table(&report);
        assert!(t.columns.iter().any(|c| c == "phase2-random-walks_ppn_mean"));
        assert_eq!(t.len(), 2);
    }
}
