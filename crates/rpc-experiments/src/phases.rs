//! Per-phase breakdown of the two paper algorithms.
//!
//! Theorem 1's proof splits fast-gossiping into distribution, random-walk and
//! broadcast phases with individually bounded communication; Algorithm 2 has
//! the tree / gather / broadcast split. This experiment reports how the
//! measured packets distribute over the phases, which is the first thing to
//! look at when the aggregate numbers drift from the paper's.

use rpc_gossip::prelude::*;
use rpc_graphs::prelude::*;

use crate::report::{fmt3, Table};
use crate::sweep::seeds;

/// Packets per node spent in one phase of one algorithm.
#[derive(Clone, Debug)]
pub struct PhaseBreakdownPoint {
    /// Graph size.
    pub n: usize,
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Phase label as recorded by the algorithm.
    pub phase: String,
    /// Average packets per node spent in this phase.
    pub packets_per_node: f64,
    /// Share of the algorithm's total packets spent in this phase.
    pub share: f64,
}

/// Measures the per-phase packet breakdown for fast-gossiping and the memory
/// model at one size.
pub fn run(n: usize, repetitions: usize, base_seed: u64) -> Vec<PhaseBreakdownPoint> {
    let generator = ErdosRenyi::paper_density(n);
    let algorithms: Vec<Box<dyn GossipAlgorithm>> =
        vec![Box::new(FastGossiping::paper(n)), Box::new(MemoryGossip::paper(n))];
    let mut points: Vec<PhaseBreakdownPoint> = Vec::new();
    for algorithm in &algorithms {
        // phase label -> accumulated packets
        let mut phase_packets: Vec<(String, f64)> = Vec::new();
        let mut total = 0.0f64;
        let run_seeds = seeds(base_seed, repetitions);
        for (i, &seed) in run_seeds.iter().enumerate() {
            let graph = generator.generate(seed ^ ((i as u64) << 32));
            let outcome = algorithm.run(&graph, seed);
            total += outcome.total_packets() as f64;
            for phase in outcome.phases() {
                let delta = outcome.packets_in_phase(&phase.label).unwrap_or(0) as f64;
                match phase_packets.iter_mut().find(|(label, _)| *label == phase.label) {
                    Some((_, acc)) => *acc += delta,
                    None => phase_packets.push((phase.label.clone(), delta)),
                }
            }
        }
        let reps = repetitions.max(1) as f64;
        for (label, packets) in phase_packets {
            points.push(PhaseBreakdownPoint {
                n,
                algorithm: algorithm.name(),
                phase: label,
                packets_per_node: packets / reps / n as f64,
                share: if total > 0.0 { packets / total } else { 0.0 },
            });
        }
    }
    points
}

/// Renders the phase breakdown as a table.
pub fn table(points: &[PhaseBreakdownPoint]) -> Table {
    let mut table = Table::new(
        "Per-phase packet breakdown",
        &["n", "algorithm", "phase", "packets_per_node", "share_of_total"],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            p.algorithm.to_string(),
            p.phase.clone(),
            fmt3(p.packets_per_node),
            fmt3(p.share),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_per_algorithm() {
        let points = run(256, 1, 11);
        for name in ["fast-gossiping", "memory"] {
            let share: f64 = points.iter().filter(|p| p.algorithm == name).map(|p| p.share).sum();
            assert!((share - 1.0).abs() < 1e-9, "{name} shares sum to {share}");
        }
        assert!(points.iter().any(|p| p.phase == "phase2-random-walks"));
        assert_eq!(table(&points).len(), points.len());
    }
}
