//! The `profile` subcommand: aggregate a JSON-lines observability trace into
//! a per-cell, per-core timing table.
//!
//! `experiments sweep --profile` (or any subcommand with `--trace-out`)
//! streams the sweep's event stream — one flat JSON object per line, written
//! by `rpc_obs::TraceWriter` — to a file. This module folds that stream back
//! into one row per sweep cell: repetitions executed and kept, wall-clock
//! spent, simulated rounds, and the split of delivery work across the three
//! adaptive cores (scalar / eager / batch). Per-core wall-clock is attributed
//! proportionally to each repetition's per-core delivery counts, so the table
//! answers "which core and which cell did the time go to" — the question
//! every perf PR needs to cite.
//!
//! Wall-clock lives only in the trace (it is measured strictly outside the
//! seeded simulation paths), so profiling is a pure post-processing step:
//! re-running the sweep with different thread counts changes this table but
//! never the experiment results.

use std::path::Path;

use rpc_obs::{parse_object, CoreRounds, JsonValue};

use crate::report::{fmt3, Table};

/// Aggregated timing facts of one sweep cell, folded from the trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileRow {
    /// Sweep (spec) name.
    pub sweep: String,
    /// Cell key.
    pub cell: String,
    /// Repetitions actually executed (including surplus past the CI cut).
    pub reps_run: usize,
    /// Repetitions kept by the cell's stop decision (or served from cache).
    pub reps_kept: usize,
    /// Whether the cell was served from the persistent cell cache.
    pub cached: bool,
    /// Total simulated rounds across executed repetitions.
    pub rounds: u64,
    /// Total wall-clock nanoseconds across executed repetitions.
    pub wall_nanos: u64,
    /// Delivery batches per adaptive core across executed repetitions.
    pub cores: CoreRounds,
}

impl ProfileRow {
    /// Wall-clock milliseconds attributed to one core, proportional to its
    /// share of the cell's delivery batches. Zero when no deliveries ran.
    pub fn core_ms(&self, core_batches: u64) -> f64 {
        let total = self.cores.total();
        if total == 0 {
            0.0
        } else {
            self.wall_nanos as f64 / 1e6 * core_batches as f64 / total as f64
        }
    }
}

fn field<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(fields: &[(String, JsonValue)], key: &str) -> Option<String> {
    field(fields, key)?.as_str().map(str::to_string)
}

fn u64_field(fields: &[(String, JsonValue)], key: &str) -> u64 {
    field(fields, key).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// Folds a JSON-lines trace into per-cell rows, in first-appearance order.
/// Unparseable lines are reported as errors (a trace is machine-written;
/// corruption should be loud), unknown event kinds are skipped (forward
/// compatibility with richer traces).
pub fn aggregate<I: IntoIterator<Item = String>>(lines: I) -> Result<Vec<ProfileRow>, String> {
    let mut rows: Vec<ProfileRow> = Vec::new();
    let row = |sweep: String, cell: String, rows: &mut Vec<ProfileRow>| -> usize {
        match rows.iter().position(|r| r.sweep == sweep && r.cell == cell) {
            Some(idx) => idx,
            None => {
                rows.push(ProfileRow { sweep, cell, ..ProfileRow::default() });
                rows.len() - 1
            }
        }
    };
    for (lineno, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_object(&line)
            .ok_or_else(|| format!("line {}: not a flat JSON object", lineno + 1))?;
        let Some(kind) = str_field(&fields, "ev") else {
            return Err(format!("line {}: missing `ev` kind", lineno + 1));
        };
        match kind.as_str() {
            "rep-finished" => {
                let (Some(sweep), Some(cell)) =
                    (str_field(&fields, "sweep"), str_field(&fields, "cell"))
                else {
                    return Err(format!("line {}: rep-finished without sweep/cell", lineno + 1));
                };
                let idx = row(sweep, cell, &mut rows);
                let r = &mut rows[idx];
                r.reps_run += 1;
                r.rounds += u64_field(&fields, "rounds");
                r.wall_nanos += u64_field(&fields, "wall_nanos");
                r.cores.scalar += u64_field(&fields, "scalar_rounds");
                r.cores.eager += u64_field(&fields, "eager_rounds");
                r.cores.batch += u64_field(&fields, "batch_rounds");
            }
            "cell-finished" => {
                let (Some(sweep), Some(cell)) =
                    (str_field(&fields, "sweep"), str_field(&fields, "cell"))
                else {
                    return Err(format!("line {}: cell-finished without sweep/cell", lineno + 1));
                };
                let cached = field(&fields, "cached").and_then(JsonValue::as_bool).unwrap_or(false);
                let idx = row(sweep, cell, &mut rows);
                rows[idx].reps_kept = u64_field(&fields, "reps") as usize;
                rows[idx].cached = cached;
            }
            _ => {}
        }
    }
    Ok(rows)
}

/// Reads and folds the trace file at `path`.
pub fn load(path: &Path) -> Result<Vec<ProfileRow>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace {}: {e}", path.display()))?;
    aggregate(text.lines().map(str::to_string))
}

/// Renders the per-cell, per-core timing table.
pub fn table(rows: &[ProfileRow]) -> Table {
    let mut table = Table::new(
        "Profile — per-cell wall-clock and delivery-core split",
        &[
            "sweep",
            "cell",
            "reps_run",
            "reps_kept",
            "cached",
            "wall_ms",
            "wall_ms_per_rep",
            "rounds",
            "scalar_rounds",
            "eager_rounds",
            "batch_rounds",
            "scalar_ms",
            "eager_ms",
            "batch_ms",
        ],
    );
    for r in rows {
        let wall_ms = r.wall_nanos as f64 / 1e6;
        let per_rep = if r.reps_run == 0 { 0.0 } else { wall_ms / r.reps_run as f64 };
        table.push_row(vec![
            r.sweep.clone(),
            r.cell.clone(),
            r.reps_run.to_string(),
            r.reps_kept.to_string(),
            u8::from(r.cached).to_string(),
            fmt3(wall_ms),
            fmt3(per_rep),
            r.rounds.to_string(),
            r.cores.scalar.to_string(),
            r.cores.eager.to_string(),
            r.cores.batch.to_string(),
            fmt3(r.core_ms(r.cores.scalar)),
            fmt3(r.core_ms(r.cores.eager)),
            fmt3(r.core_ms(r.cores.batch)),
        ]);
    }
    table
}

/// Renders the rows as a JSON array (beside the CSV, like the sweep reports).
pub fn to_json(rows: &[ProfileRow]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut sweep = String::new();
        rpc_obs::escape_into(&mut sweep, &r.sweep);
        let mut cell = String::new();
        rpc_obs::escape_into(&mut cell, &r.cell);
        out.push_str(&format!(
            "{{\"sweep\":{sweep},\"cell\":{cell},\"reps_run\":{},\"reps_kept\":{},\
             \"cached\":{},\"wall_nanos\":{},\"rounds\":{},\"scalar_rounds\":{},\
             \"eager_rounds\":{},\"batch_rounds\":{}}}",
            r.reps_run,
            r.reps_kept,
            r.cached,
            r.wall_nanos,
            r.rounds,
            r.cores.scalar,
            r.cores.eager,
            r.cores.batch,
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<String> {
        vec![
            r#"{"ev":"sweep-started","sweep":"fig1","cells":2,"threads":4}"#.into(),
            r#"{"ev":"cell-started","sweep":"fig1","cell":"a","index":0,"target_reps":2}"#.into(),
            concat!(
                r#"{"ev":"rep-finished","sweep":"fig1","cell":"a","rep":0,"wall_nanos":3000000,"#,
                r#""rounds":10,"scalar_rounds":6,"eager_rounds":0,"batch_rounds":4}"#
            )
            .into(),
            concat!(
                r#"{"ev":"rep-finished","sweep":"fig1","cell":"a","rep":1,"wall_nanos":1000000,"#,
                r#""rounds":10,"scalar_rounds":10,"eager_rounds":0,"batch_rounds":0}"#
            )
            .into(),
            r#"{"ev":"cell-finished","sweep":"fig1","cell":"a","reps":2,"cached":false}"#.into(),
            r#"{"ev":"cache-hit","sweep":"fig1","cell":"b","reps":5}"#.into(),
            r#"{"ev":"cell-finished","sweep":"fig1","cell":"b","reps":5,"cached":true}"#.into(),
        ]
    }

    #[test]
    fn aggregates_reps_and_cores_per_cell() {
        let rows = aggregate(sample_trace()).unwrap();
        assert_eq!(rows.len(), 2);
        let a = &rows[0];
        assert_eq!((a.sweep.as_str(), a.cell.as_str()), ("fig1", "a"));
        assert_eq!((a.reps_run, a.reps_kept, a.cached), (2, 2, false));
        assert_eq!(a.rounds, 20);
        assert_eq!(a.wall_nanos, 4_000_000);
        assert_eq!((a.cores.scalar, a.cores.eager, a.cores.batch), (16, 0, 4));
        // Proportional attribution: 16/20 of 4ms to scalar, 4/20 to batch.
        assert!((a.core_ms(a.cores.scalar) - 3.2).abs() < 1e-9);
        assert!((a.core_ms(a.cores.batch) - 0.8).abs() < 1e-9);
        let b = &rows[1];
        assert_eq!((b.reps_run, b.reps_kept, b.cached), (0, 5, true));
        assert_eq!(b.core_ms(b.cores.scalar), 0.0);
    }

    #[test]
    fn table_and_json_render_every_row() {
        let rows = aggregate(sample_trace()).unwrap();
        let t = table(&rows);
        assert_eq!(t.len(), 2);
        assert!(t.to_csv().starts_with("sweep,cell,reps_run"));
        let json = to_json(&rows);
        assert!(json.contains("\"cell\":\"a\""));
        assert!(json.contains("\"cached\":true"));
    }

    #[test]
    fn corrupt_lines_are_loud_and_unknown_kinds_are_not() {
        assert!(aggregate(vec!["not json".to_string()]).is_err());
        assert!(aggregate(vec![r#"{"sweep":"x"}"#.to_string()]).is_err());
        let rows = aggregate(vec![r#"{"ev":"dispatch","round":3}"#.to_string()]).unwrap();
        assert!(rows.is_empty());
    }
}
