//! Tabular experiment output (CSV and Markdown).
//!
//! Every experiment returns a [`Table`]; the CLI prints it as Markdown and can
//! additionally write it as CSV, which is the format the paper's gnuplot
//! figures would be regenerated from.
//!
//! [`sweep_table`] is the single report pipeline of the sweep-based
//! experiments: it renders a [`SweepReport`] with one row per cell — axis
//! columns, the repetition count, the five `stopped_*` discriminant counts,
//! and a `_mean`/`_ci95` column pair per metric. [`sweep_table_with`] appends
//! experiment-specific derived columns computed from each [`CellResult`].

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use rpc_scenarios::{CellResult, SweepReport};

/// A simple rectangular table of strings with a title and column headers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Human-readable title (e.g. `"Figure 1 — communication overhead"`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each row must have `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics if the cell count does not match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header row first, no title).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a GitHub-flavoured Markdown table preceded by the
    /// title.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.columns.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with three decimal places for table cells.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// An extra derived column for [`sweep_table_with`]: header plus a renderer
/// over each cell.
pub type ExtraColumn<'a> = (&'a str, &'a dyn Fn(&CellResult) -> String);

/// Renders a sweep report in the standard layout: the cells' axis columns,
/// `reps`, the five `stopped_*` discriminant counts, then `_mean` and `_ci95`
/// columns for every metric (blank where a cell lacks the metric — phase
/// metrics differ between protocols).
pub fn sweep_table(title: impl Into<String>, report: &SweepReport) -> Table {
    sweep_table_with(title, report, &[])
}

/// Like [`sweep_table`], with extra derived columns appended on the right.
pub fn sweep_table_with(
    title: impl Into<String>,
    report: &SweepReport,
    extras: &[ExtraColumn<'_>],
) -> Table {
    let axes: Vec<String> = report
        .cells
        .first()
        .map(|cell| cell.axes.iter().map(|(axis, _)| axis.clone()).collect())
        .unwrap_or_default();
    let metrics: Vec<String> = report.metric_names().iter().map(|m| m.to_string()).collect();
    let mut columns = axes.clone();
    columns.extend(
        [
            "reps",
            "stopped_complete",
            "stopped_rounds",
            "stopped_coverage",
            "stopped_all_rumors",
            "stopped_max",
        ]
        .map(String::from),
    );
    for metric in &metrics {
        columns.push(format!("{metric}_mean"));
        columns.push(format!("{metric}_ci95"));
    }
    columns.extend(extras.iter().map(|(name, _)| name.to_string()));

    let mut table = Table { title: title.into(), columns, rows: Vec::new() };
    for cell in &report.cells {
        let mut row: Vec<String> =
            axes.iter().map(|axis| cell.axis(axis).unwrap_or("").to_string()).collect();
        row.push(cell.reps.to_string());
        let s = cell.stopped;
        row.extend(
            [s.complete, s.round_budget, s.coverage, s.all_rumors, s.max_rounds]
                .map(|c| c.to_string()),
        );
        for metric in &metrics {
            match cell.metric(metric) {
                Some(m) => {
                    row.push(fmt3(m.stats.mean));
                    row.push(fmt3(m.ci_half));
                }
                None => {
                    row.push(String::new());
                    row.push(String::new());
                }
            }
        }
        row.extend(extras.iter().map(|(_, render)| render(cell)));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "value"]);
        t.push_row(vec!["1024".into(), fmt3(3.5)]);
        t.push_row(vec!["2048".into(), fmt3(4.0)]);
        t
    }

    #[test]
    fn csv_rendering() {
        assert_eq!(sample().to_csv(), "n,value\n1024,3.500\n2048,4.000\n");
    }

    #[test]
    fn markdown_rendering_contains_all_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| n | value |"));
        assert!(md.contains("| 1024 | 3.500 |"));
        assert!(md.contains("| 2048 | 4.000 |"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("rpc-experiments-test");
        let path = dir.join("nested").join("out.csv");
        sample().write_csv(&path).unwrap();
        assert!(path.exists());
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("n,value"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(Table::new("empty", &["x"]).is_empty());
    }
}
