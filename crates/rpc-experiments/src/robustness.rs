//! Figures 2, 3 and 5 — robustness of the memory model under node failures.
//!
//! * **Figure 2**: graph of 10⁶ nodes, x = number of failed nodes `F`
//!   (log-spaced), y = (additional lost healthy messages) / `F`, with three
//!   independently built distribution trees and failures injected between
//!   Phase I and Phase II.
//! * **Figure 3**: the same for 10⁵ and 5·10⁵ nodes.
//! * **Figure 5**: arithmetic sweep over `F`, at least five runs per point,
//!   y = percentage of runs in which more than `T ∈ {0, 10, 100}` additional
//!   messages were lost.
//!
//! The experiments here take the graph size as a parameter so the same code
//! regenerates Figure 2 (one large size) and Figure 3 (two smaller sizes); the
//! default CLI sizes are scaled down to laptop scale (see DESIGN.md).

use rpc_gossip::prelude::*;
use rpc_graphs::prelude::*;

use crate::report::{fmt3, Table};
use crate::sweep::seeds;

/// One measured point of the loss-ratio experiments (Figures 2 and 3).
#[derive(Clone, Debug)]
pub struct LossRatioPoint {
    /// Graph size.
    pub n: usize,
    /// Number of failed nodes `F`.
    pub failures: usize,
    /// Mean ratio of additionally lost healthy messages to `F`.
    pub loss_ratio: f64,
    /// Mean number of additionally lost healthy messages.
    pub lost_messages: f64,
    /// Number of repetitions averaged.
    pub repetitions: usize,
}

/// Runs the loss-ratio experiment (Figures 2/3) for one graph size over the
/// given failure counts, with `trees` independent distribution trees.
pub fn loss_ratio(
    n: usize,
    failure_counts: &[usize],
    trees: usize,
    repetitions: usize,
    base_seed: u64,
) -> Vec<LossRatioPoint> {
    let generator = ErdosRenyi::paper_density(n);
    let algorithm = MemoryGossip::new(MemoryGossipConfig::paper_defaults(n).with_trees(trees));
    let mut points = Vec::new();
    for &failures in failure_counts {
        let mut ratio_sum = 0.0;
        let mut lost_sum = 0.0;
        let run_seeds = seeds(base_seed ^ failures as u64, repetitions);
        for (i, &seed) in run_seeds.iter().enumerate() {
            let graph = generator.generate(seed ^ ((i as u64) << 32));
            let outcome = algorithm.run_with_failures(&graph, seed, failures);
            lost_sum += outcome.lost_messages() as f64;
            ratio_sum += outcome.additional_loss_ratio().unwrap_or(0.0);
        }
        let reps = repetitions.max(1) as f64;
        points.push(LossRatioPoint {
            n,
            failures,
            loss_ratio: ratio_sum / reps,
            lost_messages: lost_sum / reps,
            repetitions,
        });
    }
    points
}

/// Renders loss-ratio points as a table.
pub fn loss_ratio_table(title: &str, points: &[LossRatioPoint]) -> Table {
    let mut table =
        Table::new(title, &["n", "failed_nodes", "loss_ratio", "lost_messages", "repetitions"]);
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            p.failures.to_string(),
            fmt3(p.loss_ratio),
            fmt3(p.lost_messages),
            p.repetitions.to_string(),
        ]);
    }
    table
}

/// One measured point of the Figure 5 experiment.
#[derive(Clone, Debug)]
pub struct ThresholdPoint {
    /// Graph size.
    pub n: usize,
    /// Number of failed nodes `F`.
    pub failures: usize,
    /// Percentage of runs with more than 0 additional lost messages.
    pub percent_above_0: f64,
    /// Percentage of runs with more than 10 additional lost messages.
    pub percent_above_10: f64,
    /// Percentage of runs with more than 100 additional lost messages.
    pub percent_above_100: f64,
    /// Number of runs per point.
    pub runs: usize,
}

/// Runs the Figure 5 experiment: for each failure count, the percentage of
/// runs losing more than `T ∈ {0, 10, 100}` additional messages.
pub fn loss_thresholds(
    n: usize,
    failure_counts: &[usize],
    trees: usize,
    runs: usize,
    base_seed: u64,
) -> Vec<ThresholdPoint> {
    let generator = ErdosRenyi::paper_density(n);
    let algorithm = MemoryGossip::new(MemoryGossipConfig::paper_defaults(n).with_trees(trees));
    let mut points = Vec::new();
    for &failures in failure_counts {
        let mut above = [0usize; 3];
        let run_seeds = seeds(base_seed ^ (failures as u64).rotate_left(17), runs);
        for (i, &seed) in run_seeds.iter().enumerate() {
            let graph = generator.generate(seed ^ ((i as u64) << 32));
            let outcome = algorithm.run_with_failures(&graph, seed, failures);
            let lost = outcome.lost_messages();
            if lost > 0 {
                above[0] += 1;
            }
            if lost > 10 {
                above[1] += 1;
            }
            if lost > 100 {
                above[2] += 1;
            }
        }
        let pct = |count: usize| 100.0 * count as f64 / runs.max(1) as f64;
        points.push(ThresholdPoint {
            n,
            failures,
            percent_above_0: pct(above[0]),
            percent_above_10: pct(above[1]),
            percent_above_100: pct(above[2]),
            runs,
        });
    }
    points
}

/// Renders Figure 5 points as a table.
pub fn loss_thresholds_table(title: &str, points: &[ThresholdPoint]) -> Table {
    let mut table = Table::new(
        title,
        &["n", "failed_nodes", "pct_runs_gt0", "pct_runs_gt10", "pct_runs_gt100", "runs"],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            p.failures.to_string(),
            fmt3(p.percent_above_0),
            fmt3(p.percent_above_10),
            fmt3(p.percent_above_100),
            p.runs.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_ratio_is_zero_without_failures_and_bounded_with_failures() {
        let points = loss_ratio(512, &[0, 20], 3, 2, 1);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].loss_ratio, 0.0);
        assert_eq!(points[0].lost_messages, 0.0);
        // With 20 failed nodes out of 512 the additional loss ratio stays small.
        assert!(points[1].loss_ratio < 4.0, "ratio {:.2}", points[1].loss_ratio);
        let table = loss_ratio_table("fig2-test", &points);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn thresholds_are_monotone() {
        let points = loss_thresholds(512, &[0, 40], 3, 3, 2);
        for p in &points {
            assert!(p.percent_above_0 >= p.percent_above_10);
            assert!(p.percent_above_10 >= p.percent_above_100);
            assert!(p.percent_above_0 <= 100.0);
        }
        assert_eq!(points[0].percent_above_0, 0.0, "no failures => nothing lost");
        let table = loss_thresholds_table("fig5-test", &points);
        assert!(table.to_markdown().contains("pct_runs_gt10"));
    }
}
