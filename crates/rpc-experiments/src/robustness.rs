//! Figures 2, 3 and 5 — robustness of the memory model under node failures.
//!
//! * **Figure 2**: graph of 10⁶ nodes, x = number of failed nodes `F`
//!   (log-spaced), y = (additional lost healthy messages) / `F`, with three
//!   independently built distribution trees and failures injected between
//!   Phase I and Phase II.
//! * **Figure 3**: the same for 10⁵ and 5·10⁵ nodes.
//! * **Figure 5**: arithmetic sweep over `F`, at least five runs per point,
//!   y = percentage of runs in which more than `T ∈ {0, 10, 100}` additional
//!   messages were lost.
//!
//! All three share one [`SweepSpec`] shape built by [`loss_ratio_spec`] — one
//! [`CellJob::MemoryFailure`] cell per failure count — and differ only in the
//! failure grid, the repetition policy, and the rendered columns. The cells'
//! `lost_gt{0,10,100}` indicator metrics make the Figure 5 exceedance
//! percentages plain means (× 100).

use rpc_scenarios::{CellJob, CellResult, RepPolicy, SweepReport, SweepSpec};

use crate::report::{fmt3, sweep_table, sweep_table_with, Table};

/// Builds the robustness sweep for one graph size: one memory-model cell per
/// failure count, with `trees` independent distribution trees and failures
/// injected between Phase I and Phase II.
pub fn loss_ratio_spec(
    name: &str,
    n: usize,
    failure_counts: &[usize],
    trees: usize,
    seed: u64,
    policy: RepPolicy,
) -> SweepSpec {
    let mut spec = SweepSpec::new(name, seed, policy);
    for &failures in failure_counts {
        spec.push_cell(
            vec![
                ("n".into(), n.to_string()),
                ("failed_nodes".into(), failures.to_string()),
                ("trees".into(), trees.to_string()),
            ],
            CellJob::MemoryFailure { n, failures, trees },
        )
        .expect("robustness cell is valid");
    }
    spec
}

/// Renders a robustness sweep as the Figures 2/3 table (loss ratio and lost
/// messages per failure count).
pub fn loss_ratio_table(title: &str, report: &SweepReport) -> Table {
    sweep_table(title, report)
}

/// Renders a robustness sweep as the Figure 5 table: the percentage of runs
/// losing more than `T ∈ {0, 10, 100}` additional messages, derived from the
/// cells' exceedance-indicator metrics.
pub fn loss_thresholds_table(title: &str, report: &SweepReport) -> Table {
    let pct = |metric: &'static str| {
        move |cell: &CellResult| fmt3(100.0 * cell.mean(metric).unwrap_or(0.0))
    };
    let (gt0, gt10, gt100) = (pct("lost_gt0"), pct("lost_gt10"), pct("lost_gt100"));
    sweep_table_with(
        title,
        report,
        &[("pct_runs_gt0", &gt0), ("pct_runs_gt10", &gt10), ("pct_runs_gt100", &gt100)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_scenarios::SweepRunner;

    #[test]
    fn loss_ratio_is_zero_without_failures_and_bounded_with_failures() {
        let spec = loss_ratio_spec("fig2-test", 512, &[0, 20], 3, 1, RepPolicy::fixed(2));
        let report = SweepRunner::new().run(&spec);
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].mean("loss_ratio"), Some(0.0));
        assert_eq!(report.cells[0].mean("lost_messages"), Some(0.0));
        // With 20 failed nodes out of 512 the additional loss ratio stays small.
        let ratio = report.cells[1].mean("loss_ratio").unwrap();
        assert!(ratio < 4.0, "ratio {ratio:.2}");
        let table = loss_ratio_table("fig2-test", &report);
        assert_eq!(table.len(), 2);
        assert!(table.columns.contains(&"loss_ratio_mean".to_string()));
    }

    #[test]
    fn thresholds_are_monotone() {
        let spec = loss_ratio_spec("fig5-test", 512, &[0, 40], 3, 2, RepPolicy::fixed(3));
        let report = SweepRunner::new().run(&spec);
        let table = loss_thresholds_table("fig5-test", &report);
        assert!(table.to_markdown().contains("pct_runs_gt10"));
        let col = |name: &str| table.columns.iter().position(|c| c == name).unwrap();
        let (c0, c10, c100) = (col("pct_runs_gt0"), col("pct_runs_gt10"), col("pct_runs_gt100"));
        for row in &table.rows {
            let p0: f64 = row[c0].parse().unwrap();
            let p10: f64 = row[c10].parse().unwrap();
            let p100: f64 = row[c100].parse().unwrap();
            assert!(p0 >= p10 && p10 >= p100 && p0 <= 100.0);
        }
        assert_eq!(table.rows[0][c0], fmt3(0.0), "no failures => nothing lost");
    }
}
