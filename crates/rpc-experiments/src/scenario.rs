//! The `scenario` experiment: the built-in scenario registry executed as one
//! sweep.
//!
//! This experiment runs every scenario in [`rpc_scenarios::registry`] (static
//! and dynamic topologies, loss, churn, crash bursts, adversarial placement)
//! and reports the aggregated round/message/coverage statistics. Each registry
//! entry is one sweep cell keyed by its name, so the results are cached and
//! resumable like every other experiment, and output is bit-identical for any
//! `--threads` value — the CSV doubles as a cheap cross-machine determinism
//! check.

use rpc_scenarios::registry;
use rpc_scenarios::{CellJob, RepPolicy, SweepReport, SweepSpec};

use crate::report::{fmt3, Table};

/// The registry sweep: one cell per built-in scenario at size `n`.
pub fn spec(n: usize, seed: u64, policy: RepPolicy) -> SweepSpec {
    let mut spec = SweepSpec::new("scenario", seed, policy);
    for s in registry::builtin(n) {
        let axes = vec![
            ("scenario".to_string(), s.name.clone()),
            // Labels may contain spaces ("regular(n=128 d=8)"), which axis
            // tokens forbid; underscores keep them CSV- and key-safe.
            ("topology".to_string(), s.topology.label().replace(' ', "_")),
            ("protocol".to_string(), s.protocol.name().to_string()),
            ("n".to_string(), s.topology.num_nodes().to_string()),
        ];
        spec.push_cell(axes, CellJob::scenario(s)).expect("registry scenario is a valid cell");
    }
    spec
}

/// Renders the registry sweep as a table (one row per scenario), preserving
/// the richer layout of this report: rounds quantiles next to the means, and
/// the five `stopped_*` columns splitting the replications by why they ended
/// (natural completion, a spent round budget, a met coverage threshold, every
/// streamed rumor settled, or an exhausted round cap — the last one meaning
/// the stop rule was *not* satisfied). Streaming scenarios additionally
/// populate the `rumors_completed_mean` column; classic single-rumor rows
/// report it as zero.
pub fn table(report: &SweepReport) -> Table {
    let mut table = Table::new(
        "Scenario registry — Monte Carlo statistics per scenario",
        &[
            "scenario",
            "topology",
            "protocol",
            "n",
            "reps",
            "completed",
            "stopped_complete",
            "stopped_rounds",
            "stopped_coverage",
            "stopped_all_rumors",
            "stopped_max",
            "rounds_min",
            "rounds_p50",
            "rounds_p90",
            "rounds_max",
            "rounds_mean",
            "rounds_ci95",
            "packets_per_node_mean",
            "coverage_mean",
            "rumor_coverage_mean",
            "rumors_completed_mean",
        ],
    );
    for cell in &report.cells {
        let rounds = cell.metric("rounds").expect("scenario cells record rounds");
        let completed_runs =
            (cell.mean("completed").unwrap_or(0.0) * cell.reps as f64).round() as usize;
        table.push_row(vec![
            cell.axis("scenario").unwrap_or("").to_string(),
            cell.axis("topology").unwrap_or("").to_string(),
            cell.axis("protocol").unwrap_or("").to_string(),
            cell.axis("n").unwrap_or("").to_string(),
            cell.reps.to_string(),
            completed_runs.to_string(),
            cell.stopped.complete.to_string(),
            cell.stopped.round_budget.to_string(),
            cell.stopped.coverage.to_string(),
            cell.stopped.all_rumors.to_string(),
            cell.stopped.max_rounds.to_string(),
            fmt3(rounds.stats.min),
            fmt3(rounds.stats.p50),
            fmt3(rounds.stats.p90),
            fmt3(rounds.stats.max),
            fmt3(rounds.stats.mean),
            fmt3(rounds.ci_half),
            fmt3(cell.mean("packets_per_node").unwrap_or(0.0)),
            fmt3(cell.mean("coverage").unwrap_or(0.0)),
            fmt3(cell.mean("rumor_coverage").unwrap_or(0.0)),
            fmt3(cell.mean("rumors_completed").unwrap_or(0.0)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_scenarios::SweepRunner;

    #[test]
    fn produces_one_row_per_registry_scenario() {
        let report = SweepRunner::new().with_threads(2).run(&spec(128, 1, RepPolicy::fixed(1)));
        assert_eq!(report.cells.len(), registry::BUILTIN_NAMES.len());
        let t = table(&report);
        assert_eq!(t.len(), report.cells.len());
        let csv = t.to_csv();
        for name in registry::BUILTIN_NAMES {
            assert!(csv.contains(name), "missing scenario {name} in CSV");
        }
    }

    #[test]
    fn csv_is_identical_across_thread_counts() {
        let s = spec(128, 7, RepPolicy::fixed(2));
        let one = table(&SweepRunner::new().with_threads(1).run(&s)).to_csv();
        let four = table(&SweepRunner::new().with_threads(4).run(&s)).to_csv();
        assert_eq!(one, four, "scenario CSV must not depend on --threads");
    }
}
