//! The `scenario` experiment: the built-in scenario registry executed by the
//! Monte Carlo batch driver.
//!
//! Unlike the figure experiments — each a bespoke harness for one paper
//! artefact — this experiment runs every scenario in
//! [`rpc_scenarios::registry`] (static and dynamic topologies, loss, churn,
//! crash bursts, adversarial placement) and reports the aggregated
//! round/message/coverage statistics in the repository's standard
//! Markdown/CSV table format. Output is bit-identical for any `--threads`
//! value, making the CSV a cheap cross-machine determinism check.

use rpc_scenarios::registry;
use rpc_scenarios::{BatchDriver, ScenarioReport};

use crate::report::{fmt3, Table};

/// Runs all built-in scenarios at size `n` with `repetitions` replications
/// each, fanned across `threads` workers.
pub fn run(n: usize, repetitions: usize, base_seed: u64, threads: usize) -> Vec<ScenarioReport> {
    let scenarios = registry::builtin(n);
    BatchDriver::new(repetitions, base_seed).with_threads(threads).run(&scenarios)
}

/// Renders scenario reports as a table (one row per scenario). The four
/// `stopped_*` columns split the replications by why they ended (natural
/// completion, a spent round budget, a met coverage threshold, or an
/// exhausted round cap — the last one meaning the stop rule was *not*
/// satisfied).
pub fn table(reports: &[ScenarioReport]) -> Table {
    let mut table = Table::new(
        "Scenario registry — Monte Carlo statistics per scenario",
        &[
            "scenario",
            "topology",
            "protocol",
            "n",
            "reps",
            "completed",
            "stopped_complete",
            "stopped_rounds",
            "stopped_coverage",
            "stopped_max",
            "rounds_min",
            "rounds_p50",
            "rounds_p90",
            "rounds_max",
            "rounds_mean",
            "packets_per_node_mean",
            "coverage_mean",
            "rumor_coverage_mean",
        ],
    );
    for r in reports {
        table.push_row(vec![
            r.name.clone(),
            r.topology.clone(),
            r.protocol.to_string(),
            r.n.to_string(),
            r.replications.to_string(),
            r.completed_runs.to_string(),
            r.stopped.complete.to_string(),
            r.stopped.round_budget.to_string(),
            r.stopped.coverage.to_string(),
            r.stopped.max_rounds.to_string(),
            fmt3(r.rounds.min),
            fmt3(r.rounds.p50),
            fmt3(r.rounds.p90),
            fmt3(r.rounds.max),
            fmt3(r.rounds.mean),
            fmt3(r.packets_per_node.mean),
            fmt3(r.coverage.mean),
            fmt3(r.tracked_coverage.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_registry_scenario() {
        let reports = run(128, 1, 1, 2);
        assert_eq!(reports.len(), registry::BUILTIN_NAMES.len());
        let t = table(&reports);
        assert_eq!(t.len(), reports.len());
        let csv = t.to_csv();
        for name in registry::BUILTIN_NAMES {
            assert!(csv.contains(name), "missing scenario {name} in CSV");
        }
    }

    #[test]
    fn csv_is_identical_across_thread_counts() {
        let one = table(&run(128, 2, 7, 1)).to_csv();
        let four = table(&run(128, 2, 7, 4)).to_csv();
        assert_eq!(one, four, "scenario CSV must not depend on --threads");
    }
}
