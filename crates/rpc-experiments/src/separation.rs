//! The broadcast-vs-gossip density contrast that motivates the paper.
//!
//! Karp et al.'s push-pull broadcasting needs only `O(n log log n)`
//! transmissions in complete graphs, but this cannot be achieved in sparse
//! random graphs (Elsässer, SPAA'06) — broadcasting *is* sensitive to density.
//! The paper's main message is that gossiping is *not*: fast-gossiping matches
//! its complete-graph message complexity on `G(n, p)` with
//! `p ≥ log^{2+ε} n / n`.
//!
//! This experiment measures both, per topology, so the contrast can be read
//! off one table: the broadcast ratio (random / complete) grows with `n`,
//! while the gossiping ratio stays near 1.
//!
//! This is the one simulation experiment *not* expressed as a sweep spec:
//! [`PushPullBroadcast`] has no [`rpc_gossip::ProtocolDriver`], so its runs go
//! through the block-run oracle API rather than the scenario stepper, and the
//! whole experiment stays a bespoke loop with its own seed schedule.

use rpc_engine::{derive_seed, Accounting};
use rpc_gossip::prelude::*;
use rpc_graphs::prelude::*;

use crate::report::{fmt3, Table};

/// The per-repetition seed schedule of this experiment.
fn seeds(base_seed: u64, repetitions: usize) -> Vec<u64> {
    (0..repetitions as u64).map(|i| derive_seed(base_seed, 0, i)).collect()
}

/// One measured point of the separation experiment.
#[derive(Clone, Debug)]
pub struct SeparationPoint {
    /// Graph size.
    pub n: usize,
    /// Push-pull broadcast: transmissions per node on the complete graph.
    pub broadcast_complete: f64,
    /// Push-pull broadcast: transmissions per node on `G(n, log² n / n)`.
    pub broadcast_random: f64,
    /// Fast-gossiping: packets per node on the complete graph.
    pub gossip_complete: f64,
    /// Fast-gossiping: packets per node on `G(n, log² n / n)`.
    pub gossip_random: f64,
}

impl SeparationPoint {
    /// Random/complete overhead ratio for broadcasting.
    pub fn broadcast_ratio(&self) -> f64 {
        self.broadcast_random / self.broadcast_complete
    }

    /// Random/complete overhead ratio for gossiping.
    pub fn gossip_ratio(&self) -> f64 {
        self.gossip_random / self.gossip_complete
    }
}

/// Runs the separation experiment for the given sizes.
pub fn run(sizes: &[usize], repetitions: usize, base_seed: u64) -> Vec<SeparationPoint> {
    let mut points = Vec::new();
    for &n in sizes {
        let er = ErdosRenyi::paper_density(n);
        let kn = CompleteGraph::new(n);
        let mut sums = [0.0f64; 4];
        let run_seeds = seeds(base_seed, repetitions);
        for (i, &seed) in run_seeds.iter().enumerate() {
            let random = er.generate(seed ^ ((i as u64) << 32));
            let complete = kn.generate(seed);
            let broadcast = PushPullBroadcast::default();
            sums[0] += broadcast.run(&complete, seed).transmissions_per_node(n);
            sums[1] += broadcast.run(&random, seed).transmissions_per_node(n);
            let gossip = FastGossiping::paper(n);
            sums[2] += gossip.run(&complete, seed).messages_per_node(Accounting::PerPacket);
            sums[3] += gossip.run(&random, seed).messages_per_node(Accounting::PerPacket);
        }
        let reps = repetitions.max(1) as f64;
        points.push(SeparationPoint {
            n,
            broadcast_complete: sums[0] / reps,
            broadcast_random: sums[1] / reps,
            gossip_complete: sums[2] / reps,
            gossip_random: sums[3] / reps,
        });
    }
    points
}

/// Renders the separation points as a table.
pub fn table(points: &[SeparationPoint]) -> Table {
    let mut table = Table::new(
        "Broadcast vs gossip — per-node overhead on complete vs random graphs",
        &[
            "n",
            "broadcast_complete",
            "broadcast_random",
            "broadcast_ratio",
            "gossip_complete",
            "gossip_random",
            "gossip_ratio",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            fmt3(p.broadcast_complete),
            fmt3(p.broadcast_random),
            fmt3(p.broadcast_ratio()),
            fmt3(p.gossip_complete),
            fmt3(p.gossip_random),
            fmt3(p.gossip_ratio()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_ratio_is_close_to_one() {
        let points = run(&[512], 1, 4);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(
            (0.5..=2.0).contains(&p.gossip_ratio()),
            "gossiping should not separate by density, ratio {:.2}",
            p.gossip_ratio()
        );
        assert!(p.broadcast_complete > 0.0 && p.broadcast_random > 0.0);
        assert_eq!(table(&points).len(), 1);
    }
}
