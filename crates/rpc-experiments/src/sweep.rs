//! Parameter sweeps shared by the experiments.

/// Geometric sweep of graph sizes between `min_n` and `max_n` (both rounded to
/// powers of two), mirroring the log-scaled x-axis of Figures 1 and 4.
pub fn size_sweep(min_n: usize, max_n: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut n = min_n.next_power_of_two().max(2);
    let max = max_n.max(n);
    while n <= max {
        sizes.push(n);
        n *= 2;
    }
    sizes
}

/// Geometric sweep with intermediate points (`×2` and `×3` per octave), used
/// by the Figure 4 detail plot.
pub fn dense_size_sweep(min_n: usize, max_n: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut base = min_n.next_power_of_two().max(2);
    while base <= max_n {
        sizes.push(base);
        let mid = base + base / 2;
        if mid <= max_n {
            sizes.push(mid);
        }
        base *= 2;
    }
    sizes
}

/// Failure-count sweep used by Figures 2 and 3: roughly log-spaced values from
/// `min_f` to `max_f`.
pub fn failure_sweep(min_f: usize, max_f: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut f = min_f.max(1);
    while f <= max_f {
        out.push(f);
        let next = (f as f64 * 2.0).round() as usize;
        f = next.max(f + 1);
    }
    out
}

/// Arithmetic failure sweep used by Figure 5 (`0, step, 2·step, …`).
pub fn arithmetic_failure_sweep(step: usize, max_f: usize) -> Vec<usize> {
    (0..=max_f / step.max(1)).map(|k| k * step).collect()
}

/// Per-run seeds derived from a base seed (one per repetition), using the
/// shared SplitMix64 derivation from [`rpc_engine::seeding`] so experiment
/// replications and scenario batches draw from the same well-mixed seed space
/// instead of ad-hoc arithmetic on the base seed.
pub fn seeds(base: u64, repetitions: usize) -> Vec<u64> {
    (0..repetitions as u64).map(|i| rpc_engine::derive_seed(base, 0, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_doubles() {
        assert_eq!(size_sweep(1024, 8192), vec![1024, 2048, 4096, 8192]);
        assert_eq!(size_sweep(1000, 1000), vec![1024]);
    }

    #[test]
    fn dense_sweep_adds_midpoints() {
        assert_eq!(dense_size_sweep(1024, 4096), vec![1024, 1536, 2048, 3072, 4096]);
    }

    #[test]
    fn failure_sweep_is_increasing_and_bounded() {
        let sweep = failure_sweep(10, 1000);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*sweep.first().unwrap(), 10);
        assert!(*sweep.last().unwrap() <= 1000);
    }

    #[test]
    fn arithmetic_sweep_includes_zero() {
        assert_eq!(arithmetic_failure_sweep(100, 350), vec![0, 100, 200, 300]);
    }

    #[test]
    fn seeds_are_distinct() {
        let s = seeds(7, 16);
        let unique: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn seeds_use_the_shared_splitmix_derivation() {
        let s = seeds(42, 3);
        let expected: Vec<u64> = (0..3).map(|i| rpc_engine::derive_seed(42, 0, i)).collect();
        assert_eq!(s, expected);
    }
}
