//! Table 1 — the simulation constants of both algorithms.
//!
//! This experiment does not run anything; it prints, for a range of graph
//! sizes, the phase lengths that [`FastGossipingConfig::paper_defaults`] and
//! [`MemoryGossipConfig::paper_defaults`] derive from Table 1, making it easy
//! to compare the constants against the paper. Because it samples no
//! randomness there is no repetition loop and hence no sweep spec — it is the
//! only `sweep` subcommand member without one.

use rpc_gossip::prelude::*;

use crate::report::{fmt3, Table};

/// Builds the Table 1 report for the given sizes.
pub fn run(sizes: &[usize]) -> Table {
    let mut table = Table::new(
        "Table 1 — simulation constants",
        &[
            "n",
            "alg1_phase1_steps",
            "alg1_phase2_rounds",
            "alg1_walk_probability",
            "alg1_walk_steps",
            "alg1_broadcast_steps",
            "alg2_phase1_push_steps",
            "alg2_phase1_pull_steps",
            "alg2_phase3_push_steps",
        ],
    );
    for &n in sizes {
        let fg = FastGossipingConfig::paper_defaults(n);
        let mg = MemoryGossipConfig::paper_defaults(n);
        table.push_row(vec![
            n.to_string(),
            fg.phase1_steps.to_string(),
            fg.phase2_rounds.to_string(),
            fmt3(fg.walk_probability),
            fg.walk_steps.to_string(),
            fg.broadcast_steps.to_string(),
            mg.phase1_push_steps.to_string(),
            mg.phase1_pull_steps.to_string(),
            mg.phase3_push_steps.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_a_row_per_size() {
        let table = run(&[1_000, 10_000, 100_000, 1_000_000]);
        assert_eq!(table.len(), 4);
        let csv = table.to_csv();
        assert!(csv.contains("1000000"));
        // The n = 10^6 row must reproduce the Table 1 derived values.
        let row: Vec<&str> = csv.lines().last().unwrap().split(',').collect();
        assert_eq!(row[1], "6"); // ⌈1.2 log log n⌉
        assert_eq!(row[6], "40"); // 2 log n rounded to a multiple of 4
    }
}
