//! Shape checks for Theorems 1 and 2 — the paper's analytical results.
//!
//! * **Theorem 1**: fast-gossiping needs `O(n log n / log log n)` transmissions
//!   and `O(log² n / log log n)` time on random graphs of degree
//!   `Ω(log^{2+ε} n)` — i.e. *the same* bounds as in complete graphs, so
//!   density does not separate gossiping. We measure both topologies and
//!   report the transmissions normalised by `n log n / log log n`: a flat
//!   series (and a random/complete ratio near 1) confirms the shape.
//! * **Theorem 2**: memory-model gossiping needs `O(n)` transmissions; the
//!   normalised column divides by `n` and must stay constant.

use rpc_engine::Accounting;
use rpc_gossip::{prelude::*, theory};
use rpc_graphs::prelude::*;

use crate::report::{fmt3, Table};
use crate::sweep::seeds;

/// One measured point of the theorem shape check.
#[derive(Clone, Debug)]
pub struct TheoryPoint {
    /// Graph size.
    pub n: usize,
    /// Topology label (`"G(n,p)"` or `"complete"`).
    pub topology: &'static str,
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Measured packets (per-packet accounting).
    pub packets: f64,
    /// Packets normalised by the theorem's bound.
    pub normalised_packets: f64,
    /// Measured rounds.
    pub rounds: f64,
    /// Rounds normalised by the theorem's bound.
    pub normalised_rounds: f64,
}

fn predicted_packets(algorithm: &str, n: usize) -> f64 {
    match algorithm {
        "fast-gossiping" => theory::fast_gossiping_transmissions(n),
        "memory" => theory::memory_gossiping_transmissions(n),
        _ => theory::gossip_logtime_lower_bound(n),
    }
}

fn predicted_rounds(algorithm: &str, n: usize) -> f64 {
    match algorithm {
        "fast-gossiping" => theory::fast_gossiping_rounds(n),
        "memory" => theory::push_pull_gossip_rounds(n),
        _ => theory::push_pull_gossip_rounds(n),
    }
}

/// Runs the shape check over the given sizes on both topologies.
pub fn run(sizes: &[usize], repetitions: usize, base_seed: u64) -> Vec<TheoryPoint> {
    let mut points = Vec::new();
    for &n in sizes {
        let topologies: Vec<(&'static str, Box<dyn GraphGenerator>)> = vec![
            ("G(n,p)", Box::new(ErdosRenyi::paper_density(n))),
            ("complete", Box::new(CompleteGraph::new(n))),
        ];
        for (label, generator) in &topologies {
            let algorithms: Vec<Box<dyn GossipAlgorithm>> = vec![
                Box::new(PushPullGossip::default()),
                Box::new(FastGossiping::paper(n)),
                Box::new(MemoryGossip::paper(n)),
            ];
            for algorithm in &algorithms {
                let mut packets = 0.0;
                let mut rounds = 0.0;
                let run_seeds = seeds(base_seed, repetitions);
                for (i, &seed) in run_seeds.iter().enumerate() {
                    let graph = generator.generate(seed ^ ((i as u64) << 32));
                    let outcome = algorithm.run(&graph, seed);
                    packets += outcome.total_transmissions(Accounting::PerPacket) as f64;
                    rounds += outcome.rounds() as f64;
                }
                let reps = repetitions.max(1) as f64;
                let packets = packets / reps;
                let rounds = rounds / reps;
                points.push(TheoryPoint {
                    n,
                    topology: label,
                    algorithm: algorithm.name(),
                    packets,
                    normalised_packets: packets / predicted_packets(algorithm.name(), n),
                    rounds,
                    normalised_rounds: rounds / predicted_rounds(algorithm.name(), n),
                });
            }
        }
    }
    points
}

/// Renders the shape-check points as a table.
pub fn table(points: &[TheoryPoint]) -> Table {
    let mut table = Table::new(
        "Theorems 1 & 2 — transmissions/rounds normalised by the predicted bounds",
        &["n", "topology", "algorithm", "packets", "packets/bound", "rounds", "rounds/bound"],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            p.topology.to_string(),
            p.algorithm.to_string(),
            fmt3(p.packets),
            fmt3(p.normalised_packets),
            fmt3(p.rounds),
            fmt3(p.normalised_rounds),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_and_complete_graphs_behave_alike_for_fast_gossiping() {
        // The core claim: no significant density separation for gossiping.
        let points = run(&[512], 1, 9);
        let get = |topology: &str| {
            points
                .iter()
                .find(|p| p.topology == topology && p.algorithm == "fast-gossiping")
                .unwrap()
                .packets
        };
        let random = get("G(n,p)");
        let complete = get("complete");
        let ratio = random / complete;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "fast-gossiping on G(n,p) vs K_n differs by {ratio:.2}x"
        );
    }

    #[test]
    fn normalised_values_are_order_one() {
        let points = run(&[256], 1, 10);
        for p in &points {
            assert!(p.normalised_packets > 0.0 && p.normalised_packets < 10.0, "{p:?}");
        }
        assert_eq!(table(&points).len(), points.len());
    }
}
