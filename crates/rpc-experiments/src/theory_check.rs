//! Shape checks for Theorems 1 and 2 — the paper's analytical results.
//!
//! * **Theorem 1**: fast-gossiping needs `O(n log n / log log n)` transmissions
//!   and `O(log² n / log log n)` time on random graphs of degree
//!   `Ω(log^{2+ε} n)` — i.e. *the same* bounds as in complete graphs, so
//!   density does not separate gossiping. We measure both topologies and
//!   report the transmissions normalised by `n log n / log log n`: a flat
//!   series (and a random/complete ratio near 1) confirms the shape.
//! * **Theorem 2**: memory-model gossiping needs `O(n)` transmissions; the
//!   normalised column divides by `n` and must stay constant.
//!
//! The sweep is a grid `n × topology × algorithm`; the normalised columns are
//! derived from each cell's `packets_per_node` mean and the theory-module
//! bounds.

use rpc_gossip::theory;
use rpc_scenarios::TopologySpec;
use rpc_scenarios::{CellJob, CellResult, RepPolicy, Scenario, SweepReport, SweepSpec};

use crate::fig1::{protocol_for, ALGORITHMS};
use crate::report::{fmt3, sweep_table_with, Table};

/// The two topology axis values of the shape check.
pub const TOPOLOGIES: [&str; 2] = ["er-paper", "complete"];

fn predicted_packets(algorithm: &str, n: usize) -> f64 {
    match algorithm {
        "fast-gossiping" => theory::fast_gossiping_transmissions(n),
        "memory" => theory::memory_gossiping_transmissions(n),
        _ => theory::gossip_logtime_lower_bound(n),
    }
}

fn predicted_rounds(algorithm: &str, n: usize) -> f64 {
    match algorithm {
        "fast-gossiping" => theory::fast_gossiping_rounds(n),
        "memory" => theory::push_pull_gossip_rounds(n),
        _ => theory::push_pull_gossip_rounds(n),
    }
}

/// The shape-check sweep: every size on both topologies with all three
/// algorithms.
pub fn spec(sizes: &[usize], seed: u64, policy: RepPolicy) -> SweepSpec {
    SweepSpec::grid("theory", seed, policy)
        .axis("n", sizes.iter().copied())
        .axis("topology", TOPOLOGIES)
        .axis("algorithm", ALGORITHMS)
        .cells(|point| {
            let n: usize = point.parse("n");
            let topology = match point.get("topology") {
                "complete" => TopologySpec::Complete { n },
                _ => TopologySpec::ErdosRenyiPaper { n },
            };
            Some(CellJob::scenario(
                Scenario::builder("theory", topology)
                    .protocol(protocol_for(point.get("algorithm")))
                    .build()
                    .expect("shape-check scenario is valid"),
            ))
        })
        .expect("theory grid is well-formed")
}

fn cell_shape(cell: &CellResult) -> (usize, String, f64) {
    let n: usize = cell.axis("n").and_then(|v| v.parse().ok()).expect("theory cells carry `n`");
    let algorithm = cell.axis("algorithm").expect("theory cells carry `algorithm`").to_string();
    let packets = cell.mean("packets_per_node").unwrap_or(0.0) * n as f64;
    (n, algorithm, packets)
}

/// Renders the shape-check sweep with total packets and the bound-normalised
/// columns derived per cell.
pub fn table(report: &SweepReport) -> Table {
    let packets = |cell: &CellResult| fmt3(cell_shape(cell).2);
    let packets_norm = |cell: &CellResult| {
        let (n, algorithm, packets) = cell_shape(cell);
        fmt3(packets / predicted_packets(&algorithm, n))
    };
    let rounds_norm = |cell: &CellResult| {
        let (n, algorithm, _) = cell_shape(cell);
        fmt3(cell.mean("rounds").unwrap_or(0.0) / predicted_rounds(&algorithm, n))
    };
    sweep_table_with(
        "Theorems 1 & 2 — transmissions/rounds normalised by the predicted bounds",
        report,
        &[
            ("packets", &packets),
            ("packets_per_bound", &packets_norm),
            ("rounds_per_bound", &rounds_norm),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_scenarios::SweepRunner;

    #[test]
    fn random_and_complete_graphs_behave_alike_for_fast_gossiping() {
        // The core claim: no significant density separation for gossiping.
        let report = SweepRunner::new().run(&spec(&[512], 9, RepPolicy::fixed(1)));
        let get = |topology: &str| {
            report
                .cells
                .iter()
                .find(|c| {
                    c.axis("topology") == Some(topology)
                        && c.axis("algorithm") == Some("fast-gossiping")
                })
                .map(|c| cell_shape(c).2)
                .unwrap()
        };
        let ratio = get("er-paper") / get("complete");
        assert!(
            (0.5..=2.0).contains(&ratio),
            "fast-gossiping on G(n,p) vs K_n differs by {ratio:.2}x"
        );
    }

    #[test]
    fn normalised_values_are_order_one() {
        let report = SweepRunner::new().run(&spec(&[256], 10, RepPolicy::fixed(1)));
        let t = table(&report);
        assert_eq!(t.len(), report.cells.len());
        let norm = t.columns.iter().position(|c| c == "packets_per_bound").unwrap();
        for row in &t.rows {
            let v: f64 = row[norm].parse().unwrap();
            assert!(v > 0.0 && v < 10.0, "normalised packets {v} out of range in {row:?}");
        }
    }
}
