//! End-to-end smoke test: run the `experiments` binary's `--quick` path and
//! assert it produces non-empty Markdown on stdout and non-empty CSV files.

use std::path::PathBuf;
use std::process::Command;

/// Directory unique to this test process so parallel test runs cannot clash.
fn scratch_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("experiments-smoke-{label}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir should be removable");
    }
    dir
}

#[test]
fn table1_quick_emits_markdown_and_csv() {
    let out_dir = scratch_dir("table1");
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["table1", "--quick", "--out"])
        .arg(&out_dir)
        .output()
        .expect("experiments binary should spawn");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let stdout = String::from_utf8(output.stdout).expect("stdout should be UTF-8");
    assert!(!stdout.trim().is_empty(), "expected Markdown output on stdout");
    assert!(stdout.contains('|'), "expected a Markdown table, got:\n{stdout}");
    assert!(stdout.contains("Table 1"), "expected a Table 1 caption, got:\n{stdout}");

    let csv = out_dir.join("table1_constants.csv");
    let contents = std::fs::read_to_string(&csv)
        .unwrap_or_else(|e| panic!("expected CSV at {}: {e}", csv.display()));
    let lines: Vec<&str> = contents.lines().collect();
    assert!(lines.len() >= 2, "CSV should have a header and at least one row:\n{contents}");
    assert!(lines[0].contains(','), "CSV header should be comma-separated: {}", lines[0]);

    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn fig1_quick_emits_markdown_and_csv() {
    let out_dir = scratch_dir("fig1");
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["fig1", "--quick", "--reps", "1", "--out"])
        .arg(&out_dir)
        .output()
        .expect("experiments binary should spawn");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let stdout = String::from_utf8(output.stdout).expect("stdout should be UTF-8");
    assert!(stdout.contains('|'), "expected a Markdown table, got:\n{stdout}");

    let csv = out_dir.join("fig1_overhead.csv");
    let contents = std::fs::read_to_string(&csv)
        .unwrap_or_else(|e| panic!("expected CSV at {}: {e}", csv.display()));
    assert!(contents.lines().count() >= 2, "CSV should have header and data:\n{contents}");
    assert!(
        contents.lines().next().is_some_and(|h| h.contains("stopped_complete")),
        "expected stopped_by columns in the header:\n{contents}"
    );

    // Sweep-backed experiments also emit the JSON report next to the CSV.
    let json = out_dir.join("fig1_overhead.json");
    let report = std::fs::read_to_string(&json)
        .unwrap_or_else(|e| panic!("expected JSON at {}: {e}", json.display()));
    assert!(report.trim_start().starts_with('{'), "expected a JSON object:\n{report}");
    assert!(report.contains("\"cells\""), "expected per-cell results:\n{report}");

    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn scenario_quick_is_byte_identical_across_thread_counts() {
    let mut csvs = Vec::new();
    for threads in ["1", "4"] {
        let out_dir = scratch_dir(&format!("scenario-t{threads}"));
        let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(["scenario", "--quick", "--reps", "1", "--threads", threads, "--out"])
            .arg(&out_dir)
            .output()
            .expect("experiments binary should spawn");
        assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

        let stdout = String::from_utf8(output.stdout).expect("stdout should be UTF-8");
        assert!(stdout.contains("churn-heavy"), "expected registry rows, got:\n{stdout}");
        assert!(
            stdout.contains("fast-round-budget") && stdout.contains("memory-coverage-churn"),
            "expected the phase-protocol stop-rule scenarios, got:\n{stdout}"
        );

        let csv = out_dir.join("scenarios.csv");
        let contents = std::fs::read_to_string(&csv)
            .unwrap_or_else(|e| panic!("expected CSV at {}: {e}", csv.display()));
        assert!(contents.lines().count() >= 18, "expected 17 scenario rows:\n{contents}");
        assert!(
            contents.lines().next().is_some_and(|h| h.contains("stopped_max")),
            "expected stopped_by columns in the header:\n{contents}"
        );
        csvs.push(contents);
        std::fs::remove_dir_all(&out_dir).ok();
    }
    assert_eq!(csvs[0], csvs[1], "scenario CSV must not depend on --threads");
}

#[test]
fn unknown_subcommand_fails_with_message() {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("no-such-figure")
        .output()
        .expect("experiments binary should spawn");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown subcommand"), "stderr: {stderr}");
}
