//! Golden comparison of the `sweep --quick` CSV output.
//!
//! The committed files under `tests/golden/quick/` were produced by
//!
//! ```text
//! experiments sweep --quick --only fig1 --only table1 --only scenario --out <dir>
//! ```
//!
//! and must be reproduced byte for byte: the sweep engine's determinism
//! contract (seeds derived per cell and repetition, CI stop decisions
//! prefix-stable, thread-count independent) means any diff is a real
//! behavioural change. Regenerate the goldens with the command above when
//! intentionally changing experiment schemas or the engine's numbers.

use std::path::{Path, PathBuf};
use std::process::Command;

const GOLDEN_FILES: [&str; 3] = ["fig1_overhead.csv", "table1_constants.csv", "scenarios.csv"];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join("quick")
}

#[test]
fn sweep_quick_reproduces_the_committed_goldens() {
    let out_dir = std::env::temp_dir().join(format!("experiments-golden-{}", std::process::id()));
    if out_dir.exists() {
        std::fs::remove_dir_all(&out_dir).expect("stale scratch dir should be removable");
    }
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["sweep", "--quick", "--only", "fig1", "--only", "table1", "--only", "scenario"])
        .arg("--out")
        .arg(&out_dir)
        .output()
        .expect("experiments binary should spawn");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    for name in GOLDEN_FILES {
        let got = std::fs::read_to_string(out_dir.join(name))
            .unwrap_or_else(|e| panic!("missing output {name}: {e}"));
        let want = std::fs::read_to_string(golden_dir().join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        assert_eq!(
            got, want,
            "{name} diverged from tests/golden/quick/{name}; regenerate the golden if the \
             change is intentional"
        );
    }
    std::fs::remove_dir_all(&out_dir).ok();
}
