//! Randomized broadcasting baselines (push and push-pull).
//!
//! Broadcasting — one distinguished node spreads a single rumor — is the
//! problem the paper contrasts gossiping against: Karp et al. showed that
//! push-pull broadcasting in complete graphs needs only `O(n log log n)`
//! transmissions, while Elsässer (SPAA'06) showed this bound cannot be
//! achieved in sparse random graphs. Gossiping, by the paper's main result,
//! shows *no* such density separation. These two baselines let the experiment
//! harness reproduce that motivating contrast.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rpc_engine::{Engine, Transfer};
use rpc_graphs::{Graph, NodeId};

use crate::runner::{ProtocolDriver, StepStatus};

/// Result of one broadcast run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Number of times the rumor was transmitted over a channel.
    pub transmissions: u64,
    /// Number of channels opened.
    pub channels_opened: u64,
    /// Number of informed nodes at the end.
    pub informed: usize,
    /// Whether every node was informed.
    pub completed: bool,
}

impl BroadcastOutcome {
    /// Rumor transmissions divided by `n` — the per-node communication
    /// overhead of broadcasting a single message.
    pub fn transmissions_per_node(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.transmissions as f64 / n as f64
        }
    }
}

/// Which broadcasting discipline a [`BroadcastDriver`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BroadcastMode {
    /// Only informed nodes open channels and push (Pittel; Feige et al.).
    Push,
    /// Every node opens a channel; the rumor travels in whichever direction
    /// is possible (Karp et al.).
    PushPull,
}

/// The resumable [`ProtocolDriver`] for the broadcasting baselines, run on a
/// *streaming* engine: the rumor(s) enter via scheduled injection, nodes
/// start empty, and "informed" means a non-empty message set. Unlike the
/// standalone [`PushBroadcast`] / [`PushPullBroadcast`] (which own their RNG
/// and graph walk), the driver goes through the [`Engine`] primitives, so
/// broadcasting composes with stop rules, hostile environments and the
/// packed/unpacked equivalence suites exactly like the gossiping protocols —
/// this is the paper's broadcast-vs-gossip density contrast made runnable
/// under the scenario engine.
///
/// Accounting mirrors the baselines: one channel exchange per opener, one
/// packet per actual rumor transmission (informed side only) — uninformed
/// sides of a push-pull channel transmit nothing.
#[derive(Clone, Debug)]
pub struct BroadcastDriver {
    mode: BroadcastMode,
    max_rounds: usize,
    steps: usize,
    transfers: Vec<Transfer>,
}

impl BroadcastDriver {
    /// A driver producing at most `max_rounds` rounds in the given mode.
    pub fn new(mode: BroadcastMode, max_rounds: usize) -> Self {
        Self { mode, max_rounds, steps: 0, transfers: Vec::new() }
    }

    /// Push-only broadcasting.
    pub fn push(max_rounds: usize) -> Self {
        Self::new(BroadcastMode::Push, max_rounds)
    }

    /// Push-pull broadcasting.
    pub fn push_pull(max_rounds: usize) -> Self {
        Self::new(BroadcastMode::PushPull, max_rounds)
    }

    /// Rounds executed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl ProtocolDriver for BroadcastDriver {
    fn name(&self) -> &'static str {
        match self.mode {
            BroadcastMode::Push => "broadcast-push",
            BroadcastMode::PushPull => "broadcast-push-pull",
        }
    }

    fn finished<E: Engine>(&self, sim: &E) -> bool {
        sim.gossip_complete()
    }

    fn step<E: Engine>(&mut self, sim: &mut E) -> StepStatus {
        if self.steps >= self.max_rounds {
            return StepStatus::Done;
        }
        // Informedness gates the per-node work *before* any engine primitive
        // runs, so round-boundary injections must be applied eagerly — the
        // lazy poll inside `open_channel` would come too late for the first
        // informed node's check.
        sim.apply_due_events();
        let n = sim.num_nodes();
        self.transfers.clear();
        match self.mode {
            BroadcastMode::Push => {
                for v in 0..n as NodeId {
                    if sim.state(v).is_empty() {
                        continue;
                    }
                    if let Some(u) = sim.open_channel(v) {
                        self.transfers.push(Transfer::new(v, u));
                        sim.metrics_mut().record_exchange(v);
                    }
                }
            }
            BroadcastMode::PushPull => {
                for v in 0..n as NodeId {
                    if let Some(u) = sim.open_channel(v) {
                        // Delivery is deferred, so both informedness checks
                        // see the consistent pre-round state.
                        if !sim.state(v).is_empty() {
                            self.transfers.push(Transfer::new(v, u));
                        }
                        if !sim.state(u).is_empty() {
                            self.transfers.push(Transfer::new(u, v));
                        }
                        sim.metrics_mut().record_exchange(v);
                    }
                }
            }
        }
        sim.deliver(&self.transfers);
        sim.metrics_mut().finish_round();
        self.steps += 1;
        StepStatus::Running
    }
}

/// Push-only broadcast: in every round every informed node sends the rumor to
/// a uniformly random neighbour (Pittel; Feige et al.).
#[derive(Clone, Copy, Debug)]
pub struct PushBroadcast {
    /// The node initially holding the rumor.
    pub source: NodeId,
    /// Safety cap on the number of rounds.
    pub max_rounds: usize,
}

impl Default for PushBroadcast {
    fn default() -> Self {
        Self { source: 0, max_rounds: 10_000 }
    }
}

impl PushBroadcast {
    /// Runs the broadcast on `graph`.
    pub fn run(&self, graph: &Graph, seed: u64) -> BroadcastOutcome {
        let n = graph.num_nodes();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
        let mut informed = vec![false; n];
        if n == 0 {
            return BroadcastOutcome {
                rounds: 0,
                transmissions: 0,
                channels_opened: 0,
                informed: 0,
                completed: true,
            };
        }
        informed[self.source as usize] = true;
        let mut informed_count = 1usize;
        let mut rounds = 0u64;
        let mut transmissions = 0u64;
        let mut channels = 0u64;
        while informed_count < n && (rounds as usize) < self.max_rounds {
            let mut newly: Vec<NodeId> = Vec::new();
            for v in 0..n as NodeId {
                if !informed[v as usize] {
                    continue;
                }
                if let Some(u) = graph.random_neighbor(v, &mut rng) {
                    channels += 1;
                    transmissions += 1;
                    if !informed[u as usize] {
                        newly.push(u);
                    }
                }
            }
            for u in newly {
                if !informed[u as usize] {
                    informed[u as usize] = true;
                    informed_count += 1;
                }
            }
            rounds += 1;
        }
        BroadcastOutcome {
            rounds,
            transmissions,
            channels_opened: channels,
            informed: informed_count,
            completed: informed_count == n,
        }
    }
}

/// Push-pull broadcast (Karp et al.): in every round *every* node opens a
/// channel to a random neighbour; the rumor travels over the channel in
/// whichever direction is possible. Only actual rumor transmissions are
/// counted, matching the communication-complexity accounting of the paper's
/// related-work discussion.
#[derive(Clone, Copy, Debug)]
pub struct PushPullBroadcast {
    /// The node initially holding the rumor.
    pub source: NodeId,
    /// Safety cap on the number of rounds.
    pub max_rounds: usize,
}

impl Default for PushPullBroadcast {
    fn default() -> Self {
        Self { source: 0, max_rounds: 10_000 }
    }
}

impl PushPullBroadcast {
    /// Runs the broadcast on `graph`.
    pub fn run(&self, graph: &Graph, seed: u64) -> BroadcastOutcome {
        let n = graph.num_nodes();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut informed = vec![false; n];
        if n == 0 {
            return BroadcastOutcome {
                rounds: 0,
                transmissions: 0,
                channels_opened: 0,
                informed: 0,
                completed: true,
            };
        }
        informed[self.source as usize] = true;
        let mut informed_count = 1usize;
        let mut rounds = 0u64;
        let mut transmissions = 0u64;
        let mut channels = 0u64;
        while informed_count < n && (rounds as usize) < self.max_rounds {
            let mut newly: Vec<NodeId> = Vec::new();
            for v in 0..n as NodeId {
                let Some(u) = graph.random_neighbor(v, &mut rng) else { continue };
                channels += 1;
                // Push: the caller sends the rumor if it has it.
                if informed[v as usize] {
                    transmissions += 1;
                    if !informed[u as usize] {
                        newly.push(u);
                    }
                }
                // Pull: the callee sends the rumor back if it has it.
                if informed[u as usize] {
                    transmissions += 1;
                    if !informed[v as usize] {
                        newly.push(v);
                    }
                }
            }
            for u in newly {
                if !informed[u as usize] {
                    informed[u as usize] = true;
                    informed_count += 1;
                }
            }
            rounds += 1;
        }
        BroadcastOutcome {
            rounds,
            transmissions,
            channels_opened: channels,
            informed: informed_count,
            completed: informed_count == n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_graphs::prelude::*;

    #[test]
    fn push_broadcast_informs_everyone_on_complete_graph() {
        let n = 1024;
        let g = CompleteGraph::new(n).generate(0);
        let outcome = PushBroadcast::default().run(&g, 1);
        assert!(outcome.completed);
        assert_eq!(outcome.informed, n);
    }

    #[test]
    fn push_broadcast_round_count_matches_pittel_bound() {
        // Pittel: log2 n + ln n + O(1) rounds in complete graphs.
        let n = 4096;
        let g = CompleteGraph::new(n).generate(0);
        let expected = (n as f64).log2() + (n as f64).ln();
        let mut total = 0.0;
        let runs = 3;
        for seed in 0..runs {
            let outcome = PushBroadcast::default().run(&g, seed);
            assert!(outcome.completed);
            total += outcome.rounds as f64;
        }
        let mean = total / runs as f64;
        assert!(
            (mean - expected).abs() < 6.0,
            "mean rounds {mean:.1} too far from Pittel's {expected:.1}"
        );
    }

    #[test]
    fn push_pull_broadcast_is_faster_than_push_alone() {
        let n = 4096;
        let g = CompleteGraph::new(n).generate(0);
        let push = PushBroadcast::default().run(&g, 3);
        let push_pull = PushPullBroadcast::default().run(&g, 3);
        assert!(push_pull.completed && push.completed);
        assert!(push_pull.rounds < push.rounds);
    }

    #[test]
    fn push_pull_broadcast_transmissions_are_subloglinear_in_complete_graphs() {
        // Karp et al.: O(n log log n) transmissions. Check the per-node
        // overhead stays far below log n.
        let n = 8192;
        let g = CompleteGraph::new(n).generate(0);
        let outcome = PushPullBroadcast::default().run(&g, 4);
        assert!(outcome.completed);
        let per_node = outcome.transmissions_per_node(n);
        let loglog = (n as f64).log2().log2();
        assert!(
            per_node < 2.5 * loglog,
            "per-node overhead {per_node:.2} vs 2.5 · log log n = {:.1}",
            2.5 * loglog
        );
    }

    #[test]
    fn broadcasts_complete_on_paper_density_random_graphs() {
        let n = 2048;
        let g = ErdosRenyi::paper_density(n).generate(5);
        assert!(PushBroadcast::default().run(&g, 6).completed);
        assert!(PushPullBroadcast::default().run(&g, 6).completed);
    }

    #[test]
    fn respects_round_caps() {
        let g = ring(256);
        let outcome = PushBroadcast { source: 0, max_rounds: 5 }.run(&g, 7);
        assert!(!outcome.completed);
        assert_eq!(outcome.rounds, 5);
        assert!(outcome.informed <= 11); // at most 2 new nodes per round on a ring
    }

    #[test]
    fn source_parameter_is_respected() {
        let g = star(16);
        let outcome = PushBroadcast { source: 5, max_rounds: 2000 }.run(&g, 8);
        assert!(outcome.completed);
        // Leaf source: first round informs the hub, then the hub informs one
        // random leaf per round (coupon collector) — so the run takes many
        // more rounds than on a well-connected graph.
        assert!(outcome.rounds > 10);
    }

    #[test]
    fn driver_completes_single_rumor_broadcast_on_streaming_engine() {
        use rpc_engine::Simulation;
        let n = 256;
        let g = ErdosRenyi::paper_density(n).generate(4);
        for driver in [BroadcastDriver::push(10_000), BroadcastDriver::push_pull(10_000)] {
            let mut d = driver;
            let mut sim = Simulation::new_streaming(&g, 9, 1);
            sim.schedule_injection(0, 0, 0);
            let mut rounds = 0u64;
            while !rpc_engine::Engine::gossip_complete(&sim) {
                assert_eq!(d.step(&mut sim), StepStatus::Running, "{} stalled", d.name());
                rounds += 1;
                assert!(rounds < 10_000);
            }
            assert!(rpc_engine::Engine::rumor_complete(&sim, 0), "{}", d.name());
            assert!(sim.metrics().total_packets() > 0);
        }
    }

    #[test]
    fn driver_push_mode_sends_nothing_before_injection() {
        use rpc_engine::Simulation;
        let g = CompleteGraph::new(64).generate(0);
        let mut sim = Simulation::new_streaming(&g, 3, 1);
        sim.schedule_injection(2, 0, 0);
        let mut d = BroadcastDriver::push(100);
        // Rounds 0 and 1 run before the rumor exists: no channels, no packets.
        assert_eq!(d.step(&mut sim), StepStatus::Running);
        assert_eq!(d.step(&mut sim), StepStatus::Running);
        assert_eq!(sim.metrics().total_packets(), 0);
        assert_eq!(sim.metrics().channels_opened(), 0);
        // Round 2 applies the injection before the informedness gate.
        assert_eq!(d.step(&mut sim), StepStatus::Running);
        assert_eq!(sim.metrics().total_packets(), 1);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g0 = CompleteGraph::new(0).generate(0);
        assert!(PushPullBroadcast::default().run(&g0, 0).completed);
        let g1 = CompleteGraph::new(1).generate(0);
        let o = PushBroadcast::default().run(&g1, 0);
        assert!(o.completed);
        assert_eq!(o.transmissions, 0);
    }
}
