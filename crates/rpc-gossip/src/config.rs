//! Algorithm parameters, including the exact constants of Table 1.
//!
//! Every phase length of Algorithm 1 (fast-gossiping) and Algorithm 2
//! (memory-model gossiping) is expressed as a function of the network size
//! `n`. The paper tunes these constants for its simulations and lists them in
//! Table 1; the `paper_defaults` constructors reproduce that table exactly,
//! while the `theoretical` constructors use the constants of the pseudocode
//! in Sections 3 and 4 (useful for asymptotic shape checks, but far slower at
//! practical sizes).

use rpc_graphs::log2n;

/// `log log n` (base 2, guarded for tiny `n`).
pub fn loglog2n(n: usize) -> f64 {
    let l = log2n(n);
    if l <= 1.0 {
        0.0
    } else {
        l.log2()
    }
}

/// Rounds `x` up to the next multiple of 4 (Algorithm 2 works in long-steps
/// of four steps each).
pub fn round_to_multiple_of_4(x: f64) -> usize {
    let v = x.ceil() as usize;
    v.div_ceil(4) * 4
}

/// Parameters of the simple Push-Pull gossiping baseline (Algorithm 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PushPullConfig {
    /// Safety cap on the number of rounds (the algorithm itself runs until
    /// every node knows every message).
    pub max_rounds: usize,
}

impl Default for PushPullConfig {
    fn default() -> Self {
        Self { max_rounds: 10_000 }
    }
}

/// Parameters of Algorithm 1 (fast-gossiping), one field per phase limit of
/// Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FastGossipingConfig {
    /// Phase I: number of push steps.
    pub phase1_steps: usize,
    /// Phase II: number of rounds (outer loop).
    pub phase2_rounds: usize,
    /// Phase II: probability that a node starts a random walk in a round.
    pub walk_probability: f64,
    /// Phase II: number of random-walk steps per round.
    pub walk_steps: usize,
    /// Phase II: maximum number of moves before a walk is no longer enqueued
    /// (`c_moves · log n` in the pseudocode).
    pub max_walk_moves: u32,
    /// Phase II: number of broadcast steps at the end of each round.
    pub broadcast_steps: usize,
    /// Phase III: safety cap on the closing push-pull steps (the phase runs
    /// until the whole graph is informed, as in the paper's simulations).
    pub phase3_max_steps: usize,
}

impl FastGossipingConfig {
    /// The constants of Table 1, as used for Figures 1 and 4:
    ///
    /// | phase | limit | value |
    /// |---|---|---|
    /// | I | number of steps | `⌈1.2 · log log n⌉` |
    /// | II | number of rounds | `⌈log n / log log n⌉` |
    /// | II | random walk probability | `1.0 / log n` |
    /// | II | number of random walk steps | `⌈log n / log log n + 2⌉` |
    /// | II | number of broadcast steps | `⌈0.5 · log log n⌉` |
    /// | III | push-pull | until the whole graph is informed |
    pub fn paper_defaults(n: usize) -> Self {
        let log = log2n(n).max(1.0);
        let loglog = loglog2n(n).max(1.0);
        Self {
            phase1_steps: (1.2 * loglog).ceil() as usize,
            phase2_rounds: (log / loglog).ceil() as usize,
            walk_probability: (1.0 / log).min(1.0),
            walk_steps: (log / loglog + 2.0).ceil() as usize,
            max_walk_moves: (2.0 * log).ceil() as u32,
            broadcast_steps: (0.5 * loglog).ceil() as usize,
            phase3_max_steps: 10_000,
        }
    }

    /// The constants of the pseudocode (Algorithm 1) used in the analysis of
    /// Theorem 1: `12 log n / log log n` distribution steps, `4 log n / log
    /// log n` rounds, walk probability `ℓ/log n`, `6ℓ log n` walk steps,
    /// `½ log log n` broadcast steps, `8 log n / log log n` closing steps.
    pub fn theoretical(n: usize, ell: f64) -> Self {
        let log = log2n(n).max(1.0);
        let loglog = loglog2n(n).max(1.0);
        Self {
            phase1_steps: (12.0 * log / loglog).ceil() as usize,
            phase2_rounds: (4.0 * log / loglog).ceil() as usize,
            walk_probability: (ell / log).min(1.0),
            walk_steps: (6.0 * ell * log).ceil() as usize,
            max_walk_moves: (4.0 * log).ceil() as u32,
            broadcast_steps: (0.5 * loglog).ceil() as usize,
            phase3_max_steps: 10_000,
        }
    }
}

/// Parameters of Algorithm 2 (memory-model gossiping).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryGossipConfig {
    /// Phase I: number of push steps (rounded to a multiple of 4 — the
    /// long-step width).
    pub phase1_push_steps: usize,
    /// Phase I: number of pull steps.
    pub phase1_pull_steps: usize,
    /// Phase III: number of push steps of the closing broadcast.
    pub phase3_push_steps: usize,
    /// Phase III: safety cap on the closing pull steps (run until the whole
    /// graph is informed, as in the paper's simulations).
    pub phase3_max_pull_steps: usize,
    /// Number of independently constructed distribution trees. The plain
    /// algorithm uses 1; the robustness experiments of Figures 2, 3 and 5 use
    /// 3 independent trees (Theorem 3 analyses 2).
    pub trees: usize,
}

impl MemoryGossipConfig {
    /// The constants of Table 1:
    ///
    /// | phase | limit | value |
    /// |---|---|---|
    /// | I | first loop, number of steps | `2.0 · log n` (rounded to a multiple of 4) |
    /// | I | second loop, number of steps | `⌊2.0 · log log n⌋` |
    /// | II | number of steps | corresponds to Phase I |
    /// | III | number of push steps | `⌊log n⌋` |
    pub fn paper_defaults(n: usize) -> Self {
        let log = log2n(n).max(1.0);
        let loglog = loglog2n(n).max(1.0);
        Self {
            phase1_push_steps: round_to_multiple_of_4(2.0 * log),
            phase1_pull_steps: (2.0 * loglog).floor() as usize,
            phase3_push_steps: round_to_multiple_of_4(log.floor()),
            phase3_max_pull_steps: 10_000,
            trees: 1,
        }
    }

    /// The constants of the pseudocode (Algorithm 2): `4 log_4 n + 4ρ log log n`
    /// push steps, `4ρ log log n` pull steps, with `ρ` a large constant.
    pub fn theoretical(n: usize, rho: f64) -> Self {
        let log = log2n(n).max(1.0);
        let loglog = loglog2n(n).max(1.0);
        let log4 = log / 2.0; // log_4 n = log_2 n / 2
        Self {
            phase1_push_steps: round_to_multiple_of_4(4.0 * log4 + 4.0 * rho * loglog),
            phase1_pull_steps: (4.0 * rho * loglog).ceil() as usize,
            phase3_push_steps: round_to_multiple_of_4(4.0 * log4 + 4.0 * rho * loglog),
            phase3_max_pull_steps: 10_000,
            trees: 1,
        }
    }

    /// Same configuration but with `trees` independently built distribution
    /// trees (used by the robustness experiments).
    pub fn with_trees(mut self, trees: usize) -> Self {
        self.trees = trees.max(1);
        self
    }
}

/// Parameters of Algorithm 3 (leader election in the memory model).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeaderElectionConfig {
    /// Probability with which a node declares itself a possible leader
    /// (`log² n / n` in the paper).
    pub candidate_probability: f64,
    /// Number of push steps (`log n + ρ log log n`).
    pub push_steps: usize,
    /// Number of pull steps (`ρ log log n`).
    pub pull_steps: usize,
}

impl LeaderElectionConfig {
    /// Simulation-scale defaults: candidate probability `log² n / n`,
    /// `log n + 2 log log n` push steps and `2 log log n` pull steps.
    ///
    /// The paper's proofs use `ρ > 64`, which is needed for the asymptotic
    /// high-probability bounds but is far more steps than necessary at
    /// simulation scale; `rho = 2` completes reliably in practice and keeps
    /// the `O(n log log n)` message bound visible.
    pub fn paper_defaults(n: usize) -> Self {
        Self::with_rho(n, 2.0)
    }

    /// Defaults with an explicit `ρ`.
    pub fn with_rho(n: usize, rho: f64) -> Self {
        let log = log2n(n).max(1.0);
        let loglog = loglog2n(n).max(1.0);
        Self {
            candidate_probability: (log * log / n as f64).min(1.0),
            push_steps: (log + rho * loglog).ceil() as usize,
            pull_steps: (rho * loglog).ceil() as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loglog_is_sane() {
        assert_eq!(loglog2n(0), 0.0);
        assert_eq!(loglog2n(2), 0.0);
        assert_eq!(loglog2n(16), 2.0);
        assert!((loglog2n(1 << 16) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rounding_to_long_steps() {
        assert_eq!(round_to_multiple_of_4(0.0), 0);
        assert_eq!(round_to_multiple_of_4(1.0), 4);
        assert_eq!(round_to_multiple_of_4(4.0), 4);
        assert_eq!(round_to_multiple_of_4(4.1), 8);
        assert_eq!(round_to_multiple_of_4(39.86), 40);
    }

    #[test]
    fn table1_values_for_one_million_nodes() {
        // n = 10^6: log n ≈ 19.93, log log n ≈ 4.32.
        let n = 1_000_000;
        let fg = FastGossipingConfig::paper_defaults(n);
        assert_eq!(fg.phase1_steps, 6); // ⌈1.2 · 4.32⌉
        assert_eq!(fg.phase2_rounds, 5); // ⌈19.93 / 4.32⌉
        assert!((fg.walk_probability - 1.0 / 19.9315686).abs() < 1e-6);
        assert_eq!(fg.walk_steps, 7); // ⌈19.93 / 4.32 + 2⌉
        assert_eq!(fg.broadcast_steps, 3); // ⌈0.5 · 4.32⌉

        let mg = MemoryGossipConfig::paper_defaults(n);
        assert_eq!(mg.phase1_push_steps, 40); // 2 · 19.93 = 39.86 → 40
        assert_eq!(mg.phase1_pull_steps, 8); // ⌊2 · 4.32⌋
        assert_eq!(mg.phase3_push_steps, 20); // ⌊19.93⌋ = 19 → rounded to 20
    }

    #[test]
    fn table1_values_for_a_thousand_nodes() {
        // n = 10^3: log n ≈ 9.97, log log n ≈ 3.32.
        let n = 1_000;
        let fg = FastGossipingConfig::paper_defaults(n);
        assert_eq!(fg.phase1_steps, 4);
        assert_eq!(fg.phase2_rounds, 4); // ⌈9.97 / 3.32⌉ = ⌈3.004⌉
        assert_eq!(fg.broadcast_steps, 2);
        let mg = MemoryGossipConfig::paper_defaults(n);
        assert_eq!(mg.phase1_push_steps, 20);
        assert_eq!(mg.phase1_pull_steps, 6);
    }

    #[test]
    fn theoretical_constants_dominate_paper_constants() {
        let n = 1 << 16;
        let paper = FastGossipingConfig::paper_defaults(n);
        let theory = FastGossipingConfig::theoretical(n, 1.0);
        assert!(theory.phase1_steps > paper.phase1_steps);
        assert!(theory.phase2_rounds > paper.phase2_rounds);
        assert!(theory.walk_steps > paper.walk_steps);

        let paper_m = MemoryGossipConfig::paper_defaults(n);
        let theory_m = MemoryGossipConfig::theoretical(n, 4.0);
        assert!(theory_m.phase1_push_steps > paper_m.phase1_push_steps);
    }

    #[test]
    fn leader_election_defaults_scale_with_n() {
        let small = LeaderElectionConfig::paper_defaults(1 << 10);
        let large = LeaderElectionConfig::paper_defaults(1 << 20);
        assert!(large.push_steps > small.push_steps);
        assert!(large.candidate_probability < small.candidate_probability);
        assert!(small.candidate_probability <= 1.0);
        // Expected number of candidates is log² n, independent of n.
        assert!((large.candidate_probability * (1u64 << 20) as f64 - 400.0).abs() < 1.0);
    }

    #[test]
    fn memory_config_tree_count() {
        let cfg = MemoryGossipConfig::paper_defaults(1024).with_trees(3);
        assert_eq!(cfg.trees, 3);
        assert_eq!(MemoryGossipConfig::paper_defaults(1024).trees, 1);
        assert_eq!(MemoryGossipConfig::paper_defaults(1024).with_trees(0).trees, 1);
    }

    #[test]
    fn tiny_networks_do_not_produce_degenerate_configs() {
        for n in [1usize, 2, 3, 8] {
            let fg = FastGossipingConfig::paper_defaults(n);
            assert!(fg.phase1_steps >= 1);
            assert!(fg.walk_probability > 0.0 && fg.walk_probability <= 1.0);
            let mg = MemoryGossipConfig::paper_defaults(n);
            assert!(mg.phase1_push_steps >= 4);
        }
    }
}
