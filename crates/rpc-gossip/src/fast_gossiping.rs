//! Algorithm 1: fast-gossiping in the traditional random phone call model.
//!
//! The algorithm trades running time for communication volume (Theorem 1:
//! `O(log² n / log log n)` time, `O(n log n / log log n)` transmissions on
//! random graphs with degree `Ω(log^{2+ε} n)`). It works in three phases:
//!
//! 1. **Distribution** — every node pushes its combined message for
//!    `Θ(log n / log log n)` steps, so each message reaches `log^k n` nodes.
//! 2. **Random walks** — `Θ(log n / log log n)` rounds. In each round every
//!    node starts a random walk with probability `ℓ/log n`; walks accumulate
//!    the messages of the nodes they visit, are queued at the hosts and
//!    forwarded one per step; finally the nodes holding a walk seed a short
//!    broadcast of `½ log log n` steps that multiplies the informed sets by
//!    `Θ(√log n)`.
//! 3. **Broadcast** — plain push-pull finishes the dissemination.
//!
//! The per-phase step counts come from [`FastGossipingConfig`]; the defaults
//! are the tuned constants of Table 1.

use rand::Rng;
use rpc_graphs::NodeId;

use rpc_engine::{Engine, Simulation, Transfer, Walk, WalkQueues};

use crate::config::FastGossipingConfig;
use crate::outcome::GossipOutcome;
use crate::push_pull::push_pull_round;
use crate::runner::{run_driver, GossipAlgorithm, ProtocolDriver, StepStatus};

/// Algorithm 1 (fast-gossiping).
#[derive(Clone, Copy, Debug)]
pub struct FastGossiping {
    config: FastGossipingConfig,
}

impl FastGossiping {
    /// Fast-gossiping with an explicit configuration.
    pub fn new(config: FastGossipingConfig) -> Self {
        Self { config }
    }

    /// Fast-gossiping with the Table 1 constants for a network of `n` nodes.
    pub fn paper(n: usize) -> Self {
        Self::new(FastGossipingConfig::paper_defaults(n))
    }

    /// The configuration in use.
    pub fn config(&self) -> &FastGossipingConfig {
        &self.config
    }

    /// Phase I: every node pushes its combined message in every step (test
    /// helper; the production path is [`FastGossipingDriver`]).
    #[cfg(test)]
    fn phase1_distribution<E: Engine>(&self, sim: &mut E) {
        let mut driver = FastGossipingDriver::new(*self, sim.num_nodes());
        for _ in 0..self.config.phase1_steps {
            driver.step(sim);
        }
    }

    /// Delivers walk tokens that arrived in the previous step: the host merges
    /// the walk's messages into its own state and enqueues the walk (now
    /// carrying the host's combined message), unless the walk has exceeded its
    /// move budget.
    fn process_walk_arrivals<E: Engine>(
        &self,
        sim: &mut E,
        queues: &mut WalkQueues,
        arrivals: Vec<(NodeId, Walk)>,
    ) {
        for (host, mut walk) in arrivals {
            if !sim.is_alive(host) || walk.moves > self.config.max_walk_moves {
                continue;
            }
            // q_v.add(m' ∪ m_v); m_v ← m_v ∪ m'.
            sim.absorb(host, &walk.messages);
            walk.messages.copy_from(sim.state(host));
            queues.add(host, walk);
        }
    }
}

/// Where the [`FastGossipingDriver`] is inside Algorithm 1's schedule. Each
/// variant corresponds to one kind of synchronous round; the nested loops of
/// the block formulation become explicit resumable states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FgState {
    /// Phase I, distribution step `step` of `phase1_steps`.
    Phase1 { step: usize },
    /// Phase II round `round`: the coin-flip step that starts random walks.
    CoinFlip { round: usize },
    /// Phase II round `round`, walk-forwarding step `step` of `walk_steps`.
    Forward { round: usize, step: usize },
    /// Phase II round `round`, broadcast step `step` of `broadcast_steps`.
    Broadcast { round: usize, step: usize },
    /// Phase III: closing push-pull steps.
    Phase3,
    /// Schedule exhausted.
    Finished,
}

/// The resumable [`ProtocolDriver`] for Algorithm 1 (fast-gossiping).
///
/// The three phases of the block formulation — and the nested
/// coin-flip/forward/broadcast loops inside Phase II — are encoded as an
/// explicit state machine, one state transition per synchronous round, so the
/// scenario engine can evaluate stop rules and record traces between *any*
/// two rounds of the protocol. Cross-round protocol state (the walk queues,
/// the active set of the short broadcasts, the Phase III step counter) lives
/// in the driver; stepping to exhaustion consumes randomness exactly like
/// [`FastGossiping::run_on_engine`], which is a thin loop over this driver.
#[derive(Clone, Debug)]
pub struct FastGossipingDriver {
    alg: FastGossiping,
    state: FgState,
    queues: WalkQueues,
    active: Vec<bool>,
    transfers: Vec<Transfer>,
    phase3_steps: usize,
}

impl FastGossipingDriver {
    /// A driver for `alg` on a network of `n` nodes, positioned before the
    /// first Phase I round.
    pub fn new(alg: FastGossiping, n: usize) -> Self {
        Self {
            alg,
            state: FgState::Phase1 { step: 0 },
            queues: WalkQueues::new(n),
            active: Vec::new(),
            transfers: Vec::with_capacity(n),
            phase3_steps: 0,
        }
    }

    /// Crosses every phase/segment boundary the current position has reached:
    /// marks phase snapshots, prepares segment state (broadcast active set,
    /// queue clearing) and skips zero-length segments. Draws no randomness.
    fn advance_boundaries<E: Engine>(&mut self, sim: &mut E) {
        let cfg = &self.alg.config;
        loop {
            match self.state {
                FgState::Phase1 { step } if step >= cfg.phase1_steps => {
                    sim.metrics_mut().mark_phase("phase1-distribution");
                    self.state = FgState::CoinFlip { round: 0 };
                }
                FgState::CoinFlip { round } if round >= cfg.phase2_rounds => {
                    sim.metrics_mut().mark_phase("phase2-random-walks");
                    self.state = FgState::Phase3;
                }
                FgState::Forward { round, step } if step >= cfg.walk_steps => {
                    // Nodes that currently host a walk become active and run
                    // a short broadcast.
                    self.active.clear();
                    self.active.resize(sim.num_nodes(), false);
                    for v in self.queues.nodes_with_walks() {
                        self.active[v as usize] = true;
                    }
                    self.state = FgState::Broadcast { round, step: 0 };
                }
                FgState::Broadcast { round, step } if step >= cfg.broadcast_steps => {
                    // "All nodes become inactive"; walks are discarded at the
                    // end of the round (their content already lives in the
                    // hosts' states).
                    self.queues.clear();
                    self.state = FgState::CoinFlip { round: round + 1 };
                }
                FgState::Phase3
                    if sim.gossip_complete() || self.phase3_steps >= cfg.phase3_max_steps =>
                {
                    sim.metrics_mut().mark_phase("phase3-broadcast");
                    self.state = FgState::Finished;
                }
                _ => break,
            }
        }
    }

    /// Coin flips: with probability ℓ/log n a node starts a random walk by
    /// pushing its combined message to a random neighbour.
    fn coin_flip_round<E: Engine>(&mut self, sim: &mut E) {
        let n = sim.num_nodes();
        let mut arrivals: Vec<(NodeId, Walk)> = Vec::new();
        for v in 0..n as NodeId {
            let start = sim.rng_mut().gen_bool(self.alg.config.walk_probability);
            if !start {
                continue;
            }
            if let Some(u) = sim.open_channel(v) {
                sim.metrics_mut().record_packet(v);
                sim.metrics_mut().record_exchange(v);
                arrivals.push((u, Walk::new(sim.state(v).clone())));
            }
        }
        sim.metrics_mut().finish_round();
        self.alg.process_walk_arrivals(sim, &mut self.queues, arrivals);
    }

    /// Walk forwarding: every node holding at least one walk forwards the
    /// oldest one to a random neighbour.
    fn forward_round<E: Engine>(&mut self, sim: &mut E) {
        let n = sim.num_nodes();
        let mut arrivals: Vec<(NodeId, Walk)> = Vec::new();
        for v in 0..n as NodeId {
            if self.queues.is_empty(v) || !sim.is_alive(v) {
                continue;
            }
            if let Some(u) = sim.open_channel(v) {
                let mut walk = self.queues.pop(v).expect("queue checked non-empty");
                walk.moves += 1;
                sim.metrics_mut().record_packet(v);
                sim.metrics_mut().record_exchange(v);
                arrivals.push((u, walk));
            }
        }
        sim.metrics_mut().finish_round();
        self.alg.process_walk_arrivals(sim, &mut self.queues, arrivals);
    }

    /// One step of the short broadcast seeded by the walk hosts; nodes that
    /// receive a message become active as well.
    fn broadcast_round<E: Engine>(&mut self, sim: &mut E) {
        let n = sim.num_nodes();
        self.transfers.clear();
        for v in 0..n as NodeId {
            if !self.active[v as usize] {
                continue;
            }
            if let Some(u) = sim.open_channel(v) {
                self.transfers.push(Transfer::new(v, u));
                sim.metrics_mut().record_exchange(v);
            }
        }
        sim.deliver(&self.transfers);
        for t in &self.transfers {
            self.active[t.to as usize] = true;
        }
        sim.metrics_mut().finish_round();
    }

    /// Phase I distribution: every node pushes its combined message.
    fn phase1_round<E: Engine>(&mut self, sim: &mut E) {
        let n = sim.num_nodes();
        self.transfers.clear();
        for v in 0..n as NodeId {
            if let Some(u) = sim.open_channel(v) {
                self.transfers.push(Transfer::new(v, u));
                sim.metrics_mut().record_exchange(v);
            }
        }
        sim.deliver(&self.transfers);
        sim.metrics_mut().finish_round();
    }
}

impl ProtocolDriver for FastGossipingDriver {
    fn name(&self) -> &'static str {
        "fast-gossiping"
    }

    fn finished<E: Engine>(&self, _sim: &E) -> bool {
        self.state == FgState::Finished
    }

    fn step<E: Engine>(&mut self, sim: &mut E) -> StepStatus {
        self.advance_boundaries(sim);
        match self.state {
            FgState::Finished => return StepStatus::Done,
            FgState::Phase1 { step } => {
                self.phase1_round(sim);
                self.state = FgState::Phase1 { step: step + 1 };
            }
            FgState::CoinFlip { round } => {
                self.coin_flip_round(sim);
                self.state = FgState::Forward { round, step: 0 };
            }
            FgState::Forward { round, step } => {
                self.forward_round(sim);
                self.state = FgState::Forward { round, step: step + 1 };
            }
            FgState::Broadcast { round, step } => {
                self.broadcast_round(sim);
                self.state = FgState::Broadcast { round, step: step + 1 };
            }
            FgState::Phase3 => {
                push_pull_round(sim, &mut self.transfers);
                self.phase3_steps += 1;
            }
        }
        // Cross any boundary this round just reached, so phase markers land
        // between rounds exactly where the block formulation put them.
        self.advance_boundaries(sim);
        StepStatus::Running
    }
}

impl FastGossiping {
    /// Runs all three phases on any [`Engine`] (see
    /// [`GossipAlgorithm::run_on`] for the packed entry point): a thin loop
    /// over [`FastGossipingDriver::step`], bit-identical to stepping the
    /// driver manually.
    pub fn run_on_engine<E: Engine>(&self, sim: &mut E) -> GossipOutcome {
        let mut driver = FastGossipingDriver::new(*self, sim.num_nodes());
        run_driver(&mut driver, sim);
        GossipOutcome::from_metrics(
            sim.metrics(),
            sim.gossip_complete(),
            sim.fully_informed_count(),
            0,
            0,
        )
    }
}

impl GossipAlgorithm for FastGossiping {
    fn name(&self) -> &'static str {
        "fast-gossiping"
    }

    fn run_on(&self, sim: &mut Simulation<'_>) -> GossipOutcome {
        self.run_on_engine(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rpc_engine::Accounting;
    use rpc_graphs::prelude::*;

    #[test]
    fn completes_on_paper_density_random_graph() {
        let n = 512;
        let g = ErdosRenyi::paper_density(n).generate(1);
        let outcome = FastGossiping::paper(n).run(&g, 2);
        assert!(outcome.completed());
        assert_eq!(outcome.fully_informed(), n);
    }

    #[test]
    fn completes_on_complete_graph() {
        let n = 256;
        let g = CompleteGraph::new(n).generate(0);
        let outcome = FastGossiping::paper(n).run(&g, 3);
        assert!(outcome.completed());
    }

    #[test]
    fn phase_markers_are_recorded_in_order() {
        let n = 128;
        let g = ErdosRenyi::paper_density(n).generate(2);
        let outcome = FastGossiping::paper(n).run(&g, 4);
        let labels: Vec<_> = outcome.phases().iter().map(|p| p.label.clone()).collect();
        assert_eq!(labels, vec!["phase1-distribution", "phase2-random-walks", "phase3-broadcast"]);
        assert!(outcome.packets_in_phase("phase1-distribution").unwrap() > 0);
    }

    #[test]
    fn phase1_informs_a_polylog_set_per_message() {
        // Lemma 1 (scaled down): after the distribution phase every message is
        // known by noticeably more than one node.
        let n = 1024;
        let g = ErdosRenyi::paper_density(n).generate(5);
        let alg = FastGossiping::paper(n);
        let mut sim = Simulation::new(&g, 6);
        alg.phase1_distribution(&mut sim);
        let mut min_informed = usize::MAX;
        for m in (0..n as u32).step_by(97) {
            min_informed = min_informed.min(sim.informed_count_of(m));
        }
        assert!(min_informed >= 3, "some message reached only {min_informed} nodes after phase I");
    }

    #[test]
    fn uses_fewer_messages_per_node_than_push_pull_at_moderate_size() {
        // The headline empirical claim of Figure 1: an increasing gap between
        // the message complexity of Algorithm 1 and simple push-pull.
        let n = 4096;
        let g = ErdosRenyi::paper_density(n).generate(7);
        let fast = FastGossiping::paper(n).run(&g, 8);
        let baseline = crate::push_pull::PushPullGossip::default().run(&g, 8);
        assert!(fast.completed() && baseline.completed());
        let fast_msgs = fast.messages_per_node(Accounting::PerPacket);
        let base_msgs = baseline.messages_per_node(Accounting::PerPacket);
        assert!(
            fast_msgs < base_msgs,
            "fast-gossiping ({fast_msgs:.2}) should beat push-pull ({base_msgs:.2})"
        );
    }

    #[test]
    fn walk_arrivals_merge_messages_into_hosts() {
        let n = 64;
        let g = CompleteGraph::new(n).generate(0);
        let alg = FastGossiping::paper(n);
        let mut sim = Simulation::new(&g, 9);
        let mut queues = WalkQueues::new(n);
        let walk = Walk::new(sim.state(3).clone());
        alg.process_walk_arrivals(&mut sim, &mut queues, vec![(10, walk)]);
        assert!(sim.knows(10, 3));
        assert_eq!(queues.len(10), 1);
        // The queued walk now carries the host's own message as well.
        let queued = queues.pop(10).unwrap();
        assert!(queued.messages.contains(10) && queued.messages.contains(3));
    }

    #[test]
    fn exhausted_walks_are_dropped() {
        let n = 16;
        let g = CompleteGraph::new(n).generate(0);
        let alg = FastGossiping::new(FastGossipingConfig {
            max_walk_moves: 2,
            ..FastGossipingConfig::paper_defaults(n)
        });
        let mut sim = Simulation::new(&g, 10);
        let mut queues = WalkQueues::new(n);
        let mut walk = Walk::new(sim.state(0).clone());
        walk.moves = 3;
        alg.process_walk_arrivals(&mut sim, &mut queues, vec![(5, walk)]);
        assert_eq!(queues.total_walks(), 0);
        assert!(!sim.knows(5, 0), "dropped walks are not merged");
    }

    #[test]
    fn number_of_walks_concentrates_around_n_over_log_n() {
        // Section 3.2: Θ(n / log n) random walks are started per round w.h.p.
        let n = 1 << 14;
        let cfg = FastGossipingConfig::paper_defaults(n);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut started = 0usize;
        for _ in 0..n {
            if rng.gen_bool(cfg.walk_probability) {
                started += 1;
            }
        }
        let expected = n as f64 * cfg.walk_probability;
        assert!((started as f64 - expected).abs() < 5.0 * expected.sqrt() + 5.0);
    }

    use rand::SeedableRng;
}
