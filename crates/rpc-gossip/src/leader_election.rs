//! Algorithm 3: randomized leader election in the memory model (Section 4.1).
//!
//! Every node becomes a *possible leader* with probability `log² n / n` and
//! starts broadcasting its identifier with `open-avoid` push steps; nodes
//! forward the smallest identifier they have seen. After
//! `log n + ρ log log n` push steps, `ρ log log n` pull steps let every node
//! learn the smallest candidate identifier. The unique node whose own
//! identifier equals the smallest seen identifier becomes the leader
//! (Lemma 18), and the procedure tolerates `n^{ε'}` random node failures
//! (Lemma 19).

use rand::Rng;
use rpc_graphs::{Graph, NodeId};

use rpc_engine::{sample_failures, ContactLists, Engine, Metrics};

use crate::config::LeaderElectionConfig;
use crate::runner::{ProtocolDriver, StepStatus};

/// Result of one leader-election run.
#[derive(Clone, Debug)]
pub struct ElectionOutcome {
    /// The elected leader, if exactly one node considers itself the leader.
    pub leader: Option<NodeId>,
    /// All nodes that consider themselves the leader (should have length 1).
    pub self_declared_leaders: Vec<NodeId>,
    /// Number of nodes that declared themselves candidates.
    pub candidates: usize,
    /// Number of alive nodes that know the winning identifier at the end
    /// ("aware of the leader", Lemma 18).
    pub aware_nodes: usize,
    /// Number of alive nodes.
    pub alive_nodes: usize,
    /// Number of synchronous steps executed.
    pub rounds: u64,
    /// Total identifier packets sent.
    pub total_packets: u64,
    /// Total channels opened.
    pub channels_opened: u64,
}

impl ElectionOutcome {
    /// Whether election succeeded: exactly one self-declared leader and every
    /// alive node is aware of it.
    pub fn succeeded(&self) -> bool {
        self.leader.is_some() && self.aware_nodes == self.alive_nodes
    }

    /// Average number of identifier packets sent per node.
    pub fn messages_per_node(&self) -> f64 {
        if self.alive_nodes == 0 {
            0.0
        } else {
            self.total_packets as f64 / self.alive_nodes as f64
        }
    }
}

/// Algorithm 3 (leader election).
#[derive(Clone, Copy, Debug)]
pub struct LeaderElection {
    config: LeaderElectionConfig,
}

impl LeaderElection {
    /// Leader election with an explicit configuration.
    pub fn new(config: LeaderElectionConfig) -> Self {
        Self { config }
    }

    /// Leader election with the default constants for `n` nodes.
    pub fn paper(n: usize) -> Self {
        Self::new(LeaderElectionConfig::paper_defaults(n))
    }

    /// Runs the election without failures.
    pub fn run(&self, graph: &Graph, seed: u64) -> ElectionOutcome {
        self.run_with_failures(graph, seed, 0)
    }

    /// Runs the election with `failures` uniformly random nodes failing before
    /// the algorithm starts (the non-malicious failure model of Lemma 19).
    pub fn run_with_failures(&self, graph: &Graph, seed: u64, failures: usize) -> ElectionOutcome {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let n = graph.num_nodes();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6c62_272e_07bb_0142);
        let mut metrics = Metrics::new(n);
        let mut alive = vec![true; n];
        for v in sample_failures(n, failures.min(n), &mut rng) {
            alive[v as usize] = false;
        }
        let alive_nodes = alive.iter().filter(|&&a| a).count();

        // smallest identifier seen so far (identifier of node v is v itself).
        let mut best: Vec<Option<NodeId>> = vec![None; n];
        let mut active = vec![false; n];
        let mut contacts = ContactLists::new(n);
        let mut candidates = 0usize;

        // Candidate selection + initial push.
        let mut arrivals: Vec<(NodeId, NodeId)> = Vec::new();
        for v in 0..n as NodeId {
            if !alive[v as usize] || !rng.gen_bool(self.config.candidate_probability) {
                continue;
            }
            candidates += 1;
            active[v as usize] = true;
            best[v as usize] = Some(v);
            let avoid = contacts.get(v).addresses();
            if let Some(u) = graph.random_neighbor_avoiding(v, &avoid, &mut rng) {
                metrics.record_channel_open(v);
                metrics.record_packet(v);
                metrics.record_exchange(v);
                contacts.get_mut(v).store(0, u, 0);
                arrivals.push((u, v));
            }
        }
        metrics.finish_round();
        Self::apply_arrivals(&arrivals, &alive, &mut best, &mut active);

        // Push steps: active nodes forward the smallest identifier seen.
        for step in 1..=self.config.push_steps as u64 {
            arrivals.clear();
            for v in 0..n as NodeId {
                if !alive[v as usize] || !active[v as usize] {
                    continue;
                }
                let Some(id) = best[v as usize] else { continue };
                let avoid = contacts.get(v).addresses();
                if let Some(u) = graph.random_neighbor_avoiding(v, &avoid, &mut rng) {
                    metrics.record_channel_open(v);
                    metrics.record_packet(v);
                    metrics.record_exchange(v);
                    contacts.get_mut(v).store((step % 4) as usize, u, step);
                    arrivals.push((u, id));
                }
            }
            metrics.finish_round();
            Self::apply_arrivals(&arrivals, &alive, &mut best, &mut active);
        }

        // Pull steps: every node opens an avoided channel and adopts the
        // neighbour's smallest identifier.
        for step in 1..=self.config.pull_steps as u64 {
            arrivals.clear();
            for v in 0..n as NodeId {
                if !alive[v as usize] {
                    continue;
                }
                let avoid = contacts.get(v).addresses();
                if let Some(u) = graph.random_neighbor_avoiding(v, &avoid, &mut rng) {
                    metrics.record_channel_open(v);
                    contacts.get_mut(v).store((step % 4) as usize, u, 1000 + step);
                    if alive[u as usize] {
                        if let Some(id) = best[u as usize] {
                            metrics.record_packet(u);
                            metrics.record_exchange(v);
                            arrivals.push((v, id));
                        }
                    }
                }
            }
            metrics.finish_round();
            Self::apply_arrivals(&arrivals, &alive, &mut best, &mut active);
        }

        let self_declared: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| alive[v as usize] && best[v as usize] == Some(v))
            .collect();
        let leader = if self_declared.len() == 1 { Some(self_declared[0]) } else { None };
        let aware_nodes = match leader {
            Some(l) => (0..n).filter(|&v| alive[v] && best[v] == Some(l)).count(),
            None => 0,
        };

        ElectionOutcome {
            leader,
            self_declared_leaders: self_declared,
            candidates,
            aware_nodes,
            alive_nodes,
            rounds: metrics.rounds(),
            total_packets: metrics.total_packets(),
            channels_opened: metrics.channels_opened(),
        }
    }

    fn apply_arrivals(
        arrivals: &[(NodeId, NodeId)],
        alive: &[bool],
        best: &mut [Option<NodeId>],
        active: &mut [bool],
    ) {
        for &(to, id) in arrivals {
            if !alive[to as usize] {
                continue;
            }
            active[to as usize] = true;
            best[to as usize] = Some(match best[to as usize] {
                Some(current) => current.min(id),
                None => id,
            });
        }
    }
}

/// The distilled result of a driver-run election, carried on the scenario
/// outcome so registry scenarios can assert the paper's success predicate
/// (Lemma 18: a unique leader every alive node is aware of) without
/// re-running the election.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElectionSummary {
    /// The elected leader, if exactly one node considers itself the leader.
    pub leader: Option<NodeId>,
    /// Number of nodes that consider themselves the leader (1 on success).
    pub self_declared: usize,
    /// Number of nodes that declared themselves candidates.
    pub candidates: usize,
    /// Number of participating nodes aware of the leader at the end.
    pub aware_nodes: usize,
    /// Number of participating nodes at the end.
    pub alive_nodes: usize,
}

impl ElectionSummary {
    /// Whether election succeeded: exactly one self-declared leader and every
    /// participating node is aware of it (the [`ElectionOutcome::succeeded`]
    /// predicate, evaluated against the engine's liveness masks).
    pub fn succeeded(&self) -> bool {
        self.leader.is_some() && self.aware_nodes == self.alive_nodes
    }
}

/// Where a [`LeaderElectionDriver`] is in Algorithm 3's schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ElectionStage {
    /// Candidate selection plus the candidates' initial push (one round).
    Candidacy,
    /// Push step `k` of `push_steps` (1-based).
    Push(u64),
    /// Pull step `k` of `pull_steps` (1-based).
    Pull(u64),
    /// Schedule exhausted; the summary is cached.
    Done,
}

/// The resumable [`ProtocolDriver`] for Algorithm 3: the same candidacy →
/// push → pull schedule as [`LeaderElection::run_with_failures`], but driven
/// through an [`Engine`] so the scenario executor's environment dimensions
/// (crash bursts, per-round traces, stop rules) apply uniformly. Liveness
/// comes from the engine's masks instead of a bespoke `alive` vector, and
/// every random draw (candidacy coin, `open-avoid` neighbour choice) comes
/// from the engine RNG, so runs are deterministic in the scenario seed.
#[derive(Clone, Debug)]
pub struct LeaderElectionDriver {
    config: LeaderElectionConfig,
    stage: ElectionStage,
    /// Smallest identifier seen so far by each node (identifier of `v` is `v`).
    best: Vec<Option<NodeId>>,
    active: Vec<bool>,
    contacts: ContactLists,
    candidates: usize,
    arrivals: Vec<(NodeId, NodeId)>,
    summary: Option<ElectionSummary>,
}

impl LeaderElectionDriver {
    /// A driver for an `n`-node election with an explicit configuration.
    pub fn new(config: LeaderElectionConfig, n: usize) -> Self {
        Self {
            config,
            stage: ElectionStage::Candidacy,
            best: vec![None; n],
            active: vec![false; n],
            contacts: ContactLists::new(n),
            candidates: 0,
            arrivals: Vec::new(),
            summary: None,
        }
    }

    /// A driver with the paper's default constants for `n` nodes.
    pub fn paper(n: usize) -> Self {
        Self::new(LeaderElectionConfig::paper_defaults(n), n)
    }

    /// The cached election result; `Some` once the schedule is exhausted.
    pub fn summary(&self) -> Option<&ElectionSummary> {
        self.summary.as_ref()
    }

    fn merge_arrivals<E: Engine>(&mut self, sim: &E) {
        for &(to, id) in &self.arrivals {
            if !sim.is_participating(to) {
                continue;
            }
            self.active[to as usize] = true;
            self.best[to as usize] = Some(match self.best[to as usize] {
                Some(current) => current.min(id),
                None => id,
            });
        }
    }

    fn advance<E: Engine>(&mut self, sim: &E) {
        let push_steps = self.config.push_steps as u64;
        let pull_steps = self.config.pull_steps as u64;
        self.stage = match self.stage {
            ElectionStage::Candidacy if push_steps > 0 => ElectionStage::Push(1),
            ElectionStage::Push(step) if step < push_steps => ElectionStage::Push(step + 1),
            ElectionStage::Candidacy | ElectionStage::Push(_) if pull_steps > 0 => {
                ElectionStage::Pull(1)
            }
            ElectionStage::Pull(step) if step < pull_steps => ElectionStage::Pull(step + 1),
            _ => ElectionStage::Done,
        };
        if self.stage == ElectionStage::Done && self.summary.is_none() {
            self.summary = Some(self.evaluate(sim));
        }
    }

    fn evaluate<E: Engine>(&self, sim: &E) -> ElectionSummary {
        let n = sim.num_nodes();
        let self_declared: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| sim.is_participating(v) && self.best[v as usize] == Some(v))
            .collect();
        let leader = if self_declared.len() == 1 { Some(self_declared[0]) } else { None };
        let aware_nodes = match leader {
            Some(l) => (0..n as NodeId)
                .filter(|&v| sim.is_participating(v) && self.best[v as usize] == Some(l))
                .count(),
            None => 0,
        };
        let alive_nodes = (0..n as NodeId).filter(|&v| sim.is_participating(v)).count();
        ElectionSummary {
            leader,
            self_declared: self_declared.len(),
            candidates: self.candidates,
            aware_nodes,
            alive_nodes,
        }
    }
}

impl ProtocolDriver for LeaderElectionDriver {
    fn name(&self) -> &'static str {
        "leader-election"
    }

    fn finished<E: Engine>(&self, _sim: &E) -> bool {
        self.stage == ElectionStage::Done
    }

    fn succeeded<E: Engine>(&self, _sim: &E) -> bool {
        self.summary.is_some_and(|s| s.succeeded())
    }

    fn election_summary(&self) -> Option<ElectionSummary> {
        self.summary
    }

    fn step<E: Engine>(&mut self, sim: &mut E) -> StepStatus {
        if self.stage == ElectionStage::Done {
            return StepStatus::Done;
        }
        // Land scheduled crash/churn bursts before the stage body so a
        // round-0 failure regime excludes its victims from candidacy, exactly
        // like `run_with_failures` fails nodes before the algorithm starts.
        sim.apply_due_events();
        let n = sim.num_nodes();
        self.arrivals.clear();
        match self.stage {
            ElectionStage::Candidacy => {
                for v in 0..n as NodeId {
                    if !sim.is_participating(v)
                        || !sim.rng_mut().gen_bool(self.config.candidate_probability)
                    {
                        continue;
                    }
                    self.candidates += 1;
                    self.active[v as usize] = true;
                    self.best[v as usize] = Some(v);
                    let avoid = self.contacts.get(v).addresses();
                    if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                        sim.metrics_mut().record_packet(v);
                        sim.metrics_mut().record_exchange(v);
                        self.contacts.get_mut(v).store(0, u, 0);
                        self.arrivals.push((u, v));
                    }
                }
            }
            ElectionStage::Push(step) => {
                for v in 0..n as NodeId {
                    if !sim.is_participating(v) || !self.active[v as usize] {
                        continue;
                    }
                    let Some(id) = self.best[v as usize] else { continue };
                    let avoid = self.contacts.get(v).addresses();
                    if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                        sim.metrics_mut().record_packet(v);
                        sim.metrics_mut().record_exchange(v);
                        self.contacts.get_mut(v).store((step % 4) as usize, u, step);
                        self.arrivals.push((u, id));
                    }
                }
            }
            ElectionStage::Pull(step) => {
                for v in 0..n as NodeId {
                    let avoid = self.contacts.get(v).addresses();
                    if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                        self.contacts.get_mut(v).store((step % 4) as usize, u, 1000 + step);
                        if sim.is_participating(u) {
                            if let Some(id) = self.best[u as usize] {
                                sim.metrics_mut().record_packet(u);
                                sim.metrics_mut().record_exchange(v);
                                self.arrivals.push((v, id));
                            }
                        }
                    }
                }
            }
            ElectionStage::Done => unreachable!("early-returned above"),
        }
        sim.metrics_mut().finish_round();
        self.merge_arrivals(sim);
        self.advance(sim);
        StepStatus::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_graphs::prelude::*;

    #[test]
    fn elects_exactly_one_leader_on_random_graphs() {
        let n = 1024;
        let g = ErdosRenyi::paper_density(n).generate(1);
        let outcome = LeaderElection::paper(n).run(&g, 2);
        assert!(outcome.succeeded(), "election failed: {outcome:?}");
        assert_eq!(outcome.self_declared_leaders.len(), 1);
        // The winner is the candidate with the smallest identifier, and every
        // node ends up aware of it.
        assert_eq!(outcome.aware_nodes, n);
        assert!(outcome.candidates >= 1);
    }

    #[test]
    fn leader_is_the_smallest_candidate_id() {
        let n = 512;
        let g = ErdosRenyi::paper_density(n).generate(3);
        let outcome = LeaderElection::paper(n).run(&g, 4);
        let leader = outcome.leader.expect("leader elected");
        // No self-declared leader can have a larger id than the winner, and
        // the winner considers itself leader, so it is the minimum.
        assert!(outcome.self_declared_leaders.iter().all(|&v| v == leader));
    }

    #[test]
    fn candidate_count_concentrates_around_log_squared() {
        let n = 1 << 14;
        let g = ErdosRenyi::paper_density(n).generate(5);
        let outcome = LeaderElection::paper(n).run(&g, 6);
        let expected = (n as f64).log2().powi(2);
        assert!(
            (outcome.candidates as f64) > expected / 3.0
                && (outcome.candidates as f64) < expected * 3.0,
            "candidate count {} far from log^2 n = {expected:.0}",
            outcome.candidates
        );
    }

    #[test]
    fn message_complexity_is_order_n_loglog_n() {
        // Lemma 18: O(n log log n) transmissions. All nodes stay active for
        // the (ρ + O(1)) log log n closing push steps plus ρ log log n pull
        // steps, so the per-node constant is ≈ ρ + 4; with ρ = 2 allow 8.
        let n = 1 << 13;
        let g = ErdosRenyi::paper_density(n).generate(7);
        let outcome = LeaderElection::paper(n).run(&g, 8);
        assert!(outcome.succeeded());
        let per_node = outcome.messages_per_node();
        let loglog = (n as f64).log2().log2();
        assert!(
            per_node < 8.0 * loglog,
            "messages per node {per_node:.2} exceed 8 · log log n = {:.1}",
            8.0 * loglog
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let n = 256;
        let g = ErdosRenyi::paper_density(n).generate(9);
        let a = LeaderElection::paper(n).run(&g, 10);
        let b = LeaderElection::paper(n).run(&g, 10);
        assert_eq!(a.leader, b.leader);
        assert_eq!(a.total_packets, b.total_packets);
    }

    #[test]
    fn driver_elects_a_unique_known_leader_on_a_random_graph() {
        use rpc_engine::Simulation;

        let n = 1024;
        let g = ErdosRenyi::paper_density(n).generate(1);
        let mut sim = Simulation::new(&g, 2);
        let mut driver = LeaderElectionDriver::paper(n);
        assert!(!driver.finished(&sim));
        assert_eq!(driver.election_summary(), None);
        let rounds = crate::runner::run_driver(&mut driver, &mut sim);
        let config = LeaderElectionConfig::paper_defaults(n);
        assert_eq!(rounds, 1 + config.push_steps as u64 + config.pull_steps as u64);
        assert_eq!(rounds, sim.metrics().rounds());
        assert!(driver.finished(&sim));
        let summary = driver.election_summary().expect("summary cached at Done");
        assert!(summary.succeeded(), "election failed: {summary:?}");
        assert_eq!(summary.self_declared, 1);
        assert_eq!(summary.aware_nodes, n);
        assert_eq!(summary.alive_nodes, n);
        assert!(summary.candidates >= 1);
        assert!(driver.succeeded(&sim));
        // Further steps are no-op `Done`s.
        let packets = sim.metrics().total_packets();
        assert_eq!(driver.step(&mut sim), StepStatus::Done);
        assert_eq!(sim.metrics().total_packets(), packets);
    }

    #[test]
    fn driver_tolerates_a_round_zero_crash_burst() {
        use rpc_engine::Simulation;

        // Lemma 19's failure regime expressed through the engine: a scheduled
        // crash burst at round 0 lands (via `apply_due_events`) before the
        // candidacy draw, so victims neither run nor count as alive.
        let n = 2048;
        let failures = 64; // ≈ n^{0.55}
        let g = ErdosRenyi::paper_density(n).generate(11);
        let mut sim = Simulation::new(&g, 12);
        sim.schedule_crash(0, (0..failures as NodeId).collect());
        let mut driver = LeaderElectionDriver::paper(n);
        crate::runner::run_driver(&mut driver, &mut sim);
        let summary = driver.election_summary().expect("summary cached at Done");
        assert_eq!(summary.alive_nodes, n - failures);
        assert_eq!(summary.self_declared, 1, "no unique leader: {summary:?}");
        assert!(summary.aware_nodes as f64 >= 0.99 * summary.alive_nodes as f64);
    }

    #[test]
    fn driver_is_deterministic_in_the_seed() {
        use rpc_engine::Simulation;

        let n = 256;
        let g = ErdosRenyi::paper_density(n).generate(9);
        let run = |seed| {
            let mut sim = Simulation::new(&g, seed);
            let mut driver = LeaderElectionDriver::paper(n);
            crate::runner::run_driver(&mut driver, &mut sim);
            (*driver.summary().unwrap(), sim.metrics().total_packets())
        };
        assert_eq!(run(10), run(10));
        // Different seeds elect (almost surely) different candidate sets.
        assert_ne!(run(10).1, run(99).1);
    }

    #[test]
    fn survives_random_node_failures() {
        // Lemma 19: with n^{ε'} random failures the remaining nodes still
        // elect a unique leader.
        let n = 2048;
        let g = ErdosRenyi::paper_density(n).generate(11);
        let failures = 64; // ≈ n^{0.55}
        let outcome = LeaderElection::paper(n).run_with_failures(&g, 12, failures);
        assert_eq!(outcome.alive_nodes, n - failures);
        assert_eq!(outcome.self_declared_leaders.len(), 1, "no unique leader: {outcome:?}");
        // Awareness may miss a handful of nodes whose neighbourhood was hit by
        // failures; require near-complete awareness.
        assert!(outcome.aware_nodes as f64 >= 0.99 * outcome.alive_nodes as f64);
    }
}
