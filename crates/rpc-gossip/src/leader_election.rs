//! Algorithm 3: randomized leader election in the memory model (Section 4.1).
//!
//! Every node becomes a *possible leader* with probability `log² n / n` and
//! starts broadcasting its identifier with `open-avoid` push steps; nodes
//! forward the smallest identifier they have seen. After
//! `log n + ρ log log n` push steps, `ρ log log n` pull steps let every node
//! learn the smallest candidate identifier. The unique node whose own
//! identifier equals the smallest seen identifier becomes the leader
//! (Lemma 18), and the procedure tolerates `n^{ε'}` random node failures
//! (Lemma 19).

use rand::Rng;
use rpc_graphs::{Graph, NodeId};

use rpc_engine::{sample_failures, ContactLists, Metrics};

use crate::config::LeaderElectionConfig;

/// Result of one leader-election run.
#[derive(Clone, Debug)]
pub struct ElectionOutcome {
    /// The elected leader, if exactly one node considers itself the leader.
    pub leader: Option<NodeId>,
    /// All nodes that consider themselves the leader (should have length 1).
    pub self_declared_leaders: Vec<NodeId>,
    /// Number of nodes that declared themselves candidates.
    pub candidates: usize,
    /// Number of alive nodes that know the winning identifier at the end
    /// ("aware of the leader", Lemma 18).
    pub aware_nodes: usize,
    /// Number of alive nodes.
    pub alive_nodes: usize,
    /// Number of synchronous steps executed.
    pub rounds: u64,
    /// Total identifier packets sent.
    pub total_packets: u64,
    /// Total channels opened.
    pub channels_opened: u64,
}

impl ElectionOutcome {
    /// Whether election succeeded: exactly one self-declared leader and every
    /// alive node is aware of it.
    pub fn succeeded(&self) -> bool {
        self.leader.is_some() && self.aware_nodes == self.alive_nodes
    }

    /// Average number of identifier packets sent per node.
    pub fn messages_per_node(&self) -> f64 {
        if self.alive_nodes == 0 {
            0.0
        } else {
            self.total_packets as f64 / self.alive_nodes as f64
        }
    }
}

/// Algorithm 3 (leader election).
#[derive(Clone, Copy, Debug)]
pub struct LeaderElection {
    config: LeaderElectionConfig,
}

impl LeaderElection {
    /// Leader election with an explicit configuration.
    pub fn new(config: LeaderElectionConfig) -> Self {
        Self { config }
    }

    /// Leader election with the default constants for `n` nodes.
    pub fn paper(n: usize) -> Self {
        Self::new(LeaderElectionConfig::paper_defaults(n))
    }

    /// Runs the election without failures.
    pub fn run(&self, graph: &Graph, seed: u64) -> ElectionOutcome {
        self.run_with_failures(graph, seed, 0)
    }

    /// Runs the election with `failures` uniformly random nodes failing before
    /// the algorithm starts (the non-malicious failure model of Lemma 19).
    pub fn run_with_failures(&self, graph: &Graph, seed: u64, failures: usize) -> ElectionOutcome {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let n = graph.num_nodes();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6c62_272e_07bb_0142);
        let mut metrics = Metrics::new(n);
        let mut alive = vec![true; n];
        for v in sample_failures(n, failures.min(n), &mut rng) {
            alive[v as usize] = false;
        }
        let alive_nodes = alive.iter().filter(|&&a| a).count();

        // smallest identifier seen so far (identifier of node v is v itself).
        let mut best: Vec<Option<NodeId>> = vec![None; n];
        let mut active = vec![false; n];
        let mut contacts = ContactLists::new(n);
        let mut candidates = 0usize;

        // Candidate selection + initial push.
        let mut arrivals: Vec<(NodeId, NodeId)> = Vec::new();
        for v in 0..n as NodeId {
            if !alive[v as usize] || !rng.gen_bool(self.config.candidate_probability) {
                continue;
            }
            candidates += 1;
            active[v as usize] = true;
            best[v as usize] = Some(v);
            let avoid = contacts.get(v).addresses();
            if let Some(u) = graph.random_neighbor_avoiding(v, &avoid, &mut rng) {
                metrics.record_channel_open(v);
                metrics.record_packet(v);
                metrics.record_exchange(v);
                contacts.get_mut(v).store(0, u, 0);
                arrivals.push((u, v));
            }
        }
        metrics.finish_round();
        Self::apply_arrivals(&arrivals, &alive, &mut best, &mut active);

        // Push steps: active nodes forward the smallest identifier seen.
        for step in 1..=self.config.push_steps as u64 {
            arrivals.clear();
            for v in 0..n as NodeId {
                if !alive[v as usize] || !active[v as usize] {
                    continue;
                }
                let Some(id) = best[v as usize] else { continue };
                let avoid = contacts.get(v).addresses();
                if let Some(u) = graph.random_neighbor_avoiding(v, &avoid, &mut rng) {
                    metrics.record_channel_open(v);
                    metrics.record_packet(v);
                    metrics.record_exchange(v);
                    contacts.get_mut(v).store((step % 4) as usize, u, step);
                    arrivals.push((u, id));
                }
            }
            metrics.finish_round();
            Self::apply_arrivals(&arrivals, &alive, &mut best, &mut active);
        }

        // Pull steps: every node opens an avoided channel and adopts the
        // neighbour's smallest identifier.
        for step in 1..=self.config.pull_steps as u64 {
            arrivals.clear();
            for v in 0..n as NodeId {
                if !alive[v as usize] {
                    continue;
                }
                let avoid = contacts.get(v).addresses();
                if let Some(u) = graph.random_neighbor_avoiding(v, &avoid, &mut rng) {
                    metrics.record_channel_open(v);
                    contacts.get_mut(v).store((step % 4) as usize, u, 1000 + step);
                    if alive[u as usize] {
                        if let Some(id) = best[u as usize] {
                            metrics.record_packet(u);
                            metrics.record_exchange(v);
                            arrivals.push((v, id));
                        }
                    }
                }
            }
            metrics.finish_round();
            Self::apply_arrivals(&arrivals, &alive, &mut best, &mut active);
        }

        let self_declared: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| alive[v as usize] && best[v as usize] == Some(v))
            .collect();
        let leader = if self_declared.len() == 1 { Some(self_declared[0]) } else { None };
        let aware_nodes = match leader {
            Some(l) => (0..n).filter(|&v| alive[v] && best[v] == Some(l)).count(),
            None => 0,
        };

        ElectionOutcome {
            leader,
            self_declared_leaders: self_declared,
            candidates,
            aware_nodes,
            alive_nodes,
            rounds: metrics.rounds(),
            total_packets: metrics.total_packets(),
            channels_opened: metrics.channels_opened(),
        }
    }

    fn apply_arrivals(
        arrivals: &[(NodeId, NodeId)],
        alive: &[bool],
        best: &mut [Option<NodeId>],
        active: &mut [bool],
    ) {
        for &(to, id) in arrivals {
            if !alive[to as usize] {
                continue;
            }
            active[to as usize] = true;
            best[to as usize] = Some(match best[to as usize] {
                Some(current) => current.min(id),
                None => id,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_graphs::prelude::*;

    #[test]
    fn elects_exactly_one_leader_on_random_graphs() {
        let n = 1024;
        let g = ErdosRenyi::paper_density(n).generate(1);
        let outcome = LeaderElection::paper(n).run(&g, 2);
        assert!(outcome.succeeded(), "election failed: {outcome:?}");
        assert_eq!(outcome.self_declared_leaders.len(), 1);
        // The winner is the candidate with the smallest identifier, and every
        // node ends up aware of it.
        assert_eq!(outcome.aware_nodes, n);
        assert!(outcome.candidates >= 1);
    }

    #[test]
    fn leader_is_the_smallest_candidate_id() {
        let n = 512;
        let g = ErdosRenyi::paper_density(n).generate(3);
        let outcome = LeaderElection::paper(n).run(&g, 4);
        let leader = outcome.leader.expect("leader elected");
        // No self-declared leader can have a larger id than the winner, and
        // the winner considers itself leader, so it is the minimum.
        assert!(outcome.self_declared_leaders.iter().all(|&v| v == leader));
    }

    #[test]
    fn candidate_count_concentrates_around_log_squared() {
        let n = 1 << 14;
        let g = ErdosRenyi::paper_density(n).generate(5);
        let outcome = LeaderElection::paper(n).run(&g, 6);
        let expected = (n as f64).log2().powi(2);
        assert!(
            (outcome.candidates as f64) > expected / 3.0
                && (outcome.candidates as f64) < expected * 3.0,
            "candidate count {} far from log^2 n = {expected:.0}",
            outcome.candidates
        );
    }

    #[test]
    fn message_complexity_is_order_n_loglog_n() {
        // Lemma 18: O(n log log n) transmissions. All nodes stay active for
        // the (ρ + O(1)) log log n closing push steps plus ρ log log n pull
        // steps, so the per-node constant is ≈ ρ + 4; with ρ = 2 allow 8.
        let n = 1 << 13;
        let g = ErdosRenyi::paper_density(n).generate(7);
        let outcome = LeaderElection::paper(n).run(&g, 8);
        assert!(outcome.succeeded());
        let per_node = outcome.messages_per_node();
        let loglog = (n as f64).log2().log2();
        assert!(
            per_node < 8.0 * loglog,
            "messages per node {per_node:.2} exceed 8 · log log n = {:.1}",
            8.0 * loglog
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let n = 256;
        let g = ErdosRenyi::paper_density(n).generate(9);
        let a = LeaderElection::paper(n).run(&g, 10);
        let b = LeaderElection::paper(n).run(&g, 10);
        assert_eq!(a.leader, b.leader);
        assert_eq!(a.total_packets, b.total_packets);
    }

    #[test]
    fn survives_random_node_failures() {
        // Lemma 19: with n^{ε'} random failures the remaining nodes still
        // elect a unique leader.
        let n = 2048;
        let g = ErdosRenyi::paper_density(n).generate(11);
        let failures = 64; // ≈ n^{0.55}
        let outcome = LeaderElection::paper(n).run_with_failures(&g, 12, failures);
        assert_eq!(outcome.alive_nodes, n - failures);
        assert_eq!(outcome.self_declared_leaders.len(), 1, "no unique leader: {outcome:?}");
        // Awareness may miss a handful of nodes whose neighbourhood was hit by
        // failures; require near-complete awareness.
        assert!(outcome.aware_nodes as f64 >= 0.99 * outcome.alive_nodes as f64);
    }
}
