//! # rpc-gossip
//!
//! The gossiping and broadcasting algorithms studied in *"On the Influence of
//! Graph Density on Randomized Gossiping"* (Elsässer & Kaaser, 2015),
//! implemented on top of the [`rpc_engine`] random phone call simulator and
//! the [`rpc_graphs`] graph models.
//!
//! | paper | module | type |
//! |---|---|---|
//! | Algorithm 4 (appendix) | [`push_pull`] | [`PushPullGossip`] — the simple push-pull baseline |
//! | Algorithm 1 | [`fast_gossiping`] | [`FastGossiping`] — distribution, random walks, broadcast |
//! | Algorithm 2 | [`memory_model`] | [`MemoryGossip`] — leader tree, gather, broadcast with `open-avoid` |
//! | Algorithm 3 | [`leader_election`] | [`LeaderElection`] |
//! | Karp et al. / Pittel baselines | [`broadcast`] | [`PushBroadcast`], [`PushPullBroadcast`] |
//! | Table 1 | [`config`] | per-phase constants |
//! | Theorems 1–3 reference values | [`theory`] | closed-form bounds |
//!
//! Every gossiping protocol is additionally exposed as a resumable
//! [`ProtocolDriver`] ([`PushPullDriver`], [`FastGossipingDriver`],
//! [`MemoryDriver`]) executing one synchronous round per step — the interface
//! the scenario engine uses to apply round budgets, coverage thresholds and
//! per-round tracing to any algorithm. The block entry points are thin loops
//! over the drivers, with identical RNG draw sequences.
//!
//! ```
//! use rpc_gossip::prelude::*;
//! use rpc_graphs::prelude::*;
//!
//! let n = 256;
//! let graph = ErdosRenyi::paper_density(n).generate(1);
//! let outcome = FastGossiping::paper(n).run(&graph, 7);
//! assert!(outcome.completed());
//! println!("messages per node: {:.2}", outcome.messages_per_node(Accounting::PerPacket));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod config;
pub mod fast_gossiping;
pub mod leader_election;
pub mod memory_model;
pub mod outcome;
pub mod push_pull;
pub mod runner;
pub mod theory;

pub use broadcast::{
    BroadcastDriver, BroadcastMode, BroadcastOutcome, PushBroadcast, PushPullBroadcast,
};
pub use config::{
    loglog2n, FastGossipingConfig, LeaderElectionConfig, MemoryGossipConfig, PushPullConfig,
};
pub use fast_gossiping::{FastGossiping, FastGossipingDriver};
pub use leader_election::{ElectionOutcome, ElectionSummary, LeaderElection, LeaderElectionDriver};
pub use memory_model::{MemoryDriver, MemoryGossip};
pub use outcome::GossipOutcome;
pub use push_pull::{PushPullDriver, PushPullGossip};
pub use runner::{run_driver, GossipAlgorithm, ProtocolDriver, StepStatus};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::broadcast::{
        BroadcastDriver, BroadcastMode, BroadcastOutcome, PushBroadcast, PushPullBroadcast,
    };
    pub use crate::config::{
        FastGossipingConfig, LeaderElectionConfig, MemoryGossipConfig, PushPullConfig,
    };
    pub use crate::fast_gossiping::{FastGossiping, FastGossipingDriver};
    pub use crate::leader_election::{
        ElectionOutcome, ElectionSummary, LeaderElection, LeaderElectionDriver,
    };
    pub use crate::memory_model::{MemoryDriver, MemoryGossip};
    pub use crate::outcome::GossipOutcome;
    pub use crate::push_pull::{PushPullDriver, PushPullGossip};
    pub use crate::runner::{run_driver, GossipAlgorithm, ProtocolDriver, StepStatus};
    pub use rpc_engine::Accounting;
}
