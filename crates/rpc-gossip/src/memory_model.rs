//! Algorithm 2: gossiping in the memory model (Section 4).
//!
//! Each node may remember up to four previously contacted neighbours and can
//! avoid them (`open-avoid`) or deliberately reuse them. The algorithm:
//!
//! * **Phase I** — starting from a leader, a communication tree is built in
//!   *long-steps* of four steps each: a node informed in long-step `j`
//!   contacts four (distinct, avoided) neighbours in long-step `j+1` and
//!   remembers whom it contacted and when. A short pull period lets the
//!   remaining uninformed nodes attach themselves to the tree.
//! * **Phase II** — the tree edges are replayed *backwards in time*, so every
//!   node's original message travels along its tree path to the leader, which
//!   ends up knowing all messages.
//! * **Phase III** — the leader broadcasts the combined messages using the
//!   Phase I procedure again.
//!
//! Theorem 2: `O(log n)` time and `O(n)` message transmissions (plus
//! `O(n log log n)` if a leader has to be elected first). Theorem 3 analyses
//! robustness against random node failures when the tree construction is run
//! multiple times independently; the experiments of Figures 2, 3 and 5 use
//! three independent trees and fail nodes between Phase I and Phase II.

use std::collections::HashMap;

use rpc_graphs::{Graph, NodeId};

use rpc_engine::{sample_failures, ContactLists, Engine, Simulation, Transfer};

use crate::config::MemoryGossipConfig;
use crate::outcome::GossipOutcome;
use crate::runner::GossipAlgorithm;

/// Algorithm 2 (memory-model gossiping).
#[derive(Clone, Copy, Debug)]
pub struct MemoryGossip {
    config: MemoryGossipConfig,
    leader: Option<NodeId>,
}

/// The record of one Phase I tree construction, used to replay the tree
/// backwards in Phase II.
#[derive(Clone, Debug)]
struct TreeRecord {
    /// Contact lists `l_v`: whom each node contacted, and in which step.
    contacts: ContactLists,
    /// For nodes informed during the pull period: the step and the parent
    /// they pulled the leader message from (stored in `l_v[0]` in the paper).
    pull_parent: Vec<Option<(u64, NodeId)>>,
    /// Total number of Phase I steps of this tree (push + pull).
    total_steps: u64,
    /// Which nodes were reached by the tree at all.
    covered: Vec<bool>,
}

impl MemoryGossip {
    /// Memory-model gossiping with an explicit configuration. The leader is a
    /// uniformly random node unless overridden with [`Self::with_leader`].
    pub fn new(config: MemoryGossipConfig) -> Self {
        Self { config, leader: None }
    }

    /// Memory-model gossiping with the Table 1 constants for `n` nodes.
    pub fn paper(n: usize) -> Self {
        Self::new(MemoryGossipConfig::paper_defaults(n))
    }

    /// Fixes the leader node (by default a uniformly random node acts as the
    /// leader, as assumed by the paper).
    pub fn with_leader(mut self, leader: NodeId) -> Self {
        self.leader = Some(leader);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemoryGossipConfig {
        &self.config
    }

    fn pick_leader<E: Engine>(&self, sim: &mut E) -> NodeId {
        use rand::Rng;
        let n = sim.num_nodes() as NodeId;
        self.leader.unwrap_or_else(|| sim.rng_mut().gen_range(0..n))
    }

    /// Phase I: builds one leader-rooted communication tree. Only the leader's
    /// message is (conceptually) transmitted, so node states are not touched;
    /// every packet is still accounted for.
    fn build_tree<E: Engine>(&self, sim: &mut E, leader: NodeId) -> TreeRecord {
        let n = sim.num_nodes();
        let mut tree = TreeRecord {
            contacts: ContactLists::new(n),
            pull_parent: vec![None; n],
            total_steps: 0,
            covered: vec![false; n],
        };
        let mut has_msg = vec![false; n];
        has_msg[leader as usize] = true;
        tree.covered[leader as usize] = true;

        // Push long-steps: the leader is active in long-step 0; afterwards the
        // nodes informed in long-step j are active in long-step j+1.
        let long_steps = self.config.phase1_push_steps / 4;
        let mut active: Vec<NodeId> = vec![leader];
        let mut step: u64 = 0;
        for _ in 0..long_steps {
            let mut newly_informed: Vec<NodeId> = Vec::new();
            for k in 0..4u64 {
                step += 1;
                for &v in &active {
                    let avoid = tree.contacts.get(v).addresses();
                    if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                        sim.metrics_mut().record_packet(v);
                        sim.metrics_mut().record_exchange(v);
                        tree.contacts.get_mut(v).store(k as usize, u, step);
                        if sim.is_alive(u) && !has_msg[u as usize] {
                            has_msg[u as usize] = true;
                            tree.covered[u as usize] = true;
                            newly_informed.push(u);
                        }
                    }
                }
                sim.metrics_mut().finish_round();
            }
            active = newly_informed;
            if active.is_empty() && has_msg.iter().all(|&h| h) {
                // Everyone already informed; remaining long-steps would be
                // no-ops, but keep the step counter consistent.
            }
        }

        // Pull steps: every node without the leader message opens an avoided
        // channel; if the contacted node is informed, the message is pulled.
        // The paper runs ⌊2 log log n⌋ such steps; we keep pulling (up to a
        // safety cap) until every alive node joined the tree, matching the
        // simulation note that the dissemination phases are run to completion.
        let mut pull_step = 0usize;
        loop {
            let all_covered = (0..n).all(|v| has_msg[v] || !sim.is_alive(v as NodeId));
            if pull_step >= self.config.phase1_pull_steps
                && (all_covered || pull_step >= self.config.phase3_max_pull_steps)
            {
                break;
            }
            step += 1;
            pull_step += 1;
            let mut newly: Vec<(NodeId, NodeId)> = Vec::new();
            for v in 0..n as NodeId {
                if has_msg[v as usize] || !sim.is_alive(v) {
                    continue;
                }
                let avoid = tree.contacts.get(v).addresses();
                if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                    tree.contacts.get_mut(v).store((step % 4) as usize, u, step);
                    if has_msg[u as usize] && sim.is_alive(u) {
                        // u answers the open channel with a pull transmission.
                        sim.metrics_mut().record_packet(u);
                        sim.metrics_mut().record_exchange(v);
                        newly.push((v, u));
                    }
                }
            }
            for (v, u) in newly {
                has_msg[v as usize] = true;
                tree.covered[v as usize] = true;
                tree.pull_parent[v as usize] = Some((step, u));
                tree.contacts.get_mut(v).store(0, u, step);
            }
            sim.metrics_mut().finish_round();
        }

        tree.total_steps = step;
        tree
    }

    /// Phase II: replays one tree backwards in time so that every covered
    /// node's original messages reach the leader.
    fn gather<E: Engine>(&self, sim: &mut E, tree: &TreeRecord) {
        let n = sim.num_nodes();
        // Group the work by step so each reversed step is O(#contacts of that step).
        let mut pulls_by_step: HashMap<u64, Vec<(NodeId, NodeId)>> = HashMap::new();
        for v in 0..n {
            if let Some((step, parent)) = tree.pull_parent[v] {
                pulls_by_step.entry(step).or_default().push((v as NodeId, parent));
            }
        }
        let mut contacts_by_step: HashMap<u64, Vec<(NodeId, NodeId)>> = HashMap::new();
        for s in 1..=tree.total_steps {
            let list = tree.contacts.nodes_with_step(s);
            if !list.is_empty() {
                contacts_by_step.insert(s, list);
            }
        }

        let mut transfers: Vec<Transfer> = Vec::new();
        for t in 1..=tree.total_steps {
            let rev = tree.total_steps + 1 - t;
            transfers.clear();
            // Nodes that pulled the leader message in step `rev` push all
            // original messages they have to the parent they pulled from.
            if let Some(pulls) = pulls_by_step.get(&rev) {
                for &(v, parent) in pulls {
                    if !sim.is_alive(v) {
                        continue;
                    }
                    sim.metrics_mut().record_channel_open(v);
                    sim.metrics_mut().record_exchange(v);
                    transfers.push(Transfer::new(v, parent));
                }
            }
            // Nodes that contacted a neighbour in step `rev` re-open that
            // channel; the neighbour answers with all original messages it has.
            if let Some(contacts) = contacts_by_step.get(&rev) {
                for &(v, u) in contacts {
                    if !sim.is_alive(v) {
                        continue;
                    }
                    sim.metrics_mut().record_channel_open(v);
                    if sim.is_alive(u) {
                        sim.metrics_mut().record_exchange(v);
                        transfers.push(Transfer::new(u, v));
                    }
                }
            }
            sim.deliver(&transfers);
            sim.metrics_mut().finish_round();
        }
    }

    /// Phase III: the leader broadcasts its (now complete) combined message
    /// with the Phase I procedure; this time the payload is delivered into the
    /// node states.
    fn broadcast_back<E: Engine>(&self, sim: &mut E, leader: NodeId) {
        let n = sim.num_nodes();
        let mut contacts = ContactLists::new(n);
        let mut has_msg = vec![false; n];
        has_msg[leader as usize] = true;

        let long_steps = self.config.phase3_push_steps / 4;
        let mut active: Vec<NodeId> = vec![leader];
        let mut transfers: Vec<Transfer> = Vec::new();
        for _ in 0..long_steps {
            let mut newly_informed: Vec<NodeId> = Vec::new();
            for k in 0..4usize {
                transfers.clear();
                for &v in &active {
                    let avoid = contacts.get(v).addresses();
                    if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                        contacts.get_mut(v).store(k, u, 0);
                        sim.metrics_mut().record_exchange(v);
                        transfers.push(Transfer::new(v, u));
                        if sim.is_alive(u) && !has_msg[u as usize] {
                            has_msg[u as usize] = true;
                            newly_informed.push(u);
                        }
                    }
                }
                sim.deliver(&transfers);
                sim.metrics_mut().finish_round();
            }
            active = newly_informed;
        }

        // Closing pull steps, run until every alive node received the
        // broadcast (capped).
        let mut steps = 0usize;
        while steps < self.config.phase3_max_pull_steps {
            let done = (0..n).all(|v| has_msg[v] || !sim.is_alive(v as NodeId));
            if done {
                break;
            }
            transfers.clear();
            let mut newly: Vec<NodeId> = Vec::new();
            for v in 0..n as NodeId {
                if has_msg[v as usize] || !sim.is_alive(v) {
                    continue;
                }
                let avoid = contacts.get(v).addresses();
                if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                    contacts.get_mut(v).store(steps % 4, u, 0);
                    if has_msg[u as usize] && sim.is_alive(u) {
                        sim.metrics_mut().record_exchange(v);
                        transfers.push(Transfer::new(u, v));
                        newly.push(v);
                    }
                }
            }
            sim.deliver(&transfers);
            for v in newly {
                has_msg[v as usize] = true;
            }
            sim.metrics_mut().finish_round();
            steps += 1;
        }
    }

    /// Runs the complete algorithm with `failures` uniformly random node
    /// failures injected between Phase I (tree construction) and Phase II
    /// (gathering), exactly as in the robustness experiments of Figures 2, 3
    /// and 5. The leader itself never fails (a failed leader loses everything
    /// trivially and is excluded by the experiments). Phase III is skipped —
    /// the measured quantity is which original messages reached the leader.
    ///
    /// The returned outcome's [`GossipOutcome::lost_messages`] is the number
    /// of *healthy* non-leader nodes whose original message is missing at the
    /// leader, and [`GossipOutcome::additional_loss_ratio`] is the y-value of
    /// Figures 2 and 3.
    pub fn run_with_failures(&self, graph: &Graph, seed: u64, failures: usize) -> GossipOutcome {
        let mut sim = Simulation::new(graph, seed);
        let leader = self.pick_leader(&mut sim);
        let trees: Vec<TreeRecord> =
            (0..self.config.trees).map(|_| self.build_tree(&mut sim, leader)).collect();
        sim.metrics_mut().mark_phase("phase1-trees");

        // Fail `failures` random non-leader nodes.
        let n = sim.num_nodes();
        let failed: Vec<NodeId> = if failures > 0 {
            let mut candidates = sample_failures(n, (failures + 1).min(n), sim.rng_mut());
            candidates.retain(|&v| v != leader);
            candidates.truncate(failures);
            candidates
        } else {
            Vec::new()
        };
        sim.fail_nodes(&failed);

        for tree in &trees {
            self.gather(&mut sim, tree);
        }
        sim.metrics_mut().mark_phase("phase2-gather");

        // Count healthy original messages missing at the leader.
        let leader_state = sim.state(leader);
        let mut lost = 0usize;
        for v in 0..n as NodeId {
            if v == leader || !sim.is_alive(v) {
                continue;
            }
            if !leader_state.contains(v) {
                lost += 1;
            }
        }
        GossipOutcome::from_metrics(
            sim.metrics(),
            lost == 0,
            sim.fully_informed_count(),
            lost,
            failed.len(),
        )
    }
}

impl MemoryGossip {
    /// Runs all three phases on any [`Engine`] (see
    /// [`GossipAlgorithm::run_on`] for the packed entry point).
    pub fn run_on_engine<E: Engine>(&self, sim: &mut E) -> GossipOutcome {
        let leader = self.pick_leader(sim);
        let trees: Vec<TreeRecord> =
            (0..self.config.trees).map(|_| self.build_tree(sim, leader)).collect();
        sim.metrics_mut().mark_phase("phase1-trees");
        for tree in &trees {
            self.gather(sim, tree);
        }
        sim.metrics_mut().mark_phase("phase2-gather");
        self.broadcast_back(sim, leader);
        sim.metrics_mut().mark_phase("phase3-broadcast");
        GossipOutcome::from_metrics(
            sim.metrics(),
            sim.gossip_complete(),
            sim.fully_informed_count(),
            0,
            0,
        )
    }
}

impl GossipAlgorithm for MemoryGossip {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn run_on(&self, sim: &mut Simulation<'_>) -> GossipOutcome {
        self.run_on_engine(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_engine::Accounting;
    use rpc_graphs::prelude::*;

    #[test]
    fn completes_on_paper_density_random_graph() {
        let n = 512;
        let g = ErdosRenyi::paper_density(n).generate(1);
        let outcome = MemoryGossip::paper(n).run(&g, 2);
        assert!(outcome.completed(), "leader-based gossiping did not complete");
        assert_eq!(outcome.fully_informed(), n);
    }

    #[test]
    fn completes_on_complete_graph() {
        let n = 256;
        let g = CompleteGraph::new(n).generate(0);
        let outcome = MemoryGossip::paper(n).run(&g, 3);
        assert!(outcome.completed());
    }

    #[test]
    fn message_count_per_node_is_a_small_constant() {
        // Theorem 2 / Figure 1: O(n) transmissions overall, i.e. O(1) per node;
        // the paper's measured value stays below 5, ours below a slightly
        // looser constant that is still far below log n.
        let n = 2048;
        let g = ErdosRenyi::paper_density(n).generate(4);
        let outcome = MemoryGossip::paper(n).run(&g, 5);
        assert!(outcome.completed());
        let per_node = outcome.messages_per_node(Accounting::PerPacket);
        assert!(
            per_node < 12.0,
            "memory model should use O(1) messages per node, got {per_node:.2}"
        );
        assert!(per_node < 0.6 * (n as f64).log2());
    }

    #[test]
    fn gather_collects_every_message_at_the_leader() {
        let n = 512;
        let g = ErdosRenyi::paper_density(n).generate(6);
        let alg = MemoryGossip::paper(n).with_leader(0);
        let mut sim = Simulation::new(&g, 7);
        let tree = alg.build_tree(&mut sim, 0);
        assert!(tree.covered.iter().all(|&c| c), "tree must reach every node");
        alg.gather(&mut sim, &tree);
        assert!(sim.is_fully_informed(0), "leader is missing messages after the gather phase");
    }

    #[test]
    fn fixed_leader_is_respected() {
        let n = 128;
        let g = ErdosRenyi::paper_density(n).generate(8);
        let outcome = MemoryGossip::paper(n).with_leader(17).run(&g, 9);
        assert!(outcome.completed());
    }

    #[test]
    fn without_failures_nothing_is_lost() {
        let n = 256;
        let g = ErdosRenyi::paper_density(n).generate(10);
        let outcome = MemoryGossip::paper(n).with_trees_helper(3).run_with_failures(&g, 11, 0);
        assert_eq!(outcome.lost_messages(), 0);
        assert_eq!(outcome.failed_nodes(), 0);
        assert!(outcome.completed());
        assert_eq!(outcome.additional_loss_ratio(), None);
    }

    #[test]
    fn failures_lose_only_a_bounded_number_of_additional_messages() {
        // Figure 2: the ratio of additionally lost healthy messages to failed
        // nodes stays small (the paper observes values up to ~2.5).
        let n = 1024;
        let g = ErdosRenyi::paper_density(n).generate(12);
        let failures = 50;
        let outcome =
            MemoryGossip::paper(n).with_trees_helper(3).run_with_failures(&g, 13, failures);
        assert_eq!(outcome.failed_nodes(), failures);
        let ratio = outcome.additional_loss_ratio().unwrap();
        assert!(ratio < 4.0, "loss ratio {ratio:.2} implausibly high");
    }

    #[test]
    fn more_trees_lose_fewer_messages() {
        let n = 1024;
        let g = ErdosRenyi::paper_density(n).generate(14);
        let failures = 120;
        let mut one_tree_losses = 0usize;
        let mut three_tree_losses = 0usize;
        for seed in 0..3u64 {
            one_tree_losses += MemoryGossip::paper(n)
                .with_trees_helper(1)
                .run_with_failures(&g, 20 + seed, failures)
                .lost_messages();
            three_tree_losses += MemoryGossip::paper(n)
                .with_trees_helper(3)
                .run_with_failures(&g, 20 + seed, failures)
                .lost_messages();
        }
        assert!(
            three_tree_losses <= one_tree_losses,
            "3 trees ({three_tree_losses}) should not lose more than 1 tree ({one_tree_losses})"
        );
    }

    impl MemoryGossip {
        /// Test helper: same algorithm with a different tree count.
        fn with_trees_helper(mut self, trees: usize) -> Self {
            self.config = self.config.with_trees(trees);
            self
        }
    }
}
