//! Algorithm 2: gossiping in the memory model (Section 4).
//!
//! Each node may remember up to four previously contacted neighbours and can
//! avoid them (`open-avoid`) or deliberately reuse them. The algorithm:
//!
//! * **Phase I** — starting from a leader, a communication tree is built in
//!   *long-steps* of four steps each: a node informed in long-step `j`
//!   contacts four (distinct, avoided) neighbours in long-step `j+1` and
//!   remembers whom it contacted and when. A short pull period lets the
//!   remaining uninformed nodes attach themselves to the tree.
//! * **Phase II** — the tree edges are replayed *backwards in time*, so every
//!   node's original message travels along its tree path to the leader, which
//!   ends up knowing all messages.
//! * **Phase III** — the leader broadcasts the combined messages using the
//!   Phase I procedure again.
//!
//! Theorem 2: `O(log n)` time and `O(n)` message transmissions (plus
//! `O(n log log n)` if a leader has to be elected first). Theorem 3 analyses
//! robustness against random node failures when the tree construction is run
//! multiple times independently; the experiments of Figures 2, 3 and 5 use
//! three independent trees and fail nodes between Phase I and Phase II.
//!
//! The per-round bodies live in three small private sub-machines —
//! `TreeBuilder` (Phase I), `GatherReplay` (Phase II), `BroadcastBack`
//! (Phase III) — shared verbatim by the block entry points (`build_tree` et
//! al., used by the robustness harness) and the resumable [`MemoryDriver`],
//! so the stepped and block formulations cannot diverge.

use std::collections::HashMap;

use rpc_graphs::{Graph, NodeId};

use rpc_engine::{sample_failures, ContactLists, Engine, Simulation, Transfer};

use crate::config::MemoryGossipConfig;
use crate::outcome::GossipOutcome;
use crate::runner::{run_driver, GossipAlgorithm, ProtocolDriver, StepStatus};

/// Algorithm 2 (memory-model gossiping).
#[derive(Clone, Copy, Debug)]
pub struct MemoryGossip {
    config: MemoryGossipConfig,
    leader: Option<NodeId>,
}

/// The record of one Phase I tree construction, used to replay the tree
/// backwards in Phase II.
#[derive(Clone, Debug)]
struct TreeRecord {
    /// Contact lists `l_v`: whom each node contacted, and in which step.
    contacts: ContactLists,
    /// For nodes informed during the pull period: the step and the parent
    /// they pulled the leader message from (stored in `l_v[0]` in the paper).
    pull_parent: Vec<Option<(u64, NodeId)>>,
    /// Total number of Phase I steps of this tree (push + pull).
    total_steps: u64,
    /// Which nodes were reached by the tree at all.
    covered: Vec<bool>,
}

/// In-progress Phase I tree construction: one [`TreeBuilder::push_round`] or
/// [`TreeBuilder::pull_round`] call per synchronous step.
#[derive(Clone, Debug)]
struct TreeBuilder {
    record: TreeRecord,
    /// Which nodes hold the leader message.
    has_msg: Vec<bool>,
    /// Nodes informed in the previous long-step (active in the current one).
    active: Vec<NodeId>,
    /// Nodes newly informed in the current long-step.
    newly: Vec<NodeId>,
    /// Pull steps executed so far.
    pull_step: usize,
}

impl TreeBuilder {
    fn new(n: usize, leader: NodeId) -> Self {
        let mut record = TreeRecord {
            contacts: ContactLists::new(n),
            pull_parent: vec![None; n],
            total_steps: 0,
            covered: vec![false; n],
        };
        record.covered[leader as usize] = true;
        let mut has_msg = vec![false; n];
        has_msg[leader as usize] = true;
        Self { record, has_msg, active: vec![leader], newly: Vec::new(), pull_step: 0 }
    }

    /// One push step: every node informed in the previous long-step contacts
    /// its `k`-th avoided neighbour of the current long-step.
    fn push_round<E: Engine>(&mut self, sim: &mut E, k: usize) {
        self.record.total_steps += 1;
        let step = self.record.total_steps;
        for &v in &self.active {
            let avoid = self.record.contacts.get(v).addresses();
            if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                sim.metrics_mut().record_packet(v);
                sim.metrics_mut().record_exchange(v);
                self.record.contacts.get_mut(v).store(k, u, step);
                if sim.is_alive(u) && !self.has_msg[u as usize] {
                    self.has_msg[u as usize] = true;
                    self.record.covered[u as usize] = true;
                    self.newly.push(u);
                }
            }
        }
        sim.metrics_mut().finish_round();
    }

    /// Ends a long-step: the nodes informed during it become the active set.
    fn end_long_step(&mut self) {
        self.active = std::mem::take(&mut self.newly);
    }

    /// Whether the pull period may end. The paper runs `⌊2 log log n⌋` pull
    /// steps; we keep pulling (up to a safety cap) until every alive node
    /// joined the tree, matching the simulation note that the dissemination
    /// phases are run to completion.
    fn pull_done<E: Engine>(&self, sim: &E, config: &MemoryGossipConfig) -> bool {
        let n = sim.num_nodes();
        let all_covered = (0..n).all(|v| self.has_msg[v] || !sim.is_alive(v as NodeId));
        self.pull_step >= config.phase1_pull_steps
            && (all_covered || self.pull_step >= config.phase3_max_pull_steps)
    }

    /// One pull step: every node without the leader message opens an avoided
    /// channel; if the contacted node is informed, the message is pulled.
    fn pull_round<E: Engine>(&mut self, sim: &mut E) {
        let n = sim.num_nodes();
        self.record.total_steps += 1;
        self.pull_step += 1;
        let step = self.record.total_steps;
        let mut newly: Vec<(NodeId, NodeId)> = Vec::new();
        for v in 0..n as NodeId {
            if self.has_msg[v as usize] || !sim.is_alive(v) {
                continue;
            }
            let avoid = self.record.contacts.get(v).addresses();
            if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                self.record.contacts.get_mut(v).store((step % 4) as usize, u, step);
                if self.has_msg[u as usize] && sim.is_alive(u) {
                    // u answers the open channel with a pull transmission.
                    sim.metrics_mut().record_packet(u);
                    sim.metrics_mut().record_exchange(v);
                    newly.push((v, u));
                }
            }
        }
        for (v, u) in newly {
            self.has_msg[v as usize] = true;
            self.record.covered[v as usize] = true;
            self.record.pull_parent[v as usize] = Some((step, u));
            self.record.contacts.get_mut(v).store(0, u, step);
        }
        sim.metrics_mut().finish_round();
    }
}

/// Phase II replay bookkeeping for one tree: the tree's contact events
/// grouped by step, so each reversed step is O(#contacts of that step).
#[derive(Clone, Debug)]
struct GatherReplay {
    pulls_by_step: HashMap<u64, Vec<(NodeId, NodeId)>>,
    contacts_by_step: HashMap<u64, Vec<(NodeId, NodeId)>>,
    total_steps: u64,
}

impl GatherReplay {
    fn new(tree: &TreeRecord) -> Self {
        let mut pulls_by_step: HashMap<u64, Vec<(NodeId, NodeId)>> = HashMap::new();
        for (v, pull) in tree.pull_parent.iter().enumerate() {
            if let Some((step, parent)) = *pull {
                pulls_by_step.entry(step).or_default().push((v as NodeId, parent));
            }
        }
        let mut contacts_by_step: HashMap<u64, Vec<(NodeId, NodeId)>> = HashMap::new();
        for s in 1..=tree.total_steps {
            let list = tree.contacts.nodes_with_step(s);
            if !list.is_empty() {
                contacts_by_step.insert(s, list);
            }
        }
        Self { pulls_by_step, contacts_by_step, total_steps: tree.total_steps }
    }

    /// Replays reversed step `t` (forward index, `1..=total_steps`; the tree
    /// step replayed is `total_steps + 1 - t`).
    fn round<E: Engine>(&self, sim: &mut E, t: u64, transfers: &mut Vec<Transfer>) {
        let rev = self.total_steps + 1 - t;
        transfers.clear();
        // Nodes that pulled the leader message in step `rev` push all
        // original messages they have to the parent they pulled from.
        if let Some(pulls) = self.pulls_by_step.get(&rev) {
            for &(v, parent) in pulls {
                if !sim.is_alive(v) {
                    continue;
                }
                sim.metrics_mut().record_channel_open(v);
                sim.metrics_mut().record_exchange(v);
                transfers.push(Transfer::new(v, parent));
            }
        }
        // Nodes that contacted a neighbour in step `rev` re-open that
        // channel; the neighbour answers with all original messages it has.
        if let Some(contacts) = self.contacts_by_step.get(&rev) {
            for &(v, u) in contacts {
                if !sim.is_alive(v) {
                    continue;
                }
                sim.metrics_mut().record_channel_open(v);
                if sim.is_alive(u) {
                    sim.metrics_mut().record_exchange(v);
                    transfers.push(Transfer::new(u, v));
                }
            }
        }
        sim.deliver(transfers);
        sim.metrics_mut().finish_round();
    }
}

/// In-progress Phase III broadcast: the leader re-runs the Phase I procedure,
/// this time delivering the payload into the node states.
#[derive(Clone, Debug)]
struct BroadcastBack {
    contacts: ContactLists,
    has_msg: Vec<bool>,
    active: Vec<NodeId>,
    newly: Vec<NodeId>,
    /// Closing pull steps executed so far.
    pull_steps: usize,
}

impl BroadcastBack {
    fn new(n: usize, leader: NodeId) -> Self {
        let mut has_msg = vec![false; n];
        has_msg[leader as usize] = true;
        Self {
            contacts: ContactLists::new(n),
            has_msg,
            active: vec![leader],
            newly: Vec::new(),
            pull_steps: 0,
        }
    }

    /// One broadcast push step (`k`-th of its long-step), payload delivered.
    fn push_round<E: Engine>(&mut self, sim: &mut E, k: usize, transfers: &mut Vec<Transfer>) {
        transfers.clear();
        for &v in &self.active {
            let avoid = self.contacts.get(v).addresses();
            if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                self.contacts.get_mut(v).store(k, u, 0);
                sim.metrics_mut().record_exchange(v);
                transfers.push(Transfer::new(v, u));
                if sim.is_alive(u) && !self.has_msg[u as usize] {
                    self.has_msg[u as usize] = true;
                    self.newly.push(u);
                }
            }
        }
        sim.deliver(transfers);
        sim.metrics_mut().finish_round();
    }

    /// Ends a long-step: the nodes informed during it become the active set.
    fn end_long_step(&mut self) {
        self.active = std::mem::take(&mut self.newly);
    }

    /// Whether every alive node has received the broadcast.
    fn pull_done<E: Engine>(&self, sim: &E) -> bool {
        let n = sim.num_nodes();
        (0..n).all(|v| self.has_msg[v] || !sim.is_alive(v as NodeId))
    }

    /// One closing pull step.
    fn pull_round<E: Engine>(&mut self, sim: &mut E, transfers: &mut Vec<Transfer>) {
        let n = sim.num_nodes();
        transfers.clear();
        let mut newly: Vec<NodeId> = Vec::new();
        for v in 0..n as NodeId {
            if self.has_msg[v as usize] || !sim.is_alive(v) {
                continue;
            }
            let avoid = self.contacts.get(v).addresses();
            if let Some(u) = sim.open_channel_avoiding(v, &avoid) {
                self.contacts.get_mut(v).store(self.pull_steps % 4, u, 0);
                if self.has_msg[u as usize] && sim.is_alive(u) {
                    sim.metrics_mut().record_exchange(v);
                    transfers.push(Transfer::new(u, v));
                    newly.push(v);
                }
            }
        }
        sim.deliver(transfers);
        for v in newly {
            self.has_msg[v as usize] = true;
        }
        sim.metrics_mut().finish_round();
        self.pull_steps += 1;
    }
}

impl MemoryGossip {
    /// Memory-model gossiping with an explicit configuration. The leader is a
    /// uniformly random node unless overridden with [`Self::with_leader`].
    pub fn new(config: MemoryGossipConfig) -> Self {
        Self { config, leader: None }
    }

    /// Memory-model gossiping with the Table 1 constants for `n` nodes.
    pub fn paper(n: usize) -> Self {
        Self::new(MemoryGossipConfig::paper_defaults(n))
    }

    /// Fixes the leader node (by default a uniformly random node acts as the
    /// leader, as assumed by the paper).
    pub fn with_leader(mut self, leader: NodeId) -> Self {
        self.leader = Some(leader);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemoryGossipConfig {
        &self.config
    }

    fn pick_leader<E: Engine>(&self, sim: &mut E) -> NodeId {
        use rand::Rng;
        let n = sim.num_nodes() as NodeId;
        self.leader.unwrap_or_else(|| sim.rng_mut().gen_range(0..n))
    }

    /// Phase I: builds one leader-rooted communication tree. Only the leader's
    /// message is (conceptually) transmitted, so node states are not touched;
    /// every packet is still accounted for. A block loop over the same
    /// [`TreeBuilder`] rounds the [`MemoryDriver`] steps through.
    fn build_tree<E: Engine>(&self, sim: &mut E, leader: NodeId) -> TreeRecord {
        let mut builder = TreeBuilder::new(sim.num_nodes(), leader);
        // Push long-steps: the leader is active in long-step 0; afterwards
        // the nodes informed in long-step j are active in long-step j+1.
        for _ in 0..self.config.phase1_push_steps / 4 {
            for k in 0..4 {
                builder.push_round(sim, k);
            }
            builder.end_long_step();
        }
        while !builder.pull_done(sim, &self.config) {
            builder.pull_round(sim);
        }
        builder.record
    }

    /// Phase II: replays one tree backwards in time so that every covered
    /// node's original messages reach the leader.
    fn gather<E: Engine>(&self, sim: &mut E, tree: &TreeRecord) {
        let replay = GatherReplay::new(tree);
        let mut transfers: Vec<Transfer> = Vec::new();
        for t in 1..=replay.total_steps {
            replay.round(sim, t, &mut transfers);
        }
    }

    /// Runs the complete algorithm with `failures` uniformly random node
    /// failures injected between Phase I (tree construction) and Phase II
    /// (gathering), exactly as in the robustness experiments of Figures 2, 3
    /// and 5. The leader itself never fails (a failed leader loses everything
    /// trivially and is excluded by the experiments). Phase III is skipped —
    /// the measured quantity is which original messages reached the leader.
    ///
    /// The returned outcome's [`GossipOutcome::lost_messages`] is the number
    /// of *healthy* non-leader nodes whose original message is missing at the
    /// leader, and [`GossipOutcome::additional_loss_ratio`] is the y-value of
    /// Figures 2 and 3.
    pub fn run_with_failures(&self, graph: &Graph, seed: u64, failures: usize) -> GossipOutcome {
        let mut sim = Simulation::new(graph, seed);
        self.run_with_failures_on(&mut sim, failures)
    }

    /// [`Self::run_with_failures`] on a caller-prepared simulation — the
    /// entry point arena-backed sweep drivers use (the simulation may be
    /// checked out of a [`rpc_engine::SimulationArena`]). Consumes randomness
    /// identically to `run_with_failures`, so both produce bit-identical
    /// outcomes for the same `(graph, seed)`.
    pub fn run_with_failures_on(&self, sim: &mut Simulation<'_>, failures: usize) -> GossipOutcome {
        let leader = self.pick_leader(sim);
        let trees: Vec<TreeRecord> =
            (0..self.config.trees).map(|_| self.build_tree(sim, leader)).collect();
        sim.metrics_mut().mark_phase("phase1-trees");

        // Fail `failures` random non-leader nodes.
        let n = sim.num_nodes();
        let failed: Vec<NodeId> = if failures > 0 {
            let mut candidates = sample_failures(n, (failures + 1).min(n), sim.rng_mut());
            candidates.retain(|&v| v != leader);
            candidates.truncate(failures);
            candidates
        } else {
            Vec::new()
        };
        sim.fail_nodes(&failed);

        for tree in &trees {
            self.gather(sim, tree);
        }
        sim.metrics_mut().mark_phase("phase2-gather");

        // Count healthy original messages missing at the leader.
        let leader_state = sim.state(leader);
        let mut lost = 0usize;
        for v in 0..n as NodeId {
            if v == leader || !sim.is_alive(v) {
                continue;
            }
            if !leader_state.contains(v) {
                lost += 1;
            }
        }
        GossipOutcome::from_metrics(
            sim.metrics(),
            lost == 0,
            sim.fully_informed_count(),
            lost,
            failed.len(),
        )
    }
}

/// Where the [`MemoryDriver`] is inside Algorithm 2's schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MmState {
    /// Before the first round; the leader draw happens in the first `step`.
    Init,
    /// Phase I, tree `tree`: push step `k` of long-step `long_step`.
    TreePush { tree: usize, long_step: usize, k: usize },
    /// Phase I, tree `tree`: pull period.
    TreePull { tree: usize },
    /// Phase II, replaying tree `tree`, forward index `t` (1-based).
    Gather { tree: usize, t: u64 },
    /// Phase III: broadcast push step `k` of long-step `long_step`.
    BroadcastPush { long_step: usize, k: usize },
    /// Phase III: closing pull steps.
    BroadcastPull,
    /// Schedule exhausted.
    Finished,
}

/// The resumable [`ProtocolDriver`] for Algorithm 2 (memory-model gossiping).
///
/// Tree construction, the backwards replay and the closing broadcast become
/// explicit per-round states; the contact lists, partial tree records and
/// replay indices live in the driver, so the scenario engine can stop, trace
/// or budget the protocol between any two rounds. Stepping to exhaustion
/// consumes randomness exactly like [`MemoryGossip::run_on_engine`], which is
/// a thin loop over this driver. The leader draw (one RNG value when no
/// leader is fixed) happens inside the first `step` call, preserving the
/// block formulation's draw order.
#[derive(Clone, Debug)]
pub struct MemoryDriver {
    alg: MemoryGossip,
    state: MmState,
    leader: Option<NodeId>,
    builder: Option<TreeBuilder>,
    trees: Vec<TreeRecord>,
    replay: Option<GatherReplay>,
    broadcast: Option<BroadcastBack>,
    transfers: Vec<Transfer>,
}

impl MemoryDriver {
    /// A driver for `alg`, positioned before the first Phase I round.
    pub fn new(alg: MemoryGossip) -> Self {
        Self {
            alg,
            state: MmState::Init,
            leader: None,
            builder: None,
            trees: Vec::new(),
            replay: None,
            broadcast: None,
            transfers: Vec::new(),
        }
    }

    /// Crosses every phase boundary the current position has reached: ends
    /// long-steps, finalises trees, prepares the replay/broadcast machinery,
    /// marks phase snapshots and skips zero-length segments. Draws no
    /// randomness.
    fn advance_boundaries<E: Engine>(&mut self, sim: &mut E) {
        let config = self.alg.config;
        let push_long_steps = config.phase1_push_steps / 4;
        let broadcast_long_steps = config.phase3_push_steps / 4;
        loop {
            match self.state {
                MmState::TreePush { tree, long_step, k } if k >= 4 => {
                    self.builder.as_mut().expect("builder present during Phase I").end_long_step();
                    self.state = MmState::TreePush { tree, long_step: long_step + 1, k: 0 };
                }
                MmState::TreePush { tree, long_step, k: 0 } if long_step >= push_long_steps => {
                    self.state = MmState::TreePull { tree };
                }
                MmState::TreePull { tree }
                    if self
                        .builder
                        .as_ref()
                        .expect("builder present during Phase I")
                        .pull_done(sim, &config) =>
                {
                    let builder = self.builder.take().expect("builder present during Phase I");
                    self.trees.push(builder.record);
                    let next = tree + 1;
                    if next < config.trees {
                        let leader = self.leader.expect("leader picked in the first step");
                        self.builder = Some(TreeBuilder::new(sim.num_nodes(), leader));
                        self.state = MmState::TreePush { tree: next, long_step: 0, k: 0 };
                    } else {
                        sim.metrics_mut().mark_phase("phase1-trees");
                        self.replay = Some(GatherReplay::new(&self.trees[0]));
                        self.state = MmState::Gather { tree: 0, t: 1 };
                    }
                }
                MmState::Gather { tree, t }
                    if t > self
                        .replay
                        .as_ref()
                        .expect("replay present during Phase II")
                        .total_steps =>
                {
                    let next = tree + 1;
                    if next < self.trees.len() {
                        self.replay = Some(GatherReplay::new(&self.trees[next]));
                        self.state = MmState::Gather { tree: next, t: 1 };
                    } else {
                        sim.metrics_mut().mark_phase("phase2-gather");
                        let leader = self.leader.expect("leader picked in the first step");
                        self.broadcast = Some(BroadcastBack::new(sim.num_nodes(), leader));
                        self.state = MmState::BroadcastPush { long_step: 0, k: 0 };
                    }
                }
                MmState::BroadcastPush { long_step, k } if k >= 4 => {
                    self.broadcast
                        .as_mut()
                        .expect("broadcast present during Phase III")
                        .end_long_step();
                    self.state = MmState::BroadcastPush { long_step: long_step + 1, k: 0 };
                }
                MmState::BroadcastPush { long_step, k: 0 } if long_step >= broadcast_long_steps => {
                    self.state = MmState::BroadcastPull;
                }
                MmState::BroadcastPull
                    if {
                        let bc =
                            self.broadcast.as_ref().expect("broadcast present during Phase III");
                        bc.pull_steps >= config.phase3_max_pull_steps || bc.pull_done(sim)
                    } =>
                {
                    sim.metrics_mut().mark_phase("phase3-broadcast");
                    self.state = MmState::Finished;
                }
                _ => break,
            }
        }
    }
}

impl ProtocolDriver for MemoryDriver {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn finished<E: Engine>(&self, _sim: &E) -> bool {
        self.state == MmState::Finished
    }

    fn step<E: Engine>(&mut self, sim: &mut E) -> StepStatus {
        if self.state == MmState::Init {
            let leader = self.alg.pick_leader(sim);
            self.leader = Some(leader);
            if self.alg.config.trees == 0 {
                // Degenerate configuration: no trees, so Phases I and II are
                // empty and the broadcast starts immediately.
                sim.metrics_mut().mark_phase("phase1-trees");
                sim.metrics_mut().mark_phase("phase2-gather");
                self.broadcast = Some(BroadcastBack::new(sim.num_nodes(), leader));
                self.state = MmState::BroadcastPush { long_step: 0, k: 0 };
            } else {
                self.builder = Some(TreeBuilder::new(sim.num_nodes(), leader));
                self.state = MmState::TreePush { tree: 0, long_step: 0, k: 0 };
            }
        }
        self.advance_boundaries(sim);
        match self.state {
            MmState::Finished => return StepStatus::Done,
            MmState::Init => unreachable!("Init is resolved above"),
            MmState::TreePush { tree, long_step, k } => {
                self.builder.as_mut().expect("builder present during Phase I").push_round(sim, k);
                self.state = MmState::TreePush { tree, long_step, k: k + 1 };
            }
            MmState::TreePull { .. } => {
                self.builder.as_mut().expect("builder present during Phase I").pull_round(sim);
            }
            MmState::Gather { tree, t } => {
                self.replay.as_ref().expect("replay present during Phase II").round(
                    sim,
                    t,
                    &mut self.transfers,
                );
                self.state = MmState::Gather { tree, t: t + 1 };
            }
            MmState::BroadcastPush { long_step, k } => {
                self.broadcast.as_mut().expect("broadcast present during Phase III").push_round(
                    sim,
                    k,
                    &mut self.transfers,
                );
                self.state = MmState::BroadcastPush { long_step, k: k + 1 };
            }
            MmState::BroadcastPull => {
                self.broadcast
                    .as_mut()
                    .expect("broadcast present during Phase III")
                    .pull_round(sim, &mut self.transfers);
            }
        }
        // Cross any boundary this round just reached, so phase markers land
        // between rounds exactly where the block formulation put them.
        self.advance_boundaries(sim);
        StepStatus::Running
    }
}

impl MemoryGossip {
    /// Runs all three phases on any [`Engine`] (see
    /// [`GossipAlgorithm::run_on`] for the packed entry point): a thin loop
    /// over [`MemoryDriver::step`], bit-identical to stepping the driver
    /// manually.
    pub fn run_on_engine<E: Engine>(&self, sim: &mut E) -> GossipOutcome {
        let mut driver = MemoryDriver::new(*self);
        run_driver(&mut driver, sim);
        GossipOutcome::from_metrics(
            sim.metrics(),
            sim.gossip_complete(),
            sim.fully_informed_count(),
            0,
            0,
        )
    }
}

impl GossipAlgorithm for MemoryGossip {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn run_on(&self, sim: &mut Simulation<'_>) -> GossipOutcome {
        self.run_on_engine(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_engine::Accounting;
    use rpc_graphs::prelude::*;

    #[test]
    fn completes_on_paper_density_random_graph() {
        let n = 512;
        let g = ErdosRenyi::paper_density(n).generate(1);
        let outcome = MemoryGossip::paper(n).run(&g, 2);
        assert!(outcome.completed(), "leader-based gossiping did not complete");
        assert_eq!(outcome.fully_informed(), n);
    }

    #[test]
    fn completes_on_complete_graph() {
        let n = 256;
        let g = CompleteGraph::new(n).generate(0);
        let outcome = MemoryGossip::paper(n).run(&g, 3);
        assert!(outcome.completed());
    }

    #[test]
    fn message_count_per_node_is_a_small_constant() {
        // Theorem 2 / Figure 1: O(n) transmissions overall, i.e. O(1) per node;
        // the paper's measured value stays below 5, ours below a slightly
        // looser constant that is still far below log n.
        let n = 2048;
        let g = ErdosRenyi::paper_density(n).generate(4);
        let outcome = MemoryGossip::paper(n).run(&g, 5);
        assert!(outcome.completed());
        let per_node = outcome.messages_per_node(Accounting::PerPacket);
        assert!(
            per_node < 12.0,
            "memory model should use O(1) messages per node, got {per_node:.2}"
        );
        assert!(per_node < 0.6 * (n as f64).log2());
    }

    #[test]
    fn gather_collects_every_message_at_the_leader() {
        let n = 512;
        let g = ErdosRenyi::paper_density(n).generate(6);
        let alg = MemoryGossip::paper(n).with_leader(0);
        let mut sim = Simulation::new(&g, 7);
        let tree = alg.build_tree(&mut sim, 0);
        assert!(tree.covered.iter().all(|&c| c), "tree must reach every node");
        alg.gather(&mut sim, &tree);
        assert!(sim.is_fully_informed(0), "leader is missing messages after the gather phase");
    }

    #[test]
    fn fixed_leader_is_respected() {
        let n = 128;
        let g = ErdosRenyi::paper_density(n).generate(8);
        let outcome = MemoryGossip::paper(n).with_leader(17).run(&g, 9);
        assert!(outcome.completed());
    }

    #[test]
    fn driver_steps_match_the_block_run() {
        // The block entry point is a thin loop over the driver; stepping
        // manually — with interleaved read-only queries, as the scenario
        // engine does — must reproduce it exactly.
        let n = 256;
        let g = ErdosRenyi::paper_density(n).generate(15);
        let block = MemoryGossip::paper(n).run(&g, 16);

        let mut sim = Simulation::new(&g, 16);
        let mut driver = MemoryDriver::new(MemoryGossip::paper(n));
        let mut rounds = 0u64;
        while !driver.finished(&sim) {
            // Interleave the kind of read-only queries a stop rule performs.
            let _ = sim.fully_informed_count();
            match driver.step(&mut sim) {
                StepStatus::Done => break,
                StepStatus::Running => rounds += 1,
            }
        }
        assert_eq!(rounds, block.rounds());
        assert_eq!(sim.metrics().rounds(), block.rounds());
        assert_eq!(sim.metrics().total_packets(), block.total_packets());
        assert_eq!(sim.metrics().total_exchanges(), block.total_exchanges());
        assert!(sim.gossip_complete());
        let labels: Vec<_> = sim.metrics().phases().iter().map(|p| p.label.clone()).collect();
        assert_eq!(labels, vec!["phase1-trees", "phase2-gather", "phase3-broadcast"]);
    }

    #[test]
    fn without_failures_nothing_is_lost() {
        let n = 256;
        let g = ErdosRenyi::paper_density(n).generate(10);
        let outcome = MemoryGossip::paper(n).with_trees_helper(3).run_with_failures(&g, 11, 0);
        assert_eq!(outcome.lost_messages(), 0);
        assert_eq!(outcome.failed_nodes(), 0);
        assert!(outcome.completed());
        assert_eq!(outcome.additional_loss_ratio(), None);
    }

    #[test]
    fn failures_lose_only_a_bounded_number_of_additional_messages() {
        // Figure 2: the ratio of additionally lost healthy messages to failed
        // nodes stays small (the paper observes values up to ~2.5).
        let n = 1024;
        let g = ErdosRenyi::paper_density(n).generate(12);
        let failures = 50;
        let outcome =
            MemoryGossip::paper(n).with_trees_helper(3).run_with_failures(&g, 13, failures);
        assert_eq!(outcome.failed_nodes(), failures);
        let ratio = outcome.additional_loss_ratio().unwrap();
        assert!(ratio < 4.0, "loss ratio {ratio:.2} implausibly high");
    }

    #[test]
    fn more_trees_lose_fewer_messages() {
        let n = 1024;
        let g = ErdosRenyi::paper_density(n).generate(14);
        let failures = 120;
        let mut one_tree_losses = 0usize;
        let mut three_tree_losses = 0usize;
        for seed in 0..3u64 {
            one_tree_losses += MemoryGossip::paper(n)
                .with_trees_helper(1)
                .run_with_failures(&g, 20 + seed, failures)
                .lost_messages();
            three_tree_losses += MemoryGossip::paper(n)
                .with_trees_helper(3)
                .run_with_failures(&g, 20 + seed, failures)
                .lost_messages();
        }
        assert!(
            three_tree_losses <= one_tree_losses,
            "3 trees ({three_tree_losses}) should not lose more than 1 tree ({one_tree_losses})"
        );
    }

    impl MemoryGossip {
        /// Test helper: same algorithm with a different tree count.
        fn with_trees_helper(mut self, trees: usize) -> Self {
            self.config = self.config.with_trees(trees);
            self
        }
    }
}
