//! Result types returned by every gossiping algorithm.

use rpc_engine::{Accounting, Metrics, PhaseSnapshot};

/// The outcome of one gossiping run: completion status plus the full
/// communication accounting.
#[derive(Clone, Debug)]
pub struct GossipOutcome {
    n: usize,
    completed: bool,
    rounds: u64,
    total_packets: u64,
    total_exchanges: u64,
    channels_opened: u64,
    max_packets_per_node: u64,
    fully_informed: usize,
    lost_messages: usize,
    failed_nodes: usize,
    phases: Vec<PhaseSnapshot>,
}

impl GossipOutcome {
    /// Builds an outcome from the engine metrics plus algorithm-level facts.
    pub fn from_metrics(
        metrics: &Metrics,
        completed: bool,
        fully_informed: usize,
        lost_messages: usize,
        failed_nodes: usize,
    ) -> Self {
        Self {
            n: metrics.num_nodes(),
            completed,
            rounds: metrics.rounds(),
            total_packets: metrics.total_packets(),
            total_exchanges: metrics.total_exchanges(),
            channels_opened: metrics.channels_opened(),
            max_packets_per_node: metrics.max_packets_per_node(),
            fully_informed,
            lost_messages,
            failed_nodes,
            phases: metrics.phases().to_vec(),
        }
    }

    /// Number of nodes in the network.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Whether every alive node learned every original message (or, for
    /// failure runs, whether the algorithm's success criterion was met).
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// Number of synchronous steps executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total packets sent (per-packet accounting).
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Total channel exchanges (per-channel-exchange accounting).
    pub fn total_exchanges(&self) -> u64 {
        self.total_exchanges
    }

    /// Total channels opened.
    pub fn channels_opened(&self) -> u64 {
        self.channels_opened
    }

    /// Largest number of packets sent by any single node.
    pub fn max_packets_per_node(&self) -> u64 {
        self.max_packets_per_node
    }

    /// Number of nodes that know all original messages at the end.
    pub fn fully_informed(&self) -> usize {
        self.fully_informed
    }

    /// Number of healthy nodes whose original message was lost (only
    /// meaningful for failure runs; 0 otherwise).
    pub fn lost_messages(&self) -> usize {
        self.lost_messages
    }

    /// Number of failed nodes in this run.
    pub fn failed_nodes(&self) -> usize {
        self.failed_nodes
    }

    /// Total transmissions under the chosen accounting convention.
    pub fn total_transmissions(&self, accounting: Accounting) -> u64 {
        match accounting {
            Accounting::PerPacket => self.total_packets,
            Accounting::PerChannelExchange => self.total_exchanges,
        }
    }

    /// Average messages sent per node — the y-axis of Figure 1.
    pub fn messages_per_node(&self, accounting: Accounting) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_transmissions(accounting) as f64 / self.n as f64
        }
    }

    /// Phase-by-phase snapshots of the cumulative counters.
    pub fn phases(&self) -> &[PhaseSnapshot] {
        &self.phases
    }

    /// Packets sent during the phase with the given label (difference between
    /// this phase's snapshot and the previous one). `None` if no such phase.
    pub fn packets_in_phase(&self, label: &str) -> Option<u64> {
        let idx = self.phases.iter().position(|p| p.label == label)?;
        let prev = if idx == 0 { 0 } else { self.phases[idx - 1].packets };
        Some(self.phases[idx].packets - prev)
    }

    /// The ratio `lost_messages / failed_nodes` plotted on the y-axis of
    /// Figures 2 and 3. `None` when no node failed.
    pub fn additional_loss_ratio(&self) -> Option<f64> {
        if self.failed_nodes == 0 {
            None
        } else {
            Some(self.lost_messages as f64 / self.failed_nodes as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics::new(4);
        for _ in 0..3 {
            m.finish_round();
        }
        m.record_channel_open(0);
        m.record_packet(0);
        m.record_packet(0);
        m.record_packet(1);
        m.record_exchange(0);
        m.mark_phase("phase1");
        m.record_packet(2);
        m.mark_phase("phase2");
        m
    }

    #[test]
    fn outcome_mirrors_metrics() {
        let o = GossipOutcome::from_metrics(&sample_metrics(), true, 4, 0, 0);
        assert_eq!(o.num_nodes(), 4);
        assert!(o.completed());
        assert_eq!(o.rounds(), 3);
        assert_eq!(o.total_packets(), 4);
        assert_eq!(o.total_exchanges(), 1);
        assert_eq!(o.channels_opened(), 1);
        assert_eq!(o.max_packets_per_node(), 2);
        assert_eq!(o.fully_informed(), 4);
        assert_eq!(o.messages_per_node(Accounting::PerPacket), 1.0);
        assert_eq!(o.messages_per_node(Accounting::PerChannelExchange), 0.25);
    }

    #[test]
    fn phase_deltas() {
        let o = GossipOutcome::from_metrics(&sample_metrics(), true, 4, 0, 0);
        assert_eq!(o.packets_in_phase("phase1"), Some(3));
        assert_eq!(o.packets_in_phase("phase2"), Some(1));
        assert_eq!(o.packets_in_phase("nope"), None);
    }

    #[test]
    fn loss_ratio_only_defined_with_failures() {
        let m = Metrics::new(10);
        let healthy = GossipOutcome::from_metrics(&m, true, 10, 0, 0);
        assert_eq!(healthy.additional_loss_ratio(), None);
        let failed = GossipOutcome::from_metrics(&m, false, 0, 6, 3);
        assert_eq!(failed.additional_loss_ratio(), Some(2.0));
        assert_eq!(failed.lost_messages(), 6);
        assert_eq!(failed.failed_nodes(), 3);
    }
}
