//! The simple Push-Pull gossiping baseline (Algorithm 4 / Appendix C.1).
//!
//! "In the simple push-pull-approach, every node opens in each step a
//! communication channel to a randomly selected neighbor, and each node
//! transmits all its messages through all open channels incident to it. This
//! is done until all nodes receive all initial messages." (Section 5.)
//!
//! Accounting: every push and every pull packet is recorded; additionally one
//! channel exchange is charged to each channel opener per step, which is the
//! convention under which the paper's observation "the number of messages per
//! node corresponds to the number of rounds" holds.

use rpc_engine::{Engine, Simulation, Transfer};

use crate::config::PushPullConfig;
use crate::outcome::GossipOutcome;
use crate::runner::{GossipAlgorithm, ProtocolDriver, StepStatus};

/// The simple Push-Pull gossiping protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushPullGossip {
    config: PushPullConfig,
}

/// One push-pull round: every node opens a channel to a random neighbour,
/// pushes over it and pulls back. Shared by [`PushPullDriver`] and the
/// fast-gossiping driver's Phase III so the two can never diverge in
/// semantics or accounting.
pub(crate) fn push_pull_round<E: Engine>(sim: &mut E, transfers: &mut Vec<Transfer>) {
    let n = sim.num_nodes();
    transfers.clear();
    for v in 0..n as u32 {
        if let Some(u) = sim.open_channel(v) {
            // pushpull(m_v): push over the outgoing channel, pull back.
            transfers.push(Transfer::new(v, u));
            transfers.push(Transfer::new(u, v));
            sim.metrics_mut().record_exchange(v);
        }
    }
    sim.deliver(transfers);
    sim.metrics_mut().finish_round();
}

/// The resumable [`ProtocolDriver`] for push-pull: each step is one
/// synchronous push-pull round.
///
/// Push-pull has no internal phase schedule — the protocol definition is
/// "round after round until every node knows every message" — so the driver
/// keeps producing rounds up to its round budget and reports the natural
/// termination through [`ProtocolDriver::finished`] (gossip completion).
/// Callers that want to gossip *past* completion (e.g. a scenario round
/// budget, which specifies a workload of exactly `r` rounds) may simply keep
/// stepping: rounds past completion still draw randomness and send packets,
/// exactly like the block loop under a round budget always has.
#[derive(Clone, Debug)]
pub struct PushPullDriver {
    max_rounds: usize,
    steps: usize,
    transfers: Vec<Transfer>,
}

impl PushPullDriver {
    /// A driver that produces at most `max_rounds` rounds.
    pub fn new(max_rounds: usize) -> Self {
        Self { max_rounds, steps: 0, transfers: Vec::new() }
    }

    /// Rounds executed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The transfer list of the most recently executed round, in schedule
    /// order: one `[(v, u), (u, v)]` pair per channel opener `v`, exactly as
    /// handed to [`Engine::deliver`]. The node runtime's actors replay this
    /// to turn a simulated round into real wire messages (every transfer is
    /// one packet, every pair one channel exchange), so the deployable path
    /// and the simulator can never diverge in contact schedule.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }
}

impl ProtocolDriver for PushPullDriver {
    fn name(&self) -> &'static str {
        "push-pull"
    }

    fn finished<E: Engine>(&self, sim: &E) -> bool {
        sim.gossip_complete()
    }

    fn step<E: Engine>(&mut self, sim: &mut E) -> StepStatus {
        if self.steps >= self.max_rounds {
            return StepStatus::Done;
        }
        push_pull_round(sim, &mut self.transfers);
        self.steps += 1;
        StepStatus::Running
    }
}

impl PushPullGossip {
    /// Push-Pull with an explicit configuration.
    pub fn new(config: PushPullConfig) -> Self {
        Self { config }
    }

    /// Runs the protocol on an existing simulation (used by other algorithms
    /// that end with a push-pull phase). Returns the number of executed steps.
    pub fn run_until_complete<E: Engine>(sim: &mut E, max_rounds: usize) -> usize {
        Self::run_until(sim, max_rounds, |sim: &E| sim.gossip_complete())
    }

    /// Runs push-pull rounds until `stop` returns `true` (checked before each
    /// round) or `max_rounds` rounds have executed, whichever comes first.
    /// Returns the number of executed steps. This is the step-granular entry
    /// point callers use for external stop predicates (the closure is `FnMut`
    /// so callers can record per-round traces while evaluating it); it is a
    /// thin loop over [`PushPullDriver::step`].
    ///
    /// Generic over [`Engine`], so the same round body drives the packed
    /// production simulation and the unpacked reference oracle.
    pub fn run_until<E: Engine>(
        sim: &mut E,
        max_rounds: usize,
        mut stop: impl FnMut(&E) -> bool,
    ) -> usize {
        let mut driver = PushPullDriver::new(max_rounds);
        while !stop(sim) {
            if driver.step(sim) == StepStatus::Done {
                break;
            }
        }
        driver.steps()
    }

    /// Runs the protocol to completion on any [`Engine`] (see
    /// [`GossipAlgorithm::run_on`] for the packed entry point).
    pub fn run_on_engine<E: Engine>(&self, sim: &mut E) -> GossipOutcome {
        Self::run_until_complete(sim, self.config.max_rounds);
        sim.metrics_mut().mark_phase("push-pull");
        GossipOutcome::from_metrics(
            sim.metrics(),
            sim.gossip_complete(),
            sim.fully_informed_count(),
            0,
            0,
        )
    }
}

impl GossipAlgorithm for PushPullGossip {
    fn name(&self) -> &'static str {
        "push-pull"
    }

    fn run_on(&self, sim: &mut Simulation<'_>) -> GossipOutcome {
        self.run_on_engine(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_engine::Accounting;
    use rpc_graphs::prelude::*;

    #[test]
    fn completes_on_complete_graph() {
        let g = CompleteGraph::new(128).generate(0);
        let outcome = PushPullGossip::default().run(&g, 1);
        assert!(outcome.completed());
        assert_eq!(outcome.fully_informed(), 128);
    }

    #[test]
    fn completes_on_paper_density_random_graph() {
        let g = ErdosRenyi::paper_density(512).generate(2);
        let outcome = PushPullGossip::default().run(&g, 3);
        assert!(outcome.completed());
    }

    #[test]
    fn messages_per_node_equal_rounds_under_exchange_accounting() {
        // Section 5: "since in this approach each node communicates in every
        // round, the number of messages per node corresponds to the number of
        // rounds".
        let g = CompleteGraph::new(256).generate(0);
        let outcome = PushPullGossip::default().run(&g, 5);
        let per_node = outcome.messages_per_node(Accounting::PerChannelExchange);
        assert!(
            (per_node - outcome.rounds() as f64).abs() < 1e-9,
            "exchanges per node {per_node} != rounds {}",
            outcome.rounds()
        );
        // Per-packet accounting counts both directions, so it is about twice
        // as large (not exactly: pulls from isolated/self channels differ).
        let packets = outcome.messages_per_node(Accounting::PerPacket);
        assert!(packets > 1.5 * per_node && packets <= 2.0 * per_node + 1e-9);
    }

    #[test]
    fn round_count_is_logarithmic() {
        // Push-pull gossiping completes in Θ(log n) rounds on these graphs;
        // allow a generous constant.
        let n = 1024;
        let g = ErdosRenyi::paper_density(n).generate(7);
        let outcome = PushPullGossip::default().run(&g, 11);
        let rounds = outcome.rounds() as f64;
        let log = (n as f64).log2();
        assert!(rounds >= log / 2.0, "suspiciously few rounds: {rounds}");
        assert!(rounds <= 3.0 * log, "suspiciously many rounds: {rounds}");
    }

    #[test]
    fn respects_round_cap() {
        let g = ring(64); // far too sparse to finish in 3 rounds
        let outcome = PushPullGossip::new(PushPullConfig { max_rounds: 3 }).run(&g, 1);
        assert!(!outcome.completed());
        assert_eq!(outcome.rounds(), 3);
    }

    #[test]
    fn single_node_graph_finishes_immediately() {
        let g = CompleteGraph::new(1).generate(0);
        let outcome = PushPullGossip::default().run(&g, 1);
        assert!(outcome.completed());
        assert_eq!(outcome.rounds(), 0);
        assert_eq!(outcome.total_packets(), 0);
    }
}
