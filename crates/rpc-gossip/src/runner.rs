//! The [`GossipAlgorithm`] trait: a uniform interface over all gossiping
//! protocols so that experiments and benchmarks can sweep over them.

use rpc_engine::Simulation;
use rpc_graphs::Graph;

use crate::outcome::GossipOutcome;

/// A gossiping protocol that can be run on any graph with a given seed.
pub trait GossipAlgorithm {
    /// Short name used in reports (e.g. `"push-pull"`, `"fast-gossiping"`,
    /// `"memory"`).
    fn name(&self) -> &'static str;

    /// Runs the protocol on a caller-prepared simulation and returns the
    /// communication accounting.
    ///
    /// This is the scenario-engine entry point: the caller may have configured
    /// the simulation with message loss, scheduled churn/crash events, or a
    /// worker-thread count, and the protocol experiences those conditions
    /// without any protocol-specific code — the engine primitives apply them.
    fn run_on(&self, sim: &mut Simulation<'_>) -> GossipOutcome;

    /// Runs the protocol to completion on `graph`, deterministically in
    /// `seed`, and returns the communication accounting. Equivalent to
    /// [`Self::run_on`] with a freshly created, loss- and churn-free
    /// simulation.
    fn run(&self, graph: &Graph, seed: u64) -> GossipOutcome {
        let mut sim = Simulation::new(graph, seed);
        self.run_on(&mut sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_gossiping::FastGossiping;
    use crate::memory_model::MemoryGossip;
    use crate::push_pull::PushPullGossip;
    use rpc_engine::Accounting;
    use rpc_graphs::prelude::*;

    /// All three algorithms compared in Figure 1, as trait objects.
    fn all_algorithms(n: usize) -> Vec<Box<dyn GossipAlgorithm>> {
        vec![
            Box::new(PushPullGossip::default()),
            Box::new(FastGossiping::paper(n)),
            Box::new(MemoryGossip::paper(n)),
        ]
    }

    #[test]
    fn every_algorithm_completes_on_a_small_random_graph() {
        let n = 256;
        let graph = ErdosRenyi::paper_density(n).generate(3);
        for algorithm in all_algorithms(n) {
            let outcome = algorithm.run(&graph, 7);
            assert!(outcome.completed(), "{} did not complete gossiping", algorithm.name());
            assert_eq!(outcome.fully_informed(), n, "{}", algorithm.name());
            assert!(outcome.total_packets() > 0);
            assert!(outcome.messages_per_node(Accounting::PerPacket) > 0.0, "{}", algorithm.name());
        }
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let n = 128;
        let graph = ErdosRenyi::paper_density(n).generate(1);
        for algorithm in all_algorithms(n) {
            let a = algorithm.run(&graph, 11);
            let b = algorithm.run(&graph, 11);
            assert_eq!(a.total_packets(), b.total_packets(), "{}", algorithm.name());
            assert_eq!(a.rounds(), b.rounds(), "{}", algorithm.name());
        }
    }
}
