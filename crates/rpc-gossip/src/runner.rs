//! The protocol-runner interface: [`GossipAlgorithm`] (run-to-completion over
//! any graph) and [`ProtocolDriver`] (resumable, one synchronous round per
//! [`ProtocolDriver::step`] call).
//!
//! Experiments and benchmarks sweep over [`GossipAlgorithm`] trait objects;
//! the scenario engine drives protocols through [`ProtocolDriver`] so that
//! round budgets, coverage thresholds and per-round traces work uniformly for
//! every algorithm — including the phase-based ones, whose phase loops become
//! explicit resumable states in their drivers.

use rpc_engine::{Engine, Simulation};
use rpc_graphs::Graph;

use crate::leader_election::ElectionSummary;
use crate::outcome::GossipOutcome;

/// What one [`ProtocolDriver::step`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepStatus {
    /// One synchronous round was executed; the driver can produce more.
    Running,
    /// The driver's schedule is exhausted — **no round was executed** by this
    /// call, and further `step` calls remain no-op `Done`s.
    Done,
}

/// A gossiping protocol as a resumable state machine: each [`Self::step`]
/// call executes exactly one synchronous round (one
/// [`rpc_engine::Metrics::finish_round`]).
///
/// # Resumability contract
///
/// A driver owns every piece of cross-round protocol state (phase counters,
/// walk queues, contact lists, partial trees, …); the only state living in
/// the engine is what the paper's model puts there (node message sets,
/// liveness masks, metrics, the RNG). Callers may therefore interleave
/// `step` calls with arbitrary *read-only* engine queries — stop-rule checks,
/// coverage counters, trace capture — without perturbing the run.
///
/// # RNG-draw preservation contract
///
/// Stepping a driver to exhaustion must consume randomness in **exactly** the
/// same order as the protocol's block entry point (`run_on_engine`), which is
/// itself implemented as a thin loop over `step`. Consequently, for a fixed
/// `(graph, seed)` the sequence of per-round engine states observed through
/// `step` is bit-identical to the block run — this is what lets the
/// packed-vs-unpacked trace-equivalence suite extend to stepped runs, and
/// what makes a stepped scenario outcome equal to the legacy block outcome.
/// Drivers must not draw from the engine RNG outside of `step` (lazy
/// initialisation, such as the memory model's leader draw, happens inside
/// the first `step` call).
pub trait ProtocolDriver {
    /// Short name used in reports, matching [`GossipAlgorithm::name`].
    fn name(&self) -> &'static str;

    /// Whether the protocol's *natural termination* has been reached: gossip
    /// completion for push-pull (whose round loop is otherwise unbounded),
    /// schedule exhaustion for the phase-based protocols. Read-only; never
    /// draws randomness.
    fn finished<E: Engine>(&self, sim: &E) -> bool;

    /// Executes one synchronous round, or returns [`StepStatus::Done`]
    /// (without executing anything) once the schedule is exhausted.
    fn step<E: Engine>(&mut self, sim: &mut E) -> StepStatus;

    /// Whether the protocol's *goal* has been achieved at its natural
    /// termination. For the gossiping protocols this is gossip completion
    /// (the default); protocols with a different success condition — leader
    /// election, whose goal is a unique, universally known leader — override
    /// it so the scenario executor reports `completed` against the right
    /// predicate. Read-only; never draws randomness.
    fn succeeded<E: Engine>(&self, sim: &E) -> bool {
        sim.gossip_complete()
    }

    /// The election result, for drivers that run a leader election
    /// ([`crate::LeaderElectionDriver`]); `None` for every gossiping
    /// protocol. Available once the driver's schedule is exhausted.
    fn election_summary(&self) -> Option<ElectionSummary> {
        None
    }
}

/// Steps `driver` until its schedule is exhausted and returns the number of
/// rounds executed. The phase-based `run_on_engine` implementations reduce to
/// this loop; push-pull's reduces to [`crate::PushPullGossip::run_until`],
/// the same loop with an external stop predicate (its natural termination —
/// gossip completion — is a property of the simulation, not of the driver's
/// schedule).
pub fn run_driver<D: ProtocolDriver, E: Engine>(driver: &mut D, sim: &mut E) -> u64 {
    let mut rounds = 0;
    while let StepStatus::Running = driver.step(sim) {
        rounds += 1;
    }
    rounds
}

/// A gossiping protocol that can be run on any graph with a given seed.
pub trait GossipAlgorithm {
    /// Short name used in reports (e.g. `"push-pull"`, `"fast-gossiping"`,
    /// `"memory"`).
    fn name(&self) -> &'static str;

    /// Runs the protocol as one uninterruptible block on a caller-prepared
    /// simulation and returns the communication accounting.
    ///
    /// **Test-only oracle.** Production harnesses (the scenario executor, the
    /// sweep engine) drive protocols one round at a time through
    /// [`ProtocolDriver`], which supports stop rules, round budgets and
    /// tracing; the block run exists as the reference the stepped path is
    /// equivalence-tested against (`stepped_complete_runs_equal_block_run_on_engine`
    /// in `rpc-scenarios`), and for one-off measurements outside the scenario
    /// stack. The caller may still configure loss, churn/crash schedules or a
    /// worker-thread count — the engine primitives apply them.
    fn run_on(&self, sim: &mut Simulation<'_>) -> GossipOutcome;

    /// Runs the protocol to completion on `graph`, deterministically in
    /// `seed`, and returns the communication accounting. Equivalent to
    /// [`Self::run_on`] with a freshly created, loss- and churn-free
    /// simulation — and like it a **test-only oracle**; scenario-driven
    /// stepping is the production path.
    fn run(&self, graph: &Graph, seed: u64) -> GossipOutcome {
        let mut sim = Simulation::new(graph, seed);
        self.run_on(&mut sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_gossiping::FastGossiping;
    use crate::memory_model::MemoryGossip;
    use crate::push_pull::PushPullGossip;
    use rpc_engine::Accounting;
    use rpc_graphs::prelude::*;

    /// All three algorithms compared in Figure 1, as trait objects.
    fn all_algorithms(n: usize) -> Vec<Box<dyn GossipAlgorithm>> {
        vec![
            Box::new(PushPullGossip::default()),
            Box::new(FastGossiping::paper(n)),
            Box::new(MemoryGossip::paper(n)),
        ]
    }

    #[test]
    fn every_algorithm_completes_on_a_small_random_graph() {
        let n = 256;
        let graph = ErdosRenyi::paper_density(n).generate(3);
        for algorithm in all_algorithms(n) {
            let outcome = algorithm.run(&graph, 7);
            assert!(outcome.completed(), "{} did not complete gossiping", algorithm.name());
            assert_eq!(outcome.fully_informed(), n, "{}", algorithm.name());
            assert!(outcome.total_packets() > 0);
            assert!(outcome.messages_per_node(Accounting::PerPacket) > 0.0, "{}", algorithm.name());
        }
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let n = 128;
        let graph = ErdosRenyi::paper_density(n).generate(1);
        for algorithm in all_algorithms(n) {
            let a = algorithm.run(&graph, 11);
            let b = algorithm.run(&graph, 11);
            assert_eq!(a.total_packets(), b.total_packets(), "{}", algorithm.name());
            assert_eq!(a.rounds(), b.rounds(), "{}", algorithm.name());
        }
    }
}
