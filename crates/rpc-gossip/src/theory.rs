//! Closed-form reference values from the paper's theorems and related work.
//!
//! The experiment harness normalises measured quantities by these functions to
//! check the *shape* of the asymptotic claims (e.g. Theorem 1's
//! `O(n log n / log log n)` transmissions): if the normalised series stays
//! (roughly) constant while `n` grows by orders of magnitude, the measured
//! growth matches the predicted growth.

use rpc_graphs::{lnn, log2n};

use crate::config::loglog2n;

/// Pittel's bound for push broadcasting in complete graphs:
/// `log₂ n + ln n + O(1)` rounds.
pub fn push_broadcast_rounds(n: usize) -> f64 {
    log2n(n) + lnn(n)
}

/// Karp et al.: transmissions of push-pull broadcasting in complete graphs,
/// `Θ(n log log n)`.
pub fn pushpull_broadcast_transmissions(n: usize) -> f64 {
    n as f64 * loglog2n(n).max(1.0)
}

/// Lower bound of Berenbrink et al. for any `O(log n)`-time address-oblivious
/// gossiping algorithm: `Ω(n log n)` transmissions.
pub fn gossip_logtime_lower_bound(n: usize) -> f64 {
    n as f64 * log2n(n)
}

/// Theorem 1: transmissions of fast-gossiping, `O(n log n / log log n)`.
pub fn fast_gossiping_transmissions(n: usize) -> f64 {
    n as f64 * log2n(n) / loglog2n(n).max(1.0)
}

/// Theorem 1: running time of fast-gossiping, `O(log² n / log log n)` steps.
pub fn fast_gossiping_rounds(n: usize) -> f64 {
    log2n(n) * log2n(n) / loglog2n(n).max(1.0)
}

/// Theorem 2: transmissions of memory-model gossiping with a given leader,
/// `O(n)`.
pub fn memory_gossiping_transmissions(n: usize) -> f64 {
    n as f64
}

/// Theorem 2: transmissions including leader election, `O(n log log n)`.
pub fn memory_gossiping_with_election_transmissions(n: usize) -> f64 {
    n as f64 * loglog2n(n).max(1.0)
}

/// Running time of simple push-pull gossiping, `Θ(log n)` rounds — and, under
/// per-channel-exchange accounting, also its messages per node.
pub fn push_pull_gossip_rounds(n: usize) -> f64 {
    log2n(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_at_one_million() {
        let n = 1_000_000;
        assert!((push_broadcast_rounds(n) - (19.93 + 13.82)).abs() < 0.2);
        assert!((push_pull_gossip_rounds(n) - 19.93).abs() < 0.05);
        assert!((fast_gossiping_transmissions(n) / n as f64 - 19.93 / 4.32).abs() < 0.1);
        assert_eq!(memory_gossiping_transmissions(n), 1e6);
    }

    #[test]
    fn orderings_expected_from_the_paper() {
        // For large n: memory < fast-gossiping < push-pull lower bound.
        for exp in 10..22 {
            let n = 1usize << exp;
            assert!(memory_gossiping_transmissions(n) < fast_gossiping_transmissions(n));
            assert!(fast_gossiping_transmissions(n) < gossip_logtime_lower_bound(n));
        }
        // n log log n < n log n / log log n requires log log² n < log n, which
        // kicks in around n ≈ 2^17 (log log² n = 16.7 < 17 at n = 2^17).
        for exp in 17..26 {
            let n = 1usize << exp;
            assert!(
                pushpull_broadcast_transmissions(n) < fast_gossiping_transmissions(n),
                "broadcast should be cheaper than gossiping at n = {n}"
            );
        }
    }

    #[test]
    fn normalisation_is_monotone_in_n() {
        // The gap between push-pull (n log n) and fast-gossiping
        // (n log n / log log n) widens with n — the "increasing gap" of Fig. 1.
        let gap_small = gossip_logtime_lower_bound(1 << 10) / fast_gossiping_transmissions(1 << 10);
        let gap_large = gossip_logtime_lower_bound(1 << 20) / fast_gossiping_transmissions(1 << 20);
        assert!(gap_large > gap_small);
    }

    #[test]
    fn degenerate_sizes_do_not_blow_up() {
        for n in [0usize, 1, 2, 3] {
            assert!(push_broadcast_rounds(n).is_finite());
            assert!(fast_gossiping_transmissions(n).is_finite());
            assert!(fast_gossiping_rounds(n).is_finite());
        }
    }
}
