//! Reusable graph-generation storage for batch workloads.
//!
//! Monte Carlo scenario batches regenerate a fresh random graph for every
//! repetition. With the plain [`generate`](crate::GraphGenerator::generate)
//! entry point each repetition allocates an edge list, a degree table and the
//! two CSR arrays, then frees them a few milliseconds later — at small and
//! medium `n` this setup traffic rivals the simulation itself. A
//! [`GraphArena`] owns all of that storage once per worker: generators write
//! into its buffers through
//! [`generate_into`](crate::GraphGenerator::generate_into), so after the
//! first repetition a worker's graph generation allocates nothing (the
//! buffers only grow if a later graph is larger).
//!
//! The contract is strict bit-identity: for every generator `g`,
//! `g.generate_into(seed, &mut arena)` leaves `arena.graph()` equal to
//! `g.generate(seed)` — same RNG draw sequence, same adjacency, for any
//! sequence of prior arena uses (including larger or smaller graphs). The
//! tests below pin this for every generator in the crate.

use rpc_obs::ReuseStats;

use crate::csr::{Graph, NodeId};

/// Reusable storage for repeated graph generation: the generated CSR graph
/// plus the edge-list, degree/cursor and stub scratch the samplers need.
///
/// Create one per worker thread and pass it to
/// [`GraphGenerator::generate_into`](crate::GraphGenerator::generate_into)
/// for every repetition; read the result with [`GraphArena::graph`].
#[derive(Debug, Clone)]
pub struct GraphArena {
    graph: Graph,
    /// Edge-list buffer the samplers fill (cleared per generation).
    pub(crate) edges: Vec<(NodeId, NodeId)>,
    /// Degree/cursor scratch for the in-place CSR build.
    pub(crate) scratch: Vec<usize>,
    /// Stub buffer for the configuration model's pairing.
    pub(crate) stubs: Vec<NodeId>,
    /// Reuse-vs-fresh counters over the arena's generations.
    stats: ReuseStats,
}

impl Default for GraphArena {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphArena {
    /// An empty arena; buffers are grown by the first generation.
    pub fn new() -> Self {
        Self {
            graph: Graph::from_edges(0, &[]),
            edges: Vec::new(),
            scratch: Vec::new(),
            stubs: Vec::new(),
            stats: ReuseStats::default(),
        }
    }

    /// Generation counters: the first build per arena counts as *fresh*,
    /// every later one as *reused* (the buffers carry over). Purely
    /// diagnostic — the generated graphs are bit-identical either way.
    pub fn stats(&self) -> ReuseStats {
        self.stats
    }

    /// Marks one generation into this arena (called by every build path).
    fn record_build(&mut self) {
        self.stats.record(self.stats.total() > 0);
    }

    /// The most recently generated graph. Before the first
    /// [`generate_into`](crate::GraphGenerator::generate_into) this is the
    /// empty zero-node graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access for generators that replace or fill the graph directly.
    pub(crate) fn graph_mut(&mut self) -> &mut Graph {
        self.record_build();
        &mut self.graph
    }

    /// Rebuilds the arena's graph from the edges currently in the edge
    /// buffer (see [`Graph::rebuild_from_edges`]).
    pub(crate) fn rebuild_from_edges(&mut self, n: usize) {
        self.record_build();
        let Self { graph, edges, scratch, .. } = self;
        graph.rebuild_from_edges(n, edges, scratch);
    }

    /// Sort-skipping variant for samplers whose emission order scatters into
    /// already-sorted adjacency (see `Graph::rebuild_from_edges_presorted`).
    pub(crate) fn rebuild_from_edges_presorted(&mut self, n: usize) {
        self.record_build();
        let Self { graph, edges, scratch, .. } = self;
        graph.rebuild_from_edges_presorted(n, edges, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::CompleteGraph;
    use crate::config_model::{ConfigurationModel, MultiEdgePolicy};
    use crate::erdos_renyi::ErdosRenyi;
    use crate::generator::GraphGenerator;
    use crate::regular::RandomRegular;

    fn generators(n: usize) -> Vec<Box<dyn GraphGenerator>> {
        let d = if n * 6 % 2 == 0 { 6 } else { 5 };
        vec![
            Box::new(ErdosRenyi::paper_density(n)),
            Box::new(ErdosRenyi::with_expected_degree(n, 8.0)),
            Box::new(CompleteGraph::new(n)),
            Box::new(ConfigurationModel::new(n, d)),
            Box::new(ConfigurationModel::new(n, d).with_policy(MultiEdgePolicy::Erase)),
            Box::new(RandomRegular::new(n, d)),
        ]
    }

    #[test]
    fn generate_into_matches_generate_for_every_generator() {
        let mut arena = GraphArena::new();
        for n in [64usize, 130] {
            for gen in generators(n) {
                for seed in [0u64, 1, 99] {
                    gen.generate_into(seed, &mut arena);
                    assert_eq!(
                        arena.graph(),
                        &gen.generate(seed),
                        "{} diverged at seed {seed}",
                        gen.label()
                    );
                }
            }
        }
    }

    #[test]
    fn er_sorted_scatter_matches_from_edges_at_scale() {
        // The ER override skips the adjacency sort (the scatter is provably
        // pre-sorted); pin exact equality — including neighbor order — on
        // graphs big enough for many multi-entry lists, both sampler
        // branches (p < 1 and the p = 1 complete fill).
        let mut arena = GraphArena::new();
        for gen in [ErdosRenyi::paper_density(2000), ErdosRenyi::new(80, 1.0)] {
            for seed in 0..5u64 {
                gen.generate_into(seed, &mut arena);
                assert_eq!(arena.graph(), &gen.generate(seed), "seed {seed}");
            }
        }
    }

    #[test]
    fn dirty_arena_reuse_is_bit_identical() {
        // Big graph, then a small one, then a big one again: stale buffer
        // content and capacities from earlier generations must never leak
        // into a later graph.
        let mut arena = GraphArena::new();
        let big = ErdosRenyi::paper_density(400);
        let small = CompleteGraph::new(9);
        big.generate_into(7, &mut arena);
        assert_eq!(arena.graph(), &big.generate(7));
        small.generate_into(3, &mut arena);
        assert_eq!(arena.graph(), &small.generate(3));
        big.generate_into(8, &mut arena);
        assert_eq!(arena.graph(), &big.generate(8));
    }

    #[test]
    fn default_trait_impl_falls_back_to_fresh_generation() {
        // A generator without an override still produces the right graph
        // through the arena entry point.
        struct Fixed;
        impl GraphGenerator for Fixed {
            fn num_nodes(&self) -> usize {
                3
            }
            fn expected_degree(&self) -> f64 {
                2.0
            }
            fn generate(&self, _seed: u64) -> Graph {
                Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
            }
            fn label(&self) -> String {
                "fixed-triangle".into()
            }
        }
        let mut arena = GraphArena::new();
        Fixed.generate_into(0, &mut arena);
        assert_eq!(arena.graph(), &Fixed.generate(0));
    }

    #[test]
    fn empty_arena_graph_has_zero_nodes() {
        let arena = GraphArena::new();
        assert_eq!(arena.graph().num_nodes(), 0);
        assert_eq!(arena.stats().total(), 0);
    }

    #[test]
    fn generation_stats_count_first_build_as_fresh() {
        let mut arena = GraphArena::new();
        let gen = ErdosRenyi::with_expected_degree(32, 4.0);
        gen.generate_into(0, &mut arena);
        gen.generate_into(1, &mut arena);
        gen.generate_into(2, &mut arena);
        let stats = arena.stats();
        assert_eq!((stats.fresh, stats.reused), (1, 2));
    }
}
