//! Complete graphs `K_n`.
//!
//! The complete graph is the classical setting of the random phone call model
//! (Karp et al., FOCS 2000; Berenbrink et al., ICALP 2010). The paper's main
//! question is whether results for `K_n` carry over to sparse random graphs,
//! so `K_n` is the baseline topology for every comparison experiment.

use crate::csr::{Graph, NodeId};
use crate::generator::GraphGenerator;

/// Generator for the complete graph on `n` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompleteGraph {
    n: usize,
}

impl CompleteGraph {
    /// Complete graph `K_n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl GraphGenerator for CompleteGraph {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn expected_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.n as f64 - 1.0
        }
    }

    fn generate(&self, _seed: u64) -> Graph {
        let mut adjacency: Vec<Vec<NodeId>> = Vec::with_capacity(self.n);
        for v in 0..self.n as NodeId {
            let mut nbrs = Vec::with_capacity(self.n.saturating_sub(1));
            for u in 0..self.n as NodeId {
                if u != v {
                    nbrs.push(u);
                }
            }
            adjacency.push(nbrs);
        }
        Graph::from_adjacency(adjacency)
    }

    fn generate_into(&self, _seed: u64, arena: &mut crate::arena::GraphArena) {
        // K_n's adjacency is deterministic and already sorted, so it is
        // written straight into the CSR arrays: node v's neighbors are
        // 0..n without v.
        let n = self.n;
        let deg = n.saturating_sub(1);
        let (offsets, neighbors) = arena.graph_mut().storage_mut();
        offsets.clear();
        offsets.reserve(n + 1);
        for i in 0..=n {
            offsets.push(i * deg);
        }
        neighbors.clear();
        neighbors.reserve(n * deg);
        for v in 0..n as NodeId {
            // Two branch-free range appends instead of a per-entry skip test.
            neighbors.extend(0..v);
            neighbors.extend((v + 1)..n as NodeId);
        }
    }

    fn label(&self) -> String {
        format!("complete(n={})", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_connected;

    #[test]
    fn k5_has_all_edges() {
        let g = CompleteGraph::new(5).generate(0);
        assert_eq!(g.num_edges(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
            for u in g.nodes() {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn seed_is_irrelevant() {
        let gen = CompleteGraph::new(16);
        assert_eq!(gen.generate(1), gen.generate(999));
    }

    #[test]
    fn complete_graphs_are_connected() {
        assert!(is_connected(&CompleteGraph::new(64).generate(0)));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(CompleteGraph::new(0).generate(0).num_nodes(), 0);
        assert_eq!(CompleteGraph::new(1).generate(0).num_edges(), 0);
        assert_eq!(CompleteGraph::new(2).generate(0).num_edges(), 1);
    }
}
