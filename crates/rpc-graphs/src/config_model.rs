//! The configuration model (random pairing of degree stubs).
//!
//! Section 2 of the paper: "Consider a set of `d · n` edge stubs partitioned
//! into `n` cells of `d` stubs each. A perfect matching of the stubs is called
//! a pairing. Each pairing corresponds to a graph in which the cells are the
//! vertices and the pairs define the edges." The pairing may produce self
//! loops and parallel edges, but for `d ≥ log^{2+ε} n` their number is a
//! constant with high probability — the generator therefore reports them and
//! optionally erases them.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Graph, NodeId};
use crate::generator::GraphGenerator;

/// How self-loops and parallel edges produced by the pairing are handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MultiEdgePolicy {
    /// Keep the pairing as is (a true configuration-model multigraph).
    #[default]
    Keep,
    /// Drop self-loops and collapse parallel edges (the "erased" configuration
    /// model); degrees may then be slightly below `d`.
    Erase,
}

/// Generator for configuration-model (multi-)graphs with `d` stubs per node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigurationModel {
    n: usize,
    d: usize,
    policy: MultiEdgePolicy,
}

impl ConfigurationModel {
    /// Configuration model with `n` cells of `d` stubs each.
    ///
    /// `n * d` must be even so that a perfect matching of the stubs exists;
    /// panics otherwise.
    pub fn new(n: usize, d: usize) -> Self {
        assert!(n * d % 2 == 0, "n * d must be even for a perfect stub matching");
        Self { n, d, policy: MultiEdgePolicy::Keep }
    }

    /// Degree (stubs per cell).
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Sets the [`MultiEdgePolicy`].
    pub fn with_policy(mut self, policy: MultiEdgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Samples a pairing into the caller's stub and edge buffers (both
    /// cleared first). Shared by [`GraphGenerator::generate`] and
    /// [`GraphGenerator::generate_into`] so the two entry points draw the
    /// exact same random pairing.
    fn sample_edges(&self, seed: u64, stubs: &mut Vec<NodeId>, edges: &mut Vec<(NodeId, NodeId)>) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x853c_49e6_748f_ea9b);
        let total_stubs = self.n * self.d;
        // stubs[i] = owning node of stub i; we shuffle and pair consecutive
        // stubs, which is a uniformly random perfect matching.
        stubs.clear();
        stubs.reserve(total_stubs);
        for v in 0..self.n as NodeId {
            for _ in 0..self.d {
                stubs.push(v);
            }
        }
        // Fisher–Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        edges.clear();
        edges.reserve(total_stubs / 2);
        for pair in stubs.chunks_exact(2) {
            edges.push((pair[0], pair[1]));
        }
        if self.policy == MultiEdgePolicy::Erase {
            edges.retain(|&(u, v)| u != v);
            edges.iter_mut().for_each(|e| {
                if e.0 > e.1 {
                    *e = (e.1, e.0);
                }
            });
            edges.sort_unstable();
            edges.dedup();
        }
    }

    /// Convenience constructor matching the paper's minimum density
    /// requirement: `d = ceil(log^{2+eps} n)`, adjusted by one if needed to
    /// keep `n·d` even.
    pub fn paper_degree(n: usize, eps: f64) -> Self {
        let mut d = crate::log2n(n).powf(2.0 + eps).ceil() as usize;
        d = d.max(1);
        if n * d % 2 != 0 {
            d += 1;
        }
        Self { n, d, policy: MultiEdgePolicy::Keep }
    }
}

impl GraphGenerator for ConfigurationModel {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn expected_degree(&self) -> f64 {
        self.d as f64
    }

    fn generate(&self, seed: u64) -> Graph {
        let mut stubs = Vec::new();
        let mut edges = Vec::new();
        self.sample_edges(seed, &mut stubs, &mut edges);
        Graph::from_edges(self.n, &edges)
    }

    fn generate_into(&self, seed: u64, arena: &mut crate::arena::GraphArena) {
        let (mut stubs, mut edges) =
            (std::mem::take(&mut arena.stubs), std::mem::take(&mut arena.edges));
        self.sample_edges(seed, &mut stubs, &mut edges);
        arena.stubs = stubs;
        arena.edges = edges;
        arena.rebuild_from_edges(self.n);
    }

    fn label(&self) -> String {
        format!("config-model(n={}, d={})", self.n, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_connected;

    #[test]
    fn every_node_has_exactly_d_stubs_in_keep_mode() {
        let g = ConfigurationModel::new(200, 8).generate(4);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 8);
        }
        assert_eq!(g.num_edges(), 200 * 8 / 2);
    }

    #[test]
    fn erased_model_has_no_loops_or_parallel_edges() {
        let g = ConfigurationModel::new(200, 8).with_policy(MultiEdgePolicy::Erase).generate(4);
        assert_eq!(g.num_self_loops(), 0);
        assert_eq!(g.num_parallel_edges(), 0);
        // Erasure removes only a handful of edges w.h.p. for this density.
        assert!(g.num_edges() >= 200 * 8 / 2 - 20);
    }

    #[test]
    fn loops_and_multi_edges_are_a_negligible_fraction() {
        // Section 2 argues that self-loops and parallel edges can be treated
        // separately because there are few of them relative to the graph. The
        // expected counts are Θ(d) while the graph has n·d/2 edges, so they are
        // an O(1/n) fraction of all edges.
        let n = 1 << 11;
        let gen = ConfigurationModel::paper_degree(n, 0.1);
        let d = gen.degree() as f64;
        let g = gen.generate(17);
        let bad = (g.num_self_loops() + g.num_parallel_edges()) as f64;
        // E[self-loops] ≈ (d-1)/2 and E[parallel pairs] ≈ (d-1)²/4; allow 2×.
        let expected = (d - 1.0) / 2.0 + (d - 1.0) * (d - 1.0) / 4.0;
        assert!(bad < 2.0 * expected + 50.0, "{bad} defective edges, expected around {expected}");
        // And they remain a small fraction of all n·d/2 edges.
        assert!(bad < 0.1 * g.num_edges() as f64);
    }

    #[test]
    fn paper_degree_is_at_least_log_squared() {
        let n = 1 << 12;
        let gen = ConfigurationModel::paper_degree(n, 0.1);
        assert!(gen.expected_degree() >= 12.0 * 12.0);
        assert_eq!((gen.num_nodes() * gen.degree()) % 2, 0);
    }

    #[test]
    fn paper_degree_graphs_are_connected() {
        let g = ConfigurationModel::paper_degree(1 << 11, 0.1).generate(3);
        assert!(is_connected(&g));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = ConfigurationModel::new(128, 6);
        assert_eq!(gen.generate(5), gen.generate(5));
        assert_ne!(gen.generate(5), gen.generate(6));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_total_stub_count_is_rejected() {
        let _ = ConfigurationModel::new(3, 3);
    }

    #[test]
    fn total_degree_is_preserved_by_pairing() {
        let gen = ConfigurationModel::new(64, 10);
        let g = gen.generate(9);
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(total, 64 * 10);
    }
}
