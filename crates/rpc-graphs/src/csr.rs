//! Compressed sparse row (CSR) graph representation.
//!
//! All graph models in this crate produce a [`Graph`], an immutable undirected
//! graph stored as two flat arrays (`offsets`, `neighbors`). This keeps a
//! million-node Erdős–Rényi graph with expected degree `log² n ≈ 400` at
//! roughly 1.6 GB of adjacency data and, more importantly for the simulator,
//! makes "pick a uniformly random neighbor" a single array index.

use rand::Rng;

/// Node identifier. Graphs in this repository stay below `2^32` nodes, so a
/// 32-bit id halves the adjacency memory compared to `usize`.
pub type NodeId = u32;

/// An immutable undirected (multi-)graph in CSR form.
///
/// Self-loops and parallel edges are representable (the configuration model
/// can produce a constant number of them, see Section 2 of the paper); the
/// generators document whether they emit them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes the neighbor slice of node `v`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists; each undirected edge appears twice
    /// (once per endpoint), a self-loop appears twice at its single endpoint.
    neighbors: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from a list of undirected edges.
    ///
    /// Edges may be given in any order; `(u, v)` and `(v, u)` denote the same
    /// edge and must only be listed once. Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut degrees = vec![0usize; n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge endpoint out of range");
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        for &(u, v) in edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        let mut graph = Self { offsets, neighbors };
        graph.sort_adjacency();
        graph
    }

    /// Builds a graph directly from per-node adjacency lists.
    ///
    /// The adjacency must already be symmetric: if `u` lists `v` then `v`
    /// must list `u` (checked in debug builds only, as this is `O(m log m)`).
    pub fn from_adjacency(adjacency: Vec<Vec<NodeId>>) -> Self {
        let n = adjacency.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for list in &adjacency {
            total += list.len();
            offsets.push(total);
        }
        let mut neighbors = Vec::with_capacity(total);
        for list in adjacency {
            neighbors.extend_from_slice(&list);
        }
        let mut graph = Self { offsets, neighbors };
        graph.sort_adjacency();
        debug_assert!(graph.is_symmetric(), "adjacency lists are not symmetric");
        graph
    }

    /// Rebuilds this graph in place from a list of undirected edges, reusing
    /// the existing CSR allocations — the write-into-caller-buffers
    /// counterpart of [`Graph::from_edges`], used by
    /// [`crate::arena::GraphArena`] so Monte Carlo batch workloads regenerate
    /// graphs without allocating. `scratch` is caller-provided degree/cursor
    /// storage whose previous content is irrelevant.
    ///
    /// The result is identical to `Graph::from_edges(n, edges)`. Panics if an
    /// endpoint is `>= n`.
    pub fn rebuild_from_edges(
        &mut self,
        n: usize,
        edges: &[(NodeId, NodeId)],
        scratch: &mut Vec<usize>,
    ) {
        self.rebuild_scatter(n, edges, scratch);
        self.sort_adjacency();
    }

    /// Like [`Graph::rebuild_from_edges`] but *skips the per-node sort*: the
    /// caller guarantees the edge emission order already scatters into
    /// sorted adjacency lists (checked in debug builds). The property to
    /// prove for an emission order is that every node's smaller neighbors
    /// are appended (ascending) before its larger neighbors (ascending).
    /// Both Erdős–Rényi sampler branches satisfy it — the geometric-skip
    /// `p < 1` branch groups edges by larger endpoint ascending (a node's
    /// own group appends its smaller neighbors in order; later groups append
    /// its larger neighbors in order), and the dense `p ≥ 1` branch groups
    /// by smaller endpoint ascending (earlier groups append the smaller
    /// neighbors in order; the node's own group appends its larger neighbors
    /// in order) — which makes the sort, a third of the CSR build cost, pure
    /// overhead.
    pub(crate) fn rebuild_from_edges_presorted(
        &mut self,
        n: usize,
        edges: &[(NodeId, NodeId)],
        scratch: &mut Vec<usize>,
    ) {
        self.rebuild_scatter(n, edges, scratch);
        debug_assert!(
            (0..n).all(|v| self.neighbors(v as NodeId).windows(2).all(|w| w[0] <= w[1])),
            "edge emission order did not scatter into sorted adjacency"
        );
    }

    /// The shared build core: degree count, prefix offsets, scatter.
    fn rebuild_scatter(&mut self, n: usize, edges: &[(NodeId, NodeId)], scratch: &mut Vec<usize>) {
        scratch.clear();
        scratch.resize(n, 0);
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge endpoint out of range");
            scratch[u as usize] += 1;
            scratch[v as usize] += 1;
        }
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        let mut acc = 0usize;
        self.offsets.push(0);
        for &d in scratch.iter() {
            acc += d;
            self.offsets.push(acc);
        }
        // The degree counters become the per-node write cursors.
        scratch.copy_from_slice(&self.offsets[..n]);
        self.neighbors.clear();
        self.neighbors.resize(acc, 0);
        for &(u, v) in edges {
            self.neighbors[scratch[u as usize]] = v;
            scratch[u as usize] += 1;
            self.neighbors[scratch[v as usize]] = u;
            scratch[v as usize] += 1;
        }
    }

    /// Raw CSR storage for in-crate generators that fill the adjacency
    /// directly (e.g. the complete graph, whose neighbor lists need no edge
    /// list or sorting pass). Callers must leave the arrays in a valid CSR
    /// state: monotone offsets with `offsets[0] == 0`, sorted symmetric
    /// adjacency.
    pub(crate) fn storage_mut(&mut self) -> (&mut Vec<usize>, &mut Vec<NodeId>) {
        (&mut self.offsets, &mut self.neighbors)
    }

    fn sort_adjacency(&mut self) {
        for v in 0..self.num_nodes() {
            let (a, b) = (self.offsets[v], self.offsets[v + 1]);
            self.neighbors[a..b].sort_unstable();
        }
    }

    fn is_symmetric(&self) -> bool {
        // A (multi-)graph adjacency is symmetric iff the multiset of directed
        // pairs {(v, u)} is closed under swapping, i.e. equals the multiset of
        // swapped pairs. O(m log m) — cheap enough for a debug assertion even
        // on million-edge graphs.
        let mut forward: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.neighbors.len());
        let mut backward: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.neighbors.len());
        for v in self.nodes() {
            for &u in self.neighbors(v) {
                forward.push((v, u));
                backward.push((u, v));
            }
        }
        forward.sort_unstable();
        backward.sort_unstable();
        forward == backward
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (self-loops count once, parallel edges each).
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v` (self-loops contribute 2, matching the CSR storage).
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbor slice of node `v`, sorted ascending.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the edge `{u, v}` exists (binary search, `O(log deg)`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// A uniformly random neighbor of `v`, or `None` if `v` is isolated.
    ///
    /// This is the core primitive of the random phone call model: "every node
    /// opens a communication channel to a randomly chosen neighbor".
    pub fn random_neighbor<R: Rng + ?Sized>(&self, v: NodeId, rng: &mut R) -> Option<NodeId> {
        let nbrs = self.neighbors(v);
        if nbrs.is_empty() {
            None
        } else {
            Some(nbrs[rng.gen_range(0..nbrs.len())])
        }
    }

    /// A uniformly random neighbor of `v` that is not contained in `avoid`.
    ///
    /// This implements the `open-avoid` operation of the memory model
    /// (Section 4): nodes remember up to four previously contacted neighbors
    /// and call on a neighbor chosen uniformly at random from
    /// `N(v) \ {l_v[0..3]}`. Returns `None` if every neighbor is excluded.
    pub fn random_neighbor_avoiding<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        avoid: &[NodeId],
        rng: &mut R,
    ) -> Option<NodeId> {
        let nbrs = self.neighbors(v);
        if nbrs.is_empty() {
            return None;
        }
        // Rejection sampling is efficient because |avoid| <= 4 while the
        // paper's graphs have degree >= log^{2+eps} n. Fall back to an exact
        // scan when the neighborhood is tiny (test topologies).
        if nbrs.len() > 4 * avoid.len().max(1) {
            for _ in 0..32 {
                let candidate = nbrs[rng.gen_range(0..nbrs.len())];
                if !avoid.contains(&candidate) {
                    return Some(candidate);
                }
            }
        }
        kth_eligible(nbrs, rng, |u| !avoid.contains(&u))
    }

    /// A uniformly random neighbor of `v` among those whose bit is set in
    /// `mask_words`, or `None` if no neighbor is eligible.
    ///
    /// This is the graph-side shim for *dynamic* (churn) scenarios: the CSR
    /// arrays stay immutable, and departed nodes are excluded at selection
    /// time instead. `mask_words` is a packed bitset with one bit per node
    /// (bit `u` in word `u / 64` at position `u % 64`, LSB-first) — exactly
    /// the layout of `rpc_engine::BitSet::words` — so eligibility is a single
    /// shift-and-mask per candidate and the sampling allocates nothing.
    pub fn random_neighbor_masked<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        mask_words: &[u64],
        rng: &mut R,
    ) -> Option<NodeId> {
        debug_assert!(mask_words.len() * 64 >= self.num_nodes(), "mask must cover every node");
        self.random_neighbor_where(v, rng, |u| mask_bit(mask_words, u))
    }

    /// A uniformly random neighbor of `v` that is present (bit set in
    /// `mask_words`) and not contained in `avoid` — the churn-aware variant
    /// of [`Self::random_neighbor_avoiding`]. Returns `None` if no neighbor
    /// is eligible.
    pub fn random_neighbor_masked_avoiding<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        avoid: &[NodeId],
        mask_words: &[u64],
        rng: &mut R,
    ) -> Option<NodeId> {
        debug_assert!(mask_words.len() * 64 >= self.num_nodes(), "mask must cover every node");
        self.random_neighbor_where(v, rng, |u| mask_bit(mask_words, u) && !avoid.contains(&u))
    }

    /// Total number of directed edge slots: the length of the concatenated
    /// adjacency (`2m`). Each undirected edge owns two slots, one per
    /// endpoint; a self-loop owns two consecutive slots at its endpoint.
    /// Slot indices identify edges for the edge-churn presence masks.
    pub fn num_edge_slots(&self) -> usize {
        self.neighbors.len()
    }

    /// The contiguous range of edge slots belonging to node `v`: slot
    /// `edge_slot_range(v).start + i` holds `neighbors(v)[i]`.
    pub fn edge_slot_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let v = v as usize;
        self.offsets[v]..self.offsets[v + 1]
    }

    /// A uniformly random neighbor of `v` reachable over an *up* edge:
    /// candidate slot `s` (holding neighbor `u`) is eligible iff bit `s` is
    /// set in `edge_words` and, when `node_words` is given, bit `u` is set
    /// there too. Returns `None` if no neighbor is eligible.
    ///
    /// This is the graph-side shim for *edge churn* (dynamic topologies):
    /// the CSR arrays stay immutable and down edges are excluded at
    /// selection time, exactly like [`Self::random_neighbor_masked`] does
    /// for departed nodes — but keyed on edge slots
    /// ([`Self::edge_slot_range`]), so the two directions of one undirected
    /// edge are two distinct bits that churn together. `edge_words` is a
    /// packed LSB-first bitset with one bit per slot
    /// ([`Self::num_edge_slots`] bits). The draw shape matches the node
    /// variant: up to 32 rejection draws over the full neighbor slice, then
    /// one exact count-and-pick draw.
    pub fn random_neighbor_edge_masked<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        node_words: Option<&[u64]>,
        edge_words: &[u64],
        rng: &mut R,
    ) -> Option<NodeId> {
        debug_assert!(
            edge_words.len() * 64 >= self.num_edge_slots(),
            "edge mask must cover every slot"
        );
        self.random_neighbor_slot_where(v, rng, |slot, u| {
            slot_bit(edge_words, slot) && node_words.map_or(true, |words| mask_bit(words, u))
        })
    }

    /// The `avoid`-aware variant of [`Self::random_neighbor_edge_masked`],
    /// for the memory model's `open-avoid` under edge churn. Returns `None`
    /// if no neighbor is eligible.
    pub fn random_neighbor_edge_masked_avoiding<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        avoid: &[NodeId],
        node_words: Option<&[u64]>,
        edge_words: &[u64],
        rng: &mut R,
    ) -> Option<NodeId> {
        debug_assert!(
            edge_words.len() * 64 >= self.num_edge_slots(),
            "edge mask must cover every slot"
        );
        self.random_neighbor_slot_where(v, rng, |slot, u| {
            slot_bit(edge_words, slot)
                && node_words.map_or(true, |words| mask_bit(words, u))
                && !avoid.contains(&u)
        })
    }

    /// Slot-indexed counterpart of [`Self::random_neighbor_where`]: the
    /// predicate sees the global edge slot alongside the neighbor it holds.
    /// Same draw shape — up to 32 rejection draws over the neighbor slice,
    /// then one exact count-and-pick — so slot-masked and node-masked
    /// sampling consume identical RNG sequences for identical acceptances.
    fn random_neighbor_slot_where<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        rng: &mut R,
        eligible: impl Fn(usize, NodeId) -> bool,
    ) -> Option<NodeId> {
        let base = self.offsets[v as usize];
        let nbrs = self.neighbors(v);
        if nbrs.is_empty() {
            return None;
        }
        for _ in 0..32 {
            let i = rng.gen_range(0..nbrs.len());
            if eligible(base + i, nbrs[i]) {
                return Some(nbrs[i]);
            }
        }
        let count = nbrs.iter().enumerate().filter(|&(i, &u)| eligible(base + i, u)).count();
        if count == 0 {
            return None;
        }
        let k = rng.gen_range(0..count);
        nbrs.iter().enumerate().filter(|&(i, &u)| eligible(base + i, u)).nth(k).map(|(_, &u)| u)
    }

    /// Uniform selection among the neighbors satisfying `eligible`: rejection
    /// sampling while the predicate is likely to hit, then an exact two-pass
    /// count-and-pick directly over the CSR slice, so even the fallback is
    /// correct without materializing a filtered neighbor list.
    fn random_neighbor_where<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        rng: &mut R,
        eligible: impl Fn(NodeId) -> bool,
    ) -> Option<NodeId> {
        let nbrs = self.neighbors(v);
        if nbrs.is_empty() {
            return None;
        }
        for _ in 0..32 {
            let candidate = nbrs[rng.gen_range(0..nbrs.len())];
            if eligible(candidate) {
                return Some(candidate);
            }
        }
        kth_eligible(nbrs, rng, eligible)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_nodes() as f64
        }
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.num_nodes()).map(|v| self.degree(v as NodeId)).min().unwrap_or(0)
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes()).map(|v| self.degree(v as NodeId)).max().unwrap_or(0)
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over all undirected edges `(u, v)` with `u <= v`.
    ///
    /// Parallel edges are reported once per multiplicity; a self-loop `(v, v)`
    /// is reported once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v)).chain(
                // Self-loops appear twice in the neighbor list of u; emit half.
                self.neighbors(u)
                    .iter()
                    .copied()
                    .filter(move |&v| v == u)
                    .enumerate()
                    .filter(|(i, _)| i % 2 == 0)
                    .map(move |(_, v)| (u, v)),
            )
        })
    }

    /// Number of self-loops in the graph.
    pub fn num_self_loops(&self) -> usize {
        self.nodes().map(|v| self.neighbors(v).iter().filter(|&&u| u == v).count() / 2).sum()
    }

    /// Number of parallel edge *pairs* beyond the first copy of each edge.
    pub fn num_parallel_edges(&self) -> usize {
        let mut extra = 0usize;
        for v in self.nodes() {
            let nbrs = self.neighbors(v);
            let mut i = 0;
            while i < nbrs.len() {
                let mut j = i + 1;
                while j < nbrs.len() && nbrs[j] == nbrs[i] {
                    j += 1;
                }
                if nbrs[i] != v {
                    extra += (j - i) - 1;
                }
                i = j;
            }
        }
        extra / 2
    }
}

/// Whether bit `u` is set in a packed LSB-first mask.
#[inline]
fn mask_bit(mask_words: &[u64], u: NodeId) -> bool {
    slot_bit(mask_words, u as usize)
}

/// Whether bit `slot` is set in a packed LSB-first mask over edge slots.
#[inline]
fn slot_bit(mask_words: &[u64], slot: usize) -> bool {
    mask_words[slot / 64] & (1u64 << (slot % 64)) != 0
}

/// Uniform choice among the elements of `pool` satisfying `eligible`, without
/// materializing the filtered list: count the eligible elements, draw a rank,
/// scan to it. Draw-for-draw equivalent to collecting the eligible elements
/// and indexing them uniformly (same single `gen_range` over the same count).
fn kth_eligible<R: Rng + ?Sized>(
    pool: &[NodeId],
    rng: &mut R,
    eligible: impl Fn(NodeId) -> bool,
) -> Option<NodeId> {
    let count = pool.iter().filter(|&&u| eligible(u)).count();
    if count == 0 {
        return None;
    }
    let k = rng.gen_range(0..count);
    pool.iter().copied().filter(|&u| eligible(u)).nth(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Packs a `bool` slice into the LSB-first mask layout the masked
    /// sampling primitives consume.
    fn pack_mask(bits: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; bits.len().div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        words
    }

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn from_adjacency_roundtrips() {
        let g = Graph::from_adjacency(vec![vec![1], vec![0, 2], vec![1]]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.average_degree(), 4.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn degree_extremes() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.average_degree(), 1.5);
    }

    #[test]
    fn random_neighbor_is_a_neighbor() {
        let g = triangle();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let u = g.random_neighbor(0, &mut rng).unwrap();
            assert!(g.neighbors(0).contains(&u));
        }
    }

    #[test]
    fn random_neighbor_of_isolated_node_is_none() {
        let g = Graph::from_edges(2, &[]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(g.random_neighbor(0, &mut rng), None);
    }

    #[test]
    fn random_neighbor_avoiding_respects_avoid_list() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let u = g.random_neighbor_avoiding(0, &[1, 2, 3], &mut rng).unwrap();
            assert_eq!(u, 4);
        }
        assert_eq!(g.random_neighbor_avoiding(0, &[1, 2, 3, 4], &mut rng), None);
    }

    #[test]
    fn random_neighbor_avoiding_covers_all_eligible() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(g.random_neighbor_avoiding(0, &[1], &mut rng).unwrap());
        }
        assert_eq!(seen, [2, 3, 4, 5].into_iter().collect());
    }

    #[test]
    fn random_neighbor_masked_excludes_absent_nodes() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut rng = SmallRng::seed_from_u64(11);
        let mask = pack_mask(&[true, false, true, false, true]); // 1 and 3 departed
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(g.random_neighbor_masked(0, &mask, &mut rng).unwrap());
        }
        assert_eq!(seen, [2, 4].into_iter().collect());
    }

    #[test]
    fn random_neighbor_masked_returns_none_when_all_excluded() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let mut rng = SmallRng::seed_from_u64(13);
        let mask = pack_mask(&[true, false, false]);
        assert_eq!(g.random_neighbor_masked(0, &mask, &mut rng), None);
    }

    #[test]
    fn random_neighbor_masked_works_past_the_first_word() {
        // Nodes above index 63 exercise the second mask word.
        let n = 130;
        let edges: Vec<(NodeId, NodeId)> = (1..n).map(|u| (0, u)).collect();
        let g = Graph::from_edges(n as usize, &edges);
        let mut alive = vec![false; n as usize];
        alive[100] = true;
        alive[129] = true;
        let mask = pack_mask(&alive);
        let mut rng = SmallRng::seed_from_u64(29);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(g.random_neighbor_masked(0, &mask, &mut rng).unwrap());
        }
        assert_eq!(seen, [100, 129].into_iter().collect());
    }

    #[test]
    fn random_neighbor_masked_avoiding_combines_both_filters() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut rng = SmallRng::seed_from_u64(17);
        let mask = pack_mask(&[true, true, false, true, true]); // 2 departed
        for _ in 0..200 {
            let u = g.random_neighbor_masked_avoiding(0, &[1], &mask, &mut rng).unwrap();
            assert!(u == 3 || u == 4, "got excluded neighbor {u}");
        }
        assert_eq!(g.random_neighbor_masked_avoiding(0, &[1, 3, 4], &mask, &mut rng), None);
    }

    #[test]
    fn edge_slot_ranges_tile_the_adjacency() {
        let g = triangle();
        assert_eq!(g.num_edge_slots(), 6);
        let mut covered = 0;
        for v in g.nodes() {
            let range = g.edge_slot_range(v);
            assert_eq!(range.len(), g.degree(v));
            assert_eq!(range.start, covered);
            covered = range.end;
        }
        assert_eq!(covered, g.num_edge_slots());
    }

    #[test]
    fn random_neighbor_edge_masked_excludes_down_slots() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut rng = SmallRng::seed_from_u64(19);
        // Take down the slots of node 0 holding neighbors 1 and 3.
        let mut up = vec![true; g.num_edge_slots()];
        let base = g.edge_slot_range(0).start;
        for (i, &u) in g.neighbors(0).iter().enumerate() {
            if u == 1 || u == 3 {
                up[base + i] = false;
            }
        }
        let edge_mask = pack_mask(&up);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(g.random_neighbor_edge_masked(0, None, &edge_mask, &mut rng).unwrap());
        }
        assert_eq!(seen, [2, 4].into_iter().collect());
    }

    #[test]
    fn random_neighbor_edge_masked_combines_node_and_edge_masks() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut rng = SmallRng::seed_from_u64(23);
        // Edge to 1 is down, node 2 is departed: only 3 and 4 remain.
        let mut up = vec![true; g.num_edge_slots()];
        let base = g.edge_slot_range(0).start;
        up[base + g.neighbors(0).iter().position(|&u| u == 1).unwrap()] = false;
        let edge_mask = pack_mask(&up);
        let node_mask = pack_mask(&[true, true, false, true, true]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(
                g.random_neighbor_edge_masked(0, Some(&node_mask), &edge_mask, &mut rng).unwrap(),
            );
        }
        assert_eq!(seen, [3, 4].into_iter().collect());
        // Avoiding 3 on top leaves only 4.
        for _ in 0..100 {
            let u = g
                .random_neighbor_edge_masked_avoiding(
                    0,
                    &[3],
                    Some(&node_mask),
                    &edge_mask,
                    &mut rng,
                )
                .unwrap();
            assert_eq!(u, 4);
        }
    }

    #[test]
    fn random_neighbor_edge_masked_returns_none_when_all_down() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let mut rng = SmallRng::seed_from_u64(31);
        let edge_mask = pack_mask(&vec![false; g.num_edge_slots()]);
        assert_eq!(g.random_neighbor_edge_masked(0, None, &edge_mask, &mut rng), None);
    }

    #[test]
    fn edge_masked_sampling_matches_node_masked_draw_sequence() {
        // With an all-up edge mask the slot-masked sampler must consume the
        // exact same RNG draws as the node-masked sampler — the contract that
        // keeps traces bit-identical when edge churn is configured but no
        // wave is currently active.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (1, 2)]);
        let all_up = pack_mask(&vec![true; g.num_edge_slots()]);
        let node_mask = pack_mask(&[true, true, false, true, false, true]);
        for seed in 0..50 {
            let mut a = SmallRng::seed_from_u64(seed);
            let mut b = SmallRng::seed_from_u64(seed);
            let via_nodes = g.random_neighbor_masked(0, &node_mask, &mut a);
            let via_slots = g.random_neighbor_edge_masked(0, Some(&node_mask), &all_up, &mut b);
            assert_eq!(via_nodes, via_slots);
            // The generators must have advanced identically too.
            assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
        }
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn self_loops_and_parallel_edges_are_counted() {
        // Node 0 with a self loop, and a double edge between 1 and 2.
        let g = Graph::from_edges(3, &[(0, 0), (1, 2), (1, 2)]);
        assert_eq!(g.num_self_loops(), 1);
        assert_eq!(g.num_parallel_edges(), 1);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn nodes_iterator_covers_all_nodes() {
        let g = triangle();
        assert_eq!(g.nodes().collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
