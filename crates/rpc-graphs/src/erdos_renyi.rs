//! Erdős–Rényi random graphs `G(n, p)`.
//!
//! This is the network model used for all simulations in Section 5 of the
//! paper, with `p = log² n / n` (expected degree `log² n`), and for the
//! analysis of the memory model in Section 4 (`p ≥ log^{2+ε} n / n`).
//!
//! Generation uses the standard geometric-skipping technique (Batagelj &
//! Brandes): instead of flipping a coin for each of the `n(n-1)/2` potential
//! edges, we jump directly to the next present edge by sampling a
//! geometrically distributed gap. This makes generation `O(n + m)` and keeps a
//! 10⁶-node, expected-degree-400 graph generable in seconds.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Graph, NodeId};
use crate::generator::GraphGenerator;
use crate::log2n;

/// Generator for Erdős–Rényi graphs `G(n, p)`.
#[derive(Clone, Debug, PartialEq)]
pub struct ErdosRenyi {
    n: usize,
    p: f64,
}

impl ErdosRenyi {
    /// `G(n, p)` with an explicit edge probability `p ∈ [0, 1]`.
    ///
    /// Panics if `p` is outside `[0, 1]` or not finite.
    pub fn new(n: usize, p: f64) -> Self {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p must lie in [0, 1]");
        Self { n, p }
    }

    /// The density used throughout the paper's empirical section:
    /// `p = log² n / n`, i.e. expected degree `log² n`.
    pub fn paper_density(n: usize) -> Self {
        let p = if n <= 1 { 0.0 } else { (log2n(n) * log2n(n) / n as f64).min(1.0) };
        Self { n, p }
    }

    /// `G(n, p)` parameterised by its expected degree `d = p (n - 1)`.
    ///
    /// The paper requires `d = Ω(log^{2+ε} n)` for its theorems; this helper
    /// lets experiments sweep the density directly.
    pub fn with_expected_degree(n: usize, d: f64) -> Self {
        assert!(d >= 0.0, "expected degree must be non-negative");
        let p = if n <= 1 { 0.0 } else { (d / (n as f64 - 1.0)).min(1.0) };
        Self { n, p }
    }

    /// The density `p = log^{2+eps} n / n`, the threshold density of the
    /// paper's theorems.
    pub fn theorem_density(n: usize, eps: f64) -> Self {
        assert!(eps >= 0.0, "eps must be non-negative");
        let p = if n <= 1 { 0.0 } else { (log2n(n).powf(2.0 + eps) / n as f64).min(1.0) };
        Self { n, p }
    }

    /// Edge probability of this generator.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples the edge list into `edges` (cleared first). Shared by
    /// [`GraphGenerator::generate`] and [`GraphGenerator::generate_into`] so
    /// the two entry points can never diverge in their RNG draw sequence.
    fn sample_edges(&self, seed: u64, edges: &mut Vec<(NodeId, NodeId)>) {
        edges.clear();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let n = self.n;
        let p = self.p;
        if n >= 2 && p > 0.0 {
            edges.reserve((p * (n as f64) * (n as f64 - 1.0) / 2.0) as usize + 16);
            if p >= 1.0 {
                for u in 0..n as NodeId {
                    for v in (u + 1)..n as NodeId {
                        edges.push((u, v));
                    }
                }
            } else {
                // Geometric skipping over the linearised upper triangle.
                let lq = (1.0 - p).ln();
                let mut v: i64 = 1;
                let mut w: i64 = -1;
                let n_i = n as i64;
                while v < n_i {
                    let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let skip = (r.ln() / lq).floor() as i64;
                    w += 1 + skip;
                    while w >= v && v < n_i {
                        w -= v;
                        v += 1;
                    }
                    if v < n_i {
                        edges.push((w as NodeId, v as NodeId));
                    }
                }
            }
        }
    }
}

impl GraphGenerator for ErdosRenyi {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn expected_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.p * (self.n as f64 - 1.0)
        }
    }

    fn generate(&self, seed: u64) -> Graph {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        self.sample_edges(seed, &mut edges);
        Graph::from_edges(self.n, &edges)
    }

    fn generate_into(&self, seed: u64, arena: &mut crate::arena::GraphArena) {
        let mut edges = std::mem::take(&mut arena.edges);
        self.sample_edges(seed, &mut edges);
        arena.edges = edges;
        // Both sampler branches emit an order whose CSR scatter appends each
        // node's smaller neighbors (ascending) before its larger neighbors
        // (ascending) — the p < 1 branch groups edges by larger endpoint
        // ascending, the p ≥ 1 branch by smaller endpoint ascending — so the
        // adjacency lands pre-sorted and the per-node sort can be skipped.
        arena.rebuild_from_edges_presorted(self.n);
    }

    fn label(&self) -> String {
        format!("G(n={}, p={:.3e})", self.n, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_connected;

    #[test]
    fn paper_density_matches_log_squared_over_n() {
        let gen = ErdosRenyi::paper_density(1 << 16);
        let expected = 16.0 * 16.0 / (1u64 << 16) as f64;
        assert!((gen.p() - expected).abs() < 1e-12);
        assert!((gen.expected_degree() - 16.0 * 16.0).abs() < 1.0);
    }

    #[test]
    fn expected_degree_parameterisation() {
        let gen = ErdosRenyi::with_expected_degree(1000, 50.0);
        assert!((gen.expected_degree() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_density_is_denser_than_paper_density_for_positive_eps() {
        let n = 1 << 14;
        assert!(ErdosRenyi::theorem_density(n, 0.5).p() > ErdosRenyi::paper_density(n).p());
        assert_eq!(ErdosRenyi::theorem_density(n, 0.0).p(), ErdosRenyi::paper_density(n).p());
    }

    #[test]
    fn p_zero_gives_empty_graph_and_p_one_gives_complete_graph() {
        let empty = ErdosRenyi::new(50, 0.0).generate(3);
        assert_eq!(empty.num_edges(), 0);
        let full = ErdosRenyi::new(50, 1.0).generate(3);
        assert_eq!(full.num_edges(), 50 * 49 / 2);
    }

    #[test]
    fn edge_count_concentrates_around_expectation() {
        let n = 4000;
        let p = 0.01;
        let g = ErdosRenyi::new(n, p).generate(11);
        let expected = p * (n as f64) * (n as f64 - 1.0) / 2.0;
        let actual = g.num_edges() as f64;
        // 5 standard deviations of a Binomial(n(n-1)/2, p).
        let std = (expected * (1.0 - p)).sqrt();
        assert!(
            (actual - expected).abs() < 5.0 * std,
            "edge count {actual} too far from expectation {expected}"
        );
    }

    #[test]
    fn node_degrees_concentrate_at_paper_density() {
        // Section 2: "the node degree of every node is concentrated around the
        // expectation, i.e. deg(v) = d (1 ± o(1)) w.h.p."
        let n = 1 << 13;
        let g = ErdosRenyi::paper_density(n).generate(5);
        let d = ErdosRenyi::paper_density(n).expected_degree();
        assert!((g.average_degree() - d).abs() / d < 0.05);
        assert!(g.min_degree() as f64 > 0.5 * d);
        assert!((g.max_degree() as f64) < 1.7 * d);
    }

    #[test]
    fn paper_density_graphs_are_connected() {
        for seed in 0..3 {
            let g = ErdosRenyi::paper_density(2048).generate(seed);
            assert!(is_connected(&g), "G(n, log^2 n / n) should be connected w.h.p.");
        }
    }

    #[test]
    fn no_self_loops_or_parallel_edges() {
        let g = ErdosRenyi::paper_density(1024).generate(9);
        assert_eq!(g.num_self_loops(), 0);
        assert_eq!(g.num_parallel_edges(), 0);
    }

    #[test]
    fn different_seeds_produce_different_graphs() {
        let gen = ErdosRenyi::paper_density(512);
        assert_ne!(gen.generate(1), gen.generate(2));
    }

    #[test]
    #[should_panic(expected = "p must lie in [0, 1]")]
    fn invalid_probability_is_rejected() {
        let _ = ErdosRenyi::new(10, 1.5);
    }

    #[test]
    fn degenerate_sizes_are_handled() {
        assert_eq!(ErdosRenyi::paper_density(0).generate(1).num_nodes(), 0);
        assert_eq!(ErdosRenyi::paper_density(1).generate(1).num_edges(), 0);
    }
}
