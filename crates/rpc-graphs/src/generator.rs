//! The [`GraphGenerator`] trait shared by all graph models.

use crate::arena::GraphArena;
use crate::csr::Graph;

/// A deterministic, seedable graph generator.
///
/// Every model in this crate (Erdős–Rényi, configuration model, random
/// regular, complete, and the fixed test topologies) implements this trait so
/// that experiments and benchmarks can be written generically over the
/// network model — exactly the comparison axis the paper studies.
pub trait GraphGenerator {
    /// Number of nodes of the generated graphs.
    fn num_nodes(&self) -> usize;

    /// Expected (or exact, for deterministic models) node degree.
    fn expected_degree(&self) -> f64;

    /// Generates a graph. The same `seed` always yields the same graph.
    fn generate(&self, seed: u64) -> Graph;

    /// Generates a graph into `arena`'s reusable storage (read the result
    /// with [`GraphArena::graph`]).
    ///
    /// Contract: the resulting graph equals [`GraphGenerator::generate`] with
    /// the same seed, bit for bit, regardless of what the arena held before —
    /// only the allocation behaviour differs. The default implementation
    /// simply generates fresh and moves the result into the arena; the
    /// models in this crate override it to write straight into the arena's
    /// edge and CSR buffers, so a warmed-up arena regenerates graphs without
    /// allocating.
    fn generate_into(&self, seed: u64, arena: &mut GraphArena) {
        *arena.graph_mut() = self.generate(seed);
    }

    /// Short human-readable label used in experiment reports
    /// (e.g. `"G(n, log^2 n / n)"`, `"complete"`, `"config-model(d=400)"`).
    fn label(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::CompleteGraph;
    use crate::erdos_renyi::ErdosRenyi;

    fn check_determinism<G: GraphGenerator>(gen: &G) {
        let a = gen.generate(99);
        let b = gen.generate(99);
        assert_eq!(a, b, "same seed must produce identical graphs");
    }

    #[test]
    fn generators_are_deterministic() {
        check_determinism(&ErdosRenyi::paper_density(256));
        check_determinism(&CompleteGraph::new(64));
    }

    #[test]
    fn trait_objects_are_usable() {
        let generators: Vec<Box<dyn GraphGenerator>> =
            vec![Box::new(ErdosRenyi::paper_density(128)), Box::new(CompleteGraph::new(128))];
        for g in &generators {
            assert_eq!(g.num_nodes(), 128);
            assert_eq!(g.generate(1).num_nodes(), 128);
            assert!(!g.label().is_empty());
        }
    }
}
