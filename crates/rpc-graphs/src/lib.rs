//! # rpc-graphs
//!
//! Random graph substrate for the reproduction of *"On the Influence of Graph
//! Density on Randomized Gossiping"* (Elsässer & Kaaser, 2015).
//!
//! The paper analyses randomized gossiping on two random graph models and uses
//! the complete graph as the classical baseline:
//!
//! * **Erdős–Rényi graphs** `G(n, p)` with `p ≥ log^{2+ε} n / n`
//!   ([`erdos_renyi::ErdosRenyi`]), the model used for all simulations in
//!   Section 5 (with `p = log² n / n`);
//! * the **configuration model** with `d` stubs per node
//!   ([`config_model::ConfigurationModel`]) used for the proof of Theorem 1,
//!   together with the *deferred decisions* stub-pairing view ([`stubs`]);
//! * **complete graphs** ([`complete::CompleteGraph`]), the reference point of
//!   Karp et al. and Berenbrink et al.
//!
//! Graphs are stored in a compact CSR (compressed sparse row) representation
//! ([`csr::Graph`]) sized for simulations with up to a few million nodes. All
//! generators are deterministic given a seed so that every experiment in the
//! repository can be reproduced bit-for-bit.
//!
//! ```
//! use rpc_graphs::prelude::*;
//!
//! let graph = ErdosRenyi::paper_density(1024).generate(42);
//! assert_eq!(graph.num_nodes(), 1024);
//! // The paper requires d = Ω(log^{2+ε} n); with p = log² n / n the expected
//! // degree is log² n = 100 for n = 1024.
//! assert!(graph.average_degree() > 50.0);
//! assert!(is_connected(&graph));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod complete;
pub mod config_model;
pub mod csr;
pub mod erdos_renyi;
pub mod generator;
pub mod properties;
pub mod regular;
pub mod stubs;
pub mod topology;

pub use arena::GraphArena;
pub use complete::CompleteGraph;
pub use config_model::ConfigurationModel;
pub use csr::{Graph, NodeId};
pub use erdos_renyi::ErdosRenyi;
pub use generator::GraphGenerator;
pub use regular::RandomRegular;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::arena::GraphArena;
    pub use crate::complete::CompleteGraph;
    pub use crate::config_model::ConfigurationModel;
    pub use crate::csr::{Graph, NodeId};
    pub use crate::erdos_renyi::ErdosRenyi;
    pub use crate::generator::GraphGenerator;
    pub use crate::properties::{connected_components, degree_stats, is_connected, DegreeStats};
    pub use crate::regular::RandomRegular;
    pub use crate::topology::{hypercube, ring, star};
}

/// Binary logarithm of `n` as used throughout the paper (`log n` denotes the
/// logarithm to base 2, see Section 1.1 footnote 1).
///
/// Returns `0.0` for `n <= 1` so that degenerate graph sizes do not produce
/// negative or infinite parameters.
pub fn log2n(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        (n as f64).log2()
    }
}

/// Natural logarithm of `n`, guarded the same way as [`log2n`].
pub fn lnn(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        (n as f64).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2n_matches_std() {
        assert_eq!(log2n(0), 0.0);
        assert_eq!(log2n(1), 0.0);
        assert_eq!(log2n(2), 1.0);
        assert_eq!(log2n(1024), 10.0);
        assert!((log2n(1_000_000) - 19.931568).abs() < 1e-5);
    }

    #[test]
    fn lnn_matches_std() {
        assert_eq!(lnn(1), 0.0);
        assert!((lnn(1024) - 6.931471).abs() < 1e-5);
    }
}
