//! Structural graph properties used by the analysis and the experiments:
//! connectivity, degree statistics, BFS distances, local neighbourhood trees.

use std::collections::VecDeque;

use crate::csr::{Graph, NodeId};

/// Summary statistics of the degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Population variance of the degree sequence.
    pub variance: f64,
}

/// Computes [`DegreeStats`] for a graph. Returns zeros for the empty graph.
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.num_nodes();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, variance: 0.0 };
    }
    let degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    let min = *degrees.iter().min().unwrap();
    let max = *degrees.iter().max().unwrap();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let variance = degrees.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    DegreeStats { min, max, mean, variance }
}

/// Breadth-first distances from `source`; `None` marks unreachable nodes.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let n = graph.num_nodes();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    if (source as usize) >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source as usize] = Some(0);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize].unwrap();
        for &u in graph.neighbors(v) {
            if dist[u as usize].is_none() {
                dist[u as usize] = Some(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Assigns every node a component id in `0..k` and returns `(ids, k)`.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.num_nodes();
    let mut component = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        component[start] = next;
        queue.push_back(start as NodeId);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if component[u as usize] == usize::MAX {
                    component[u as usize] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    (component, next)
}

/// Whether the graph is connected. The empty graph and single-node graph are
/// considered connected.
pub fn is_connected(graph: &Graph) -> bool {
    if graph.num_nodes() <= 1 {
        return true;
    }
    connected_components(graph).1 == 1
}

/// Lower bound on the diameter obtained with a double BFS sweep (exact on
/// trees, a good estimate on expanders). Returns `None` for disconnected or
/// empty graphs.
pub fn diameter_estimate(graph: &Graph) -> Option<u32> {
    if graph.num_nodes() == 0 || !is_connected(graph) {
        return None;
    }
    let first = bfs_distances(graph, 0);
    let (far, _) =
        first.iter().enumerate().filter_map(|(v, d)| d.map(|d| (v, d))).max_by_key(|&(_, d)| d)?;
    let second = bfs_distances(graph, far as NodeId);
    second.iter().filter_map(|d| *d).max()
}

/// Number of nodes within distance `radius` of `v` (including `v` itself).
///
/// The proof of Lemma 6 reasons about the `O(log log n)`-neighbourhood of a
/// vertex being (pseudo-)tree-like; this helper supports empirical checks of
/// that structure.
pub fn ball_size(graph: &Graph, v: NodeId, radius: u32) -> usize {
    let dist = bfs_distances(graph, v);
    dist.iter().filter(|d| matches!(d, Some(x) if *x <= radius)).count()
}

/// Number of edges inside the ball of the given radius around `v`.
///
/// Together with [`ball_size`] this measures how far the local neighbourhood
/// is from a tree: a tree on `k` nodes has exactly `k - 1` edges, and the
/// paper's "pseudo-tree" property (Lemma 4.7 of Berenbrink et al. 2014) allows
/// only a constant number of additional edges.
pub fn ball_edge_count(graph: &Graph, v: NodeId, radius: u32) -> usize {
    let dist = bfs_distances(graph, v);
    let in_ball = |u: NodeId| matches!(dist[u as usize], Some(x) if x <= radius);
    let mut count = 0usize;
    for u in graph.nodes() {
        if !in_ball(u) {
            continue;
        }
        for &w in graph.neighbors(u) {
            if w >= u && in_ball(w) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erdos_renyi::ErdosRenyi;
    use crate::generator::GraphGenerator;
    use crate::topology::{hypercube, path, ring, star};

    #[test]
    fn degree_stats_on_star() {
        let stats = degree_stats(&star(11));
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 10);
        assert!((stats.mean - 20.0 / 11.0).abs() < 1e-12);
        assert!(stats.variance > 0.0);
    }

    #[test]
    fn degree_stats_on_empty_graph() {
        let stats = degree_stats(&Graph::from_edges(0, &[]));
        assert_eq!(stats, DegreeStats { min: 0, max: 0, mean: 0.0, variance: 0.0 });
    }

    #[test]
    fn bfs_distances_on_path() {
        let d = bfs_distances(&path(6), 2);
        let got: Vec<_> = d.into_iter().map(|x| x.unwrap()).collect();
        assert_eq!(got, vec![2, 1, 0, 1, 2, 3]);
    }

    #[test]
    fn bfs_marks_unreachable_nodes() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), None, None]);
    }

    #[test]
    fn connected_components_counts_components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (ids, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[3]);
        assert_ne!(ids[5], ids[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn trivial_graphs_are_connected() {
        assert!(is_connected(&Graph::from_edges(0, &[])));
        assert!(is_connected(&Graph::from_edges(1, &[])));
    }

    #[test]
    fn diameter_of_known_topologies() {
        assert_eq!(diameter_estimate(&path(10)), Some(9));
        assert_eq!(diameter_estimate(&ring(10)), Some(5));
        assert_eq!(diameter_estimate(&hypercube(5)), Some(5));
        assert_eq!(diameter_estimate(&Graph::from_edges(3, &[(0, 1)])), None);
    }

    #[test]
    fn random_graph_diameter_is_logarithmic() {
        let g = ErdosRenyi::paper_density(2048).generate(1);
        let diam = diameter_estimate(&g).unwrap();
        assert!((2..=6).contains(&diam), "diameter {diam} implausible for G(n, log^2 n/n)");
    }

    #[test]
    fn ball_size_on_ring() {
        let g = ring(20);
        assert_eq!(ball_size(&g, 0, 0), 1);
        assert_eq!(ball_size(&g, 0, 1), 3);
        assert_eq!(ball_size(&g, 0, 3), 7);
        assert_eq!(ball_size(&g, 0, 10), 20);
    }

    #[test]
    fn ball_edge_count_detects_tree_like_balls() {
        let g = path(10);
        let nodes = ball_size(&g, 5, 2);
        let edges = ball_edge_count(&g, 5, 2);
        assert_eq!(nodes, 5);
        assert_eq!(edges, nodes - 1, "a path ball is a tree");
        // On a ring of length 6 the radius-3 ball is the whole cycle: one
        // extra edge beyond a tree.
        let c = ring(6);
        assert_eq!(ball_edge_count(&c, 0, 3), ball_size(&c, 0, 3));
    }

    #[test]
    fn sparse_random_graph_balls_are_nearly_trees() {
        // Empirical check of the pseudo-tree property used by Lemma 6: for
        // d^(2r) = o(n) the radius-r neighbourhood has at most a constant
        // number of edges more than a spanning tree (expected excess
        // ~ d^(2r) / n).
        let g = ErdosRenyi::with_expected_degree(1 << 14, 8.0).generate(5);
        let radius = 2;
        for v in [0u32, 17, 1234, 4000] {
            let nodes = ball_size(&g, v, radius);
            let edges = ball_edge_count(&g, v, radius);
            assert!(edges + 1 >= nodes, "ball must be connected");
            assert!(edges < nodes + 6, "ball has too many extra edges: {edges} vs {nodes} nodes");
        }
    }
}
