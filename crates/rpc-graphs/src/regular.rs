//! Random `d`-regular simple graphs.
//!
//! The paper's Lemma 6 discussion refers to random regular graphs of degree
//! `d ∈ [log^{2+ε} n, log⁵ n]`. We generate them by repeatedly sampling the
//! configuration model and rejecting pairings that contain self-loops or
//! parallel edges; for the degrees of interest the rejection probability is
//! bounded away from 1, so a handful of attempts suffice. If rejection does
//! not succeed within a fixed budget we fall back to the erased configuration
//! model, whose degrees differ from `d` by at most a constant w.h.p.

use crate::config_model::{ConfigurationModel, MultiEdgePolicy};
use crate::csr::Graph;
use crate::generator::GraphGenerator;

/// Generator for random `d`-regular simple graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandomRegular {
    n: usize,
    d: usize,
    max_attempts: usize,
}

impl RandomRegular {
    /// Random `d`-regular graph on `n` nodes. `n * d` must be even and `d < n`.
    pub fn new(n: usize, d: usize) -> Self {
        assert!(n * d % 2 == 0, "n * d must be even");
        assert!(d < n.max(1), "degree must be smaller than n");
        Self { n, d, max_attempts: 32 }
    }

    /// Degree of every node.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Overrides the number of rejection-sampling attempts before falling back
    /// to the erased configuration model.
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }
}

impl GraphGenerator for RandomRegular {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn expected_degree(&self) -> f64 {
        self.d as f64
    }

    fn generate(&self, seed: u64) -> Graph {
        let base = ConfigurationModel::new(self.n, self.d);
        for attempt in 0..self.max_attempts as u64 {
            let g = base.generate(seed.wrapping_add(attempt.wrapping_mul(0x9e37_79b9)));
            if g.num_self_loops() == 0 && g.num_parallel_edges() == 0 {
                return g;
            }
        }
        base.clone()
            .with_policy(MultiEdgePolicy::Erase)
            .generate(seed.wrapping_mul(31).wrapping_add(7))
    }

    fn generate_into(&self, seed: u64, arena: &mut crate::arena::GraphArena) {
        // Same attempt sequence (and therefore the same accepted pairing or
        // erased fallback) as `generate`, but every attempt reuses the
        // arena's buffers.
        let base = ConfigurationModel::new(self.n, self.d);
        for attempt in 0..self.max_attempts as u64 {
            base.generate_into(seed.wrapping_add(attempt.wrapping_mul(0x9e37_79b9)), arena);
            let g = arena.graph();
            if g.num_self_loops() == 0 && g.num_parallel_edges() == 0 {
                return;
            }
        }
        base.clone()
            .with_policy(MultiEdgePolicy::Erase)
            .generate_into(seed.wrapping_mul(31).wrapping_add(7), arena);
    }

    fn label(&self) -> String {
        format!("random-regular(n={}, d={})", self.n, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_connected;

    #[test]
    fn produces_simple_graphs() {
        let g = RandomRegular::new(100, 6).generate(1);
        assert_eq!(g.num_self_loops(), 0);
        assert_eq!(g.num_parallel_edges(), 0);
    }

    #[test]
    fn degrees_are_exactly_d_when_rejection_succeeds() {
        let g = RandomRegular::new(200, 8).generate(2);
        // With d = 8 the rejection sampler virtually always succeeds, so all
        // degrees are exact; if the erased fallback had triggered a degree
        // could be smaller, which we still accept but flag here.
        let exact = g.nodes().all(|v| g.degree(v) == 8);
        let near = g.nodes().all(|v| g.degree(v) >= 6 && g.degree(v) <= 8);
        assert!(near);
        assert!(exact || g.average_degree() > 7.8);
    }

    #[test]
    fn regular_graphs_at_paper_density_are_connected() {
        let n = 1024;
        let d = 100; // ~ log^2 n
        let g = RandomRegular::new(n, d).generate(3);
        assert!(is_connected(&g));
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = RandomRegular::new(64, 4);
        assert_eq!(gen.generate(11), gen.generate(11));
    }

    #[test]
    #[should_panic(expected = "smaller than n")]
    fn rejects_degree_at_least_n() {
        let _ = RandomRegular::new(4, 4);
    }
}
