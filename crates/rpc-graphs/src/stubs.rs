//! Deferred-decision stub pairing.
//!
//! Section 2 of the paper analyses the configuration model with the *principle
//! of deferred decisions*: "at the beginning all the nodes have `d` stubs
//! which are all unconnected. If a node chooses a link for communication for
//! the first time in a step, then we connect the corresponding stub of the
//! node with a free stub in the graph, while leaving all the other stubs as
//! they are."
//!
//! [`StubPairing`] implements exactly this lazily-revealed graph. It is used
//! by tests that validate the probabilistic statements of Lemmas 2–5 (e.g.
//! the probability of contacting an already informed node) without having to
//! materialise the full pairing, and it doubles as an alternative network
//! backend for analysis-faithful simulations on the configuration model.

use rand::Rng;

use crate::csr::{Graph, NodeId};

/// A configuration-model graph revealed stub by stub.
#[derive(Clone, Debug)]
pub struct StubPairing {
    n: usize,
    d: usize,
    /// `partner[v][i]` is the node that stub `i` of node `v` is paired with,
    /// if it has been revealed.
    partner: Vec<Vec<Option<NodeId>>>,
    /// Stubs (node, index) that are still unpaired, as a flat pool supporting
    /// O(1) uniform sampling with swap-remove.
    free_pool: Vec<(NodeId, u32)>,
    /// Position of each stub in `free_pool`, or `usize::MAX` once paired.
    pool_index: Vec<usize>,
    used: Vec<u32>,
}

impl StubPairing {
    /// Creates an unrevealed pairing with `n` cells of `d` stubs each.
    /// `n * d` must be even.
    pub fn new(n: usize, d: usize) -> Self {
        assert!(n * d % 2 == 0, "n * d must be even");
        let mut free_pool = Vec::with_capacity(n * d);
        let mut pool_index = vec![usize::MAX; n * d];
        for v in 0..n {
            for i in 0..d {
                pool_index[v * d + i] = free_pool.len();
                free_pool.push((v as NodeId, i as u32));
            }
        }
        Self { n, d, partner: vec![vec![None; d]; n], free_pool, pool_index, used: vec![0; n] }
    }

    /// Number of cells (nodes).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Stubs per cell.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Number of stubs of `v` that have already been paired (either because
    /// `v` used them or because another node's stub was paired to them).
    pub fn used_stubs(&self, v: NodeId) -> usize {
        self.used[v as usize] as usize
    }

    /// Number of globally unpaired stubs.
    pub fn free_stubs(&self) -> usize {
        self.free_pool.len()
    }

    fn stub_id(&self, v: NodeId, i: u32) -> usize {
        v as usize * self.d + i as usize
    }

    fn remove_from_pool(&mut self, v: NodeId, i: u32) {
        let id = self.stub_id(v, i);
        let pos = self.pool_index[id];
        debug_assert_ne!(pos, usize::MAX, "stub already paired");
        let last = self.free_pool.len() - 1;
        self.free_pool.swap(pos, last);
        let moved = self.free_pool[pos];
        let moved_id = self.stub_id(moved.0, moved.1);
        self.pool_index[moved_id] = pos;
        self.free_pool.pop();
        self.pool_index[id] = usize::MAX;
    }

    /// Node `v` opens a communication channel on a uniformly random one of its
    /// stubs. If that stub was already paired in an earlier step (a *wasted*
    /// stub in the paper's terminology) the existing partner is returned with
    /// `fresh = false`. Otherwise the stub is paired with a uniformly random
    /// free stub in the whole graph and the new partner is returned with
    /// `fresh = true`. Returns `None` only in the degenerate case where the
    /// only free stub left belongs to the chosen stub itself.
    pub fn open_channel<R: Rng + ?Sized>(
        &mut self,
        v: NodeId,
        rng: &mut R,
    ) -> Option<(NodeId, bool)> {
        if self.d == 0 {
            return None;
        }
        let i = rng.gen_range(0..self.d) as u32;
        if let Some(u) = self.partner[v as usize][i as usize] {
            return Some((u, false));
        }
        // Pair stub (v, i) with a uniformly random *other* free stub.
        let own_id = self.stub_id(v, i);
        if self.free_pool.len() <= 1 {
            return None;
        }
        loop {
            let pick = rng.gen_range(0..self.free_pool.len());
            let (u, j) = self.free_pool[pick];
            if self.stub_id(u, j) == own_id {
                continue;
            }
            self.remove_from_pool(v, i);
            self.remove_from_pool(u, j);
            self.partner[v as usize][i as usize] = Some(u);
            self.partner[u as usize][j as usize] = Some(v);
            self.used[v as usize] += 1;
            self.used[u as usize] += 1;
            return Some((u, true));
        }
    }

    /// Completes the pairing uniformly at random and returns the resulting
    /// multigraph. Already-revealed pairs are kept.
    pub fn finish<R: Rng + ?Sized>(mut self, rng: &mut R) -> Graph {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.n * self.d / 2);
        // Re-derive revealed edges robustly: walk all stubs and pair ids.
        let mut seen = vec![false; self.n * self.d];
        for v in 0..self.n {
            for i in 0..self.d {
                let id = v * self.d + i;
                if seen[id] {
                    continue;
                }
                if let Some(u) = self.partner[v][i] {
                    // Find the matching unseen stub on u that points back to v.
                    let mut matched = false;
                    for j in 0..self.d {
                        let uid = u as usize * self.d + j;
                        if !seen[uid]
                            && uid != id
                            && self.partner[u as usize][j] == Some(v as NodeId)
                        {
                            seen[id] = true;
                            seen[uid] = true;
                            edges.push((v as NodeId, u));
                            matched = true;
                            break;
                        }
                    }
                    debug_assert!(matched, "revealed stub without reciprocal partner");
                }
            }
        }
        // Pair the remaining free stubs uniformly at random (Fisher–Yates on
        // the pool, then pair consecutive entries).
        let pool = &mut self.free_pool;
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
        for pair in pool.chunks_exact(2) {
            edges.push((pair[0].0, pair[1].0));
        }
        Graph::from_edges(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn opening_channels_pairs_stubs() {
        let mut pairing = StubPairing::new(100, 10);
        let mut rng = SmallRng::seed_from_u64(1);
        let before = pairing.free_stubs();
        let (_, fresh) = pairing.open_channel(0, &mut rng).unwrap();
        assert!(fresh);
        assert_eq!(pairing.free_stubs(), before - 2);
        assert!(pairing.used_stubs(0) >= 1);
    }

    #[test]
    fn reused_stub_returns_same_partner_without_consuming_pool() {
        let mut pairing = StubPairing::new(4, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let (first, fresh) = pairing.open_channel(0, &mut rng).unwrap();
        assert!(fresh);
        let before = pairing.free_stubs();
        // Node 0 has a single stub, so every later call must reuse it.
        let (second, fresh2) = pairing.open_channel(0, &mut rng).unwrap();
        assert!(!fresh2);
        assert_eq!(first, second);
        assert_eq!(pairing.free_stubs(), before);
    }

    #[test]
    fn finish_produces_a_d_regular_multigraph() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut pairing = StubPairing::new(60, 6);
        // Reveal a few edges first.
        for v in 0..20u32 {
            pairing.open_channel(v, &mut rng);
        }
        let g = pairing.finish(&mut rng);
        assert_eq!(g.num_edges(), 60 * 6 / 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    fn wasted_stub_probability_is_small_after_few_steps() {
        // Lemma 2: after O(log n / log log n) channel openings a node still has
        // Θ(d) free stubs, so the probability of choosing a wasted stub is
        // O(log n / d). Check the bookkeeping that underlies that argument.
        let n = 512;
        let d = 100;
        let mut pairing = StubPairing::new(n, d);
        let mut rng = SmallRng::seed_from_u64(4);
        let steps = 12; // ~ 12 log n / log log n with small constants
        for _ in 0..steps {
            for v in 0..n as NodeId {
                pairing.open_channel(v, &mut rng);
            }
        }
        for v in 0..n as NodeId {
            assert!(
                pairing.used_stubs(v) <= 3 * steps,
                "node {v} used {} stubs after {steps} steps",
                pairing.used_stubs(v)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_stub_total_rejected() {
        let _ = StubPairing::new(3, 3);
    }
}
