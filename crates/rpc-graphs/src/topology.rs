//! Deterministic test topologies (ring, star, hypercube, path).
//!
//! These are *not* part of the paper's evaluation but are invaluable for unit
//! testing the simulation engine and the algorithms: on a ring or a star the
//! exact behaviour of push/pull rounds can be computed by hand, which gives
//! strong oracle tests for the communication accounting.

use crate::csr::{Graph, NodeId};

/// Ring (cycle) on `n` nodes. Requires `n >= 3` to be a simple cycle;
/// for `n < 3` the degenerate path/empty graph is returned.
pub fn ring(n: usize) -> Graph {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n);
    if n >= 2 {
        for v in 0..(n - 1) {
            edges.push((v as NodeId, (v + 1) as NodeId));
        }
        if n >= 3 {
            edges.push(((n - 1) as NodeId, 0));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Simple path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        edges.push(((v - 1) as NodeId, v as NodeId));
    }
    Graph::from_edges(n, &edges)
}

/// Star with center `0` and `n - 1` leaves.
pub fn star(n: usize) -> Graph {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        edges.push((0, v as NodeId));
    }
    Graph::from_edges(n, &edges)
}

/// Hypercube of dimension `dim` (`2^dim` nodes, degree `dim`).
///
/// Feige et al. analyse push broadcasting on the hypercube; it is a useful
/// bounded-degree sanity topology for the engine.
pub fn hypercube(dim: u32) -> Graph {
    let n = 1usize << dim;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * dim as usize / 2);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1usize << bit);
            if v < u {
                edges.push((v as NodeId, u as NodeId));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{bfs_distances, is_connected};

    #[test]
    fn ring_degrees_are_two() {
        let g = ring(10);
        assert_eq!(g.num_edges(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn small_rings_degenerate_gracefully() {
        assert_eq!(ring(0).num_nodes(), 0);
        assert_eq!(ring(1).num_edges(), 0);
        assert_eq!(ring(2).num_edges(), 1);
    }

    #[test]
    fn path_is_connected_with_n_minus_1_edges() {
        let g = path(17);
        assert_eq!(g.num_edges(), 16);
        assert!(is_connected(&g));
        let dist = bfs_distances(&g, 0);
        assert_eq!(dist[16], Some(16));
    }

    #[test]
    fn star_center_has_full_degree() {
        let g = star(12);
        assert_eq!(g.degree(0), 11);
        for v in 1..12 {
            assert_eq!(g.degree(v as NodeId), 1);
        }
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 16 * 4 / 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(is_connected(&g));
        // Diameter of the 4-cube is 4.
        let dist = bfs_distances(&g, 0);
        assert_eq!(dist[15], Some(4));
    }
}
