//! The in-memory aggregation sink.

use std::collections::BTreeMap;

use crate::event::{ObsEvent, Observer};
use crate::stats::{CoreRounds, PoolStats, ReuseStats};

/// An [`Observer`] that folds the event stream into summary counters, for
/// tests and in-process reporting (no I/O).
#[derive(Clone, Debug, Default)]
pub struct Aggregator {
    counts: BTreeMap<&'static str, u64>,
    reps: u64,
    rounds: u64,
    wall_nanos: u64,
    cores: CoreRounds,
    pool: PoolStats,
    graph: ReuseStats,
    sim: ReuseStats,
}

impl Aggregator {
    /// A fresh, empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many events of `kind` (an [`ObsEvent::kind`] label) were seen.
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// Total events seen.
    pub fn total_events(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Repetitions finished (from `rep-finished` events).
    pub fn reps(&self) -> u64 {
        self.reps
    }

    /// Simulated rounds accumulated across finished repetitions and runs.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Wall-clock nanoseconds accumulated across finished repetitions.
    pub fn wall_nanos(&self) -> u64 {
        self.wall_nanos
    }

    /// Delivery batches per core, accumulated.
    pub fn cores(&self) -> CoreRounds {
        self.cores
    }

    /// Pool counters, folded over every `pool` event (checkouts and fresh
    /// allocations sum; the high-water mark takes the max).
    pub fn pool(&self) -> PoolStats {
        self.pool
    }

    /// Graph-arena reuse counters, summed.
    pub fn graph_reuse(&self) -> ReuseStats {
        self.graph
    }

    /// Simulation-arena reuse counters, summed.
    pub fn sim_reuse(&self) -> ReuseStats {
        self.sim
    }
}

impl Observer for Aggregator {
    fn record(&mut self, event: &ObsEvent<'_>) {
        *self.counts.entry(event.kind()).or_insert(0) += 1;
        match *event {
            ObsEvent::RepFinished { wall_nanos, rounds, cores, .. } => {
                self.reps += 1;
                self.wall_nanos += wall_nanos;
                self.rounds += rounds;
                self.cores.merge(cores);
            }
            ObsEvent::RunFinished { rounds, cores, .. } => {
                self.rounds += rounds;
                self.cores.merge(cores);
            }
            ObsEvent::Pool { stats } => {
                self.pool.checkouts += stats.checkouts;
                self.pool.fresh += stats.fresh;
                self.pool.high_water = self.pool.high_water.max(stats.high_water);
            }
            ObsEvent::Arena { graph, sim } => {
                self.graph.reused += graph.reused;
                self.graph.fresh += graph.fresh;
                self.sim.reused += sim.reused;
                self.sim.fresh += sim.fresh;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PoolStats;

    #[test]
    fn folds_counts_and_totals() {
        let mut agg = Aggregator::new();
        agg.record(&ObsEvent::SweepStarted { sweep: "s", cells: 2, threads: 1 });
        agg.record(&ObsEvent::RepFinished {
            sweep: "s",
            cell: "a",
            rep: 0,
            wall_nanos: 100,
            rounds: 7,
            cores: CoreRounds { scalar: 7, eager: 0, batch: 0 },
        });
        agg.record(&ObsEvent::RepFinished {
            sweep: "s",
            cell: "a",
            rep: 1,
            wall_nanos: 50,
            rounds: 5,
            cores: CoreRounds { scalar: 2, eager: 3, batch: 0 },
        });
        agg.record(&ObsEvent::Pool { stats: PoolStats { checkouts: 10, fresh: 1, high_water: 4 } });
        agg.record(&ObsEvent::Pool { stats: PoolStats { checkouts: 5, fresh: 0, high_water: 2 } });
        assert_eq!(agg.count("sweep-started"), 1);
        assert_eq!(agg.count("rep-finished"), 2);
        assert_eq!(agg.count("nope"), 0);
        assert_eq!(agg.total_events(), 5);
        assert_eq!(agg.reps(), 2);
        assert_eq!(agg.rounds(), 12);
        assert_eq!(agg.wall_nanos(), 150);
        assert_eq!(agg.cores(), CoreRounds { scalar: 9, eager: 3, batch: 0 });
        assert_eq!(agg.pool(), PoolStats { checkouts: 15, fresh: 1, high_water: 4 });
    }
}
