//! The observer trait and the event taxonomy.

use crate::stats::{CoreRounds, DispatchRecord, PoolStats, ReuseStats};

/// One observable event. Borrowed string fields keep event construction
/// allocation-free, so a disabled observer costs nothing even where an event
/// *would* be built.
///
/// The taxonomy has three levels:
///
/// * **engine events** — [`Dispatch`](ObsEvent::Dispatch) (one adaptive
///   delivery-core decision with its inputs), [`Round`](ObsEvent::Round)
///   (per-round progress counters), [`RunFinished`](ObsEvent::RunFinished),
///   [`Pool`](ObsEvent::Pool) and [`Arena`](ObsEvent::Arena) (buffer/storage
///   reuse); emitted by the scenario executor from the engine's always-on
///   counters;
/// * **sweep lifecycle** — [`SweepStarted`](ObsEvent::SweepStarted) through
///   [`SweepFinished`](ObsEvent::SweepFinished), emitted by the sweep runner
///   on its coordinator thread in deterministic task order;
/// * **timing** — [`RepFinished`](ObsEvent::RepFinished) carries per-rep
///   wall-clock measured by the worker *around* the deterministic cell run
///   (never inside a seeded path).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ObsEvent<'a> {
    /// A sweep began executing.
    SweepStarted {
        /// Sweep (spec) name.
        sweep: &'a str,
        /// Total cells in the sweep.
        cells: usize,
        /// Worker-thread count.
        threads: usize,
    },
    /// A cell entered the pending set (it was not served from the cache).
    CellStarted {
        /// Sweep name.
        sweep: &'a str,
        /// Cell key.
        cell: &'a str,
        /// Cell index within the spec.
        index: usize,
        /// Initial repetition target (the policy minimum).
        target_reps: usize,
    },
    /// A cell was served from the persistent cell cache.
    CacheHit {
        /// Sweep name.
        sweep: &'a str,
        /// Cell key.
        cell: &'a str,
        /// Repetitions recorded in the cached entry.
        reps: usize,
    },
    /// One doubling batch of repetitions was scheduled onto the pool.
    BatchScheduled {
        /// Sweep name.
        sweep: &'a str,
        /// Tasks (repetitions) in this batch, across all undecided cells.
        tasks: usize,
    },
    /// One repetition finished executing on a worker.
    RepFinished {
        /// Sweep name.
        sweep: &'a str,
        /// Cell key.
        cell: &'a str,
        /// Repetition index within the cell.
        rep: usize,
        /// Wall-clock nanoseconds the worker spent on this repetition.
        wall_nanos: u64,
        /// Simulated rounds the repetition executed.
        rounds: u64,
        /// Delivery batches per core during this repetition.
        cores: CoreRounds,
    },
    /// A cell's adaptive CI stop rule fired before the budget ceiling.
    CiStop {
        /// Sweep name.
        sweep: &'a str,
        /// Cell key.
        cell: &'a str,
        /// Repetitions kept by the prefix-stable stop index.
        reps: usize,
    },
    /// A cell's result is final (aggregated or served from cache).
    CellFinished {
        /// Sweep name.
        sweep: &'a str,
        /// Cell key.
        cell: &'a str,
        /// Repetitions behind the aggregate.
        reps: usize,
        /// Whether the result came from the cache.
        cached: bool,
    },
    /// The whole sweep finished.
    SweepFinished {
        /// Sweep name.
        sweep: &'a str,
        /// Total cells.
        cells: usize,
        /// Freshly executed repetitions (cache hits excluded).
        executed_reps: usize,
        /// Cells served from the cache.
        cached_cells: usize,
    },
    /// One adaptive delivery-core dispatch decision (per simulated round).
    Dispatch {
        /// Completed rounds when the decision was taken.
        round: u64,
        /// The decision and its inputs.
        record: DispatchRecord,
    },
    /// Per-round progress counters of a scenario run.
    Round {
        /// Completed rounds at capture time.
        round: u64,
        /// Nodes knowing all original messages.
        fully_informed: usize,
        /// Nodes knowing the tracked rumor.
        tracked_informed: usize,
        /// Cumulative packets sent.
        packets: u64,
    },
    /// Per-round multi-rumor progress of a streaming scenario run. Emitted
    /// only when the scenario carries an injection spec.
    Rumors {
        /// Completed rounds at capture time.
        round: u64,
        /// Rumors injected so far (cumulative).
        injected: usize,
        /// Rumors expired so far (cumulative).
        expired: usize,
        /// Rumors currently in flight (injected, not expired, not complete).
        in_flight: usize,
        /// Rumors that have reached every participating node (cumulative).
        complete: usize,
    },
    /// One rumor reached every participating node in a streaming run.
    RumorComplete {
        /// The rumor's message id.
        rumor: usize,
        /// Completed rounds when completion was detected.
        round: u64,
    },
    /// A scenario run completed.
    RunFinished {
        /// Rounds executed.
        rounds: u64,
        /// Total packets sent.
        total_packets: u64,
        /// Delivery batches per core over the whole run.
        cores: CoreRounds,
    },
    /// Buffer-pool counters of the engine that just finished a run.
    Pool {
        /// Checkout/fresh/high-water counters.
        stats: PoolStats,
    },
    /// Arena reuse-vs-fresh counters (graph generation and parked
    /// simulations).
    Arena {
        /// Graph arena rebuilds.
        graph: ReuseStats,
        /// Simulation checkouts.
        sim: ReuseStats,
    },
    /// The node runtime's nemesis perturbed one wire message.
    TransportFault {
        /// Protocol round the message belonged to.
        round: u64,
        /// Fault kind: `"drop"`, `"delay"`, `"duplicate"`, `"partition"` or
        /// `"crash"`.
        kind: &'a str,
        /// Sender node name.
        from: &'a str,
        /// Receiver node name.
        to: &'a str,
    },
    /// The node runtime's round synchronizer timed out waiting for acks and
    /// scheduled a retry with exponential backoff.
    RetryTimeout {
        /// The round being synchronized.
        round: u64,
        /// Retry attempt number (1-based; attempt 0 was the original send).
        attempt: u32,
        /// Backoff applied to the retry deadline, in scheduler ticks.
        backoff: u64,
        /// Nodes still missing an ack.
        missing: usize,
    },
    /// The node runtime's coordinator advanced a round.
    RoundAdvanced {
        /// The round that finished.
        round: u64,
        /// Acks collected when the round advanced.
        acks: usize,
        /// Acks a full round would have collected.
        expected: usize,
        /// Retries spent on this round.
        retries: u32,
        /// Whether the round advanced degraded on a quorum (true) or fully
        /// acked (false).
        quorum: bool,
    },
}

impl ObsEvent<'_> {
    /// Stable kind label (the `ev` field of the JSON-lines format).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::SweepStarted { .. } => "sweep-started",
            ObsEvent::CellStarted { .. } => "cell-started",
            ObsEvent::CacheHit { .. } => "cache-hit",
            ObsEvent::BatchScheduled { .. } => "batch-scheduled",
            ObsEvent::RepFinished { .. } => "rep-finished",
            ObsEvent::CiStop { .. } => "ci-stop",
            ObsEvent::CellFinished { .. } => "cell-finished",
            ObsEvent::SweepFinished { .. } => "sweep-finished",
            ObsEvent::Dispatch { .. } => "dispatch",
            ObsEvent::Round { .. } => "round",
            ObsEvent::Rumors { .. } => "rumors",
            ObsEvent::RumorComplete { .. } => "rumor-complete",
            ObsEvent::RunFinished { .. } => "run-finished",
            ObsEvent::Pool { .. } => "pool",
            ObsEvent::Arena { .. } => "arena",
            ObsEvent::TransportFault { .. } => "transport-fault",
            ObsEvent::RetryTimeout { .. } => "retry-timeout",
            ObsEvent::RoundAdvanced { .. } => "round-advanced",
        }
    }
}

/// A sink for [`ObsEvent`]s.
///
/// Implementations must be pure sinks: nothing an observer does may flow back
/// into the observed computation (see the crate docs for the determinism
/// contract). Instrumented code is generic over `O: Observer`, so with
/// [`NoopObserver`] the monomorphized result is the uninstrumented code.
pub trait Observer {
    /// Whether this observer consumes events at all. Instrumented code
    /// guards *expensive* event preparation (timing reads, per-rep probes)
    /// behind `O::ENABLED`; plain event construction needs no guard — it is
    /// dead code when `record` is an empty inlined body.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn record(&mut self, event: &ObsEvent<'_>);
}

/// The disabled observer: an empty inlined `record` and
/// [`Observer::ENABLED`]` = false`. Instrumented code monomorphized with this
/// type compiles to the uninstrumented code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &ObsEvent<'_>) {}
}

impl<O: Observer + ?Sized> Observer for &mut O {
    const ENABLED: bool = O::ENABLED;

    #[inline]
    fn record(&mut self, event: &ObsEvent<'_>) {
        (**self).record(event);
    }
}

/// Fan-out to two sinks (compose further by nesting tuples).
impl<A: Observer, B: Observer> Observer for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn record(&mut self, event: &ObsEvent<'_>) {
        self.0.record(event);
        self.1.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl Observer for Counter {
        fn record(&mut self, _event: &ObsEvent<'_>) {
            self.0 += 1;
        }
    }

    // The `ENABLED` associated constants ARE the subject under test here:
    // the zero-cost contract hinges on their compile-time values.
    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn noop_is_disabled_and_tuples_compose() {
        assert!(!NoopObserver::ENABLED);
        assert!(<(NoopObserver, Counter)>::ENABLED);
        assert!(!<(NoopObserver, NoopObserver)>::ENABLED);
        let mut pair = (Counter(0), NoopObserver);
        pair.record(&ObsEvent::Round {
            round: 1,
            fully_informed: 2,
            tracked_informed: 3,
            packets: 4,
        });
        assert_eq!(pair.0 .0, 1);
    }

    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn mut_references_forward() {
        let mut c = Counter(0);
        {
            let mut by_ref = &mut c;
            assert!(<&mut Counter>::ENABLED);
            <&mut Counter as Observer>::record(
                &mut by_ref,
                &ObsEvent::Pool { stats: Default::default() },
            );
        }
        assert_eq!(c.0, 1);
    }

    #[test]
    fn every_event_kind_is_distinct() {
        use crate::stats::*;
        let events = [
            ObsEvent::SweepStarted { sweep: "s", cells: 1, threads: 1 },
            ObsEvent::CellStarted { sweep: "s", cell: "c", index: 0, target_reps: 2 },
            ObsEvent::CacheHit { sweep: "s", cell: "c", reps: 2 },
            ObsEvent::BatchScheduled { sweep: "s", tasks: 4 },
            ObsEvent::RepFinished {
                sweep: "s",
                cell: "c",
                rep: 0,
                wall_nanos: 10,
                rounds: 3,
                cores: CoreRounds::default(),
            },
            ObsEvent::CiStop { sweep: "s", cell: "c", reps: 5 },
            ObsEvent::CellFinished { sweep: "s", cell: "c", reps: 5, cached: false },
            ObsEvent::SweepFinished { sweep: "s", cells: 1, executed_reps: 5, cached_cells: 0 },
            ObsEvent::Dispatch {
                round: 0,
                record: DispatchRecord {
                    core: DeliveryCore::Scalar,
                    n: 8,
                    packets: 16,
                    sparse: false,
                    cache_resident: true,
                    threads: 1,
                },
            },
            ObsEvent::Round { round: 0, fully_informed: 0, tracked_informed: 1, packets: 0 },
            ObsEvent::Rumors { round: 0, injected: 2, expired: 0, in_flight: 1, complete: 1 },
            ObsEvent::RumorComplete { rumor: 0, round: 4 },
            ObsEvent::RunFinished { rounds: 3, total_packets: 9, cores: CoreRounds::default() },
            ObsEvent::Pool { stats: PoolStats::default() },
            ObsEvent::Arena { graph: ReuseStats::default(), sim: ReuseStats::default() },
            ObsEvent::TransportFault { round: 2, kind: "drop", from: "n0", to: "n1" },
            ObsEvent::RetryTimeout { round: 2, attempt: 1, backoff: 16, missing: 2 },
            ObsEvent::RoundAdvanced { round: 2, acks: 4, expected: 5, retries: 1, quorum: true },
        ];
        let kinds: std::collections::HashSet<_> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), events.len());
    }
}
