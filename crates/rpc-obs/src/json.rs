//! Minimal JSON helpers for the flat JSON-lines trace format.
//!
//! The workspace hand-rolls its JSON (no serde): the writer side only needs
//! string escaping, and the `profile` report pipeline only needs to parse the
//! *flat* objects the [`TraceWriter`](crate::TraceWriter) emits — one object
//! per line, string/number/bool/null values, no nesting.

use std::fmt::Write as _;

/// A scalar JSON value as found in a flat trace object.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A (decoded) string.
    Str(String),
    /// A number, held as `f64` (trace numbers are counters and nanos, all
    /// exactly representable well past any realistic magnitude here).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64`, if this is a non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one flat JSON object line into its key/value pairs, in source
/// order. Returns `None` on anything that is not a single flat object of
/// scalar values — nested objects/arrays are rejected, because the trace
/// format never produces them.
pub fn parse_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_scalar()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return None,
            }
        }
    }
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(pairs)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        if self.next()? == b {
            Some(())
        } else {
            None
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Some(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.next()? as char).to_digit(16)?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-decode UTF-8 continuation bytes by slicing the
                    // source instead of pushing raw bytes.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        while self.peek().is_some_and(|c| c & 0xC0 == 0x80) {
                            self.pos += 1;
                        }
                        out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                    }
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Option<JsonValue> {
        match self.peek()? {
            b'"' => Some(JsonValue::Str(self.parse_string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.pos += 1;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                text.parse().ok().map(JsonValue::Num)
            }
            _ => None,
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Option<JsonValue> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(value)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f µ—✓";
        let mut line = String::from("{");
        escape_into(&mut line, "k");
        line.push(':');
        escape_into(&mut line, nasty);
        line.push('}');
        let pairs = parse_object(&line).expect("parses");
        assert_eq!(pairs, vec![("k".to_string(), JsonValue::Str(nasty.to_string()))]);
    }

    #[test]
    fn parses_flat_objects_in_order() {
        let pairs = parse_object(r#"{"ev":"round","round":3,"done":true,"x":null,"f":-1.5}"#)
            .expect("parses");
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0], ("ev".to_string(), JsonValue::Str("round".to_string())));
        assert_eq!(pairs[1].1.as_u64(), Some(3));
        assert_eq!(pairs[2].1.as_bool(), Some(true));
        assert_eq!(pairs[3].1, JsonValue::Null);
        assert_eq!(pairs[4].1.as_f64(), Some(-1.5));
    }

    #[test]
    fn rejects_nesting_and_trailing_garbage() {
        assert!(parse_object(r#"{"a":{"b":1}}"#).is_none());
        assert!(parse_object(r#"{"a":[1]}"#).is_none());
        assert!(parse_object(r#"{"a":1} extra"#).is_none());
        assert!(parse_object(r#"{"a":1,}"#).is_none());
        assert!(parse_object("").is_none());
    }

    #[test]
    fn empty_object_is_fine() {
        assert_eq!(parse_object("{}"), Some(Vec::new()));
        assert_eq!(parse_object("  { }  "), Some(Vec::new()));
    }
}
