//! # rpc-obs
//!
//! The observability layer of the gossip-density workspace: a zero-cost
//! [`Observer`] trait, a typed event taxonomy ([`ObsEvent`]), and three
//! sinks — a JSON-lines [`TraceWriter`], an in-memory [`Aggregator`], and a
//! live stderr [`ProgressReporter`].
//!
//! ## The zero-cost contract
//!
//! Everything is generic and monomorphized: code instrumented with
//! `O: Observer` compiles, for `O = `[`NoopObserver`], to exactly the code it
//! would be without the instrumentation. [`NoopObserver::record`] is an empty
//! inlined body and [`Observer::ENABLED`] is `false`, so event construction
//! behind an `if O::ENABLED` guard is dead code the optimizer removes. The
//! `obs_overhead` benchmark in `rpc-bench` pins this A/B (no-op observed vs.
//! plain) to within noise, and CI fails if the no-op path regresses the round
//! loop by more than 2%.
//!
//! ## The determinism rule
//!
//! Observers must never feed information *into* the simulation: engines and
//! runners emit events out of band and read nothing back. In particular no
//! wall-clock value is ever read inside a seeded code path — timing lives in
//! the sinks (this crate) and in the sweep coordinator/workers *around* the
//! deterministic work, so an observed run is bit-identical to an unobserved
//! one (property-pinned in `rpc-scenarios/tests/obs_props.rs`).
//!
//! This crate depends on nothing, so every layer of the workspace (graphs,
//! engine, scenarios, experiments, bench) can share its plain-data types:
//! [`DeliveryCore`], [`CoreRounds`], [`DispatchRecord`], [`PoolStats`],
//! [`ReuseStats`].

pub mod aggregate;
pub mod event;
pub mod json;
pub mod progress;
pub mod stats;
pub mod trace;

pub use aggregate::Aggregator;
pub use event::{NoopObserver, ObsEvent, Observer};
pub use json::{escape_into, parse_object, JsonValue};
pub use progress::ProgressReporter;
pub use stats::{CoreRounds, DeliveryCore, DispatchRecord, PoolStats, ReuseStats};
pub use trace::TraceWriter;
