//! The live progress sink.

use std::io::Write;
use std::time::Instant;

use crate::event::{ObsEvent, Observer};

/// An [`Observer`] that prints live sweep progress (cells done, reps
/// executed, ETA) to a writer — stderr by default, so it never mixes with
/// report output on stdout.
///
/// It reads the wall clock, which is fine by the determinism rule: the
/// reporter runs on the sweep coordinator thread, strictly outside seeded
/// code, and nothing it computes flows back into the run.
///
/// To keep output proportional to cells (not repetitions), it prints one
/// line per finished cell plus start/finish banners.
pub struct ProgressReporter<W: Write> {
    out: W,
    started: Instant,
    cells_total: usize,
    cells_done: usize,
    reps_done: u64,
}

impl ProgressReporter<std::io::Stderr> {
    /// A reporter writing to stderr.
    pub fn stderr() -> Self {
        Self::new(std::io::stderr())
    }
}

impl<W: Write> ProgressReporter<W> {
    /// A reporter writing to `out`.
    pub fn new(out: W) -> Self {
        ProgressReporter {
            out,
            started: Instant::now(),
            cells_total: 0,
            cells_done: 0,
            reps_done: 0,
        }
    }

    /// Cells finished so far.
    pub fn cells_done(&self) -> usize {
        self.cells_done
    }

    fn eta(&self) -> Option<f64> {
        if self.cells_done == 0 || self.cells_done >= self.cells_total {
            return None;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let remaining = (self.cells_total - self.cells_done) as f64;
        Some(elapsed / self.cells_done as f64 * remaining)
    }

    fn line(&mut self, text: &str) {
        // Progress output is best-effort; a dead stderr must not kill a sweep.
        let _ = writeln!(self.out, "{text}");
        let _ = self.out.flush();
    }
}

impl<W: Write> Observer for ProgressReporter<W> {
    fn record(&mut self, event: &ObsEvent<'_>) {
        match *event {
            ObsEvent::SweepStarted { sweep, cells, threads } => {
                self.started = Instant::now();
                self.cells_total = cells;
                self.cells_done = 0;
                self.reps_done = 0;
                self.line(&format!("[{sweep}] {cells} cells on {threads} threads"));
            }
            ObsEvent::RepFinished { .. } => {
                self.reps_done += 1;
            }
            ObsEvent::CellFinished { sweep, cell, reps, cached } => {
                self.cells_done += 1;
                let done = self.cells_done;
                let total = self.cells_total;
                let reps_done = self.reps_done;
                let mut msg = format!(
                    "[{sweep}] {done}/{total} cells  {reps_done} reps  {cell}: {reps} reps{}",
                    if cached { " (cached)" } else { "" }
                );
                if let Some(eta) = self.eta() {
                    use std::fmt::Write as _;
                    let _ = write!(msg, "  eta {eta:.0}s");
                }
                self.line(&msg);
            }
            ObsEvent::SweepFinished { sweep, cells, executed_reps, cached_cells } => {
                let secs = self.started.elapsed().as_secs_f64();
                self.line(&format!(
                    "[{sweep}] done: {cells} cells, {executed_reps} reps executed, \
                     {cached_cells} cached, {secs:.1}s"
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_per_cell_lines_and_counts_reps() {
        let mut rep = ProgressReporter::new(Vec::new());
        rep.record(&ObsEvent::SweepStarted { sweep: "fig1", cells: 2, threads: 4 });
        for i in 0..3 {
            rep.record(&ObsEvent::RepFinished {
                sweep: "fig1",
                cell: "a",
                rep: i,
                wall_nanos: 1,
                rounds: 1,
                cores: Default::default(),
            });
        }
        rep.record(&ObsEvent::CellFinished { sweep: "fig1", cell: "a", reps: 3, cached: false });
        rep.record(&ObsEvent::CellFinished { sweep: "fig1", cell: "b", reps: 2, cached: true });
        rep.record(&ObsEvent::SweepFinished {
            sweep: "fig1",
            cells: 2,
            executed_reps: 3,
            cached_cells: 1,
        });
        assert_eq!(rep.cells_done(), 2);
        let text = String::from_utf8(rep.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("2 cells on 4 threads"));
        assert!(lines[1].contains("1/2 cells"));
        assert!(lines[1].contains("3 reps"));
        assert!(lines[1].contains("eta"));
        assert!(lines[2].contains("(cached)"));
        assert!(lines[3].contains("done: 2 cells, 3 reps executed, 1 cached"));
    }

    #[test]
    fn dispatch_events_do_not_print() {
        let mut rep = ProgressReporter::new(Vec::new());
        rep.record(&ObsEvent::Round {
            round: 0,
            fully_informed: 0,
            tracked_informed: 0,
            packets: 0,
        });
        assert!(rep.out.is_empty());
    }
}
