//! Plain counter types shared across the workspace layers.
//!
//! These are deliberately dumb data: the engine, the graph arena and the
//! pools update them unconditionally (a handful of integer adds per round —
//! cheap enough to keep always on), and the generic observer plumbing in the
//! scenario layer turns them into [`ObsEvent`](crate::ObsEvent)s when an
//! observer is attached.

/// The delivery core the adaptive dispatch picked for one deferred batch.
///
/// The engine chooses per round from the batch shape (see the dispatch
/// comment in `rpc_engine::Simulation::deliver`): *scalar* for sequential
/// cache-resident or sparse batches, *eager* for sequential larger-than-cache
/// dense batches, *batch* whenever worker threads are configured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeliveryCore {
    /// Sequential small-n / sparse-batch core.
    #[default]
    Scalar,
    /// Sequential chain-ordered core with reader-gated commits.
    Eager,
    /// Multi-threaded compute-then-commit core.
    Batch,
}

impl DeliveryCore {
    /// Stable lower-case label (used in traces and CSV columns).
    pub fn as_str(self) -> &'static str {
        match self {
            DeliveryCore::Scalar => "scalar",
            DeliveryCore::Eager => "eager",
            DeliveryCore::Batch => "batch",
        }
    }
}

/// How many delivery batches each core has executed.
///
/// These counts are *diagnostics*, not results: they depend on the configured
/// thread count (threads > 1 always dispatches to the batch core), so the
/// scenario layer excludes them from outcome/trace equality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreRounds {
    /// Batches taken by the scalar core.
    pub scalar: u64,
    /// Batches taken by the eager core.
    pub eager: u64,
    /// Batches taken by the batch (multi-threaded) core.
    pub batch: u64,
}

impl CoreRounds {
    /// Counts one batch executed by `core`.
    pub fn record(&mut self, core: DeliveryCore) {
        match core {
            DeliveryCore::Scalar => self.scalar += 1,
            DeliveryCore::Eager => self.eager += 1,
            DeliveryCore::Batch => self.batch += 1,
        }
    }

    /// Total batches across all cores.
    pub fn total(self) -> u64 {
        self.scalar + self.eager + self.batch
    }

    /// The per-core increments since an earlier snapshot `prev`.
    pub fn since(self, prev: CoreRounds) -> CoreRounds {
        CoreRounds {
            scalar: self.scalar - prev.scalar,
            eager: self.eager - prev.eager,
            batch: self.batch - prev.batch,
        }
    }

    /// Adds another count set (used when aggregating repetitions).
    pub fn merge(&mut self, other: CoreRounds) {
        self.scalar += other.scalar;
        self.eager += other.eager;
        self.batch += other.batch;
    }
}

/// One adaptive-dispatch decision together with the inputs that drove it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchRecord {
    /// The chosen core.
    pub core: DeliveryCore,
    /// Network size (nodes).
    pub n: usize,
    /// Effective packets in the batch (after loss/crash/churn filtering).
    pub packets: usize,
    /// Whether the batch was classified as sparse (`packets * 8 < n`).
    pub sparse: bool,
    /// Whether the state table was classified as cache-resident.
    pub cache_resident: bool,
    /// Configured engine worker threads.
    pub threads: usize,
}

/// Buffer-pool counters: checkouts, cold allocations and the pool's
/// high-water mark. Tracked on the sequential delivery cores (the batch
/// core's worker-local pools are consumed inside the crossbeam scope and are
/// not merged back).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer checkouts (pool pops, whether or not the pool could serve).
    pub checkouts: u64,
    /// Checkouts the pool could not serve (a fresh buffer was allocated).
    pub fresh: u64,
    /// Largest number of parked full-width buffers ever observed.
    pub high_water: usize,
}

impl PoolStats {
    /// Counts one checkout; `fresh` says whether the pool was empty.
    pub fn record_checkout(&mut self, fresh: bool) {
        self.checkouts += 1;
        self.fresh += u64::from(fresh);
    }

    /// Updates the high-water mark after buffers were returned.
    pub fn record_parked(&mut self, parked: usize) {
        self.high_water = self.high_water.max(parked);
    }

    /// Checkouts served from the pool without allocating.
    pub fn reused(self) -> u64 {
        self.checkouts - self.fresh
    }
}

/// Reuse-vs-fresh counters for arena-style storage (graph arenas, parked
/// simulations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Checkouts that reused parked storage.
    pub reused: u64,
    /// Checkouts that had to allocate from scratch.
    pub fresh: u64,
}

impl ReuseStats {
    /// Counts one checkout.
    pub fn record(&mut self, reused: bool) {
        if reused {
            self.reused += 1;
        } else {
            self.fresh += 1;
        }
    }

    /// Total checkouts.
    pub fn total(self) -> u64 {
        self.reused + self.fresh
    }

    /// The increments since an earlier snapshot `prev`.
    pub fn since(self, prev: ReuseStats) -> ReuseStats {
        ReuseStats { reused: self.reused - prev.reused, fresh: self.fresh - prev.fresh }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_rounds_record_and_diff() {
        let mut c = CoreRounds::default();
        c.record(DeliveryCore::Scalar);
        c.record(DeliveryCore::Scalar);
        c.record(DeliveryCore::Batch);
        assert_eq!(c, CoreRounds { scalar: 2, eager: 0, batch: 1 });
        assert_eq!(c.total(), 3);
        let snap = c;
        c.record(DeliveryCore::Eager);
        assert_eq!(c.since(snap), CoreRounds { scalar: 0, eager: 1, batch: 0 });
        let mut sum = snap;
        sum.merge(c);
        assert_eq!(sum.total(), snap.total() + c.total());
    }

    #[test]
    fn pool_stats_track_fresh_and_high_water() {
        let mut p = PoolStats::default();
        p.record_checkout(true);
        p.record_checkout(false);
        p.record_parked(3);
        p.record_parked(1);
        assert_eq!(p.checkouts, 2);
        assert_eq!(p.fresh, 1);
        assert_eq!(p.reused(), 1);
        assert_eq!(p.high_water, 3);
    }

    #[test]
    fn reuse_stats_split_by_outcome() {
        let mut r = ReuseStats::default();
        r.record(false);
        r.record(true);
        r.record(true);
        assert_eq!(r, ReuseStats { reused: 2, fresh: 1 });
        assert_eq!(r.total(), 3);
        assert_eq!(r.since(ReuseStats { reused: 1, fresh: 1 }), ReuseStats { reused: 1, fresh: 0 });
    }

    #[test]
    fn core_labels_are_stable() {
        assert_eq!(DeliveryCore::Scalar.as_str(), "scalar");
        assert_eq!(DeliveryCore::Eager.as_str(), "eager");
        assert_eq!(DeliveryCore::Batch.as_str(), "batch");
    }
}
