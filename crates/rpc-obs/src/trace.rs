//! The JSON-lines trace sink.

use std::io::Write;

use crate::event::{ObsEvent, Observer};
use crate::json::escape_into;
use crate::stats::CoreRounds;

/// An [`Observer`] that serializes every event as one flat JSON object per
/// line (the format `experiments profile` consumes).
///
/// I/O errors latch: the first failed write disables the sink and is
/// reported by [`TraceWriter::error`] / [`TraceWriter::finish`], so the hot
/// path never panics and never retries a dead file descriptor.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    line: String,
    error: Option<std::io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out`; every recorded event becomes one line.
    pub fn new(out: W) -> Self {
        TraceWriter { out, line: String::with_capacity(256), error: None }
    }

    /// The first I/O error, if any write failed.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer, or the first latched
    /// error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_line(&mut self) {
        if self.error.is_some() {
            return;
        }
        self.line.push('\n');
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

/// Incrementally builds one flat JSON object in a reused `String`.
struct Obj<'a> {
    line: &'a mut String,
}

impl<'a> Obj<'a> {
    fn new(line: &'a mut String, kind: &str) -> Self {
        line.clear();
        line.push_str("{\"ev\":");
        escape_into(line, kind);
        Obj { line }
    }

    fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.line.push(',');
        escape_into(self.line, key);
        self.line.push(':');
        escape_into(self.line, value);
        self
    }

    fn num(&mut self, key: &str, value: u64) -> &mut Self {
        use std::fmt::Write as _;
        self.line.push(',');
        escape_into(self.line, key);
        let _ = write!(self.line, ":{value}");
        self
    }

    fn boolean(&mut self, key: &str, value: bool) -> &mut Self {
        self.line.push(',');
        escape_into(self.line, key);
        self.line.push(':');
        self.line.push_str(if value { "true" } else { "false" });
        self
    }

    fn cores(&mut self, cores: CoreRounds) -> &mut Self {
        self.num("scalar_rounds", cores.scalar)
            .num("eager_rounds", cores.eager)
            .num("batch_rounds", cores.batch)
    }

    fn close(self) {
        self.line.push('}');
    }
}

impl<W: Write> Observer for TraceWriter<W> {
    fn record(&mut self, event: &ObsEvent<'_>) {
        let mut obj = Obj::new(&mut self.line, event.kind());
        match *event {
            ObsEvent::SweepStarted { sweep, cells, threads } => {
                obj.str("sweep", sweep).num("cells", cells as u64).num("threads", threads as u64);
            }
            ObsEvent::CellStarted { sweep, cell, index, target_reps } => {
                obj.str("sweep", sweep)
                    .str("cell", cell)
                    .num("index", index as u64)
                    .num("target_reps", target_reps as u64);
            }
            ObsEvent::CacheHit { sweep, cell, reps } => {
                obj.str("sweep", sweep).str("cell", cell).num("reps", reps as u64);
            }
            ObsEvent::BatchScheduled { sweep, tasks } => {
                obj.str("sweep", sweep).num("tasks", tasks as u64);
            }
            ObsEvent::RepFinished { sweep, cell, rep, wall_nanos, rounds, cores } => {
                obj.str("sweep", sweep)
                    .str("cell", cell)
                    .num("rep", rep as u64)
                    .num("wall_nanos", wall_nanos)
                    .num("rounds", rounds)
                    .cores(cores);
            }
            ObsEvent::CiStop { sweep, cell, reps } => {
                obj.str("sweep", sweep).str("cell", cell).num("reps", reps as u64);
            }
            ObsEvent::CellFinished { sweep, cell, reps, cached } => {
                obj.str("sweep", sweep)
                    .str("cell", cell)
                    .num("reps", reps as u64)
                    .boolean("cached", cached);
            }
            ObsEvent::SweepFinished { sweep, cells, executed_reps, cached_cells } => {
                obj.str("sweep", sweep)
                    .num("cells", cells as u64)
                    .num("executed_reps", executed_reps as u64)
                    .num("cached_cells", cached_cells as u64);
            }
            ObsEvent::Dispatch { round, record } => {
                obj.num("round", round)
                    .str("core", record.core.as_str())
                    .num("n", record.n as u64)
                    .num("packets", record.packets as u64)
                    .boolean("sparse", record.sparse)
                    .boolean("cache_resident", record.cache_resident)
                    .num("threads", record.threads as u64);
            }
            ObsEvent::Round { round, fully_informed, tracked_informed, packets } => {
                obj.num("round", round)
                    .num("fully_informed", fully_informed as u64)
                    .num("tracked_informed", tracked_informed as u64)
                    .num("packets", packets);
            }
            ObsEvent::Rumors { round, injected, expired, in_flight, complete } => {
                obj.num("round", round)
                    .num("injected", injected as u64)
                    .num("expired", expired as u64)
                    .num("in_flight", in_flight as u64)
                    .num("complete", complete as u64);
            }
            ObsEvent::RumorComplete { rumor, round } => {
                obj.num("rumor", rumor as u64).num("round", round);
            }
            ObsEvent::RunFinished { rounds, total_packets, cores } => {
                obj.num("rounds", rounds).num("total_packets", total_packets).cores(cores);
            }
            ObsEvent::Pool { stats } => {
                obj.num("checkouts", stats.checkouts)
                    .num("fresh", stats.fresh)
                    .num("high_water", stats.high_water as u64);
            }
            ObsEvent::Arena { graph, sim } => {
                obj.num("graph_reused", graph.reused)
                    .num("graph_fresh", graph.fresh)
                    .num("sim_reused", sim.reused)
                    .num("sim_fresh", sim.fresh);
            }
            ObsEvent::TransportFault { round, kind, from, to } => {
                obj.num("round", round).str("kind", kind).str("from", from).str("to", to);
            }
            ObsEvent::RetryTimeout { round, attempt, backoff, missing } => {
                obj.num("round", round)
                    .num("attempt", attempt as u64)
                    .num("backoff", backoff)
                    .num("missing", missing as u64);
            }
            ObsEvent::RoundAdvanced { round, acks, expected, retries, quorum } => {
                obj.num("round", round)
                    .num("acks", acks as u64)
                    .num("expected", expected as u64)
                    .num("retries", retries as u64)
                    .boolean("quorum", quorum);
            }
        }
        obj.close();
        self.write_line();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_object, JsonValue};
    use crate::stats::{DeliveryCore, DispatchRecord, PoolStats, ReuseStats};

    fn lines_of(events: &[ObsEvent<'_>]) -> Vec<String> {
        let mut w = TraceWriter::new(Vec::new());
        for e in events {
            w.record(e);
        }
        let buf = w.finish().expect("no io error on Vec");
        String::from_utf8(buf).unwrap().lines().map(str::to_string).collect()
    }

    #[test]
    fn every_event_serializes_to_a_parseable_flat_object() {
        let events = [
            ObsEvent::SweepStarted { sweep: "fig1", cells: 3, threads: 2 },
            ObsEvent::CellStarted { sweep: "fig1", cell: "n=1024", index: 0, target_reps: 4 },
            ObsEvent::CacheHit { sweep: "fig1", cell: "n=2048", reps: 8 },
            ObsEvent::BatchScheduled { sweep: "fig1", tasks: 12 },
            ObsEvent::RepFinished {
                sweep: "fig1",
                cell: "n=1024",
                rep: 2,
                wall_nanos: 1234,
                rounds: 17,
                cores: CoreRounds { scalar: 10, eager: 3, batch: 4 },
            },
            ObsEvent::CiStop { sweep: "fig1", cell: "n=1024", reps: 6 },
            ObsEvent::CellFinished { sweep: "fig1", cell: "n=1024", reps: 6, cached: false },
            ObsEvent::SweepFinished { sweep: "fig1", cells: 3, executed_reps: 14, cached_cells: 1 },
            ObsEvent::Dispatch {
                round: 5,
                record: DispatchRecord {
                    core: DeliveryCore::Eager,
                    n: 4096,
                    packets: 900,
                    sparse: false,
                    cache_resident: false,
                    threads: 1,
                },
            },
            ObsEvent::Round { round: 5, fully_informed: 100, tracked_informed: 4000, packets: 88 },
            ObsEvent::Rumors { round: 5, injected: 8, expired: 1, in_flight: 4, complete: 3 },
            ObsEvent::RumorComplete { rumor: 2, round: 5 },
            ObsEvent::RunFinished {
                rounds: 17,
                total_packets: 5000,
                cores: CoreRounds { scalar: 17, eager: 0, batch: 0 },
            },
            ObsEvent::Pool { stats: PoolStats { checkouts: 40, fresh: 2, high_water: 5 } },
            ObsEvent::Arena {
                graph: ReuseStats { reused: 3, fresh: 1 },
                sim: ReuseStats { reused: 4, fresh: 1 },
            },
            ObsEvent::TransportFault { round: 3, kind: "drop", from: "n2", to: "n4" },
            ObsEvent::RetryTimeout { round: 3, attempt: 1, backoff: 16, missing: 2 },
            ObsEvent::RoundAdvanced { round: 3, acks: 4, expected: 5, retries: 1, quorum: true },
        ];
        let lines = lines_of(&events);
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let pairs = parse_object(line).unwrap_or_else(|| panic!("unparseable line: {line}"));
            assert_eq!(pairs[0], ("ev".to_string(), JsonValue::Str(event.kind().to_string())));
        }
    }

    #[test]
    fn dispatch_line_round_trips_exact_fields() {
        let lines = lines_of(&[ObsEvent::Dispatch {
            round: 9,
            record: DispatchRecord {
                core: DeliveryCore::Batch,
                n: 1 << 20,
                packets: 7,
                sparse: true,
                cache_resident: false,
                threads: 8,
            },
        }]);
        let pairs = parse_object(&lines[0]).unwrap();
        let get = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone()).unwrap();
        assert_eq!(get("core").as_str(), Some("batch"));
        assert_eq!(get("n").as_u64(), Some(1 << 20));
        assert_eq!(get("packets").as_u64(), Some(7));
        assert_eq!(get("sparse").as_bool(), Some(true));
        assert_eq!(get("cache_resident").as_bool(), Some(false));
        assert_eq!(get("threads").as_u64(), Some(8));
    }

    #[test]
    fn io_errors_latch_instead_of_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::new(Broken);
        w.record(&ObsEvent::BatchScheduled { sweep: "s", tasks: 1 });
        w.record(&ObsEvent::BatchScheduled { sweep: "s", tasks: 2 });
        assert!(w.error().is_some());
        assert!(w.finish().is_err());
    }
}
