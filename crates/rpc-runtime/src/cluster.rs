//! The in-process cluster harness: a deterministic, single-threaded
//! event scheduler driving one [`Coordinator`] and `n` [`NodeHost`]s over
//! channel transports, with every message routed through a [`Nemesis`].
//!
//! Time is a virtual tick counter. Every message costs one base tick of
//! latency; the nemesis can add delay, drop the message, or duplicate it.
//! Delivery order is a strict `(due, sequence)` total order, so for a fixed
//! `(scenario, seed, config)` the entire run — every delivery, every fault,
//! every retry — replays bit-identically. That determinism is what the
//! differential suite leans on: with a benign nemesis the cluster's
//! per-round trace must equal the in-process simulator's, row for row.
//!
//! Crash-restart is enacted here (the nemesis only *declares* windows): when
//! a node's crash window opens, its actor is destroyed after persisting its
//! rumor store words; when the window closes, a fresh actor is rebuilt from
//! the persisted words via [`NodeActor::restart`]. The persisted snapshots
//! are kept in the outcome's [`CrashAudit`]s so tests can assert that a
//! rejoined node's final state contains everything it had saved.

use std::collections::BinaryHeap;

use rpc_graphs::NodeId;
use rpc_obs::{NoopObserver, Observer};
use rpc_scenarios::{plan_runtime, scenario_engine_seeds, Scenario, ScenarioError, StoppedBy};

use crate::host::{ChannelEnds, ChannelTransport, NodeHost};
use crate::nemesis::{FaultStats, Nemesis, NemesisSpec};
use crate::node::NodeActor;
use crate::sync::{Coordinator, RetryPolicy, RuntimeRow};
use crate::wire::{parse_node_name, Body, Envelope, COORDINATOR};

/// Everything configurable about a cluster run besides the scenario itself.
#[derive(Clone, Debug, Default)]
pub struct ClusterConfig {
    /// The coordinator's timeout/retry knobs.
    pub policy: RetryPolicy,
    /// The fault schedule (benign by default).
    pub nemesis: NemesisSpec,
}

impl ClusterConfig {
    /// A benign config with default retry policy.
    pub fn benign() -> Self {
        ClusterConfig::default()
    }
}

/// The rumor-store snapshot persisted when a node crashed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashAudit {
    /// The crashed node.
    pub node: NodeId,
    /// Its store words at crash time.
    pub persisted: Vec<u64>,
}

/// What a cluster run produced.
#[derive(Clone, Debug)]
pub struct RuntimeOutcome {
    /// Whether the stop rule was satisfied (mirrors `StoppedBy::satisfied`).
    pub completed: bool,
    /// Why the run stopped.
    pub stopped_by: StoppedBy,
    /// Rounds the cluster completed.
    pub rounds: u64,
    /// Cumulative packets across all acked rounds.
    pub total_packets: u64,
    /// Cumulative opened channels across all acked rounds.
    pub total_exchanges: u64,
    /// The per-round trace (round 0 first) — the simulator-equality anchor.
    pub trace: Vec<RuntimeRow>,
    /// Retransmissions the coordinator sent.
    pub retries: u64,
    /// Rounds advanced degraded (quorum or retry exhaustion).
    pub quorum_advances: u64,
    /// Faults the nemesis injected.
    pub faults: FaultStats,
    /// Final reported rumor count per node.
    pub final_counts: Vec<u64>,
    /// Final rumor-store words per node (persisted snapshot for a node that
    /// ended the run inside a crash window).
    pub final_words: Vec<Vec<u64>>,
    /// Per-round snapshots of the reported per-node counts (round 0 first).
    pub count_history: Vec<Vec<u64>>,
    /// Store snapshots persisted at each crash.
    pub crash_audits: Vec<CrashAudit>,
    /// Whether any surviving node held a rumor that never arrived in a
    /// payload (must always be `false`; see `NodeActor::no_forged_rumors`).
    pub forged: bool,
}

/// One scheduled delivery; min-ordered by `(due, seq)`.
struct InFlight {
    due: u64,
    seq: u64,
    env: Envelope,
}

/// The delivery queue plus its FIFO tiebreaker counter.
struct Scheduler {
    queue: BinaryHeap<InFlight>,
    seq: u64,
}

impl Scheduler {
    /// Enqueues one envelope for delivery at `due`, preserving send order
    /// among same-instant deliveries.
    fn push_at(&mut self, due: u64, env: Envelope) {
        self.seq += 1;
        self.queue.push(InFlight { due, seq: self.seq, env });
    }
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest delivery.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// Runs `scenario` on the node runtime under `config`, unobserved.
pub fn run_cluster(
    scenario: &Scenario,
    seed: u64,
    config: &ClusterConfig,
) -> Result<RuntimeOutcome, ScenarioError> {
    run_cluster_observed(scenario, seed, config, &mut NoopObserver)
}

/// [`run_cluster`] with an observer receiving the full event stream:
/// per-round `Round` events, `TransportFault`s, `RetryTimeout`s and
/// `RoundAdvanced`s.
pub fn run_cluster_observed<O: Observer>(
    scenario: &Scenario,
    seed: u64,
    config: &ClusterConfig,
    obs: &mut O,
) -> Result<RuntimeOutcome, ScenarioError> {
    let graph = scenario.topology.build().generate(scenario_engine_seeds(seed).0);
    let plan = plan_runtime(scenario, seed, &graph)?;
    let n = plan.n;

    let mut hosts: Vec<Option<NodeHost<'_, ChannelTransport>>> = Vec::with_capacity(n);
    let mut ends: Vec<ChannelEnds> = Vec::with_capacity(n);
    for k in 0..n {
        let (transport, end) = ChannelTransport::pair();
        hosts.push(Some(NodeHost::new(NodeActor::new(&graph, &plan, k as NodeId), transport)));
        ends.push(end);
    }
    let mut coordinator = Coordinator::new(plan.clone(), config.policy, &scenario.name, seed);
    let mut nemesis = Nemesis::new(config.nemesis.clone());

    let mut sched = Scheduler { queue: BinaryHeap::new(), seq: 0 };
    let mut now: u64 = 0;
    let mut down = vec![false; n];
    let mut persisted: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut crash_audits: Vec<CrashAudit> = Vec::new();

    // Routes one outbound envelope: ticks go straight to the scheduler,
    // everything else passes through the nemesis.
    fn route<O: Observer>(
        env: Envelope,
        now: u64,
        sched: &mut Scheduler,
        nemesis: &mut Nemesis,
        round: u64,
        n: usize,
        obs: &mut O,
    ) {
        let delays: Vec<u64> = if matches!(env.body, Body::Tick { .. }) {
            // Timers are local to the coordinator: exact, fault-free.
            let Body::Tick { after, .. } = env.body else { unreachable!() };
            sched.push_at(now + after, env);
            return;
        } else {
            nemesis.route(&env, round, n, obs)
        };
        for extra in delays {
            sched.push_at(now + 1 + extra, env.clone());
        }
    }

    for env in coordinator.start() {
        route(env, now, &mut sched, &mut nemesis, 0, n, obs);
    }

    // Backstop far above any real run (rounds × n × retries is tiny by
    // comparison); tripping it means the scheduler is wedged, which is a
    // bug, not a scenario property.
    let mut budget: u64 = 10_000_000;
    while !coordinator.finished() {
        let Some(InFlight { due, env, .. }) = sched.queue.pop() else {
            return Err(ScenarioError::Invalid(
                "runtime scheduler drained its queue before the stop rule fired".into(),
            ));
        };
        budget -= 1;
        if budget == 0 {
            return Err(ScenarioError::Invalid(
                "runtime scheduler exceeded its delivery budget".into(),
            ));
        }
        now = due;
        let round = coordinator.current_round();

        // Enact crash-window transitions declared by the nemesis.
        for k in 0..n {
            let in_window = nemesis.crashed(k as NodeId, round);
            if in_window && !down[k] {
                if let Some(host) = hosts[k].take() {
                    persisted[k] = host.actor().store().words().to_vec();
                    crash_audits
                        .push(CrashAudit { node: k as NodeId, persisted: persisted[k].clone() });
                    nemesis.note_crash();
                }
                down[k] = true;
            } else if !in_window && down[k] {
                let (transport, end) = ChannelTransport::pair();
                hosts[k] = Some(NodeHost::new(
                    NodeActor::restart(&graph, &plan, k as NodeId, &persisted[k]),
                    transport,
                ));
                ends[k] = end;
                nemesis.note_restart();
                down[k] = false;
            }
        }

        // Deliver.
        let replies: Vec<Envelope> = if env.dest == COORDINATOR {
            coordinator.handle(&env, obs)
        } else if let Some(k) = parse_node_name(&env.dest).map(|id| id as usize) {
            if k >= n || down[k] {
                // The window opened between send and delivery.
                Vec::new()
            } else if let Some(host) = hosts[k].as_mut() {
                ends[k]
                    .tx
                    .send(env)
                    .map_err(|_| ScenarioError::Invalid("node inbox disconnected".into()))?;
                host.pump()
                    .map_err(|e| ScenarioError::Invalid(format!("node transport failed: {e}")))?;
                let mut out = Vec::new();
                while let Ok(reply) = ends[k].rx.try_recv() {
                    out.push(reply);
                }
                out
            } else {
                Vec::new()
            }
        } else {
            Vec::new()
        };
        let round = coordinator.current_round();
        for reply in replies {
            route(reply, now, &mut sched, &mut nemesis, round, n, obs);
        }
    }

    let stopped_by = coordinator.stopped_by().expect("a finished coordinator names its stop cause");
    let final_words: Vec<Vec<u64>> = (0..n)
        .map(|k| match hosts[k].as_ref() {
            Some(host) => host.actor().store().words().to_vec(),
            None => persisted[k].clone(),
        })
        .collect();
    let forged = hosts.iter().flatten().any(|host| !host.actor().no_forged_rumors());
    Ok(RuntimeOutcome {
        completed: stopped_by.satisfied(),
        stopped_by,
        rounds: coordinator.rounds(),
        total_packets: coordinator.total_packets(),
        total_exchanges: coordinator.total_exchanges(),
        trace: coordinator.trace().to_vec(),
        retries: coordinator.retries(),
        quorum_advances: coordinator.quorum_advances(),
        faults: *nemesis.stats(),
        final_counts: coordinator.counts().to_vec(),
        final_words,
        count_history: coordinator.count_history().to_vec(),
        crash_audits,
        forged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_scenarios::registry;

    #[test]
    fn benign_cluster_completes_sparse_er() {
        let scenario = registry::find("sparse-er", 16).unwrap();
        let outcome = run_cluster(&scenario, 3, &ClusterConfig::benign()).unwrap();
        assert!(outcome.completed);
        assert_eq!(outcome.stopped_by, StoppedBy::Complete);
        assert!(!outcome.forged);
        assert_eq!(outcome.retries, 0, "a benign run never times out");
        assert_eq!(outcome.faults, FaultStats::default());
        // Trace shape: one row per round plus round 0.
        assert_eq!(outcome.trace.len() as u64, outcome.rounds + 1);
        assert_eq!(outcome.trace[0].round, 0);
        assert_eq!(outcome.trace.last().unwrap().fully_informed, 16);
        // Everyone ends fully informed.
        assert!(outcome.final_counts.iter().all(|&c| c == 16));
    }

    #[test]
    fn benign_cluster_runs_are_deterministic() {
        let scenario = registry::find("dense-er", 16).unwrap();
        let a = run_cluster(&scenario, 11, &ClusterConfig::benign()).unwrap();
        let b = run_cluster(&scenario, 11, &ClusterConfig::benign()).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.final_counts, b.final_counts);
        assert_eq!(a.total_packets, b.total_packets);
    }

    #[test]
    fn dropping_nemesis_still_completes_via_retries() {
        let scenario = registry::find("sparse-er", 16).unwrap();
        let config = ClusterConfig {
            nemesis: NemesisSpec::parse("drop=0.1,seed=5").unwrap(),
            ..ClusterConfig::default()
        };
        let outcome = run_cluster(&scenario, 3, &config).unwrap();
        assert!(outcome.completed, "stopped by {:?}", outcome.stopped_by);
        assert!(!outcome.forged);
        assert!(outcome.faults.dropped > 0, "the nemesis actually dropped packets");
    }

    #[test]
    fn crash_restart_rejoins_with_persisted_state() {
        let scenario = registry::find("sparse-er", 16).unwrap();
        let config = ClusterConfig {
            nemesis: NemesisSpec::parse("crash=2@2+2,seed=1").unwrap(),
            ..ClusterConfig::default()
        };
        let outcome = run_cluster(&scenario, 3, &config).unwrap();
        assert!(outcome.completed, "stopped by {:?}", outcome.stopped_by);
        assert!(!outcome.forged);
        assert_eq!(outcome.faults.crashes, 1);
        assert_eq!(outcome.faults.restarts, 1);
        assert_eq!(outcome.crash_audits.len(), 1);
        let audit = &outcome.crash_audits[0];
        assert_eq!(audit.node, 2);
        // The rejoined node's final store contains everything it persisted.
        let final_words = &outcome.final_words[2];
        for (w, p) in final_words.iter().zip(&audit.persisted) {
            assert_eq!(p & !w, 0, "persisted rumors survive the restart");
        }
    }
}
