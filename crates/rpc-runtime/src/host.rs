//! Transports and the node host: how an actor meets the outside world.
//!
//! [`Transport`] is the runtime's only I/O abstraction — send an envelope,
//! receive the next one — with two implementations:
//!
//! * [`ChannelTransport`]: in-process `std::sync::mpsc` queues. The cluster
//!   harness drives every node through one of these, which keeps actors
//!   genuinely behind the transport seam while the whole run stays
//!   single-threaded and deterministic.
//! * [`StdioTransport`]: one JSON envelope per line over any
//!   `BufRead`/`Write` pair — in production stdin/stdout, so a node is a
//!   plain OS process (`experiments node`) a Maelstrom-style harness can
//!   spawn and wire up.
//!
//! [`serve`] is the deployable node's main loop: wait for `init`, build the
//! graph and plan locally from the announced `(scenario, n, seed)`, then
//! pump messages until EOF — answering every undecodable line with a
//! structured `error` envelope instead of dying, and persisting the rumor
//! store to an optional state file so a supervisor can crash and restart the
//! process without losing state.

use std::io::{BufRead, Write};
use std::path::Path;

use rpc_graphs::Graph;
use rpc_scenarios::{plan_runtime, registry, scenario_engine_seeds, RuntimePlan};

use crate::node::NodeActor;
use crate::store::RumorStore;
use crate::wire::{Body, Envelope, WireError, CODE_UNUSABLE};

/// A transport failure.
#[derive(Debug)]
pub enum TransportError {
    /// The underlying byte stream failed.
    Io(std::io::Error),
    /// The peer hung up (a disconnected channel).
    Closed,
    /// A received line failed to decode. Recoverable: the connection is
    /// still usable, the offending line is simply not a message.
    Wire(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Wire(e) => write!(f, "undecodable message: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// One node's connection to the rest of the cluster.
pub trait Transport {
    /// Sends one envelope.
    fn send(&mut self, env: &Envelope) -> Result<(), TransportError>;

    /// Receives the next envelope. `Ok(None)` means the stream is exhausted
    /// — EOF for a stdio transport, "nothing pending right now" for a
    /// channel transport. [`TransportError::Wire`] is recoverable: the line
    /// was garbage but the stream lives on.
    fn recv(&mut self) -> Result<Option<Envelope>, TransportError>;
}

/// JSON-lines over a `BufRead`/`Write` pair (stdin/stdout in production).
#[derive(Debug)]
pub struct StdioTransport<R: BufRead, W: Write> {
    input: R,
    output: W,
    line: String,
}

impl<R: BufRead, W: Write> StdioTransport<R, W> {
    /// A transport reading envelopes from `input` and writing to `output`.
    pub fn new(input: R, output: W) -> Self {
        StdioTransport { input, output, line: String::new() }
    }

    /// Consumes the transport, returning the output writer (for tests that
    /// inspect what a served node wrote).
    pub fn into_output(self) -> W {
        self.output
    }
}

impl<R: BufRead, W: Write> Transport for StdioTransport<R, W> {
    fn send(&mut self, env: &Envelope) -> Result<(), TransportError> {
        self.output.write_all(env.encode().as_bytes())?;
        self.output.write_all(b"\n")?;
        self.output.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Envelope>, TransportError> {
        loop {
            self.line.clear();
            if self.input.read_line(&mut self.line)? == 0 {
                return Ok(None);
            }
            let line = self.line.trim();
            if line.is_empty() {
                continue;
            }
            return Envelope::decode(line).map(Some).map_err(TransportError::Wire);
        }
    }
}

/// The far ends of a [`ChannelTransport`]: what the harness holds.
#[derive(Debug)]
pub struct ChannelEnds {
    /// Feeds the node's inbox.
    pub tx: std::sync::mpsc::Sender<Envelope>,
    /// Drains the node's outbox.
    pub rx: std::sync::mpsc::Receiver<Envelope>,
}

/// In-process transport over `std::sync::mpsc` queues.
#[derive(Debug)]
pub struct ChannelTransport {
    inbox: std::sync::mpsc::Receiver<Envelope>,
    outbox: std::sync::mpsc::Sender<Envelope>,
}

impl ChannelTransport {
    /// A connected transport plus the harness-side [`ChannelEnds`].
    pub fn pair() -> (ChannelTransport, ChannelEnds) {
        let (in_tx, in_rx) = std::sync::mpsc::channel();
        let (out_tx, out_rx) = std::sync::mpsc::channel();
        (ChannelTransport { inbox: in_rx, outbox: out_tx }, ChannelEnds { tx: in_tx, rx: out_rx })
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, env: &Envelope) -> Result<(), TransportError> {
        self.outbox.send(env.clone()).map_err(|_| TransportError::Closed)
    }

    fn recv(&mut self) -> Result<Option<Envelope>, TransportError> {
        match self.inbox.try_recv() {
            Ok(env) => Ok(Some(env)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

/// One actor bound to one transport.
#[derive(Debug)]
pub struct NodeHost<'g, T: Transport> {
    actor: NodeActor<'g>,
    transport: T,
}

impl<'g, T: Transport> NodeHost<'g, T> {
    /// Binds `actor` to `transport`.
    pub fn new(actor: NodeActor<'g>, transport: T) -> Self {
        NodeHost { actor, transport }
    }

    /// The hosted actor.
    pub fn actor(&self) -> &NodeActor<'g> {
        &self.actor
    }

    /// Drains every pending inbound message, handling each and sending the
    /// replies. Returns how many messages were processed.
    pub fn pump(&mut self) -> Result<usize, TransportError> {
        let mut handled = 0;
        loop {
            match self.transport.recv() {
                Ok(Some(env)) => {
                    handled += 1;
                    for reply in self.actor.handle(&env) {
                        self.transport.send(&reply)?;
                    }
                }
                Ok(None) => return Ok(handled),
                Err(TransportError::Wire(e)) => {
                    handled += 1;
                    let reply = Envelope::new(
                        self.actor.name(),
                        "?",
                        Body::Error { code: e.code(), text: e.to_string() },
                    );
                    self.transport.send(&reply)?;
                }
                Err(fatal) => return Err(fatal),
            }
        }
    }
}

/// The deployable node's main loop (see module docs): wait for `init`,
/// build the local replica, pump until EOF. `state_path` enables
/// crash-restart persistence: the rumor store is written there after every
/// handled message and reloaded (when valid) at `init`.
pub fn serve<T: Transport>(
    transport: &mut T,
    state_path: Option<&Path>,
) -> Result<(), TransportError> {
    // Phase 1: everything before a successful init is either the init
    // itself or answered with a structured error.
    let (graph, plan, init_env) = loop {
        let env = match transport.recv() {
            Ok(Some(env)) => env,
            Ok(None) => return Ok(()),
            Err(TransportError::Wire(e)) => {
                transport.send(&Envelope::new(
                    "?",
                    "?",
                    Body::Error { code: e.code(), text: e.to_string() },
                ))?;
                continue;
            }
            Err(fatal) => return Err(fatal),
        };
        match env.body {
            Body::Init { n, ref scenario, seed, .. } => match prepare(scenario, n as usize, seed) {
                Ok((graph, plan)) => break (graph, plan, env),
                Err(text) => transport.send(&Envelope::new(
                    env.dest.clone(),
                    env.src.clone(),
                    Body::Error { code: CODE_UNUSABLE, text },
                ))?,
            },
            _ => transport.send(&Envelope::new(
                env.dest.clone(),
                env.src.clone(),
                Body::Error {
                    code: CODE_UNUSABLE,
                    text: "not initialised: send init first".into(),
                },
            ))?,
        }
    };
    let Body::Init { node_id, .. } = init_env.body else { unreachable!("phase 1 breaks on init") };
    let mut actor = match state_path.and_then(|p| load_state(p, plan.n)) {
        Some(persisted) => NodeActor::restart(&graph, &plan, node_id, persisted.words()),
        None => NodeActor::new(&graph, &plan, node_id),
    };
    // Phase 2: the init reply, then pump until EOF.
    let mut pending = Some(init_env);
    loop {
        let env = match pending.take() {
            Some(env) => env,
            None => match transport.recv() {
                Ok(Some(env)) => env,
                Ok(None) => return Ok(()),
                Err(TransportError::Wire(e)) => {
                    transport.send(&Envelope::new(
                        actor.name(),
                        "?",
                        Body::Error { code: e.code(), text: e.to_string() },
                    ))?;
                    continue;
                }
                Err(fatal) => return Err(fatal),
            },
        };
        for reply in actor.handle(&env) {
            transport.send(&reply)?;
        }
        if let Some(path) = state_path {
            // Best-effort durability; a full disk must not kill the node.
            let _ = std::fs::write(path, actor.store().to_hex());
        }
    }
}

/// Builds the graph and runtime plan a freshly initialised node needs.
fn prepare(scenario: &str, n: usize, seed: u64) -> Result<(Graph, RuntimePlan), String> {
    let spec =
        registry::find(scenario, n).ok_or_else(|| format!("unknown scenario {scenario:?}"))?;
    if spec.num_nodes() != n {
        return Err(format!(
            "scenario {scenario:?} adjusts n = {n} to {}; init with the adjusted size",
            spec.num_nodes()
        ));
    }
    let graph = spec.topology.build().generate(scenario_engine_seeds(seed).0);
    let plan = plan_runtime(&spec, seed, &graph).map_err(|e| e.to_string())?;
    Ok((graph, plan))
}

/// Loads a persisted rumor store, if the file exists and decodes.
fn load_state(path: &Path, n: usize) -> Option<RumorStore> {
    let text = std::fs::read_to_string(path).ok()?;
    RumorStore::from_hex(text.trim(), n).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::COORDINATOR;

    fn init_line(node: u64, n: u64, seed: u64) -> String {
        Envelope::new(
            COORDINATOR,
            format!("n{node}"),
            Body::Init { node_id: node as u32, n, scenario: "sparse-er".into(), seed },
        )
        .encode()
    }

    fn serve_lines(input: &str) -> Vec<Envelope> {
        let mut transport = StdioTransport::new(input.as_bytes(), Vec::new());
        serve(&mut transport, None).expect("serve survives to EOF");
        let out = String::from_utf8(transport.output).unwrap();
        out.lines().map(|l| Envelope::decode(l).expect("replies decode")).collect()
    }

    #[test]
    fn serve_initialises_and_answers_reads() {
        let read = Envelope::new("probe", "n0", Body::Read).encode();
        let replies = serve_lines(&format!("{}\n{read}\n", init_line(0, 16, 3)));
        assert_eq!(replies.len(), 2);
        assert!(matches!(replies[0].body, Body::InitOk { count: 1, .. }));
        match replies[1].body {
            Body::ReadOk { count, ref rumors, .. } => {
                assert_eq!(count, 1);
                let s = RumorStore::from_hex(rumors, 16).unwrap();
                assert!(s.contains(0));
            }
            ref other => panic!("expected read_ok, got {other:?}"),
        }
        assert_eq!(replies[1].dest, "probe");
    }

    #[test]
    fn serve_answers_garbage_with_errors_and_keeps_going() {
        let replies = serve_lines(&format!(
            "this is not json\n{}\n{{\"src\":\"a\",\"dest\":\"n0\",\"type\":\"warble\"}}\n",
            init_line(0, 16, 3)
        ));
        assert_eq!(replies.len(), 3);
        assert!(matches!(replies[0].body, Body::Error { code: crate::wire::CODE_MALFORMED, .. }));
        assert!(matches!(replies[1].body, Body::InitOk { .. }));
        assert!(matches!(
            replies[2].body,
            Body::Error { code: crate::wire::CODE_UNKNOWN_TYPE, .. }
        ));
    }

    #[test]
    fn serve_rejects_messages_before_init() {
        let read = Envelope::new("probe", "n0", Body::Read).encode();
        let replies = serve_lines(&format!("{read}\n{}\n", init_line(0, 16, 3)));
        assert_eq!(replies.len(), 2);
        match replies[0].body {
            Body::Error { code, ref text } => {
                assert_eq!(code, CODE_UNUSABLE);
                assert!(text.contains("init"));
            }
            ref other => panic!("expected error, got {other:?}"),
        }
        assert!(matches!(replies[1].body, Body::InitOk { .. }));
    }

    #[test]
    fn serve_rejects_unknown_scenarios() {
        let bad = Envelope::new(
            COORDINATOR,
            "n0",
            Body::Init { node_id: 0, n: 16, scenario: "no-such-scenario".into(), seed: 1 },
        )
        .encode();
        let replies = serve_lines(&format!("{bad}\n"));
        assert_eq!(replies.len(), 1);
        assert!(matches!(replies[0].body, Body::Error { code: CODE_UNUSABLE, .. }));
    }

    #[test]
    fn state_file_round_trips_across_a_restart() {
        let dir = std::env::temp_dir().join("rpc-runtime-host-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("n0.state");
        let _ = std::fs::remove_file(&path);
        // First life: init writes the initial one-rumor store.
        {
            let input = format!("{}\n", init_line(0, 16, 3));
            let mut transport = StdioTransport::new(input.as_bytes(), Vec::new());
            serve(&mut transport, Some(&path)).unwrap();
        }
        let persisted = std::fs::read_to_string(&path).unwrap();
        let store = RumorStore::from_hex(persisted.trim(), 16).unwrap();
        assert!(store.contains(0));
        // Second life: seed the file with extra rumors and observe the
        // restarted node report them.
        let mut seeded = RumorStore::with_own(16, 0);
        seeded.insert(7);
        seeded.insert(11);
        std::fs::write(&path, seeded.to_hex()).unwrap();
        let read = Envelope::new("probe", "n0", Body::Read).encode();
        let input = format!("{}\n{read}\n", init_line(0, 16, 3));
        let mut transport = StdioTransport::new(input.as_bytes(), Vec::new());
        serve(&mut transport, Some(&path)).unwrap();
        let out = String::from_utf8(transport.output).unwrap();
        let replies: Vec<Envelope> = out.lines().map(|l| Envelope::decode(l).unwrap()).collect();
        match replies[1].body {
            Body::ReadOk { count, .. } => assert_eq!(count, 3),
            ref other => panic!("expected read_ok, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn channel_transport_round_trips() {
        let (mut transport, ends) = ChannelTransport::pair();
        ends.tx.send(Envelope::new("a", "b", Body::Read)).unwrap();
        assert_eq!(transport.recv().unwrap().unwrap().body, Body::Read);
        assert!(transport.recv().unwrap().is_none(), "empty inbox is None, not an error");
        transport.send(&Envelope::new("b", "a", Body::Read)).unwrap();
        assert_eq!(ends.rx.recv().unwrap().src, "b");
    }
}
