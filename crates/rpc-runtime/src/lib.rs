//! # rpc-runtime
//!
//! The fault-tolerant node runtime: the scenario engine's `ProtocolDriver`
//! turned into a *deployable actor*. Where the rest of the workspace
//! simulates the random phone call model inside one process, this crate
//! splits a push-pull gossip run into `n` independent node actors plus a
//! coordinator, speaking a JSON-lines wire protocol over a pluggable
//! transport — and keeps the result bit-identical to the simulator when the
//! network behaves.
//!
//! The layers, bottom up:
//!
//! * [`wire`] — envelopes, typed bodies, and a total decoder (malformed
//!   input becomes structured errors, never panics);
//! * [`store`] — the durable per-node rumor bitset and its hex codec;
//! * [`node`] — [`NodeActor`]: owns a store, a deterministic engine replica
//!   and a `PushPullDriver`; derives each round's transfer schedule locally
//!   from the shared seed, so no randomness ever crosses the wire;
//! * [`sync`] — [`Coordinator`]: the round synchronizer with timeouts,
//!   bounded exponential-backoff retries and quorum-based round advance;
//! * [`nemesis`] — the seeded fault injector (drop, delay, duplicate,
//!   partition, crash-restart), deterministic and fully audited;
//! * [`host`] — the [`Transport`] trait with channel and stdio
//!   implementations, plus [`serve`], the `experiments node` main loop;
//! * [`cluster`] — the single-threaded deterministic harness running a whole
//!   cluster in-process: [`run_cluster`].
//!
//! ## The correctness anchor
//!
//! With a benign nemesis, [`run_cluster`]'s per-round trace
//! ([`RuntimeRow`]) equals the in-process executor's `ScenarioTrace` row
//! for row — same seeds, same placement, same schedule, same packet
//! accounting. The `runtime_props` differential suite pins this. Under
//! faults the trace may stretch (retries, skipped acks), but the invariants
//! hold: no rumor is forged, per-node coverage is monotone, and
//! crash-restarted nodes rejoin with their persisted state.

pub mod cluster;
pub mod host;
pub mod nemesis;
pub mod node;
pub mod store;
pub mod sync;
pub mod wire;

pub use cluster::{run_cluster, run_cluster_observed, ClusterConfig, CrashAudit, RuntimeOutcome};
pub use host::{
    serve, ChannelEnds, ChannelTransport, NodeHost, StdioTransport, Transport, TransportError,
};
pub use nemesis::{CrashPlan, FaultStats, Nemesis, NemesisSpec};
pub use node::NodeActor;
pub use store::RumorStore;
pub use sync::{Coordinator, RetryPolicy, RuntimeRow};
pub use wire::{Body, Envelope, WireError, COORDINATOR};

/// Convenience re-exports of the most commonly used runtime types.
pub mod prelude {
    pub use crate::cluster::{run_cluster, ClusterConfig, RuntimeOutcome};
    pub use crate::nemesis::NemesisSpec;
    pub use crate::sync::{RetryPolicy, RuntimeRow};
    pub use crate::wire::{Body, Envelope};
}
