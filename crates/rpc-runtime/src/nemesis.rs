//! The seeded nemesis: a deterministic transport-level fault injector.
//!
//! The nemesis sits between the scheduler and the wire and decides, per
//! message, what the network does to it: deliver, drop, delay, duplicate.
//! Two structured faults ride on top — a **partition** that splits the node
//! population in half for a window of rounds, and **crash-restart** plans
//! that take a node down for a number of rounds (its in-flight traffic is
//! dropped; the cluster rebuilds it from persisted state when the window
//! ends).
//!
//! Everything is driven by one `SmallRng` seeded from the spec, so a nemesis
//! run is exactly reproducible: same spec, same message sequence, same
//! faults. Faults are observable — every injected fault emits an
//! [`ObsEvent::TransportFault`] — and audited in [`FaultStats`].
//!
//! Specs parse from a compact CLI grammar, e.g.
//! `drop=0.1,delay=0.2:3,duplicate=0.05,partition=4:2,crash=3@5+4,seed=9`:
//! 10% drop, 20% chance of 1–3 extra ticks of delay, 5% duplication, a
//! partition covering rounds 4–5, and node 3 crashing at round 5 for 4
//! rounds.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpc_graphs::NodeId;
use rpc_obs::{ObsEvent, Observer};

use crate::wire::{parse_node_name, Envelope};

/// One planned crash: `node` goes down at the start of round `round` and
/// rejoins (restarted from persisted state) `downtime` rounds later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// The node to crash.
    pub node: NodeId,
    /// The round at whose start the crash happens.
    pub round: u64,
    /// Rounds the node stays down.
    pub downtime: u64,
}

/// A declarative fault schedule (see module docs for the CLI grammar).
#[derive(Clone, Debug, PartialEq)]
pub struct NemesisSpec {
    /// Seed of the nemesis RNG (independent of the scenario seed).
    pub seed: u64,
    /// Per-message drop probability.
    pub drop: f64,
    /// Per-message probability of extra delivery delay.
    pub delay: f64,
    /// Maximum extra delay, in scheduler ticks (uniform in `1..=delay_max`).
    pub delay_max: u64,
    /// Per-message duplication probability (the copy arrives one tick late).
    pub duplicate: f64,
    /// A half/half network partition over rounds `start..start + len`.
    pub partition: Option<(u64, u64)>,
    /// Crash-restart plans (may overlap; a node is down if any plan covers
    /// the current round).
    pub crashes: Vec<CrashPlan>,
}

impl Default for NemesisSpec {
    fn default() -> Self {
        NemesisSpec {
            seed: 0,
            drop: 0.0,
            delay: 0.0,
            delay_max: 1,
            duplicate: 0.0,
            partition: None,
            crashes: Vec::new(),
        }
    }
}

impl NemesisSpec {
    /// Whether this spec injects no faults at all (the differential suite's
    /// precondition for trace equality with the simulator).
    pub fn is_benign(&self) -> bool {
        self.drop == 0.0
            && self.delay == 0.0
            && self.duplicate == 0.0
            && self.partition.is_none()
            && self.crashes.is_empty()
    }

    /// Parses the compact CLI grammar (see module docs). Unknown keys and
    /// malformed values are reported, never ignored.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = NemesisSpec::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            match key {
                "seed" => spec.seed = value.parse().map_err(|_| bad(key, value))?,
                "drop" => spec.drop = prob(key, value)?,
                "duplicate" => spec.duplicate = prob(key, value)?,
                "delay" => {
                    // delay=P[:MAX] — probability with optional max extra ticks.
                    let (p, max) = match value.split_once(':') {
                        Some((p, max)) => {
                            (prob(key, p)?, max.parse().map_err(|_| bad(key, value))?)
                        }
                        None => (prob(key, value)?, 1),
                    };
                    if max == 0 {
                        return Err(format!("delay max must be >= 1 in {part:?}"));
                    }
                    spec.delay = p;
                    spec.delay_max = max;
                }
                "partition" => {
                    // partition=START:LEN in rounds.
                    let (start, len) = value.split_once(':').ok_or_else(|| bad(key, value))?;
                    let start = start.parse().map_err(|_| bad(key, value))?;
                    let len: u64 = len.parse().map_err(|_| bad(key, value))?;
                    if len == 0 {
                        return Err(format!("partition length must be >= 1 in {part:?}"));
                    }
                    spec.partition = Some((start, len));
                }
                "crash" => {
                    // crash=NODE@ROUND+DOWNTIME, repeatable.
                    let (node, rest) = value.split_once('@').ok_or_else(|| bad(key, value))?;
                    let (round, downtime) = rest.split_once('+').ok_or_else(|| bad(key, value))?;
                    let plan = CrashPlan {
                        node: node.parse().map_err(|_| bad(key, value))?,
                        round: round.parse().map_err(|_| bad(key, value))?,
                        downtime: downtime.parse().map_err(|_| bad(key, value))?,
                    };
                    if plan.downtime == 0 {
                        return Err(format!("crash downtime must be >= 1 in {part:?}"));
                    }
                    spec.crashes.push(plan);
                }
                other => return Err(format!("unknown nemesis key {other:?}")),
            }
        }
        Ok(spec)
    }
}

fn bad(key: &str, value: &str) -> String {
    format!("malformed value {value:?} for nemesis key {key:?}")
}

fn prob(key: &str, value: &str) -> Result<f64, String> {
    let p: f64 = value.parse().map_err(|_| bad(key, value))?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("probability {p} for {key:?} is outside [0, 1]"))
    }
}

/// Counts of every fault the nemesis actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by the random drop dimension.
    pub dropped: u64,
    /// Messages given extra delivery delay.
    pub delayed: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Messages dropped because they crossed the partition.
    pub partition_drops: u64,
    /// Messages dropped because an endpoint was crashed.
    pub crash_drops: u64,
    /// Crash windows that began.
    pub crashes: u64,
    /// Nodes rebuilt from persisted state after a crash window.
    pub restarts: u64,
}

/// The runtime fault injector: applies a [`NemesisSpec`] to every routed
/// message, deterministically (see module docs).
#[derive(Debug)]
pub struct Nemesis {
    spec: NemesisSpec,
    rng: SmallRng,
    stats: FaultStats,
}

impl Nemesis {
    /// A nemesis executing `spec`.
    pub fn new(spec: NemesisSpec) -> Self {
        let rng = SmallRng::seed_from_u64(spec.seed);
        Nemesis { spec, rng, stats: FaultStats::default() }
    }

    /// The spec being executed.
    pub fn spec(&self) -> &NemesisSpec {
        &self.spec
    }

    /// The faults injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Records a crash window beginning (bookkeeping for the audit).
    pub fn note_crash(&mut self) {
        self.stats.crashes += 1;
    }

    /// Records a node rebuilt from persisted state.
    pub fn note_restart(&mut self) {
        self.stats.restarts += 1;
    }

    /// Whether `node` is inside any crash window during `round`.
    pub fn crashed(&self, node: NodeId, round: u64) -> bool {
        self.spec
            .crashes
            .iter()
            .any(|c| c.node == node && round >= c.round && round < c.round + c.downtime)
    }

    /// Whether the partition is active during `round`.
    pub fn partitioned(&self, round: u64) -> bool {
        self.spec.partition.is_some_and(|(start, len)| round >= start && round < start + len)
    }

    /// Routes one message: returns the extra delays (in ticks beyond the
    /// base latency) of every copy to deliver. Empty means dropped, `[0]`
    /// means normal delivery, `[0, 1]` means duplicated.
    ///
    /// `round` is the cluster's current round (fault windows are in rounds);
    /// `n` is the node population (for the half/half partition split).
    pub fn route<O: Observer>(
        &mut self,
        env: &Envelope,
        round: u64,
        n: usize,
        obs: &mut O,
    ) -> Vec<u64> {
        let src = parse_node_name(&env.src);
        let dst = parse_node_name(&env.dest);
        // Crashed endpoints: traffic from or to a down node vanishes.
        let crash_hit = src.map(|v| self.crashed(v, round)).unwrap_or(false)
            || dst.map(|v| self.crashed(v, round)).unwrap_or(false);
        if crash_hit {
            self.stats.crash_drops += 1;
            self.fault(obs, env, round, "crash");
            return Vec::new();
        }
        // The partition splits the node population in half; coordinator
        // traffic is control-plane and always goes through.
        if self.partitioned(round) {
            if let (Some(a), Some(b)) = (src, dst) {
                let half = (n / 2) as NodeId;
                if (a < half) != (b < half) {
                    self.stats.partition_drops += 1;
                    self.fault(obs, env, round, "partition");
                    return Vec::new();
                }
            }
        }
        if self.spec.drop > 0.0 && self.rng.gen_bool(self.spec.drop) {
            self.stats.dropped += 1;
            self.fault(obs, env, round, "drop");
            return Vec::new();
        }
        let mut extra = 0;
        if self.spec.delay > 0.0 && self.rng.gen_bool(self.spec.delay) {
            extra = self.rng.gen_range(1..=self.spec.delay_max);
            self.stats.delayed += 1;
            self.fault(obs, env, round, "delay");
        }
        if self.spec.duplicate > 0.0 && self.rng.gen_bool(self.spec.duplicate) {
            self.stats.duplicated += 1;
            self.fault(obs, env, round, "duplicate");
            return vec![extra, extra + 1];
        }
        vec![extra]
    }

    fn fault<O: Observer>(&self, obs: &mut O, env: &Envelope, round: u64, kind: &str) {
        if O::ENABLED {
            obs.record(&ObsEvent::TransportFault { round, kind, from: &env.src, to: &env.dest });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Body;
    use rpc_obs::NoopObserver;

    fn gossip(from: &str, to: &str) -> Envelope {
        Envelope::new(from, to, Body::Gossip { round: 1, from: 0, rumors: "00".into() })
    }

    #[test]
    fn parse_full_grammar() {
        let spec = NemesisSpec::parse(
            "drop=0.1,delay=0.2:3,duplicate=0.05,partition=4:2,crash=3@5+4,seed=9",
        )
        .unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.drop, 0.1);
        assert_eq!(spec.delay, 0.2);
        assert_eq!(spec.delay_max, 3);
        assert_eq!(spec.duplicate, 0.05);
        assert_eq!(spec.partition, Some((4, 2)));
        assert_eq!(spec.crashes, vec![CrashPlan { node: 3, round: 5, downtime: 4 }]);
        assert!(!spec.is_benign());
        assert!(NemesisSpec::parse("").unwrap().is_benign());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(NemesisSpec::parse("drop=2.0").is_err(), "probability out of range");
        assert!(NemesisSpec::parse("warble=1").is_err(), "unknown key");
        assert!(NemesisSpec::parse("crash=3@5").is_err(), "missing downtime");
        assert!(NemesisSpec::parse("partition=4").is_err(), "missing length");
        assert!(NemesisSpec::parse("drop").is_err(), "missing value");
        assert!(NemesisSpec::parse("crash=1@1+0").is_err(), "zero downtime");
    }

    #[test]
    fn benign_nemesis_delivers_everything_untouched() {
        let mut nemesis = Nemesis::new(NemesisSpec::default());
        let mut obs = NoopObserver;
        for _ in 0..100 {
            assert_eq!(nemesis.route(&gossip("n0", "n1"), 1, 16, &mut obs), vec![0]);
        }
        assert_eq!(*nemesis.stats(), FaultStats::default());
    }

    #[test]
    fn crash_windows_drop_traffic_for_their_rounds_only() {
        let spec = NemesisSpec {
            crashes: vec![CrashPlan { node: 2, round: 3, downtime: 2 }],
            ..NemesisSpec::default()
        };
        let mut nemesis = Nemesis::new(spec);
        let mut obs = NoopObserver;
        assert!(!nemesis.crashed(2, 2));
        assert!(nemesis.crashed(2, 3));
        assert!(nemesis.crashed(2, 4));
        assert!(!nemesis.crashed(2, 5));
        assert!(nemesis.route(&gossip("n2", "n5"), 3, 16, &mut obs).is_empty());
        assert!(nemesis.route(&gossip("n5", "n2"), 4, 16, &mut obs).is_empty());
        assert_eq!(nemesis.route(&gossip("n5", "n2"), 5, 16, &mut obs), vec![0]);
        assert_eq!(nemesis.stats().crash_drops, 2);
    }

    #[test]
    fn partition_splits_halves_but_spares_the_coordinator() {
        let spec = NemesisSpec { partition: Some((2, 1)), ..NemesisSpec::default() };
        let mut nemesis = Nemesis::new(spec);
        let mut obs = NoopObserver;
        // Cross-half traffic dies during the window.
        assert!(nemesis.route(&gossip("n1", "n12"), 2, 16, &mut obs).is_empty());
        // Same-half traffic and coordinator traffic survive.
        assert_eq!(nemesis.route(&gossip("n1", "n3"), 2, 16, &mut obs), vec![0]);
        assert_eq!(nemesis.route(&gossip("c0", "n12"), 2, 16, &mut obs), vec![0]);
        // Outside the window everything flows.
        assert_eq!(nemesis.route(&gossip("n1", "n12"), 3, 16, &mut obs), vec![0]);
        assert_eq!(nemesis.stats().partition_drops, 1);
    }

    #[test]
    fn seeded_probabilistic_faults_are_reproducible() {
        let spec = NemesisSpec::parse("drop=0.3,delay=0.3:4,duplicate=0.2,seed=42").unwrap();
        let run = |spec: NemesisSpec| {
            let mut nemesis = Nemesis::new(spec);
            let mut obs = NoopObserver;
            let plans: Vec<Vec<u64>> = (0..200)
                .map(|i| {
                    let from = format!("n{}", i % 8);
                    let to = format!("n{}", (i + 3) % 8);
                    nemesis.route(&gossip(&from, &to), 1, 16, &mut obs)
                })
                .collect();
            (plans, *nemesis.stats())
        };
        let (plans_a, stats_a) = run(spec.clone());
        let (plans_b, stats_b) = run(spec);
        assert_eq!(plans_a, plans_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.dropped > 0 && stats_a.delayed > 0 && stats_a.duplicated > 0);
    }
}
