//! The per-node gossip actor.
//!
//! A [`NodeActor`] is one deployable node of the push-pull protocol: it owns
//! its durable [`RumorStore`], a deterministic engine *replica*, and a
//! [`PushPullDriver`] — and it speaks only [`crate::wire`] messages. The key
//! trick that makes a randomized protocol deployable without a shared RNG is
//! **replica determinism**: every node runs an identical
//! `Simulation::new(graph, run_seed)` replica and steps it once per round, so
//! all nodes independently derive the *same* per-round transfer schedule and
//! each node reads off its own role (whom it pushes to, whom it must hear
//! from). The store — not the replica — is the authoritative rumor state;
//! the replica only supplies the schedule, which is exactly what makes the
//! fault-free runtime trace bit-identical to the in-process simulator.
//!
//! Fault tolerance falls out of two properties:
//!
//! * push-pull payloads carry the sender's **entire** store, so a dropped
//!   packet delays information but never loses it permanently;
//! * rounds complete *partially* after bounded retries (see
//!   [`NodeActor::GIVE_UP`]) — a node stops waiting for packets that will
//!   never arrive and reports what it has, keeping the cluster live.
//!
//! Crash-restart rebuilds an actor from its persisted store words
//! ([`NodeActor::restart`]); the fresh replica is fast-forwarded to the
//! current round on the next `start_round`, so a rejoined node is back in
//! lockstep immediately.

use rpc_engine::Simulation;
use rpc_gossip::{ProtocolDriver, PushPullDriver, StepStatus};
use rpc_graphs::{Graph, NodeId};
use rpc_scenarios::RuntimePlan;

use crate::store::RumorStore;
use crate::wire::{node_name, Body, Envelope, CODE_UNUSABLE, COORDINATOR};

/// The in-flight state of one synchronous round at one node.
#[derive(Debug)]
struct PendingRound {
    /// The round number (1-based).
    round: u64,
    /// Peers this node sends its payload to this round.
    sends: Vec<NodeId>,
    /// The hex payload (pre-round store snapshot) sent to every peer.
    payload_hex: String,
    /// Peers whose payload this node must receive this round.
    expected: Vec<NodeId>,
    /// Receipt flags, parallel to `expected`.
    received: Vec<bool>,
    /// Packets this node sends this round (simulator accounting).
    packets: u64,
    /// Channels this node opened this round.
    exchanges: u64,
    /// How many `start_round` retransmissions we have seen for this round.
    retries_seen: u32,
}

impl PendingRound {
    fn complete(&self) -> bool {
        self.received.iter().all(|&r| r)
    }
}

/// One deployable push-pull gossip node (see module docs).
#[derive(Debug)]
pub struct NodeActor<'g> {
    id: NodeId,
    plan: RuntimePlan,
    replica: Simulation<'g>,
    driver: PushPullDriver,
    store: RumorStore,
    /// Union of every rumor that provably *arrived* (decoded payloads plus
    /// this node's own rumor) — the provenance set behind
    /// [`NodeActor::no_forged_rumors`].
    delivered: RumorStore,
    /// Rounds begun (== replica steps taken).
    started: u64,
    current: Option<PendingRound>,
    /// Gossip that arrived for a round we have not begun yet (the sender is
    /// ahead of us, e.g. after the coordinator force-advanced on a quorum).
    early: Vec<(u64, NodeId, Vec<u64>)>,
    /// The last completed round's report, for idempotent re-acks.
    last_ok: Option<(u64, Body)>,
}

impl<'g> NodeActor<'g> {
    /// After this many `start_round` retransmissions for the same round, the
    /// node completes the round with whatever it has received: the missing
    /// payloads were lost in transit and will be re-carried by future rounds
    /// anyway (full-store resend), so waiting longer only stalls the cluster.
    pub const GIVE_UP: u32 = 2;

    /// A fresh node `id` executing `plan` over `graph` (classic initial
    /// state: the node knows exactly its own rumor).
    pub fn new(graph: &'g Graph, plan: &RuntimePlan, id: NodeId) -> Self {
        let store = RumorStore::with_own(plan.n, id);
        let delivered = store.clone();
        Self::with_state(graph, plan, id, store, delivered)
    }

    /// A node rebuilt after a crash from its persisted store words. The
    /// replica restarts from round zero and is fast-forwarded to the
    /// cluster's current round by the next `start_round`.
    pub fn restart(graph: &'g Graph, plan: &RuntimePlan, id: NodeId, persisted: &[u64]) -> Self {
        let mut store = RumorStore::new(plan.n);
        store.merge_words(persisted);
        // Everything persisted was once delivered; the provenance baseline
        // restarts from the persisted set.
        let delivered = store.clone();
        Self::with_state(graph, plan, id, store, delivered)
    }

    fn with_state(
        graph: &'g Graph,
        plan: &RuntimePlan,
        id: NodeId,
        store: RumorStore,
        delivered: RumorStore,
    ) -> Self {
        NodeActor {
            id,
            plan: plan.clone(),
            replica: Simulation::new(graph, plan.run_seed),
            driver: PushPullDriver::new(plan.max_rounds as usize),
            store,
            delivered,
            started: 0,
            current: None,
            early: Vec::new(),
            last_ok: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's wire name (`n<id>`).
    pub fn name(&self) -> String {
        node_name(self.id)
    }

    /// The durable rumor state.
    pub fn store(&self) -> &RumorStore {
        &self.store
    }

    /// No rumor was forged: everything in the store arrived in a decoded
    /// payload, was persisted across a crash, or is the node's own rumor.
    pub fn no_forged_rumors(&self) -> bool {
        self.store.is_subset_of(&self.delivered)
    }

    /// Handles one incoming envelope, returning the replies/sends it causes.
    pub fn handle(&mut self, env: &Envelope) -> Vec<Envelope> {
        match env.body {
            Body::Init { .. } => vec![self.init_ok(&env.src)],
            Body::StartRound { round, .. } => self.on_start_round(round),
            Body::Gossip { round, from, ref rumors } => {
                self.on_gossip(&env.src, round, from, rumors)
            }
            Body::Read => vec![Envelope::new(
                self.name(),
                env.src.clone(),
                Body::ReadOk {
                    informed: self.store.is_full(),
                    tracked: self.store.contains(self.plan.tracked as usize),
                    count: self.store.count() as u64,
                    rumors: self.store.to_hex(),
                },
            )],
            Body::Tick { .. } => vec![Envelope::new(
                self.name(),
                env.src.clone(),
                Body::Error { code: CODE_UNUSABLE, text: "nodes keep no timers".into() },
            )],
            // Replies addressed to us by mistake carry no obligations.
            Body::InitOk { .. }
            | Body::RoundOk { .. }
            | Body::ReadOk { .. }
            | Body::Error { .. } => Vec::new(),
        }
    }

    /// The idempotent `init_ok` reply (cluster actors are pre-built, so
    /// `init` only acknowledges identity and reports the initial state).
    fn init_ok(&self, to: &str) -> Envelope {
        Envelope::new(
            self.name(),
            to.to_string(),
            Body::InitOk {
                informed: self.store.is_full(),
                tracked: self.store.contains(self.plan.tracked as usize),
                count: self.store.count() as u64,
            },
        )
    }

    fn on_start_round(&mut self, round: u64) -> Vec<Envelope> {
        // Retransmission of the round we are already executing: our gossip
        // (or peers' replies) may have been lost — resend everything, and
        // after GIVE_UP retries stop waiting for the missing payloads.
        if let Some(cur) = &mut self.current {
            if cur.round == round {
                cur.retries_seen += 1;
                let give_up = cur.retries_seen >= Self::GIVE_UP;
                let mut out: Vec<Envelope> = Vec::new();
                let (r, payload) = (cur.round, cur.payload_hex.clone());
                let sends = cur.sends.clone();
                if give_up {
                    for flag in &mut cur.received {
                        *flag = true;
                    }
                } else {
                    for &dst in &sends {
                        out.push(Envelope::new(
                            self.name(),
                            node_name(dst),
                            Body::Gossip { round: r, from: self.id, rumors: payload.clone() },
                        ));
                    }
                }
                if self.current.as_ref().is_some_and(PendingRound::complete) {
                    out.push(self.complete_round());
                }
                return out;
            }
        }
        if round <= self.started {
            // Stale duplicate: re-ack idempotently if it names the round we
            // last reported, otherwise there is nothing left to say.
            return match &self.last_ok {
                Some((r, body)) if *r == round => {
                    vec![Envelope::new(self.name(), COORDINATOR.to_string(), body.clone())]
                }
                _ => Vec::new(),
            };
        }
        // The coordinator moved past a round we never finished (quorum
        // advance): abandon it — future payloads re-carry everything.
        self.current = None;
        // Fast-forward the replica over rounds we missed while crashed (or
        // that completed without us), so the schedule stays in lockstep.
        while self.started + 1 < round {
            let _ = self.driver.step(&mut self.replica);
            self.started += 1;
        }
        self.begin_round(round)
    }

    fn begin_round(&mut self, round: u64) -> Vec<Envelope> {
        // Snapshot BEFORE stepping: payloads carry pre-round state, exactly
        // as the engine's deliver() reads sender sets snapshotted before any
        // merge of the round.
        let payload_hex = self.store.to_hex();
        let stepped = self.driver.step(&mut self.replica);
        self.started = round;
        let transfers: &[rpc_engine::Transfer] =
            if stepped == StepStatus::Done { &[] } else { self.driver.transfers() };
        let mut sends = Vec::new();
        let mut expected = Vec::new();
        let mut packets = 0u64;
        let mut exchanges = 0u64;
        for (i, t) in transfers.iter().enumerate() {
            if t.from == self.id {
                // Every transfer counts as a packet (the simulator records
                // packets before its self-loop skip), but only transfers to
                // *other* nodes cross the wire.
                packets += 1;
                if i % 2 == 0 {
                    exchanges += 1;
                }
                if t.to != self.id {
                    sends.push(t.to);
                }
            }
            if t.to == self.id && t.from != self.id {
                expected.push(t.from);
            }
        }
        let received = vec![false; expected.len()];
        let mut out: Vec<Envelope> = sends
            .iter()
            .map(|&dst| {
                Envelope::new(
                    self.name(),
                    node_name(dst),
                    Body::Gossip { round, from: self.id, rumors: payload_hex.clone() },
                )
            })
            .collect();
        self.current = Some(PendingRound {
            round,
            sends,
            payload_hex,
            expected,
            received,
            packets,
            exchanges,
            retries_seen: 0,
        });
        // Gossip that raced ahead of this start_round is already buffered.
        let early = std::mem::take(&mut self.early);
        for (r, from, words) in early {
            if r == round {
                self.accept_gossip(round, from, &words);
            } else if r > round {
                self.early.push((r, from, words));
            } else {
                self.store.merge_words(&words);
            }
        }
        if self.current.as_ref().is_some_and(PendingRound::complete) {
            out.push(self.complete_round());
        }
        out
    }

    fn on_gossip(&mut self, src: &str, round: u64, from: NodeId, rumors: &str) -> Vec<Envelope> {
        let words = match RumorStore::from_hex(rumors, self.plan.n) {
            Ok(s) => s.words().to_vec(),
            Err(e) => {
                return vec![Envelope::new(
                    self.name(),
                    src.to_string(),
                    Body::Error { code: e.code(), text: e.to_string() },
                )]
            }
        };
        // Provenance first: whatever decodes counts as delivered.
        self.delivered.merge_words(&words);
        if self.current.as_ref().is_some_and(|c| c.round == round) {
            self.accept_gossip(round, from, &words);
            if self.current.as_ref().is_some_and(PendingRound::complete) {
                return vec![self.complete_round()];
            }
            Vec::new()
        } else if round <= self.started {
            // A late (or duplicated) packet: information is monotone, merge.
            self.store.merge_words(&words);
            Vec::new()
        } else {
            self.early.push((round, from, words));
            Vec::new()
        }
    }

    /// Merges an in-round payload and marks its sender as received.
    fn accept_gossip(&mut self, round: u64, from: NodeId, words: &[u64]) {
        self.delivered.merge_words(words);
        self.store.merge_words(words);
        if let Some(cur) = &mut self.current {
            if cur.round == round {
                // A peer can legitimately appear twice in `expected` (it
                // answers our open AND opens its own channel to us, sending
                // two packets) — mark the first still-unreceived slot.
                let slot =
                    cur.expected.iter().zip(&cur.received).position(|(&e, &got)| e == from && !got);
                if let Some(pos) = slot {
                    cur.received[pos] = true;
                }
            }
        }
    }

    /// Finishes the current round: caches and returns the `round_ok` report.
    fn complete_round(&mut self) -> Envelope {
        let cur = self.current.take().expect("complete_round requires a pending round");
        let body = Body::RoundOk {
            round: cur.round,
            informed: self.store.is_full(),
            tracked: self.store.contains(self.plan.tracked as usize),
            count: self.store.count() as u64,
            packets: cur.packets,
            exchanges: cur.exchanges,
        };
        self.last_ok = Some((cur.round, body.clone()));
        Envelope::new(self.name(), COORDINATOR.to_string(), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_scenarios::{plan_runtime, registry};

    fn setup(n: usize, seed: u64) -> (Graph, RuntimePlan) {
        let scenario = registry::find("sparse-er", n).expect("registry scenario");
        let graph =
            scenario.topology.build().generate(rpc_scenarios::scenario_engine_seeds(seed).0);
        let plan = plan_runtime(&scenario, seed, &graph).expect("benign push-pull plan");
        (graph, plan)
    }

    #[test]
    fn init_is_idempotent_and_reports_initial_state() {
        let (graph, plan) = setup(16, 3);
        let mut actor = NodeActor::new(&graph, &plan, 5);
        for _ in 0..2 {
            let replies = actor.handle(&Envelope::new(
                COORDINATOR,
                "n5",
                Body::Init { node_id: 5, n: 16, scenario: "sparse-er".into(), seed: 3 },
            ));
            assert_eq!(replies.len(), 1);
            match replies[0].body {
                Body::InitOk { informed, tracked, count } => {
                    assert!(!informed);
                    assert_eq!(count, 1);
                    assert_eq!(tracked, plan.tracked == 5);
                }
                ref other => panic!("expected init_ok, got {other:?}"),
            }
        }
    }

    #[test]
    fn round_one_sends_gossip_with_pre_round_payload() {
        let (graph, plan) = setup(16, 3);
        let mut actor = NodeActor::new(&graph, &plan, 0);
        let out = actor.handle(&Envelope::new(
            COORDINATOR,
            "n0",
            Body::StartRound { round: 1, attempt: 0 },
        ));
        // Every node opens one channel in round 1, so node 0 sends at least
        // its push half (possibly more as the answering side of others).
        let gossips: Vec<_> =
            out.iter().filter(|e| matches!(e.body, Body::Gossip { .. })).collect();
        assert!(!gossips.is_empty());
        for g in &gossips {
            match g.body {
                Body::Gossip { round, from, ref rumors } => {
                    assert_eq!(round, 1);
                    assert_eq!(from, 0);
                    let s = RumorStore::from_hex(rumors, 16).unwrap();
                    assert_eq!(s.count(), 1, "round-1 payload is the initial store");
                    assert!(s.contains(0));
                }
                _ => unreachable!(),
            }
        }
        assert!(actor.no_forged_rumors());
    }

    #[test]
    fn give_up_completes_a_round_partially() {
        let (graph, plan) = setup(16, 3);
        let mut actor = NodeActor::new(&graph, &plan, 0);
        let start = Envelope::new(COORDINATOR, "n0", Body::StartRound { round: 1, attempt: 0 });
        let first = actor.handle(&start);
        let had_round_ok = first.iter().any(|e| matches!(e.body, Body::RoundOk { .. }));
        if had_round_ok {
            // Nothing was expected this round; the test exercises nothing.
            return;
        }
        // Two retransmissions: the second reaches GIVE_UP and forces the
        // partial completion.
        let _ = actor.handle(&start);
        let out = actor.handle(&start);
        assert!(
            out.iter().any(|e| matches!(e.body, Body::RoundOk { .. })),
            "after GIVE_UP retries the round completes with what arrived"
        );
        // Re-acks stay idempotent afterwards.
        let again = actor.handle(&start);
        assert_eq!(again.len(), 1);
        assert!(matches!(again[0].body, Body::RoundOk { round: 1, .. }));
    }

    #[test]
    fn malformed_gossip_yields_a_structured_error() {
        let (graph, plan) = setup(16, 3);
        let mut actor = NodeActor::new(&graph, &plan, 0);
        let out = actor.handle(&Envelope::new(
            "n1",
            "n0",
            Body::Gossip { round: 1, from: 1, rumors: "zz".into() },
        ));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].body, Body::Error { .. }));
        assert!(actor.no_forged_rumors());
    }

    #[test]
    fn restart_preserves_persisted_rumors() {
        let (graph, plan) = setup(16, 3);
        let mut store = RumorStore::with_own(16, 4);
        store.insert(9);
        store.insert(12);
        let actor = NodeActor::restart(&graph, &plan, 4, store.words());
        assert_eq!(actor.store().count(), 3);
        assert!(actor.store().contains(9));
        assert!(actor.no_forged_rumors());
    }
}
