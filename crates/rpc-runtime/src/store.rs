//! The per-node persisted rumor state.
//!
//! [`RumorStore`] is the runtime's own bitset over rumor ids `0..n`. It is
//! deliberately independent of the engine's `MessageSet` — the store is the
//! *durable* state a node owns (what survives a crash-restart and what goes
//! on the wire), while the engine set is the *replica* state a node derives
//! by re-executing the deterministic protocol. Keeping the two separate is
//! what lets the invariant suite compare them: a forged rumor is a bit set
//! in the store that never arrived in a decoded payload.
//!
//! The hex codec here is the wire representation used by `gossip` payloads
//! and the stdio host's `--state-path` persistence: each 64-bit word becomes
//! 16 lowercase hex characters, least-significant word first, always exactly
//! `⌈n/64⌉` words so payload length is independent of how much a node knows.

use crate::wire::WireError;
use rpc_graphs::NodeId;

/// A bitset over rumor ids `0..n`: one node's durable rumor state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RumorStore {
    words: Vec<u64>,
    n: usize,
}

impl RumorStore {
    /// An empty store over a universe of `n` rumors.
    pub fn new(n: usize) -> Self {
        RumorStore { words: vec![0; n.div_ceil(64).max(1)], n }
    }

    /// A store that starts knowing only rumor `own` (the classic-gossip
    /// initial state of node `own`).
    pub fn with_own(n: usize, own: NodeId) -> Self {
        let mut s = Self::new(n);
        s.insert(own as usize);
        s
    }

    /// The rumor universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts rumor `m`; returns whether it was new. Out-of-universe ids
    /// are ignored (and reported as not-new).
    pub fn insert(&mut self, m: usize) -> bool {
        if m >= self.n {
            return false;
        }
        let (w, b) = (m / 64, 1u64 << (m % 64));
        let new = self.words[w] & b == 0;
        self.words[w] |= b;
        new
    }

    /// Whether rumor `m` is known.
    pub fn contains(&self, m: usize) -> bool {
        m < self.n && self.words[m / 64] & (1 << (m % 64)) != 0
    }

    /// Unions `words` (same layout as [`RumorStore::words`]) into the store.
    /// Extra trailing words and bits beyond the universe are masked off, so
    /// merging an over-long payload cannot invent rumors.
    pub fn merge_words(&mut self, words: &[u64]) {
        for (dst, src) in self.words.iter_mut().zip(words) {
            *dst |= src;
        }
        self.mask_tail();
    }

    /// Number of rumors known.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every rumor in the universe is known.
    pub fn is_full(&self) -> bool {
        self.count() == self.n
    }

    /// Whether this store is a subset of `other` (same universe assumed).
    pub fn is_subset_of(&self, other: &RumorStore) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// The raw bit words, least-significant word first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Encodes the store as fixed-width lowercase hex (16 chars per word,
    /// word 0 first).
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(self.words.len() * 16);
        for w in &self.words {
            use std::fmt::Write as _;
            let _ = write!(out, "{w:016x}");
        }
        out
    }

    /// Decodes a hex payload produced by [`RumorStore::to_hex`] for a
    /// universe of `n` rumors. Length and charset are validated; bits beyond
    /// the universe are masked off.
    pub fn from_hex(hex: &str, n: usize) -> Result<Self, WireError> {
        let mut store = Self::new(n);
        if hex.len() != store.words.len() * 16 {
            return Err(WireError::BadField { field: "rumors" });
        }
        for (i, chunk) in hex.as_bytes().chunks(16).enumerate() {
            let s =
                std::str::from_utf8(chunk).map_err(|_| WireError::BadField { field: "rumors" })?;
            store.words[i] =
                u64::from_str_radix(s, 16).map_err(|_| WireError::BadField { field: "rumors" })?;
        }
        store.mask_tail();
        Ok(store)
    }

    /// Zeroes bits at positions `>= n` in the last word.
    fn mask_tail(&mut self) {
        let used = self.n % 64;
        if self.n > 0 && used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        } else if self.n == 0 {
            for w in &mut self.words {
                *w = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = RumorStore::with_own(100, 7);
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert_eq!(s.count(), 1);
        assert!(s.insert(99));
        assert!(!s.insert(99), "second insert is not new");
        assert!(!s.insert(100), "out of universe is ignored");
        assert!(!s.contains(100));
        assert_eq!(s.count(), 2);
        assert!(!s.is_full());
    }

    #[test]
    fn full_detection() {
        let mut s = RumorStore::new(65);
        for m in 0..65 {
            s.insert(m);
        }
        assert!(s.is_full());
        assert_eq!(s.words().len(), 2);
    }

    #[test]
    fn hex_round_trip() {
        let mut s = RumorStore::new(130);
        for m in [0, 63, 64, 128, 129] {
            s.insert(m);
        }
        let hex = s.to_hex();
        assert_eq!(hex.len(), 3 * 16);
        let back = RumorStore::from_hex(&hex, 130).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn from_hex_rejects_bad_payloads() {
        assert!(RumorStore::from_hex("zz", 8).is_err(), "bad charset");
        assert!(RumorStore::from_hex("00", 8).is_err(), "short");
        assert!(RumorStore::from_hex(&"0".repeat(32), 8).is_err(), "long");
        // Bits above the universe are masked, not trusted.
        let s = RumorStore::from_hex("ffffffffffffffff", 8).unwrap();
        assert_eq!(s.count(), 8);
        assert!(s.is_full());
    }

    #[test]
    fn merge_masks_out_of_universe_bits() {
        let mut s = RumorStore::new(10);
        s.merge_words(&[u64::MAX, u64::MAX]);
        assert_eq!(s.count(), 10);
        assert!(s.is_full());
    }

    #[test]
    fn subset_ordering() {
        let mut a = RumorStore::new(70);
        let mut b = RumorStore::new(70);
        a.insert(3);
        b.insert(3);
        b.insert(69);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
    }
}
