//! The round synchronizer: a coordinator actor with timeout, bounded
//! exponential-backoff retry, and quorum-based round advance.
//!
//! The coordinator (`c0` on the wire) runs the same drive loop as the
//! in-process scenario executor — trace row, stop rule, round cap, next
//! round — except that "execute one round" becomes a distributed handshake:
//! broadcast `start_round`, collect `round_ok` acks, and arbitrate the
//! stragglers with timers. Its trace ([`RuntimeRow`]) is field-for-field the
//! executor's `RoundTrace`, which is what the differential suite pins.
//!
//! Timers are ordinary envelopes the coordinator addresses to itself
//! ([`crate::wire::Body::Tick`]); the transport scheduler delivers them
//! `after` ticks later, bypassing the nemesis. Every retransmission bumps an
//! epoch so stale timers are inert. The escalation ladder on a timeout is:
//!
//! 1. retransmit `start_round` to the unacked nodes with backoff
//!    `min(timeout · 2^attempt, cap)`,
//! 2. once at least one retry has been sent, advance anyway if a majority
//!    (⌊n/2⌋ + 1) has acked — the quorum advance,
//! 3. after [`RetryPolicy::max_retries`] retries, advance unconditionally:
//!    push-pull re-carries everything, so skipping a wedged round costs
//!    information nothing and buys liveness.

use rpc_graphs::NodeId;
use rpc_obs::{ObsEvent, Observer};
use rpc_scenarios::{coverage_target, RuntimePlan, StopRule, StoppedBy};

use crate::wire::{node_name, Body, Envelope, COORDINATOR};

/// Timeout and retry knobs of the [`Coordinator`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Scheduler ticks to wait for acks before the first retry. Fault-free
    /// rounds complete in ≤ 3 ticks, so the default never fires spuriously.
    pub timeout_ticks: u64,
    /// Upper bound on the exponential backoff, in ticks.
    pub backoff_cap: u64,
    /// Retries per round (and per init) before advancing unconditionally.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { timeout_ticks: 16, backoff_cap: 256, max_retries: 6 }
    }
}

impl RetryPolicy {
    /// The backoff applied after retry `attempt` (1-based), capped.
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.timeout_ticks
            .checked_shl(attempt.min(32))
            .unwrap_or(u64::MAX)
            .min(self.backoff_cap)
            .max(self.timeout_ticks)
    }
}

/// One row of the runtime's per-round trace — field-for-field the scenario
/// executor's `RoundTrace` (minus the thread-diagnostic core counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeRow {
    /// Completed rounds at capture time.
    pub round: u64,
    /// Nodes reporting a full rumor set.
    pub fully_informed: usize,
    /// Nodes reporting the tracked rumor.
    pub tracked_informed: usize,
    /// Cumulative packets sent.
    pub packets: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Init,
    Round,
    Done,
}

/// The round-synchronizing coordinator actor (see module docs).
#[derive(Debug)]
pub struct Coordinator {
    plan: RuntimePlan,
    policy: RetryPolicy,
    scenario: String,
    seed: u64,
    phase: Phase,
    /// Per-node ack flags for the in-flight handshake (init or round).
    acked: Vec<bool>,
    /// Last reported per-node state.
    informed: Vec<bool>,
    tracked: Vec<bool>,
    counts: Vec<u64>,
    /// Per-round snapshots of `counts` (round 0 first) — the monotonicity
    /// invariant's raw material.
    count_history: Vec<Vec<u64>>,
    /// The round currently executing (1-based; 0 during init).
    round: u64,
    rounds_done: u64,
    /// Retries spent on the in-flight handshake.
    attempt: u32,
    /// Timer generation; ticks from older generations are stale.
    epoch: u64,
    total_packets: u64,
    total_exchanges: u64,
    retries: u64,
    quorum_advances: u64,
    trace: Vec<RuntimeRow>,
    stopped: Option<StoppedBy>,
}

impl Coordinator {
    /// A coordinator for `plan`, announcing `scenario`/`seed` in its `init`s.
    pub fn new(plan: RuntimePlan, policy: RetryPolicy, scenario: &str, seed: u64) -> Self {
        let n = plan.n;
        Coordinator {
            plan,
            policy,
            scenario: scenario.to_string(),
            seed,
            phase: Phase::Init,
            acked: vec![false; n],
            informed: vec![false; n],
            tracked: vec![false; n],
            counts: vec![0; n],
            count_history: Vec::new(),
            round: 0,
            rounds_done: 0,
            attempt: 0,
            epoch: 0,
            total_packets: 0,
            total_exchanges: 0,
            retries: 0,
            quorum_advances: 0,
            trace: Vec::new(),
            stopped: None,
        }
    }

    /// Kicks off the run: `init` to every node plus the first timer.
    pub fn start(&mut self) -> Vec<Envelope> {
        let mut out: Vec<Envelope> = (0..self.plan.n)
            .map(|k| {
                Envelope::new(
                    COORDINATOR,
                    node_name(k as NodeId),
                    Body::Init {
                        node_id: k as NodeId,
                        n: self.plan.n as u64,
                        scenario: self.scenario.clone(),
                        seed: self.seed,
                    },
                )
            })
            .collect();
        out.push(self.tick(self.policy.timeout_ticks));
        out
    }

    /// Whether the run has reached its stop rule.
    pub fn finished(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Why the run stopped (once [`Coordinator::finished`]).
    pub fn stopped_by(&self) -> Option<StoppedBy> {
        self.stopped
    }

    /// Rounds the cluster completed.
    pub fn rounds(&self) -> u64 {
        self.rounds_done
    }

    /// The per-round trace (one row per completed round, plus round 0).
    pub fn trace(&self) -> &[RuntimeRow] {
        &self.trace
    }

    /// Cumulative packets across all counted acks.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Cumulative opened channels across all counted acks.
    pub fn total_exchanges(&self) -> u64 {
        self.total_exchanges
    }

    /// Retransmissions sent (init and rounds combined).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Rounds advanced degraded on a quorum or retry exhaustion.
    pub fn quorum_advances(&self) -> u64 {
        self.quorum_advances
    }

    /// Last reported rumor counts per node.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-round snapshots of the per-node counts (round 0 first).
    pub fn count_history(&self) -> &[Vec<u64>] {
        &self.count_history
    }

    /// The round currently being synchronized (0 during init).
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Handles one envelope addressed to `c0`.
    pub fn handle<O: Observer>(&mut self, env: &Envelope, obs: &mut O) -> Vec<Envelope> {
        if self.phase == Phase::Done {
            return Vec::new();
        }
        match env.body {
            Body::InitOk { informed, tracked, count } => {
                self.on_init_ok(&env.src, informed, tracked, count, obs)
            }
            Body::RoundOk { round, informed, tracked, count, packets, exchanges } => {
                self.on_round_ok(&env.src, round, informed, tracked, count, packets, exchanges, obs)
            }
            Body::Tick { epoch, .. } => self.on_tick(epoch, obs),
            // Structured node errors are diagnostic, not fatal; everything
            // else is noise.
            _ => Vec::new(),
        }
    }

    fn on_init_ok<O: Observer>(
        &mut self,
        src: &str,
        informed: bool,
        tracked: bool,
        count: u64,
        obs: &mut O,
    ) -> Vec<Envelope> {
        let Some(k) = crate::wire::parse_node_name(src).map(|id| id as usize) else {
            return Vec::new();
        };
        if self.phase != Phase::Init || k >= self.plan.n || self.acked[k] {
            return Vec::new();
        }
        self.acked[k] = true;
        self.informed[k] = informed;
        self.tracked[k] = tracked;
        self.counts[k] = count;
        if self.acked.iter().all(|&a| a) {
            return self.advance(obs);
        }
        Vec::new()
    }

    #[allow(clippy::too_many_arguments)]
    fn on_round_ok<O: Observer>(
        &mut self,
        src: &str,
        round: u64,
        informed: bool,
        tracked: bool,
        count: u64,
        packets: u64,
        exchanges: u64,
        obs: &mut O,
    ) -> Vec<Envelope> {
        let Some(k) = crate::wire::parse_node_name(src).map(|id| id as usize) else {
            return Vec::new();
        };
        if k >= self.plan.n {
            return Vec::new();
        }
        if self.phase == Phase::Round && round == self.round && !self.acked[k] {
            self.acked[k] = true;
            self.informed[k] = informed;
            self.tracked[k] = tracked;
            self.counts[k] = count;
            self.total_packets += packets;
            self.total_exchanges += exchanges;
            if self.acked.iter().all(|&a| a) {
                if O::ENABLED {
                    obs.record(&ObsEvent::RoundAdvanced {
                        round: self.round,
                        acks: self.plan.n,
                        expected: self.plan.n,
                        retries: self.attempt,
                        quorum: false,
                    });
                }
                return self.advance(obs);
            }
        } else if round < self.round && count >= self.counts[k] {
            // A straggler's report for a round we advanced past: its state
            // is monotone, so refreshing the snapshot only improves
            // accuracy. Its packets stay uncounted — the round they belong
            // to was already traced.
            self.informed[k] = informed;
            self.tracked[k] = tracked;
            self.counts[k] = count;
        }
        Vec::new()
    }

    fn on_tick<O: Observer>(&mut self, epoch: u64, obs: &mut O) -> Vec<Envelope> {
        if epoch != self.epoch {
            return Vec::new();
        }
        let missing: Vec<usize> = (0..self.plan.n).filter(|&k| !self.acked[k]).collect();
        let acks = self.plan.n - missing.len();
        match self.phase {
            Phase::Done => Vec::new(),
            Phase::Init => {
                if self.attempt >= self.policy.max_retries {
                    // A node that never answered init gets the classic
                    // defaults — it knows its own rumor and nothing else.
                    for &k in &missing {
                        self.acked[k] = true;
                        self.informed[k] = self.plan.n == 1;
                        self.tracked[k] = k == self.plan.tracked as usize;
                        self.counts[k] = 1;
                    }
                    return self.advance(obs);
                }
                self.attempt += 1;
                self.retries += 1;
                let backoff = self.policy.backoff(self.attempt);
                if O::ENABLED {
                    obs.record(&ObsEvent::RetryTimeout {
                        round: 0,
                        attempt: self.attempt,
                        backoff,
                        missing: missing.len(),
                    });
                }
                let mut out: Vec<Envelope> = missing
                    .iter()
                    .map(|&k| {
                        Envelope::new(
                            COORDINATOR,
                            node_name(k as NodeId),
                            Body::Init {
                                node_id: k as NodeId,
                                n: self.plan.n as u64,
                                scenario: self.scenario.clone(),
                                seed: self.seed,
                            },
                        )
                    })
                    .collect();
                out.push(self.tick(backoff));
                out
            }
            Phase::Round => {
                let backoff = self.policy.backoff(self.attempt + 1);
                if O::ENABLED {
                    obs.record(&ObsEvent::RetryTimeout {
                        round: self.round,
                        attempt: self.attempt + 1,
                        backoff,
                        missing: missing.len(),
                    });
                }
                let quorum = self.plan.n / 2 + 1;
                let degraded = (self.attempt >= 1 && acks >= quorum)
                    || self.attempt >= self.policy.max_retries;
                if degraded {
                    self.quorum_advances += 1;
                    if O::ENABLED {
                        obs.record(&ObsEvent::RoundAdvanced {
                            round: self.round,
                            acks,
                            expected: self.plan.n,
                            retries: self.attempt,
                            quorum: acks >= quorum,
                        });
                    }
                    // Unacked nodes carry their previous report forward;
                    // mark them so the next handshake starts clean.
                    for &k in &missing {
                        self.acked[k] = true;
                    }
                    return self.advance(obs);
                }
                self.attempt += 1;
                self.retries += 1;
                let mut out: Vec<Envelope> = missing
                    .iter()
                    .map(|&k| {
                        Envelope::new(
                            COORDINATOR,
                            node_name(k as NodeId),
                            Body::StartRound { round: self.round, attempt: self.attempt as u64 },
                        )
                    })
                    .collect();
                out.push(self.tick(backoff));
                out
            }
        }
    }

    /// Closes the in-flight handshake: trace row, stop rule, round cap,
    /// next round — mirroring the in-process executor's drive loop.
    fn advance<O: Observer>(&mut self, obs: &mut O) -> Vec<Envelope> {
        self.rounds_done = self.round;
        self.count_history.push(self.counts.clone());
        let fully = self.informed.iter().filter(|&&i| i).count();
        let tracked = self.tracked.iter().filter(|&&t| t).count();
        self.trace.push(RuntimeRow {
            round: self.rounds_done,
            fully_informed: fully,
            tracked_informed: tracked,
            packets: self.total_packets,
        });
        if O::ENABLED {
            obs.record(&ObsEvent::Round {
                round: self.rounds_done,
                fully_informed: fully,
                tracked_informed: tracked,
                packets: self.total_packets,
            });
        }
        let stopped = match self.plan.stop {
            StopRule::Complete => (fully == self.plan.n).then_some(StoppedBy::Complete),
            StopRule::Rounds(r) => (self.rounds_done == r).then_some(StoppedBy::RoundBudget),
            StopRule::Coverage(f) => {
                let target = coverage_target(f, self.plan.n);
                (target > 0 && tracked >= target).then_some(StoppedBy::CoverageReached)
            }
            // plan_runtime rejects injection scenarios, so this rule never
            // reaches a coordinator; treat it as never-firing defensively.
            StopRule::AllRumors => None,
        };
        let stopped = stopped.or_else(|| {
            (self.rounds_done >= self.plan.max_rounds).then_some(StoppedBy::MaxRoundsExhausted)
        });
        if let Some(s) = stopped {
            self.stopped = Some(s);
            self.phase = Phase::Done;
            return Vec::new();
        }
        // Open the next round's handshake.
        self.phase = Phase::Round;
        self.round = self.rounds_done + 1;
        self.attempt = 0;
        for a in &mut self.acked {
            *a = false;
        }
        let mut out: Vec<Envelope> = (0..self.plan.n)
            .map(|k| {
                Envelope::new(
                    COORDINATOR,
                    node_name(k as NodeId),
                    Body::StartRound { round: self.round, attempt: 0 },
                )
            })
            .collect();
        out.push(self.tick(self.policy.timeout_ticks));
        out
    }

    /// A fresh-generation timer envelope addressed to ourselves.
    fn tick(&mut self, after: u64) -> Envelope {
        self.epoch += 1;
        Envelope::new(COORDINATOR, COORDINATOR, Body::Tick { epoch: self.epoch, after })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc_obs::NoopObserver;
    use rpc_scenarios::{plan_runtime, registry};

    fn plan(n: usize, seed: u64) -> RuntimePlan {
        let scenario = registry::find("sparse-er", n).unwrap();
        let graph =
            scenario.topology.build().generate(rpc_scenarios::scenario_engine_seeds(seed).0);
        plan_runtime(&scenario, seed, &graph).unwrap()
    }

    fn init_ok(k: usize, tracked: bool) -> Envelope {
        Envelope::new(
            node_name(k as NodeId),
            COORDINATOR,
            Body::InitOk { informed: false, tracked, count: 1 },
        )
    }

    #[test]
    fn start_inits_every_node_and_arms_a_timer() {
        let p = plan(16, 1);
        let mut c = Coordinator::new(p, RetryPolicy::default(), "sparse-er", 1);
        let out = c.start();
        assert_eq!(out.len(), 17);
        assert_eq!(out.iter().filter(|e| matches!(e.body, Body::Init { .. })).count(), 16);
        assert!(matches!(out[16].body, Body::Tick { .. }));
    }

    #[test]
    fn full_init_acks_open_round_one_with_a_round_zero_row() {
        let p = plan(16, 1);
        let tracked = p.tracked as usize;
        let mut c = Coordinator::new(p, RetryPolicy::default(), "sparse-er", 1);
        let _ = c.start();
        let mut obs = NoopObserver;
        let mut last = Vec::new();
        for k in 0..16 {
            last = c.handle(&init_ok(k, k == tracked), &mut obs);
        }
        assert_eq!(c.trace().len(), 1);
        assert_eq!(
            c.trace()[0],
            RuntimeRow { round: 0, fully_informed: 0, tracked_informed: 1, packets: 0 }
        );
        assert_eq!(c.current_round(), 1);
        assert_eq!(
            last.iter().filter(|e| matches!(e.body, Body::StartRound { round: 1, .. })).count(),
            16
        );
    }

    #[test]
    fn init_timeout_retries_then_defaults_the_silent_nodes() {
        let p = plan(16, 1);
        let policy = RetryPolicy { max_retries: 2, ..RetryPolicy::default() };
        let mut c = Coordinator::new(p, policy, "sparse-er", 1);
        let _ = c.start();
        let mut obs = NoopObserver;
        // Ack all but node 3, then fire timers to exhaustion.
        for k in (0..16).filter(|&k| k != 3) {
            let _ = c.handle(&init_ok(k, false), &mut obs);
        }
        let mut epoch = 1;
        loop {
            let out = c.handle(
                &Envelope::new(COORDINATOR, COORDINATOR, Body::Tick { epoch, after: 0 }),
                &mut obs,
            );
            epoch += 1;
            if c.current_round() == 1 {
                break;
            }
            assert!(
                out.iter().any(|e| matches!(e.body, Body::Init { node_id: 3, .. })),
                "retries go to the silent node"
            );
        }
        assert_eq!(c.retries(), 2);
        assert_eq!(c.counts()[3], 1, "defaulted to the classic initial state");
    }

    #[test]
    fn stale_epoch_ticks_are_inert() {
        let p = plan(16, 1);
        let mut c = Coordinator::new(p, RetryPolicy::default(), "sparse-er", 1);
        let _ = c.start();
        let mut obs = NoopObserver;
        let out = c.handle(
            &Envelope::new(COORDINATOR, COORDINATOR, Body::Tick { epoch: 99, after: 0 }),
            &mut obs,
        );
        assert!(out.is_empty());
        assert_eq!(c.retries(), 0);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = RetryPolicy { timeout_ticks: 16, backoff_cap: 100, max_retries: 6 };
        assert_eq!(policy.backoff(1), 32);
        assert_eq!(policy.backoff(2), 64);
        assert_eq!(policy.backoff(3), 100);
        assert_eq!(policy.backoff(30), 100);
    }
}
