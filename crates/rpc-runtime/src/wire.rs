//! The JSON-lines wire format of the node runtime.
//!
//! One flat JSON object per line, Maelstrom-style: every message is an
//! [`Envelope`] with a `src`, a `dest` and a typed body, e.g.
//!
//! ```text
//! {"src":"c0","dest":"n3","type":"start_round","round":4,"attempt":0}
//! {"src":"n3","dest":"n7","type":"gossip","round":4,"from":3,"rumors":"1a00000000000000"}
//! ```
//!
//! The codec reuses the observability layer's flat-JSON reader/writer
//! ([`rpc_obs::parse_object`] / [`rpc_obs::escape_into`]) instead of pulling
//! in a serialization framework, which keeps the build hermetic and the
//! format trivially greppable. Two deliberate wire conventions:
//!
//! * **Seeds travel as decimal strings.** Flat-JSON numbers are `f64`, which
//!   silently rounds integers above 2⁵³ — and derived engine seeds use all
//!   64 bits. Encoding `seed` as a string makes the round trip exact.
//! * **Rumor sets travel as fixed-width hex words** (see
//!   [`crate::store::RumorStore::to_hex`]), so payload size is `⌈n/64⌉ · 16`
//!   characters regardless of how many rumors a node knows.
//!
//! Decoding is total: every malformed, truncated or unknown input maps to a
//! structured [`WireError`] — the stdio host turns these into `error` replies
//! instead of dying, and a property suite pins "never panics" over random
//! mutations of valid lines.

use rpc_graphs::NodeId;
use rpc_obs::{escape_into, parse_object, JsonValue};

/// The name of the round coordinator on the wire.
pub const COORDINATOR: &str = "c0";

/// Error code of an undecodable line (not valid flat JSON).
pub const CODE_MALFORMED: u64 = 10;
/// Error code of a structurally valid message with an unknown `type`.
pub const CODE_UNKNOWN_TYPE: u64 = 11;
/// Error code of a known message with a missing or ill-typed field.
pub const CODE_BAD_FIELD: u64 = 12;
/// Error code of a message that is valid but unusable in the current state
/// (e.g. gossip before `init`, or an unknown scenario name).
pub const CODE_UNUSABLE: u64 = 13;

/// The wire name of node `id` (`n0`, `n1`, …).
pub fn node_name(id: NodeId) -> String {
    format!("n{id}")
}

/// Parses a wire node name back into its id (`"n3"` → `3`).
pub fn parse_node_name(name: &str) -> Option<NodeId> {
    name.strip_prefix('n')?.parse().ok()
}

/// One wire message: source, destination, typed body.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Sender name (`c0` or `n<k>`).
    pub src: String,
    /// Receiver name.
    pub dest: String,
    /// The typed payload.
    pub body: Body,
}

impl Envelope {
    /// A new envelope.
    pub fn new(src: impl Into<String>, dest: impl Into<String>, body: Body) -> Self {
        Envelope { src: src.into(), dest: dest.into(), body }
    }

    /// Serializes the envelope as one flat JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut line = String::with_capacity(96);
        line.push('{');
        push_str_field(&mut line, "src", &self.src);
        line.push(',');
        push_str_field(&mut line, "dest", &self.dest);
        line.push(',');
        self.body.encode_into(&mut line);
        line.push('}');
        line
    }

    /// Parses one flat JSON line into an envelope.
    pub fn decode(line: &str) -> Result<Self, WireError> {
        let pairs = parse_object(line).ok_or(WireError::Malformed)?;
        let fields = Fields(&pairs);
        let src = fields.str("src")?.to_string();
        let dest = fields.str("dest")?.to_string();
        let body = Body::decode(&fields)?;
        Ok(Envelope { src, dest, body })
    }
}

/// The typed payload of an [`Envelope`].
#[derive(Clone, Debug, PartialEq)]
pub enum Body {
    /// Coordinator → node: adopt this identity and scenario. The stdio host
    /// builds its graph and engine replica from exactly these parameters.
    Init {
        /// This node's id.
        node_id: NodeId,
        /// Network size.
        n: u64,
        /// Registry name of the (benign, classic, push-pull) scenario.
        scenario: String,
        /// The scenario seed (decimal string on the wire; see module docs).
        seed: u64,
    },
    /// Node → coordinator: initialised; initial rumor state attached.
    InitOk {
        /// Whether the node already knows every rumor (true only for n = 1).
        informed: bool,
        /// Whether the node holds the tracked rumor.
        tracked: bool,
        /// Number of rumors known.
        count: u64,
    },
    /// Coordinator → node: execute synchronous round `round` (1-based).
    /// Retransmitted with an increasing `attempt` until acknowledged.
    StartRound {
        /// The round to execute.
        round: u64,
        /// Retry attempt (0 on first transmission).
        attempt: u64,
    },
    /// Node → coordinator: round executed, post-merge state attached.
    RoundOk {
        /// The acknowledged round.
        round: u64,
        /// Whether the node now knows every rumor.
        informed: bool,
        /// Whether the node now holds the tracked rumor.
        tracked: bool,
        /// Number of rumors known.
        count: u64,
        /// Packets this node sent in this round.
        packets: u64,
        /// Channel exchanges this node opened in this round.
        exchanges: u64,
    },
    /// Node → node: one push or pull packet of round `round`, carrying the
    /// sender's full pre-round rumor set.
    Gossip {
        /// The round this packet belongs to.
        round: u64,
        /// The sending node's id (redundant with `src`, kept explicit so the
        /// payload is self-describing in captured traces).
        from: NodeId,
        /// Hex-encoded rumor words (see [`crate::store::RumorStore`]).
        rumors: String,
    },
    /// Anyone → node: report your rumor state (debugging / invariant probes).
    Read,
    /// Node → asker: the reply to [`Body::Read`].
    ReadOk {
        /// Whether the node knows every rumor.
        informed: bool,
        /// Whether the node holds the tracked rumor.
        tracked: bool,
        /// Number of rumors known.
        count: u64,
        /// Hex-encoded rumor words.
        rumors: String,
    },
    /// Structured failure reply (never fatal to the receiver).
    Error {
        /// One of the `CODE_*` constants.
        code: u64,
        /// Human-readable description.
        text: String,
    },
    /// Coordinator → itself: a timer. The transport scheduler delivers it
    /// `after` ticks in the future; `epoch` guards against stale timers.
    /// Internal — nodes reply with [`Body::Error`] if they ever receive one.
    Tick {
        /// Timer generation; ticks from earlier generations are ignored.
        epoch: u64,
        /// Delay in scheduler ticks.
        after: u64,
    },
}

impl Body {
    /// The wire `type` tag of this body.
    pub fn kind(&self) -> &'static str {
        match self {
            Body::Init { .. } => "init",
            Body::InitOk { .. } => "init_ok",
            Body::StartRound { .. } => "start_round",
            Body::RoundOk { .. } => "round_ok",
            Body::Gossip { .. } => "gossip",
            Body::Read => "read",
            Body::ReadOk { .. } => "read_ok",
            Body::Error { .. } => "error",
            Body::Tick { .. } => "tick",
        }
    }

    fn encode_into(&self, line: &mut String) {
        push_str_field(line, "type", self.kind());
        match *self {
            Body::Init { node_id, n, ref scenario, seed } => {
                push_num_field(line, "node_id", node_id as u64);
                push_num_field(line, "n", n);
                push_str_field_c(line, "scenario", scenario);
                push_str_field_c(line, "seed", &seed.to_string());
            }
            Body::InitOk { informed, tracked, count } => {
                push_bool_field(line, "informed", informed);
                push_bool_field(line, "tracked", tracked);
                push_num_field(line, "count", count);
            }
            Body::StartRound { round, attempt } => {
                push_num_field(line, "round", round);
                push_num_field(line, "attempt", attempt);
            }
            Body::RoundOk { round, informed, tracked, count, packets, exchanges } => {
                push_num_field(line, "round", round);
                push_bool_field(line, "informed", informed);
                push_bool_field(line, "tracked", tracked);
                push_num_field(line, "count", count);
                push_num_field(line, "packets", packets);
                push_num_field(line, "exchanges", exchanges);
            }
            Body::Gossip { round, from, ref rumors } => {
                push_num_field(line, "round", round);
                push_num_field(line, "from", from as u64);
                push_str_field_c(line, "rumors", rumors);
            }
            Body::Read => {}
            Body::ReadOk { informed, tracked, count, ref rumors } => {
                push_bool_field(line, "informed", informed);
                push_bool_field(line, "tracked", tracked);
                push_num_field(line, "count", count);
                push_str_field_c(line, "rumors", rumors);
            }
            Body::Error { code, ref text } => {
                push_num_field(line, "code", code);
                push_str_field_c(line, "text", text);
            }
            Body::Tick { epoch, after } => {
                push_num_field(line, "epoch", epoch);
                push_num_field(line, "after", after);
            }
        }
    }

    fn decode(fields: &Fields<'_>) -> Result<Self, WireError> {
        let kind = fields.str("type")?;
        match kind {
            "init" => Ok(Body::Init {
                node_id: fields.node_id("node_id")?,
                n: fields.u64("n")?,
                scenario: fields.str("scenario")?.to_string(),
                seed: fields.seed("seed")?,
            }),
            "init_ok" => Ok(Body::InitOk {
                informed: fields.bool("informed")?,
                tracked: fields.bool("tracked")?,
                count: fields.u64("count")?,
            }),
            "start_round" => Ok(Body::StartRound {
                round: fields.u64("round")?,
                attempt: fields.u64("attempt")?,
            }),
            "round_ok" => Ok(Body::RoundOk {
                round: fields.u64("round")?,
                informed: fields.bool("informed")?,
                tracked: fields.bool("tracked")?,
                count: fields.u64("count")?,
                packets: fields.u64("packets")?,
                exchanges: fields.u64("exchanges")?,
            }),
            "gossip" => Ok(Body::Gossip {
                round: fields.u64("round")?,
                from: fields.node_id("from")?,
                rumors: fields.str("rumors")?.to_string(),
            }),
            "read" => Ok(Body::Read),
            "read_ok" => Ok(Body::ReadOk {
                informed: fields.bool("informed")?,
                tracked: fields.bool("tracked")?,
                count: fields.u64("count")?,
                rumors: fields.str("rumors")?.to_string(),
            }),
            "error" => {
                Ok(Body::Error { code: fields.u64("code")?, text: fields.str("text")?.to_string() })
            }
            "tick" => Ok(Body::Tick { epoch: fields.u64("epoch")?, after: fields.u64("after")? }),
            other => Err(WireError::UnknownType { found: other.to_string() }),
        }
    }
}

/// Why a wire line failed to decode. Every variant maps to an error `code`
/// via [`WireError::code`]; none of them is a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Not a flat JSON object (syntax error, nesting, trailing garbage, or a
    /// truncated line).
    Malformed,
    /// Valid object, but its `type` tag names no known message.
    UnknownType {
        /// The unrecognized tag.
        found: String,
    },
    /// A required field is absent.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// A required field is present but has the wrong JSON type or an
    /// unrepresentable value (e.g. a negative count, a non-numeric seed).
    BadField {
        /// The field name.
        field: &'static str,
    },
}

impl WireError {
    /// The wire error code this failure is reported under.
    pub fn code(&self) -> u64 {
        match self {
            WireError::Malformed => CODE_MALFORMED,
            WireError::UnknownType { .. } => CODE_UNKNOWN_TYPE,
            WireError::MissingField { .. } | WireError::BadField { .. } => CODE_BAD_FIELD,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed => write!(f, "not a flat JSON object"),
            WireError::UnknownType { found } => write!(f, "unknown message type {found:?}"),
            WireError::MissingField { field } => write!(f, "missing field {field:?}"),
            WireError::BadField { field } => write!(f, "ill-typed field {field:?}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Typed field access over a parsed flat object.
struct Fields<'a>(&'a [(String, JsonValue)]);

impl Fields<'_> {
    fn get(&self, field: &'static str) -> Result<&JsonValue, WireError> {
        self.0
            .iter()
            .find(|(k, _)| k == field)
            .map(|(_, v)| v)
            .ok_or(WireError::MissingField { field })
    }

    fn str(&self, field: &'static str) -> Result<&str, WireError> {
        self.get(field)?.as_str().ok_or(WireError::BadField { field })
    }

    fn u64(&self, field: &'static str) -> Result<u64, WireError> {
        let x = self.get(field)?.as_f64().ok_or(WireError::BadField { field })?;
        // Counters must be non-negative integers exactly representable in
        // f64; anything else on the wire is a corrupt message, not a value.
        if x >= 0.0 && x.fract() == 0.0 && x <= 9.007_199_254_740_992e15 {
            Ok(x as u64)
        } else {
            Err(WireError::BadField { field })
        }
    }

    fn bool(&self, field: &'static str) -> Result<bool, WireError> {
        self.get(field)?.as_bool().ok_or(WireError::BadField { field })
    }

    fn node_id(&self, field: &'static str) -> Result<NodeId, WireError> {
        NodeId::try_from(self.u64(field)?).map_err(|_| WireError::BadField { field })
    }

    /// Seeds are decimal strings on the wire (see module docs).
    fn seed(&self, field: &'static str) -> Result<u64, WireError> {
        self.str(field)?.parse().map_err(|_| WireError::BadField { field })
    }
}

fn push_str_field(line: &mut String, key: &str, value: &str) {
    escape_into(line, key);
    line.push(':');
    escape_into(line, value);
}

/// `push_str_field` with the leading comma (every body field is non-first).
fn push_str_field_c(line: &mut String, key: &str, value: &str) {
    line.push(',');
    push_str_field(line, key, value);
}

fn push_num_field(line: &mut String, key: &str, value: u64) {
    use std::fmt::Write as _;
    line.push(',');
    escape_into(line, key);
    let _ = write!(line, ":{value}");
}

fn push_bool_field(line: &mut String, key: &str, value: bool) {
    line.push(',');
    escape_into(line, key);
    line.push(':');
    line.push_str(if value { "true" } else { "false" });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One sample of every body variant, for exhaustive codec tests.
    pub(crate) fn samples() -> Vec<Envelope> {
        vec![
            Envelope::new(
                COORDINATOR,
                "n0",
                Body::Init {
                    node_id: 0,
                    n: 16,
                    scenario: "sparse-er".into(),
                    // Deliberately above 2^53, to pin the string encoding.
                    seed: 0xDEAD_BEEF_CAFE_F00D,
                },
            ),
            Envelope::new(
                "n0",
                COORDINATOR,
                Body::InitOk { informed: false, tracked: true, count: 1 },
            ),
            Envelope::new(COORDINATOR, "n1", Body::StartRound { round: 3, attempt: 1 }),
            Envelope::new(
                "n1",
                COORDINATOR,
                Body::RoundOk {
                    round: 3,
                    informed: false,
                    tracked: true,
                    count: 9,
                    packets: 2,
                    exchanges: 1,
                },
            ),
            Envelope::new(
                "n1",
                "n4",
                Body::Gossip { round: 3, from: 1, rumors: "02ff000000000000".into() },
            ),
            Envelope::new(COORDINATOR, "n2", Body::Read),
            Envelope::new(
                "n2",
                COORDINATOR,
                Body::ReadOk {
                    informed: true,
                    tracked: true,
                    count: 16,
                    rumors: "ffff000000000000".into(),
                },
            ),
            Envelope::new("n2", "c0", Body::Error { code: CODE_BAD_FIELD, text: "nope".into() }),
            Envelope::new(COORDINATOR, COORDINATOR, Body::Tick { epoch: 7, after: 16 }),
        ]
    }

    #[test]
    fn every_body_round_trips_through_the_codec() {
        for env in samples() {
            let line = env.encode();
            let back = Envelope::decode(&line)
                .unwrap_or_else(|e| panic!("{e} decoding {line:?} ({:?})", env.body.kind()));
            assert_eq!(back, env, "line: {line}");
        }
    }

    #[test]
    fn seeds_survive_the_full_u64_range() {
        for seed in [0u64, 1, (1 << 53) + 1, u64::MAX] {
            let env = Envelope::new(
                COORDINATOR,
                "n0",
                Body::Init { node_id: 0, n: 2, scenario: "s".into(), seed },
            );
            match Envelope::decode(&env.encode()).unwrap().body {
                Body::Init { seed: back, .. } => assert_eq!(back, seed),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn decode_reports_structured_errors() {
        assert_eq!(Envelope::decode("not json"), Err(WireError::Malformed));
        assert_eq!(
            Envelope::decode(r#"{"src":"a","dest":"b"}"#),
            Err(WireError::MissingField { field: "type" })
        );
        assert_eq!(
            Envelope::decode(r#"{"src":"a","dest":"b","type":"warble"}"#),
            Err(WireError::UnknownType { found: "warble".into() })
        );
        assert_eq!(
            Envelope::decode(
                r#"{"src":"a","dest":"b","type":"start_round","round":-1,"attempt":0}"#
            ),
            Err(WireError::BadField { field: "round" })
        );
        assert_eq!(
            Envelope::decode(
                r#"{"src":"a","dest":"b","type":"start_round","round":1.5,"attempt":0}"#
            ),
            Err(WireError::BadField { field: "round" })
        );
    }

    #[test]
    fn node_names_round_trip() {
        assert_eq!(node_name(0), "n0");
        assert_eq!(parse_node_name("n17"), Some(17));
        assert_eq!(parse_node_name("c0"), None);
        assert_eq!(parse_node_name("n"), None);
        assert_eq!(parse_node_name("nx"), None);
    }

    #[test]
    fn error_codes_partition_the_failure_modes() {
        assert_eq!(WireError::Malformed.code(), CODE_MALFORMED);
        assert_eq!(WireError::UnknownType { found: "x".into() }.code(), CODE_UNKNOWN_TYPE);
        assert_eq!(WireError::MissingField { field: "f" }.code(), CODE_BAD_FIELD);
        assert_eq!(WireError::BadField { field: "f" }.code(), CODE_BAD_FIELD);
    }
}
