//! The node runtime's differential and invariant suite.
//!
//! **Anchor:** with a benign nemesis and the deterministic single-threaded
//! scheduler, [`run_cluster`]'s per-round trace is *bit-identical* to the
//! in-process scenario executor's `ScenarioTrace` for the same scenario and
//! seed — same rounds, same informed counts, same packet totals, same stop
//! cause. The distributed handshake is pure plumbing; the protocol it
//! carries is the simulator's, exactly.
//!
//! **Under faults** the trace may differ, but the safety invariants hold:
//! no rumor is forged (everything a node holds arrived in a payload), each
//! node's reported coverage is monotone round over round, and a
//! crash-restarted node rejoins with its persisted rumors intact.

use proptest::prelude::*;
use rpc_obs::TraceWriter;
use rpc_runtime::{run_cluster, run_cluster_observed, ClusterConfig, NemesisSpec, RetryPolicy};
use rpc_scenarios::{registry, run_scenario_traced, StoppedBy};

/// Drives one scenario through both executors and asserts trace equality.
fn assert_differential(name: &str, n: usize, seed: u64) {
    let scenario = registry::find(name, n).unwrap_or_else(|| panic!("registry has {name}"));
    let (outcome, trace) = run_scenario_traced(&scenario, seed, 1);
    let runtime = run_cluster(&scenario, seed, &ClusterConfig::benign())
        .expect("benign cluster run succeeds");

    assert_eq!(
        runtime.stopped_by, outcome.stopped_by,
        "{name} n={n} seed={seed}: stop cause diverged"
    );
    assert_eq!(runtime.rounds, outcome.rounds, "{name} n={n} seed={seed}: round count diverged");
    assert_eq!(
        runtime.trace.len(),
        trace.rounds.len(),
        "{name} n={n} seed={seed}: trace length diverged"
    );
    for (row, sim_row) in runtime.trace.iter().zip(&trace.rounds) {
        assert_eq!(row.round, sim_row.round, "{name} n={n} seed={seed}");
        assert_eq!(
            row.fully_informed, sim_row.fully_informed,
            "{name} n={n} seed={seed} round {}: fully-informed diverged",
            row.round
        );
        assert_eq!(
            row.tracked_informed, sim_row.tracked_informed,
            "{name} n={n} seed={seed} round {}: tracked diverged",
            row.round
        );
        assert_eq!(
            row.packets, sim_row.packets,
            "{name} n={n} seed={seed} round {}: packet accounting diverged",
            row.round
        );
    }
    assert!(!runtime.forged);
    assert_eq!(runtime.retries, 0, "a benign run never times out");
}

#[test]
fn fault_free_trace_equals_simulator_dense_er() {
    for seed in [1, 7] {
        assert_differential("dense-er", 16, seed);
        assert_differential("dense-er", 32, seed);
    }
}

#[test]
fn fault_free_trace_equals_simulator_sparse_er() {
    for seed in [1, 7] {
        assert_differential("sparse-er", 16, seed);
        assert_differential("sparse-er", 32, seed);
    }
}

#[test]
fn fault_free_trace_equals_simulator_adversarial_start() {
    // Coverage stop rule + min-degree placement: exercises the non-Complete
    // stop path and the environment-stream placement replication.
    for seed in [1, 7] {
        assert_differential("adversarial-start", 16, seed);
        assert_differential("adversarial-start", 32, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
    ))]

    /// The differential anchor over the whole benign push-pull slice the
    /// runtime supports: any registry trio member, any small n, any seed.
    #[test]
    fn prop_fault_free_trace_equals_simulator(
        which in 0usize..3,
        n in 16usize..40,
        seed in 0u64..1_000_000,
    ) {
        let name = ["dense-er", "sparse-er", "adversarial-start"][which];
        assert_differential(name, n, seed);
    }

    /// Same cluster config twice → identical outcome, faults included.
    #[test]
    fn prop_cluster_runs_are_deterministic(
        seed in 0u64..1_000_000,
        drop in 0u32..200,
        nemesis_seed in 0u64..1_000_000,
    ) {
        let scenario = registry::find("sparse-er", 16).unwrap();
        let config = ClusterConfig {
            policy: RetryPolicy::default(),
            nemesis: NemesisSpec {
                drop: f64::from(drop) / 1000.0,
                seed: nemesis_seed,
                ..NemesisSpec::default()
            },
        };
        let a = run_cluster(&scenario, seed, &config).unwrap();
        let b = run_cluster(&scenario, seed, &config).unwrap();
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.final_counts, b.final_counts);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.retries, b.retries);
    }

    /// Safety invariants survive arbitrary probabilistic fault mixes.
    #[test]
    fn prop_invariants_hold_under_faults(
        seed in 0u64..1_000_000,
        nemesis_seed in 0u64..1_000_000,
        drop in 0u32..150,
        delay in 0u32..200,
        duplicate in 0u32..100,
    ) {
        let scenario = registry::find("sparse-er", 16).unwrap();
        let config = ClusterConfig {
            policy: RetryPolicy::default(),
            nemesis: NemesisSpec {
                drop: f64::from(drop) / 1000.0,
                delay: f64::from(delay) / 1000.0,
                delay_max: 3,
                duplicate: f64::from(duplicate) / 1000.0,
                seed: nemesis_seed,
                ..NemesisSpec::default()
            },
        };
        let outcome = run_cluster(&scenario, seed, &config).unwrap();
        prop_assert!(!outcome.forged, "no node may hold a rumor that never arrived");
        // Per-node coverage is monotone across the round snapshots.
        for node in 0..16 {
            let mut prev = 0u64;
            for (round, snapshot) in outcome.count_history.iter().enumerate() {
                prop_assert!(
                    snapshot[node] >= prev,
                    "node {node} coverage regressed at round {round}"
                );
                prev = snapshot[node];
            }
        }
        // Terminal state is consistent with the reported counts.
        for (node, words) in outcome.final_words.iter().enumerate() {
            let held: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
            prop_assert!(
                held >= outcome.final_counts[node],
                "node {node} reported more rumors than it holds"
            );
        }
    }
}

/// The acceptance scenario: drop + delay + duplicate + partition +
/// crash-restart, all at once, completing via retry/backoff.
#[test]
fn hostile_nemesis_run_completes_with_invariants_intact() {
    let scenario = registry::find("sparse-er", 32).unwrap();
    let config = ClusterConfig {
        policy: RetryPolicy::default(),
        nemesis: NemesisSpec::parse(
            "drop=0.15,delay=0.2:3,duplicate=0.1,partition=2:3,crash=1@2+3,seed=9",
        )
        .unwrap(),
    };
    let outcome = run_cluster(&scenario, 3, &config).unwrap();
    assert!(outcome.completed, "stopped by {:?}", outcome.stopped_by);
    assert_eq!(outcome.stopped_by, StoppedBy::Complete);
    assert!(!outcome.forged);
    // The nemesis actually did its job.
    assert!(outcome.faults.dropped > 0);
    assert!(outcome.faults.partition_drops > 0);
    assert_eq!(outcome.faults.crashes, 1);
    assert_eq!(outcome.faults.restarts, 1);
    // The restarted node's final store contains everything it persisted.
    let audit = &outcome.crash_audits[0];
    assert_eq!(audit.node, 1);
    for (w, p) in outcome.final_words[1].iter().zip(&audit.persisted) {
        assert_eq!(p & !w, 0, "persisted rumors survive the restart");
    }
    // The fault tolerance machinery visibly engaged.
    assert!(outcome.retries > 0, "drops must trigger retransmissions");
    // Coverage stays monotone per node even through the crash window.
    for node in 0..32 {
        let mut prev = 0u64;
        for snapshot in &outcome.count_history {
            assert!(snapshot[node] >= prev);
            prev = snapshot[node];
        }
    }
}

/// Fault, retry and round-advance events are all visible through the
/// rpc-obs trace sink as parseable flat JSON lines.
#[test]
fn observability_exposes_transport_and_retry_events() {
    let scenario = registry::find("sparse-er", 16).unwrap();
    let config = ClusterConfig {
        policy: RetryPolicy::default(),
        nemesis: NemesisSpec::parse("drop=0.2,partition=2:2,crash=3@2+2,seed=4").unwrap(),
    };
    let mut sink = TraceWriter::new(Vec::new());
    let outcome = run_cluster_observed(&scenario, 3, &config, &mut sink).unwrap();
    assert!(outcome.completed, "stopped by {:?}", outcome.stopped_by);
    let buf = sink.finish().expect("no io error on Vec");
    let text = String::from_utf8(buf).unwrap();
    let kinds: Vec<String> = text
        .lines()
        .filter_map(|line| {
            rpc_obs::parse_object(line)
                .unwrap_or_else(|| panic!("unparseable trace line: {line}"))
                .into_iter()
                .find(|(k, _)| k == "ev")
                .and_then(|(_, v)| v.as_str().map(str::to_string))
        })
        .collect();
    for expected in ["transport-fault", "retry-timeout", "round-advanced", "round"] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "trace is missing {expected:?} events; kinds seen: {kinds:?}"
        );
    }
}
