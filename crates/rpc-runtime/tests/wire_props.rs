//! Property suite for the JSON transport's error paths: decoding is total.
//!
//! Every malformed, truncated, mutated or type-confused line must map to a
//! structured [`WireError`] — never a panic — and the stdio serve loop must
//! answer such lines with `error` envelopes and keep running.

use proptest::prelude::*;
use rpc_runtime::wire::{Body, Envelope, WireError};
use rpc_runtime::{serve, RumorStore, StdioTransport, Transport};

/// A strategy for short lowercase identifiers (node names, scenario names).
fn arb_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..9)
        .prop_map(|v| v.into_iter().map(|b| char::from(b'a' + b)).collect())
}

/// A strategy for printable-ASCII strings of length `0..max` (free text and
/// garbage lines).
fn arb_ascii(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max).prop_map(|v| v.into_iter().map(char::from).collect())
}

/// A strategy for 16-hex-char rumor payloads (one word).
fn arb_hex_word() -> impl Strategy<Value = String> {
    any::<u64>().prop_map(|w| format!("{w:016x}"))
}

/// An arbitrary valid envelope, cycling through every body variant.
fn arb_envelope() -> impl Strategy<Value = Envelope> {
    let fields =
        (0usize..9, (any::<u64>(), any::<u64>(), any::<u64>()), (any::<bool>(), any::<bool>()));
    (arb_name(), arb_name(), arb_name(), arb_hex_word(), arb_ascii(30), fields).prop_map(
        |(src, dest, name, hex, text, (variant, (a, b, c), (f1, f2)))| {
            // Counters on the wire are small by construction (rounds,
            // packets, node counts); only the string-encoded seed may span
            // the full u64 range — JSON numbers are f64-backed, so values
            // beyond 2^53 are deliberately rejected by the decoder.
            let (a, b) = (a % 1_000_000_000, b % 1_000_000_000);
            let body = match variant {
                0 => Body::Init {
                    node_id: (a % u64::from(u32::MAX)) as u32,
                    n: b % 1000 + 1,
                    scenario: name,
                    seed: c,
                },
                1 => Body::InitOk { informed: f1, tracked: f2, count: a },
                2 => Body::StartRound { round: a, attempt: b },
                3 => Body::RoundOk {
                    round: a,
                    informed: f1,
                    tracked: f2,
                    count: b,
                    packets: c % 1_000_000_000,
                    exchanges: c % 97,
                },
                4 => Body::Gossip { round: a, from: (b % u64::from(u32::MAX)) as u32, rumors: hex },
                5 => Body::Read,
                6 => Body::ReadOk { informed: f1, tracked: f2, count: a, rumors: hex },
                7 => Body::Error { code: a % 100, text },
                _ => Body::Tick { epoch: a, after: b % 1000 },
            };
            Envelope::new(src, dest, body)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: encode then decode is the identity, for every variant.
    #[test]
    fn prop_encode_decode_round_trips(env in arb_envelope()) {
        let line = env.encode();
        let back = Envelope::decode(&line);
        prop_assert_eq!(back, Ok(env), "line: {}", line);
    }

    /// Truncating a valid line at ANY byte boundary yields a structured
    /// error — never a panic. A strict prefix of a flat JSON object is
    /// never itself a complete object, so every truncation must fail
    /// cleanly as malformed.
    #[test]
    fn prop_truncation_at_any_point_is_a_structured_error(env in arb_envelope()) {
        let line = env.encode();
        for cut in 0..line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            let truncated = &line[..cut];
            prop_assert_eq!(
                Envelope::decode(truncated),
                Err(WireError::Malformed),
                "truncated at {}: {:?}",
                cut,
                truncated
            );
        }
    }

    /// Arbitrary printable garbage never panics the decoder.
    #[test]
    fn prop_garbage_never_panics(garbage in arb_ascii(200)) {
        // Either it errors, or the garbage happened to be a valid envelope
        // (possible only for brace-wrapped input) — both are fine; what is
        // forbidden is a panic, which would fail this test.
        let _ = Envelope::decode(&garbage);
    }

    /// Mutating one byte of a valid line either still decodes (the byte
    /// landed in free-text position) or errors — never panics.
    #[test]
    fn prop_single_byte_mutations_never_panic(
        env in arb_envelope(),
        pos in any::<usize>(),
        byte in 32u8..127,
    ) {
        let line = env.encode();
        let mut bytes = line.into_bytes();
        let i = pos % bytes.len();
        bytes[i] = byte;
        if let Ok(mutated) = String::from_utf8(bytes) {
            let _ = Envelope::decode(&mutated);
        }
    }

    /// An unknown `type` tag is reported as such, preserving the tag.
    #[test]
    fn prop_unknown_types_are_reported(tag in arb_name()) {
        let known = [
            "init", "init_ok", "start_round", "round_ok", "gossip", "read", "read_ok",
            "error", "tick",
        ];
        if !known.contains(&tag.as_str()) {
            let line = format!(r#"{{"src":"a","dest":"b","type":"{tag}"}}"#);
            prop_assert_eq!(
                Envelope::decode(&line),
                Err(WireError::UnknownType { found: tag })
            );
        }
    }

    /// Hex rumor payload decoding is total: wrong length or charset is a
    /// structured error, valid payloads round trip.
    #[test]
    fn prop_rumor_hex_decoding_is_total(payload in arb_ascii(64), n in 1usize..200) {
        match RumorStore::from_hex(&payload, n) {
            Ok(store) => {
                prop_assert_eq!(store.to_hex().len(), payload.len());
                prop_assert!(store.count() <= n);
            }
            Err(e) => prop_assert_eq!(e, WireError::BadField { field: "rumors" }),
        }
    }

    /// Numeric fields reject negatives, fractions and overflow with a
    /// structured BadField — the f64 backing of flat JSON never smuggles a
    /// bad value through as a u64.
    #[test]
    fn prop_bad_numeric_fields_are_rejected(round in any::<u64>()) {
        for bad in ["-1", "1.5", "1e300", "-0.25"] {
            let line = format!(
                r#"{{"src":"a","dest":"b","type":"start_round","round":{bad},"attempt":{round}}}"#
            );
            let decoded = Envelope::decode(&line);
            prop_assert!(
                decoded == Err(WireError::BadField { field: "round" })
                    || decoded == Err(WireError::Malformed),
                "bad number {bad} decoded to {decoded:?}"
            );
        }
    }

    /// The stdio serve loop answers garbage lines with structured error
    /// envelopes and keeps serving — it never dies mid-stream.
    #[test]
    fn prop_serve_survives_garbage_lines(garbage in arb_ascii(120)) {
        let init = Envelope::new(
            "c0",
            "n0",
            Body::Init { node_id: 0, n: 16, scenario: "sparse-er".into(), seed: 3 },
        )
        .encode();
        let read = Envelope::new("probe", "n0", Body::Read).encode();
        let input = format!("{garbage}\n{init}\n{garbage}\n{read}\n");
        let mut transport = StdioTransport::new(input.as_bytes(), Vec::new());
        serve(&mut transport, None).expect("serve must survive to EOF");
        let mut replies = Vec::new();
        let output = transport.into_output();
        let mut echo = StdioTransport::new(output.as_slice(), Vec::new());
        while let Ok(Some(env)) = echo.recv() {
            replies.push(env);
        }
        // The trailing read was answered, so the garbage did not kill the
        // loop; and a non-envelope garbage line drew a structured error.
        prop_assert!(
            replies.iter().any(|e| matches!(e.body, Body::ReadOk { .. })),
            "serve died before the trailing read; replies: {:?}",
            replies
        );
        if Envelope::decode(garbage.trim()).is_err() && !garbage.trim().is_empty() {
            prop_assert!(
                replies.iter().any(|e| matches!(e.body, Body::Error { .. })),
                "garbage line drew no error envelope; replies: {:?}",
                replies
            );
        }
    }
}
