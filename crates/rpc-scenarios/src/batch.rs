//! The multi-threaded Monte Carlo batch driver.
//!
//! [`BatchDriver`] fans `R` seeded replications of `S` scenarios out across a
//! crossbeam scoped-thread pool. Every `(scenario, replication)` cell gets its
//! seed from [`rpc_engine::derive_seed`] — a pure function of the coordinates
//! — and each replication is itself deterministic, so the aggregated
//! [`ScenarioReport`]s are bit-identical for **any** thread count: threading
//! only changes which worker computes a cell, never what the cell contains.
//!
//! Each worker runs its repetitions through one private
//! [`crate::exec::ScenarioArena`], so graph generation and simulation state
//! are allocation-free in steady state; the arena path is bit-identical to
//! fresh allocation (see `rpc-scenarios/tests/arena_vs_fresh.rs`), so reuse
//! never affects the reports.

use rpc_engine::derive_seed;

use crate::exec::{run_scenario_in, ScenarioArena, ScenarioOutcome, StoppedBy};
use crate::spec::Scenario;
use crate::stats::{summarize, SummaryStats};

/// How many replications of one scenario ended for each
/// [`StoppedBy`] discriminant. The five counts sum to the replication count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoppedByCounts {
    /// Runs that ended in natural termination with gossiping complete.
    pub complete: usize,
    /// Runs that spent a [`crate::spec::StopRule::Rounds`] budget exactly.
    pub round_budget: usize,
    /// Runs that met a [`crate::spec::StopRule::Coverage`] threshold.
    pub coverage: usize,
    /// Runs where every injected rumor settled (completed or expired) under
    /// a [`crate::spec::StopRule::AllRumors`] rule.
    pub all_rumors: usize,
    /// Runs that exhausted `max_rounds` (or a phase schedule) without
    /// satisfying their stop rule.
    pub max_rounds: usize,
}

impl StoppedByCounts {
    /// Adds one run with the given discriminant to the tally.
    pub fn record(&mut self, stopped_by: StoppedBy) {
        match stopped_by {
            StoppedBy::Complete => self.complete += 1,
            StoppedBy::RoundBudget => self.round_budget += 1,
            StoppedBy::CoverageReached => self.coverage += 1,
            StoppedBy::AllRumorsDone => self.all_rumors += 1,
            StoppedBy::MaxRoundsExhausted => self.max_rounds += 1,
        }
    }

    /// Total runs tallied.
    pub fn total(&self) -> usize {
        self.complete + self.round_budget + self.coverage + self.all_rumors + self.max_rounds
    }
}

/// Fans `tasks` out across up to `threads` workers, each owning one private
/// [`ScenarioArena`], and returns the results **in task order** regardless of
/// which worker computed what.
///
/// This is the shared execution substrate of [`BatchDriver`] and the sweep
/// engine ([`crate::sweep::SweepRunner`]): tasks are split into contiguous
/// chunks (one per worker), every chunk is processed in order on its own
/// arena, and the chunk results are rejoined in spawn order. Because each
/// task's result is a pure function of the task itself (arenas are
/// bit-identical to fresh allocation), the output is independent of the
/// thread count.
pub(crate) fn run_on_pool<T, R, F>(tasks: &[T], threads: usize, run_task: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut ScenarioArena, &T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads <= 1 {
        let mut arena = ScenarioArena::default();
        return tasks.iter().map(|task| run_task(&mut arena, task)).collect();
    }
    let chunk_size = tasks.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .chunks(chunk_size)
            .map(|chunk| {
                let run_task = &run_task;
                scope.spawn(move |_| {
                    let mut arena = ScenarioArena::default();
                    chunk.iter().map(|task| run_task(&mut arena, task)).collect::<Vec<_>>()
                })
            })
            .collect();
        // Joining in spawn order keeps the results in task order regardless
        // of which worker finishes first.
        handles.into_iter().flat_map(|h| h.join().expect("pool worker panicked")).collect()
    })
    .expect("crossbeam scope failed")
}

/// Aggregated statistics of all replications of one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Topology label (e.g. `er-paper(n=1024)`).
    pub topology: String,
    /// Protocol label (e.g. `push-pull`).
    pub protocol: &'static str,
    /// Nodes per graph.
    pub n: usize,
    /// Number of replications aggregated.
    pub replications: usize,
    /// Replications whose stop rule was satisfied before the round cap.
    pub completed_runs: usize,
    /// Replications by stop discriminant.
    pub stopped: StoppedByCounts,
    /// Rounds executed.
    pub rounds: SummaryStats,
    /// Packets sent per node (per-packet accounting).
    pub packets_per_node: SummaryStats,
    /// Final fraction of participating nodes that are fully informed.
    pub coverage: SummaryStats,
    /// Final fraction of all nodes knowing the tracked rumor.
    pub tracked_coverage: SummaryStats,
}

/// Fans seeded scenario replications across a thread pool and aggregates the
/// outcomes.
#[derive(Clone, Debug)]
pub struct BatchDriver {
    threads: usize,
    replications: usize,
    base_seed: u64,
}

impl BatchDriver {
    /// A driver running `replications` replications per scenario from
    /// `base_seed`, with one worker per available CPU.
    pub fn new(replications: usize, base_seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        Self { threads, replications: replications.max(1), base_seed }
    }

    /// Overrides the worker-thread count (values are clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured replications per scenario.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// Runs every replication of every scenario and aggregates per-scenario
    /// reports, in the order the scenarios were given.
    pub fn run(&self, scenarios: &[Scenario]) -> Vec<ScenarioReport> {
        let outcomes = self.run_cells(scenarios);
        scenarios
            .iter()
            .enumerate()
            .map(|(s_idx, scenario)| {
                let slice = &outcomes[s_idx * self.replications..(s_idx + 1) * self.replications];
                aggregate(scenario, slice)
            })
            .collect()
    }

    /// Computes the flat `(scenario-major, replication-minor)` outcome grid.
    fn run_cells(&self, scenarios: &[Scenario]) -> Vec<ScenarioOutcome> {
        let cells: Vec<(usize, usize)> = (0..scenarios.len())
            .flat_map(|s| (0..self.replications).map(move |r| (s, r)))
            .collect();
        // Every pool worker owns one ScenarioArena for its whole chunk, so
        // graph storage, simulation state tables and delivery pools are
        // allocated once per worker and reused across repetitions. The arena
        // path is bit-identical to fresh allocation, so the any-thread-count
        // determinism contract is unchanged. Inner simulations run
        // single-threaded: the batch dimension is where the parallelism is,
        // and nesting pools would oversubscribe.
        run_on_pool(&cells, self.threads, |arena, &(s, r)| {
            run_scenario_in(
                arena,
                &scenarios[s],
                derive_seed(self.base_seed, s as u64, r as u64),
                1,
            )
        })
    }
}

fn aggregate(scenario: &Scenario, outcomes: &[ScenarioOutcome]) -> ScenarioReport {
    let n = scenario.num_nodes();
    let collect =
        |f: &dyn Fn(&ScenarioOutcome) -> f64| -> Vec<f64> { outcomes.iter().map(f).collect() };
    let mut stopped = StoppedByCounts::default();
    for outcome in outcomes {
        stopped.record(outcome.stopped_by);
    }
    ScenarioReport {
        name: scenario.name.clone(),
        topology: scenario.topology.label(),
        protocol: scenario.protocol.name(),
        n,
        replications: outcomes.len(),
        completed_runs: outcomes.iter().filter(|o| o.completed).count(),
        stopped,
        rounds: summarize(&collect(&|o| o.rounds as f64)),
        packets_per_node: summarize(&collect(&|o| o.packets_per_node(n))),
        coverage: summarize(&collect(&|o| o.coverage)),
        tracked_coverage: summarize(&collect(&|o| o.tracked_coverage)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{StopRule, TopologySpec};

    fn scenarios() -> Vec<Scenario> {
        vec![
            Scenario::builder("clean", TopologySpec::ErdosRenyiPaper { n: 128 }).build().unwrap(),
            Scenario::builder("lossy", TopologySpec::ErdosRenyiPaper { n: 128 })
                .loss(0.2)
                .build()
                .unwrap(),
            Scenario::builder("budget", TopologySpec::Complete { n: 64 })
                .stop(StopRule::Rounds(5))
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn reports_follow_scenario_order_and_aggregate_all_replications() {
        let reports = BatchDriver::new(4, 42).with_threads(2).run(&scenarios());
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].name, "clean");
        assert_eq!(reports[2].name, "budget");
        for report in &reports {
            assert_eq!(report.replications, 4);
            assert_eq!(report.completed_runs, 4);
            assert!(report.rounds.max >= report.rounds.min);
            let s = report.stopped;
            assert_eq!(s.total(), 4);
            assert_eq!(s.max_rounds, 0, "all of these scenarios satisfy their rule");
        }
        assert_eq!(reports[2].rounds.mean, 5.0);
        assert_eq!(reports[0].stopped.complete, 4);
        assert_eq!(reports[2].stopped.round_budget, 4);
    }

    #[test]
    fn reports_are_identical_for_any_thread_count() {
        let scenarios = scenarios();
        let one = BatchDriver::new(3, 7).with_threads(1).run(&scenarios);
        let four = BatchDriver::new(3, 7).with_threads(4).run(&scenarios);
        let many = BatchDriver::new(3, 7).with_threads(64).run(&scenarios);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn batch_cells_equal_fresh_scenario_runs() {
        // The driver's arena-reused cells must aggregate to exactly what
        // per-cell fresh `run_scenario` calls produce.
        let scenarios = scenarios();
        let reports = BatchDriver::new(3, 42).with_threads(2).run(&scenarios);
        for (s_idx, scenario) in scenarios.iter().enumerate() {
            let fresh: Vec<ScenarioOutcome> = (0..3)
                .map(|r| crate::exec::run_scenario(scenario, derive_seed(42, s_idx as u64, r), 1))
                .collect();
            assert_eq!(reports[s_idx], aggregate(scenario, &fresh), "{}", scenario.name);
        }
    }

    #[test]
    fn different_base_seeds_change_the_outcomes() {
        let scenarios = vec![Scenario::builder("lossy", TopologySpec::ErdosRenyiPaper { n: 128 })
            .loss(0.3)
            .build()
            .unwrap()];
        let a = BatchDriver::new(3, 1).with_threads(1).run(&scenarios);
        let b = BatchDriver::new(3, 2).with_threads(1).run(&scenarios);
        assert_ne!(a, b);
    }

    #[test]
    fn replication_count_is_clamped_to_one() {
        let driver = BatchDriver::new(0, 1);
        assert_eq!(driver.replications(), 1);
        assert!(driver.threads() >= 1);
    }
}
