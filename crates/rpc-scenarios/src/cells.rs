//! The unit of sweep work: one [`CellJob`] executed once per repetition.
//!
//! A sweep cell describes *what* to simulate; [`run_cell`] turns a
//! `(job, seed)` pair into one [`RepOutcome`] — a flat list of named metric
//! samples plus the [`StoppedBy`] discriminant — on a caller-provided
//! [`ScenarioArena`]. Every job kind routes through the scenario executor's
//! arena-backed stepper path, so sweeps inherit its determinism contract:
//! the outcome is a pure function of `(job, seed)`, independent of thread
//! count, batch granularity, or prior arena use.
//!
//! Three job kinds cover the paper's experiments:
//!
//! * [`CellJob::Scenario`] — any declarative [`Scenario`] (topology, protocol,
//!   loss, churn, crash, stop rule), optionally probed per phase;
//! * [`CellJob::FastTuned`] — fast-gossiping with the ablation's tuned walk
//!   probability and broadcast length instead of the Table 1 constants;
//! * [`CellJob::MemoryFailure`] — the robustness experiments' memory-model
//!   run with node failures injected between Phase I and Phase II.

use rpc_engine::PhaseSnapshot;
use rpc_gossip::{FastGossipingConfig, MemoryGossip, MemoryGossipConfig};
use rpc_obs::CoreRounds;

use crate::exec::{
    run_fast_tuned_in, run_scenario_in, scenario_engine_seeds, ScenarioArena, ScenarioOutcome,
    StoppedBy,
};
use crate::spec::{ProtocolSpec, Scenario, ScenarioError, TopologySpec};

/// What a scenario cell measures beyond the standard outcome metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Probe {
    /// The standard outcome metrics only.
    #[default]
    Metrics,
    /// Additionally record per-phase packets-per-node metrics (one
    /// `<phase-label>_ppn` metric per phase the protocol marks), read from
    /// the phase snapshots every outcome now carries.
    Phases,
}

/// One sweep cell's workload, executed once per repetition by [`run_cell`].
#[derive(Clone, Debug, PartialEq)]
pub enum CellJob {
    /// A declarative scenario run through the stepper path, exactly like
    /// [`run_scenario_in`].
    Scenario {
        /// The scenario to replicate (boxed: a full `Scenario` with its
        /// hostile-environment dimensions dwarfs the other variants).
        scenario: Box<Scenario>,
        /// Whether to additionally capture per-phase metrics.
        probe: Probe,
    },
    /// Fast-gossiping on `G(n, log² n / n)` with the Table 1 walk probability
    /// scaled by `walk_probability_factor` and the per-round broadcast length
    /// replaced by `broadcast_steps` — the parameter-tuning ablation.
    FastTuned {
        /// Graph size.
        n: usize,
        /// Multiplier on the Table 1 walk probability `1 / log n` (the
        /// product is clamped to 1).
        walk_probability_factor: f64,
        /// Per-round broadcast steps (Table 1 uses `⌈0.5 log log n⌉`).
        broadcast_steps: usize,
    },
    /// The memory model on `G(n, log² n / n)` with `failures` uniformly
    /// random healthy nodes crashing between Phase I (tree building) and
    /// Phase II (gather) — the Figures 2/3/5 robustness workload.
    MemoryFailure {
        /// Graph size.
        n: usize,
        /// Nodes failing between the phases.
        failures: usize,
        /// Independently built distribution trees (the robustness figures
        /// use 3).
        trees: usize,
    },
}

impl CellJob {
    /// A plain scenario cell with the standard metrics.
    pub fn scenario(scenario: Scenario) -> Self {
        CellJob::Scenario { scenario: Box::new(scenario), probe: Probe::Metrics }
    }

    /// A scenario cell that additionally records per-phase metrics.
    pub fn scenario_with_phases(scenario: Scenario) -> Self {
        CellJob::Scenario { scenario: Box::new(scenario), probe: Probe::Phases }
    }

    /// Graph size of the cell's runs.
    pub fn num_nodes(&self) -> usize {
        match self {
            CellJob::Scenario { scenario, .. } => scenario.num_nodes(),
            CellJob::FastTuned { n, .. } | CellJob::MemoryFailure { n, .. } => *n,
        }
    }

    /// Checks the job's semantic constraints (delegating to the scenario
    /// builder's validation where one is embedded).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        match self {
            CellJob::Scenario { .. } => Ok(()),
            CellJob::FastTuned { n, walk_probability_factor, broadcast_steps } => {
                if *n == 0 {
                    return Err(ScenarioError::Invalid("fast-tuned cell has zero nodes".into()));
                }
                if !walk_probability_factor.is_finite() || *walk_probability_factor <= 0.0 {
                    return Err(ScenarioError::Invalid(format!(
                        "walk probability factor must be finite and positive, got \
                         {walk_probability_factor}"
                    )));
                }
                if *broadcast_steps == 0 {
                    return Err(ScenarioError::Invalid(
                        "broadcast steps must be at least 1".into(),
                    ));
                }
                Ok(())
            }
            CellJob::MemoryFailure { n, failures, trees } => {
                if *n == 0 {
                    return Err(ScenarioError::Invalid(
                        "memory-failure cell has zero nodes".into(),
                    ));
                }
                if failures > n {
                    return Err(ScenarioError::Invalid(format!(
                        "cannot fail {failures} of {n} nodes"
                    )));
                }
                if *trees == 0 {
                    return Err(ScenarioError::Invalid("tree count must be at least 1".into()));
                }
                Ok(())
            }
        }
    }

    /// A stable text rendering of everything that determines the job's
    /// results. Cache fingerprints hash this, so any change to the workload
    /// invalidates cached cells instead of silently reusing stale numbers.
    pub fn fingerprint_text(&self) -> String {
        match self {
            CellJob::Scenario { scenario, probe } => {
                let probe = match probe {
                    Probe::Metrics => "metrics",
                    Probe::Phases => "phases",
                };
                format!("scenario probe={probe}\n{}", scenario.to_text())
            }
            CellJob::FastTuned { n, walk_probability_factor, broadcast_steps } => {
                format!("fast-tuned n={n} factor={walk_probability_factor} steps={broadcast_steps}")
            }
            CellJob::MemoryFailure { n, failures, trees } => {
                format!("memory-failure n={n} failures={failures} trees={trees}")
            }
        }
    }
}

/// One repetition's measurements: why the run ended plus named metric
/// samples, in a fixed order that is identical across the repetitions of one
/// cell.
#[derive(Clone, Debug, PartialEq)]
pub struct RepOutcome {
    /// Why the run ended.
    pub stopped_by: StoppedBy,
    /// `(metric name, sample)` pairs. Names are identifier-like (no commas,
    /// no whitespace) so they survive the CSV and cell-cache formats.
    pub metrics: Vec<(String, f64)>,
}

impl RepOutcome {
    /// The sample of one metric, if the repetition produced it.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(m, _)| m == name).map(|&(_, v)| v)
    }
}

/// The tuned fast-gossiping configuration of a [`CellJob::FastTuned`] cell:
/// Table 1 defaults with the walk probability scaled (clamped to 1) and the
/// broadcast length replaced.
pub(crate) fn tuned_fast_config(
    n: usize,
    factor: f64,
    broadcast_steps: usize,
) -> FastGossipingConfig {
    let baseline = FastGossipingConfig::paper_defaults(n);
    FastGossipingConfig {
        walk_probability: (baseline.walk_probability * factor).min(1.0),
        broadcast_steps,
        ..baseline
    }
}

/// Per-repetition execution diagnostics alongside a [`RepOutcome`]: facts a
/// sweep observer wants per repetition that are not themselves metrics.
/// Thread-count-dependent (the core counters), so kept out of the seeded
/// result entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct RepMeta {
    /// Rounds the repetition executed.
    pub rounds: u64,
    /// Delivery batches per adaptive core over the repetition.
    pub cores: CoreRounds,
}

/// Executes one repetition of `job` with `seed` on `arena` and measures it.
///
/// Runs single-threaded inside: sweep parallelism lives at the repetition
/// fan-out (see [`crate::sweep::SweepRunner`]), and scenario outcomes are
/// thread-invariant anyway.
pub fn run_cell(arena: &mut ScenarioArena, job: &CellJob, seed: u64) -> RepOutcome {
    run_cell_meta(arena, job, seed).0
}

/// [`run_cell`] additionally reporting per-repetition diagnostics
/// ([`RepMeta`]) for sweep observers. The [`RepOutcome`] is identical to
/// [`run_cell`]'s.
pub fn run_cell_meta(arena: &mut ScenarioArena, job: &CellJob, seed: u64) -> (RepOutcome, RepMeta) {
    match job {
        CellJob::Scenario { scenario, probe } => {
            let outcome = run_scenario_in(arena, scenario, seed, 1);
            let meta = RepMeta { rounds: outcome.rounds, cores: outcome.core_rounds };
            (scenario_rep(scenario.num_nodes(), &outcome, *probe == Probe::Phases), meta)
        }
        CellJob::FastTuned { n, walk_probability_factor, broadcast_steps } => {
            let scenario = fast_tuned_scenario(*n);
            let config = tuned_fast_config(*n, *walk_probability_factor, *broadcast_steps);
            let outcome = run_fast_tuned_in(arena, &scenario, config, seed, 1);
            let meta = RepMeta { rounds: outcome.rounds, cores: outcome.core_rounds };
            (scenario_rep(*n, &outcome, false), meta)
        }
        CellJob::MemoryFailure { n, failures, trees } => {
            run_memory_failure(arena, *n, *failures, *trees, seed)
        }
    }
}

/// The implicit scenario of a [`CellJob::FastTuned`] cell: the ablation's
/// clean `G(n, log² n / n)` run to completion.
fn fast_tuned_scenario(n: usize) -> Scenario {
    Scenario::builder("fast-tuned", TopologySpec::ErdosRenyiPaper { n })
        .protocol(ProtocolSpec::FastGossiping)
        .build()
        .expect("the fast-tuned cell scenario must validate")
}

/// The standard metric vector of a scenario outcome, plus per-rumor
/// streaming metrics when the outcome carries them and per-phase
/// packets-per-node metrics when the probe asked for them.
fn scenario_rep(n: usize, outcome: &ScenarioOutcome, with_phases: bool) -> RepOutcome {
    let nf = n.max(1) as f64;
    let mut metrics = vec![
        ("completed".to_string(), f64::from(u8::from(outcome.completed))),
        ("rounds".to_string(), outcome.rounds as f64),
        ("packets_per_node".to_string(), outcome.total_packets as f64 / nf),
        ("messages_per_node".to_string(), outcome.total_exchanges as f64 / nf),
        ("coverage".to_string(), outcome.coverage),
        ("rumor_coverage".to_string(), outcome.tracked_coverage),
    ];
    if let Some(stats) = &outcome.rumor_stats {
        metrics.push(("rumors_injected".to_string(), stats.injected as f64));
        metrics.push(("rumors_completed".to_string(), stats.completed_count() as f64));
        metrics.push(("rumors_expired".to_string(), stats.expired as f64));
        metrics.push(("rumor_inflight_high_water".to_string(), stats.inflight_high_water as f64));
        metrics.push(("rumor_mean_completion_round".to_string(), stats.mean_completion_round()));
    }
    if with_phases {
        push_phase_metrics(&mut metrics, &outcome.phases, nf);
    }
    RepOutcome { stopped_by: outcome.stopped_by, metrics }
}

/// Appends one `{label}_ppn` metric per phase snapshot. Snapshots are
/// cumulative; per-phase packets are the deltas.
fn push_phase_metrics(metrics: &mut Vec<(String, f64)>, phases: &[PhaseSnapshot], nf: f64) {
    let mut previous = 0u64;
    for phase in phases {
        metrics.push((format!("{}_ppn", phase.label), (phase.packets - previous) as f64 / nf));
        previous = phase.packets;
    }
}

/// One repetition of the robustness workload: build the graph and the
/// simulation from the same seed streams every scenario run uses, then run
/// the memory model with mid-run failures through its arena entry point.
///
/// The memory driver marks its phases in the engine metrics on every run;
/// these used to be discarded here, leaving the robustness tables without
/// phase columns. They now ride along as `{phase}_ppn` metrics after the
/// standard nine, exactly like the scenario path's phase probe.
fn run_memory_failure(
    arena: &mut ScenarioArena,
    n: usize,
    failures: usize,
    trees: usize,
    seed: u64,
) -> (RepOutcome, RepMeta) {
    let (graph_seed, run_seed) = scenario_engine_seeds(seed);
    let ScenarioArena { graph, sim } = arena;
    TopologySpec::ErdosRenyiPaper { n }.build().generate_into(graph_seed, graph);
    let mut engine = sim.checkout(graph.graph(), run_seed).with_threads(1);
    let algorithm = MemoryGossip::new(MemoryGossipConfig::paper_defaults(n).with_trees(trees));
    let outcome = algorithm.run_with_failures_on(&mut engine, failures);
    let cores = engine.metrics().core_rounds();
    sim.recycle(engine);

    let nf = n.max(1) as f64;
    let lost = outcome.lost_messages();
    let stopped_by =
        if outcome.completed() { StoppedBy::Complete } else { StoppedBy::MaxRoundsExhausted };
    let mut metrics = vec![
        ("completed".to_string(), f64::from(u8::from(outcome.completed()))),
        ("rounds".to_string(), outcome.rounds() as f64),
        ("packets_per_node".to_string(), outcome.total_packets() as f64 / nf),
        ("messages_per_node".to_string(), outcome.total_exchanges() as f64 / nf),
        ("lost_messages".to_string(), lost as f64),
        ("loss_ratio".to_string(), outcome.additional_loss_ratio().unwrap_or(0.0)),
        ("lost_gt0".to_string(), f64::from(u8::from(lost > 0))),
        ("lost_gt10".to_string(), f64::from(u8::from(lost > 10))),
        ("lost_gt100".to_string(), f64::from(u8::from(lost > 100))),
    ];
    push_phase_metrics(&mut metrics, outcome.phases(), nf);
    let meta = RepMeta { rounds: outcome.rounds(), cores };
    (RepOutcome { stopped_by, metrics }, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_scenario;
    use crate::spec::StopRule;

    fn er(n: usize) -> TopologySpec {
        TopologySpec::ErdosRenyiPaper { n }
    }

    #[test]
    fn scenario_cell_metrics_match_the_executor() {
        let scenario =
            Scenario::builder("cell", er(128)).loss(0.1).churn(0.1, 3, 4).build().unwrap();
        let outcome = run_scenario(&scenario, 7, 1);
        let mut arena = ScenarioArena::default();
        let rep = run_cell(&mut arena, &CellJob::scenario(scenario.clone()), 7);
        assert_eq!(rep.stopped_by, outcome.stopped_by);
        assert_eq!(rep.metric("rounds"), Some(outcome.rounds as f64));
        assert_eq!(rep.metric("packets_per_node"), Some(outcome.total_packets as f64 / 128.0));
        assert_eq!(rep.metric("coverage"), Some(outcome.coverage));
        assert_eq!(rep.metric("rumor_coverage"), Some(outcome.tracked_coverage));
        assert_eq!(rep.metric("no-such-metric"), None);
    }

    #[test]
    fn streaming_cells_report_per_rumor_metrics() {
        let scenario = Scenario::builder("stream-cell", er(128))
            .inject_poisson(8, 1.0)
            .stop(StopRule::AllRumors)
            .build()
            .unwrap();
        let mut arena = ScenarioArena::default();
        let rep = run_cell(&mut arena, &CellJob::scenario(scenario.clone()), 5);
        let outcome = run_scenario(&scenario, 5, 1);
        let stats = outcome.rumor_stats.as_ref().unwrap();
        assert_eq!(rep.metric("rumors_injected"), Some(stats.injected as f64));
        assert_eq!(rep.metric("rumors_completed"), Some(stats.completed_count() as f64));
        assert_eq!(rep.metric("rumors_expired"), Some(stats.expired as f64));
        assert_eq!(rep.metric("rumor_inflight_high_water"), Some(stats.inflight_high_water as f64));
        assert_eq!(rep.metric("rumor_mean_completion_round"), Some(stats.mean_completion_round()));
        // A classic cell carries none of the streaming metrics.
        let classic = CellJob::scenario(Scenario::builder("c", er(96)).build().unwrap());
        assert_eq!(run_cell(&mut arena, &classic, 5).metric("rumors_injected"), None);
    }

    #[test]
    fn phase_probe_appends_per_phase_metrics_without_perturbing_the_rest() {
        let scenario = Scenario::builder("cell", er(128))
            .protocol(ProtocolSpec::FastGossiping)
            .build()
            .unwrap();
        let mut arena = ScenarioArena::default();
        let plain = run_cell(&mut arena, &CellJob::scenario(scenario.clone()), 3);
        let probed = run_cell(&mut arena, &CellJob::scenario_with_phases(scenario), 3);
        assert_eq!(plain.metrics, probed.metrics[..plain.metrics.len()]);
        let phase_sum: f64 =
            probed.metrics.iter().filter(|(name, _)| name.ends_with("_ppn")).map(|&(_, v)| v).sum();
        assert!(phase_sum > 0.0, "phase probe recorded no phase packets");
        let total = probed.metric("packets_per_node").unwrap();
        assert!((phase_sum - total).abs() < 1e-9, "phases sum to {phase_sum}, total {total}");
    }

    #[test]
    fn fast_tuned_cell_with_paper_parameters_matches_the_plain_protocol() {
        let n = 128;
        let baseline = FastGossipingConfig::paper_defaults(n);
        let job = CellJob::FastTuned {
            n,
            walk_probability_factor: 1.0,
            broadcast_steps: baseline.broadcast_steps,
        };
        let plain = CellJob::scenario(fast_tuned_scenario(n));
        let mut arena = ScenarioArena::default();
        for seed in [1u64, 9, 17] {
            assert_eq!(
                run_cell(&mut arena, &job, seed),
                run_cell(&mut arena, &plain, seed),
                "factor 1.0 must reproduce the paper configuration at seed {seed}"
            );
        }
    }

    #[test]
    fn fast_tuned_cells_respond_to_their_parameters() {
        let mut arena = ScenarioArena::default();
        let base = run_cell(
            &mut arena,
            &CellJob::FastTuned { n: 256, walk_probability_factor: 1.0, broadcast_steps: 2 },
            5,
        );
        let heavy = run_cell(
            &mut arena,
            &CellJob::FastTuned { n: 256, walk_probability_factor: 4.0, broadcast_steps: 2 },
            5,
        );
        assert_ne!(base, heavy, "a 4x walk probability must change the measurements");
        assert_eq!(base.metric("completed"), Some(1.0));
        assert_eq!(heavy.metric("completed"), Some(1.0));
    }

    #[test]
    fn memory_failure_cell_reports_loss_metrics() {
        let mut arena = ScenarioArena::default();
        let clean =
            run_cell(&mut arena, &CellJob::MemoryFailure { n: 256, failures: 0, trees: 3 }, 11);
        assert_eq!(clean.metric("lost_messages"), Some(0.0));
        assert_eq!(clean.metric("loss_ratio"), Some(0.0));
        assert_eq!(clean.metric("lost_gt0"), Some(0.0));
        assert_eq!(clean.stopped_by, StoppedBy::Complete);

        let failing =
            run_cell(&mut arena, &CellJob::MemoryFailure { n: 256, failures: 32, trees: 3 }, 11);
        let lost = failing.metric("lost_messages").unwrap();
        let gt0 = failing.metric("lost_gt0").unwrap();
        assert_eq!(gt0, f64::from(u8::from(lost > 0.0)));
        assert!(failing.metric("loss_ratio").unwrap() >= 0.0);
    }

    #[test]
    fn cells_are_deterministic_and_arena_independent() {
        let jobs = [
            CellJob::scenario(
                Scenario::builder("det", er(96))
                    .loss(0.2)
                    .stop(StopRule::Rounds(6))
                    .build()
                    .unwrap(),
            ),
            CellJob::FastTuned { n: 96, walk_probability_factor: 2.0, broadcast_steps: 1 },
            CellJob::MemoryFailure { n: 96, failures: 8, trees: 2 },
        ];
        let mut shared = ScenarioArena::default();
        for job in &jobs {
            let mut fresh = ScenarioArena::default();
            let a = run_cell(&mut fresh, job, 21);
            let b = run_cell(&mut shared, job, 21);
            assert_eq!(a, b, "arena reuse changed {job:?}");
            assert_eq!(a, run_cell(&mut shared, job, 21), "rerun changed {job:?}");
        }
    }

    #[test]
    fn validation_rejects_degenerate_jobs() {
        assert!(CellJob::FastTuned { n: 0, walk_probability_factor: 1.0, broadcast_steps: 1 }
            .validate()
            .is_err());
        assert!(CellJob::FastTuned { n: 64, walk_probability_factor: 0.0, broadcast_steps: 1 }
            .validate()
            .is_err());
        assert!(CellJob::FastTuned {
            n: 64,
            walk_probability_factor: f64::NAN,
            broadcast_steps: 1
        }
        .validate()
        .is_err());
        assert!(CellJob::FastTuned { n: 64, walk_probability_factor: 1.0, broadcast_steps: 0 }
            .validate()
            .is_err());
        assert!(CellJob::MemoryFailure { n: 64, failures: 65, trees: 1 }.validate().is_err());
        assert!(CellJob::MemoryFailure { n: 64, failures: 4, trees: 0 }.validate().is_err());
        assert!(CellJob::MemoryFailure { n: 64, failures: 4, trees: 3 }.validate().is_ok());
    }

    #[test]
    fn fingerprints_distinguish_jobs() {
        let a = CellJob::FastTuned { n: 64, walk_probability_factor: 1.0, broadcast_steps: 2 };
        let b = CellJob::FastTuned { n: 64, walk_probability_factor: 2.0, broadcast_steps: 2 };
        let c = CellJob::MemoryFailure { n: 64, failures: 4, trees: 3 };
        assert_ne!(a.fingerprint_text(), b.fingerprint_text());
        assert_ne!(a.fingerprint_text(), c.fingerprint_text());
        let s = CellJob::scenario(Scenario::builder("x", er(64)).build().unwrap());
        let p = CellJob::scenario_with_phases(Scenario::builder("x", er(64)).build().unwrap());
        assert_ne!(s.fingerprint_text(), p.fingerprint_text());
    }
}
