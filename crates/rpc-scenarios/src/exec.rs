//! Executing a single scenario replication.
//!
//! [`run_scenario`] turns a declarative [`Scenario`] into one deterministic
//! simulation run: it generates the graph, pre-computes the churn/crash event
//! schedule with a dedicated RNG stream, configures the engine (loss
//! probability, worker threads), drives the protocol, and measures the
//! outcome. Everything is a pure function of `(scenario, seed)` — the thread
//! count only parallelises bitset unions, which are bit-identical in any
//! configuration.
//!
//! ## One stepper for every protocol
//!
//! Every protocol — push-pull *and* the phase-based fast-gossiping and
//! memory-model algorithms — is driven through the resumable
//! [`rpc_gossip::ProtocolDriver`] interface, one synchronous round per step.
//! The executor evaluates the stop rule between any two rounds, records one
//! [`RoundTrace`] row per evaluation, enforces the scenario's `max_rounds`
//! cap uniformly, and reports *why* the run ended in
//! [`ScenarioOutcome::stopped_by`]. Because each driver consumes randomness
//! exactly like its block `run_on_engine` entry point, a stepped run under
//! [`StopRule::Complete`] is bit-identical to the legacy block run.
//!
//! The execution core is generic over [`rpc_engine::Engine`], so the same
//! scheduling, driving and measuring code runs on two engines:
//!
//! * [`run_scenario`] / [`run_scenario_traced`] — the packed, word-parallel
//!   production [`Simulation`];
//! * [`run_scenario_unpacked`] / [`run_scenario_unpacked_traced`] — the
//!   [`UnpackedSimulation`] oracle (`Vec<bool>` bookkeeping, O(n) scans).
//!
//! Both consume randomness identically, so for any `(scenario, seed)` the two
//! must produce identical outcomes *and* identical per-round traces; the
//! property tests in `tests/packed_vs_unpacked.rs` assert exactly that across
//! the registry and randomized scenarios.
//!
//! Coverage bookkeeping is word-parallel on the packed engine: the tracked
//! rumor's knower set is maintained incrementally
//! ([`Simulation::track_message`]), the coverage stop rule reads a
//! popcount-backed counter instead of scanning all `n` states per round, and
//! the final participating/informed counts are single popcount passes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rpc_engine::{
    derive_seed, sample_failures, sample_from_pool, Engine, PhaseSnapshot, Simulation,
    SimulationArena, UnpackedSimulation,
};
use rpc_gossip::{
    FastGossiping, FastGossipingConfig, FastGossipingDriver, MemoryDriver, MemoryGossip,
    ProtocolDriver, PushPullDriver, StepStatus,
};
use rpc_graphs::{Graph, GraphArena, NodeId};
use rpc_obs::{CoreRounds, NoopObserver, ObsEvent, Observer};

use crate::spec::{ProtocolSpec, Scenario, StartPlacement, StopRule};

// Sub-stream indices for [`derive_seed`], so graph generation, environment
// sampling and the protocol run draw from independent RNG streams.
const STREAM_GRAPH: u64 = 0x0147_5241;
const STREAM_ENV: u64 = 0x02e5_56e3;
const STREAM_RUN: u64 = 0x0375_6e21;

/// The engine seeds a scenario replication derives from `seed`:
/// `(graph_seed, run_seed)`. Exposed so harnesses that compare a stepped
/// [`run_scenario`] against a block `run_on_engine` (the `scenario_step`
/// bench, equivalence tests) can run the block side on **exactly** the graph
/// and RNG stream the stepped side uses.
pub fn scenario_engine_seeds(seed: u64) -> (u64, u64) {
    (derive_seed(seed, STREAM_GRAPH, 0), derive_seed(seed, STREAM_RUN, 0))
}

/// Why a scenario run ended — the discriminant behind
/// [`ScenarioOutcome::completed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoppedBy {
    /// The protocol reached its natural termination with gossiping complete:
    /// the [`StopRule::Complete`] rule fired, or (under a round budget or a
    /// coverage threshold) the protocol's own schedule ended fully informed
    /// before the rule did.
    Complete,
    /// A [`StopRule::Rounds`] budget was spent exactly.
    RoundBudget,
    /// A [`StopRule::Coverage`] threshold was met by the tracked rumor.
    CoverageReached,
    /// The run ended **without** satisfying its stop rule: the scenario's
    /// `max_rounds` cap was exhausted, or a phase-based protocol's schedule
    /// ran out first (e.g. gossiping left incomplete by a crash burst, or a
    /// coverage threshold the rumor never met). Reported honestly instead of
    /// being conflated with rule satisfaction.
    MaxRoundsExhausted,
}

impl StoppedBy {
    /// Whether the run's stop condition was genuinely satisfied (everything
    /// except [`StoppedBy::MaxRoundsExhausted`]).
    pub fn satisfied(self) -> bool {
        self != StoppedBy::MaxRoundsExhausted
    }

    /// Short label for reports and CSVs (comma-free).
    pub fn label(self) -> &'static str {
        match self {
            StoppedBy::Complete => "complete",
            StoppedBy::RoundBudget => "round-budget",
            StoppedBy::CoverageReached => "coverage",
            StoppedBy::MaxRoundsExhausted => "max-rounds",
        }
    }
}

/// The measured result of one scenario replication.
///
/// Equality deliberately skips [`Self::core_rounds`]: the chosen delivery
/// core depends on the configured engine thread count, while everything else
/// here is bit-identical across thread counts — and the equivalence tests
/// compare outcomes exactly that way.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Whether the stop rule was satisfied before the round cap (equivalent
    /// to [`StoppedBy::satisfied`] on [`Self::stopped_by`]).
    pub completed: bool,
    /// Why the run ended.
    pub stopped_by: StoppedBy,
    /// Rounds executed.
    pub rounds: u64,
    /// Total packets sent (per-packet accounting).
    pub total_packets: u64,
    /// Total channel exchanges (per-channel-exchange accounting).
    pub total_exchanges: u64,
    /// Fraction of participating (alive and present) nodes that are fully
    /// informed at the end.
    pub coverage: f64,
    /// Fraction of all nodes that know the tracked rumor at the end.
    pub tracked_coverage: f64,
    /// The node whose original message is tracked as "the rumor".
    pub tracked_source: NodeId,
    /// Crashed nodes at the end of the run.
    pub crashed: usize,
    /// Departed (churned-out) nodes at the end of the run.
    pub departed: usize,
    /// Phase snapshots the protocol marked (empty for push-pull). Previously
    /// these were only reachable through the traced probe path; surfacing
    /// them on the outcome lets the plain (untraced) path report per-phase
    /// costs too.
    pub phases: Vec<PhaseSnapshot>,
    /// Delivery batches per adaptive core (scalar/eager/batch) over the run.
    /// **Diagnostics**: thread-count-dependent, excluded from equality.
    pub core_rounds: CoreRounds,
}

impl PartialEq for ScenarioOutcome {
    fn eq(&self, other: &Self) -> bool {
        // `core_rounds` excluded — see the type docs.
        self.completed == other.completed
            && self.stopped_by == other.stopped_by
            && self.rounds == other.rounds
            && self.total_packets == other.total_packets
            && self.total_exchanges == other.total_exchanges
            && self.coverage == other.coverage
            && self.tracked_coverage == other.tracked_coverage
            && self.tracked_source == other.tracked_source
            && self.crashed == other.crashed
            && self.departed == other.departed
            && self.phases == other.phases
    }
}

impl ScenarioOutcome {
    /// Average packets per node over the whole network.
    pub fn packets_per_node(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.total_packets as f64 / n as f64
        }
    }
}

/// One entry of a scenario's round-by-round record, captured every time the
/// stop rule is evaluated — one row per executed round plus the final
/// evaluation, for every protocol.
///
/// Equality deliberately skips [`Self::cores`] (thread-count-dependent
/// diagnostics), matching [`ScenarioOutcome`]'s convention.
#[derive(Clone, Copy, Debug)]
pub struct RoundTrace {
    /// Completed rounds at capture time.
    pub round: u64,
    /// Nodes knowing all original messages.
    pub fully_informed: usize,
    /// Nodes knowing the tracked rumor.
    pub tracked_informed: usize,
    /// Cumulative packets sent.
    pub packets: u64,
    /// Cumulative delivery batches per adaptive core at capture time.
    /// **Diagnostics**: thread-count-dependent, excluded from equality.
    pub cores: CoreRounds,
}

impl PartialEq for RoundTrace {
    fn eq(&self, other: &Self) -> bool {
        // `cores` excluded — see the type docs.
        self.round == other.round
            && self.fully_informed == other.fully_informed
            && self.tracked_informed == other.tracked_informed
            && self.packets == other.packets
    }
}

impl Eq for RoundTrace {}

/// The full observable trace of one scenario replication: per-round records
/// plus the phase snapshots the phase-based protocols mark. Two engines
/// implementing the same semantics must produce equal traces for equal
/// `(scenario, seed)` — this is what the packed-vs-unpacked property tests
/// compare.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioTrace {
    /// Stop-rule evaluations of the unified stepper, for every protocol.
    pub rounds: Vec<RoundTrace>,
    /// Phase snapshots recorded in the metrics (empty for push-pull, which
    /// marks no phases when scenario-driven).
    pub phases: Vec<PhaseSnapshot>,
}

/// Runs one replication of `scenario` on the packed engine, deterministically
/// in `seed`.
///
/// `threads` is the engine worker-thread count used for large delivery
/// batches; the outcome is bit-identical for every value (see
/// `rpc_engine::parallel`).
pub fn run_scenario(scenario: &Scenario, seed: u64, threads: usize) -> ScenarioOutcome {
    run_scenario_observed(scenario, seed, threads, &mut NoopObserver)
}

/// Like [`run_scenario`], additionally capturing the per-round trace.
pub fn run_scenario_traced(
    scenario: &Scenario,
    seed: u64,
    threads: usize,
) -> (ScenarioOutcome, ScenarioTrace) {
    run_scenario_observed_traced(scenario, seed, threads, &mut NoopObserver)
}

/// [`run_scenario`] with an attached [`Observer`] receiving the engine-level
/// event stream (per-round progress, dispatch decisions, pool counters).
///
/// The zero-cost contract: with [`NoopObserver`] this monomorphizes to
/// [`run_scenario`] exactly, and with *any* observer the outcome (and trace,
/// see [`run_scenario_observed_traced`]) is bit-identical to the unobserved
/// run — observers are write-only sinks outside every seeded path
/// (property-pinned in `tests/obs_props.rs`).
pub fn run_scenario_observed<O: Observer>(
    scenario: &Scenario,
    seed: u64,
    threads: usize,
    obs: &mut O,
) -> ScenarioOutcome {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = Simulation::new(&graph, derive_seed(seed, STREAM_RUN, 0)).with_threads(threads);
    let outcome = run_scenario_core(scenario, &mut sim, &mut env_rng, None, obs);
    if O::ENABLED {
        obs.record(&ObsEvent::Pool { stats: sim.pool_stats() });
    }
    outcome
}

/// [`run_scenario_observed`] additionally capturing the per-round trace.
pub fn run_scenario_observed_traced<O: Observer>(
    scenario: &Scenario,
    seed: u64,
    threads: usize,
    obs: &mut O,
) -> (ScenarioOutcome, ScenarioTrace) {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = Simulation::new(&graph, derive_seed(seed, STREAM_RUN, 0)).with_threads(threads);
    let mut trace = ScenarioTrace::default();
    let outcome = run_scenario_core(scenario, &mut sim, &mut env_rng, Some(&mut trace), obs);
    if O::ENABLED {
        obs.record(&ObsEvent::Pool { stats: sim.pool_stats() });
    }
    (outcome, trace)
}

/// Reusable per-worker storage for [`run_scenario_in`]: the graph-generation
/// buffers ([`GraphArena`]) plus the simulation backing storage
/// ([`SimulationArena`]).
///
/// A Monte Carlo batch gives every worker thread one arena and runs all of
/// its repetitions through it; after the first repetition both the graph
/// generation and the simulation are allocation-free in steady state (the
/// buffers only grow when a later scenario is larger). Results are
/// bit-identical to the fresh-allocation [`run_scenario`] path for any
/// sequence of scenarios and seeds — the property tests pin this across
/// protocols, stop rules and thread counts.
#[derive(Debug, Default)]
pub struct ScenarioArena {
    pub(crate) graph: GraphArena,
    pub(crate) sim: SimulationArena,
}

/// Runs one replication of `scenario` through `arena`'s reusable storage —
/// the allocation-free counterpart of [`run_scenario`], with bit-identical
/// results for any prior arena use.
pub fn run_scenario_in(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    seed: u64,
    threads: usize,
) -> ScenarioOutcome {
    run_scenario_arena_core(arena, scenario, seed, threads, None, &mut NoopObserver)
}

/// Like [`run_scenario_in`], additionally capturing the per-round trace
/// (the arena counterpart of [`run_scenario_traced`]).
pub fn run_scenario_traced_in(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    seed: u64,
    threads: usize,
) -> (ScenarioOutcome, ScenarioTrace) {
    let mut trace = ScenarioTrace::default();
    let outcome = run_scenario_arena_core(
        arena,
        scenario,
        seed,
        threads,
        Some(&mut trace),
        &mut NoopObserver,
    );
    (outcome, trace)
}

/// [`run_scenario_in`] with an attached [`Observer`] — the arena counterpart
/// of [`run_scenario_observed`]. Also emits [`ObsEvent::Arena`] with the
/// arena's cumulative reuse counters after the run.
pub fn run_scenario_observed_in<O: Observer>(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    seed: u64,
    threads: usize,
    obs: &mut O,
) -> ScenarioOutcome {
    let outcome = run_scenario_arena_core(arena, scenario, seed, threads, None, obs);
    if O::ENABLED {
        obs.record(&ObsEvent::Arena { graph: arena.graph.stats(), sim: arena.sim.stats() });
    }
    outcome
}

/// Shared arena entry point: generate the graph into the arena's buffers,
/// check a simulation out of the arena, run, recycle. Seed derivation is
/// identical to [`run_scenario`], so outcomes and traces must match the
/// fresh path bit for bit.
fn run_scenario_arena_core<O: Observer>(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    seed: u64,
    threads: usize,
    trace: Option<&mut ScenarioTrace>,
    obs: &mut O,
) -> ScenarioOutcome {
    let ScenarioArena { graph, sim } = arena;
    scenario.topology.build().generate_into(derive_seed(seed, STREAM_GRAPH, 0), graph);
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut engine =
        sim.checkout(graph.graph(), derive_seed(seed, STREAM_RUN, 0)).with_threads(threads);
    let outcome = run_scenario_core(scenario, &mut engine, &mut env_rng, trace, obs);
    if O::ENABLED {
        obs.record(&ObsEvent::Pool { stats: engine.pool_stats() });
    }
    sim.recycle(engine);
    outcome
}

/// Runs one replication on the unpacked reference oracle
/// ([`UnpackedSimulation`]). Must agree with [`run_scenario`] bit for bit;
/// exists for the equivalence tests and the benchmark baseline, not for
/// production runs.
pub fn run_scenario_unpacked(scenario: &Scenario, seed: u64) -> ScenarioOutcome {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = UnpackedSimulation::new(&graph, derive_seed(seed, STREAM_RUN, 0));
    run_scenario_core(scenario, &mut sim, &mut env_rng, None, &mut NoopObserver)
}

/// Like [`run_scenario_unpacked`], additionally capturing the per-round trace.
pub fn run_scenario_unpacked_traced(
    scenario: &Scenario,
    seed: u64,
) -> (ScenarioOutcome, ScenarioTrace) {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = UnpackedSimulation::new(&graph, derive_seed(seed, STREAM_RUN, 0));
    let mut trace = ScenarioTrace::default();
    let outcome =
        run_scenario_core(scenario, &mut sim, &mut env_rng, Some(&mut trace), &mut NoopObserver);
    (outcome, trace)
}

/// The engine-generic execution core shared by every entry point above.
/// Instantiates the protocol's resumable driver with the same paper constants
/// [`ProtocolSpec::build`] uses — protocol dispatch ends here — and hands it
/// to [`run_prepared_core`].
fn run_scenario_core<E: Engine, O: Observer>(
    scenario: &Scenario,
    sim: &mut E,
    env_rng: &mut SmallRng,
    trace: Option<&mut ScenarioTrace>,
    obs: &mut O,
) -> ScenarioOutcome {
    let n = scenario.num_nodes();
    match scenario.protocol {
        ProtocolSpec::PushPull => {
            let mut driver = PushPullDriver::new(scenario.max_rounds as usize);
            run_prepared_core(scenario, sim, env_rng, &mut driver, trace, obs)
        }
        ProtocolSpec::FastGossiping => {
            let mut driver = FastGossipingDriver::new(FastGossiping::paper(n), n);
            run_prepared_core(scenario, sim, env_rng, &mut driver, trace, obs)
        }
        ProtocolSpec::Memory => {
            let mut driver = MemoryDriver::new(MemoryGossip::paper(n));
            run_prepared_core(scenario, sim, env_rng, &mut driver, trace, obs)
        }
    }
}

/// Runs one replication of `scenario` through `arena`, but with fast-gossiping
/// driven by an explicit [`FastGossipingConfig`] instead of the paper
/// defaults. The sweep engine's ablation cells use this to tune walk
/// probability and broadcast length while keeping the scenario machinery
/// (environment schedule, stop rules, seed derivation) byte-for-byte the same
/// as [`run_scenario_in`]; with `config == FastGossipingConfig::paper_defaults(n)`
/// the result is identical to a `ProtocolSpec::FastGossiping` scenario run.
pub(crate) fn run_fast_tuned_in(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    config: FastGossipingConfig,
    seed: u64,
    threads: usize,
) -> ScenarioOutcome {
    let ScenarioArena { graph, sim } = arena;
    scenario.topology.build().generate_into(derive_seed(seed, STREAM_GRAPH, 0), graph);
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut engine =
        sim.checkout(graph.graph(), derive_seed(seed, STREAM_RUN, 0)).with_threads(threads);
    let mut driver = FastGossipingDriver::new(FastGossiping::new(config), scenario.num_nodes());
    let outcome = run_prepared_core(
        scenario,
        &mut engine,
        &mut env_rng,
        &mut driver,
        None,
        &mut NoopObserver,
    );
    sim.recycle(engine);
    outcome
}

/// The driver-generic tail of the execution core: environment setup, rumor
/// placement, the unified stepper, and outcome measurement.
fn run_prepared_core<E: Engine, D: ProtocolDriver, O: Observer>(
    scenario: &Scenario,
    sim: &mut E,
    env_rng: &mut SmallRng,
    driver: &mut D,
    mut trace: Option<&mut ScenarioTrace>,
    obs: &mut O,
) -> ScenarioOutcome {
    let n = scenario.num_nodes();
    sim.set_loss_probability(scenario.environment.loss);
    schedule_environment(scenario, env_rng, sim);
    let tracked = place_rumor(scenario.environment.placement, sim.graph(), env_rng);
    sim.track_message(tracked);

    let (stopped_by, rounds) = drive(scenario, sim, driver, trace.as_deref_mut(), obs);
    if let Some(trace) = trace {
        trace.phases = sim.metrics().phases().to_vec();
    }

    let participating = sim.participating_count();
    let fully_informed = sim.participating_informed_count();
    let coverage =
        if participating == 0 { 0.0 } else { fully_informed as f64 / participating as f64 };
    let tracked_coverage =
        if n == 0 { 0.0 } else { sim.tracked_informed_count() as f64 / n as f64 };

    if O::ENABLED {
        obs.record(&ObsEvent::RunFinished {
            rounds,
            total_packets: sim.metrics().total_packets(),
            cores: sim.metrics().core_rounds(),
        });
    }

    ScenarioOutcome {
        completed: stopped_by.satisfied(),
        stopped_by,
        rounds,
        total_packets: sim.metrics().total_packets(),
        total_exchanges: sim.metrics().total_exchanges(),
        coverage,
        tracked_coverage,
        tracked_source: tracked,
        crashed: n - sim.alive_count(),
        departed: n - sim.present_count(),
        phases: sim.metrics().phases().to_vec(),
        core_rounds: sim.metrics().core_rounds(),
    }
}

/// Drives any protocol one synchronous round at a time, evaluating the stop
/// rule (and recording a trace row) between rounds. Returns why the run
/// ended and how many rounds it executed.
///
/// The rule check order encodes the reporting semantics:
///
/// 1. the scenario's stop rule (so a rule firing exactly at the cap wins);
/// 2. the scenario's `max_rounds` cap, applied uniformly to every protocol;
/// 3. the driver's own schedule — [`StepStatus::Done`] before the rule fires
///    is reported as [`StoppedBy::Complete`] when gossiping finished and
///    [`StoppedBy::MaxRoundsExhausted`] otherwise.
///
/// Under a [`StopRule::Rounds`] budget the driver is stepped *past* gossip
/// completion when necessary — a round budget specifies a workload of exactly
/// `r` rounds, and those rounds draw randomness and send packets exactly like
/// the block loop under a budget always has.
fn drive<E: Engine, D: ProtocolDriver, O: Observer>(
    scenario: &Scenario,
    sim: &mut E,
    driver: &mut D,
    mut trace: Option<&mut ScenarioTrace>,
    obs: &mut O,
) -> (StoppedBy, u64) {
    let mut rounds: u64 = 0;
    let mut prev_cores = CoreRounds::default();
    let stopped_by = loop {
        if let Some(trace) = trace.as_deref_mut() {
            trace.rounds.push(RoundTrace {
                round: sim.metrics().rounds(),
                fully_informed: sim.fully_informed_count(),
                tracked_informed: sim.tracked_informed_count(),
                packets: sim.metrics().total_packets(),
                cores: sim.metrics().core_rounds(),
            });
        }
        if O::ENABLED {
            obs.record(&ObsEvent::Round {
                round: sim.metrics().rounds(),
                fully_informed: sim.fully_informed_count(),
                tracked_informed: sim.tracked_informed_count(),
                packets: sim.metrics().total_packets(),
            });
        }
        match scenario.stop {
            StopRule::Complete => {
                if driver.finished(sim) {
                    break if sim.gossip_complete() {
                        StoppedBy::Complete
                    } else {
                        // A phase-based schedule can end with gossiping
                        // incomplete (e.g. under crashes); report it honestly.
                        StoppedBy::MaxRoundsExhausted
                    };
                }
            }
            StopRule::Rounds(r) => {
                if rounds == r {
                    break StoppedBy::RoundBudget;
                }
            }
            StopRule::Coverage(f) => {
                let target = coverage_target(f, sim.alive_count());
                // target == 0 only when every node has crashed; a dead
                // network never "reaches" coverage — let the run end via the
                // schedule or the cap and report MaxRoundsExhausted honestly.
                if target > 0 && sim.tracked_informed_count() >= target {
                    break StoppedBy::CoverageReached;
                }
            }
        }
        if rounds >= scenario.max_rounds {
            break StoppedBy::MaxRoundsExhausted;
        }
        let status = driver.step(sim);
        if O::ENABLED {
            // One dispatch event per round that actually delivered something:
            // the per-core counters only move when a delivery batch ran.
            let cores = sim.metrics().core_rounds();
            if cores != prev_cores {
                if let Some(record) = sim.metrics().last_dispatch() {
                    obs.record(&ObsEvent::Dispatch { round: sim.metrics().rounds(), record });
                }
                prev_cores = cores;
            }
        }
        match status {
            StepStatus::Done => {
                break if sim.gossip_complete() {
                    StoppedBy::Complete
                } else {
                    StoppedBy::MaxRoundsExhausted
                };
            }
            StepStatus::Running => rounds += 1,
        }
    };
    (stopped_by, rounds)
}

/// The coverage rule's target: the tracked rumor must be known by at least
/// `⌈f · alive⌉` nodes, where `alive` is the **current, crash-adjusted
/// population** (churned-out nodes are still alive — they rejoin with state
/// intact — so they stay in the basis; crashed nodes are permanently gone, so
/// they leave it). Measuring against the full `n` instead would make a
/// `Coverage(f)` rule unreachable after a crash burst of more than
/// `(1 - f) · n` nodes, silently exhausting `max_rounds` on every run.
/// Informed nodes that crash *after* learning the rumor still count toward
/// the achieved side, which only makes the rule easier to satisfy. A target
/// of 0 (possible only when `alive == 0`) never fires — see the caller.
fn coverage_target(fraction: f64, alive: usize) -> usize {
    (fraction * alive as f64).ceil() as usize
}

/// Pre-computes the churn waves and the crash burst and registers them with
/// the simulation's event schedule.
///
/// Waves are only sampled up to the effective round horizon (a `rounds:`
/// budget can be far below `max_rounds`), and each wave draws exclusively
/// from nodes that are *up* at its round, so every departed node stays out
/// for exactly its configured downtime even when `downtime > period`.
fn schedule_environment<E: Engine>(scenario: &Scenario, env_rng: &mut SmallRng, sim: &mut E) {
    let n = sim.num_nodes();
    let horizon = round_limit(scenario);
    if let Some(churn) = scenario.environment.churn {
        let count = ((churn.fraction * n as f64).round() as usize).min(n);
        if count > 0 {
            let mut down_until = vec![0u64; n];
            let mut wave = churn.period;
            // Events at round == horizon can never fire (the run executes
            // rounds 0..horizon), so the last sampled wave is at horizon - 1.
            while wave < horizon {
                let eligible: Vec<NodeId> =
                    (0..n as NodeId).filter(|&v| down_until[v as usize] <= wave).collect();
                let take = count.min(eligible.len());
                let nodes = sample_from_pool(eligible, take, env_rng);
                for &v in &nodes {
                    down_until[v as usize] = wave + churn.downtime;
                }
                sim.schedule_kill(wave, nodes.clone());
                sim.schedule_revive(wave + churn.downtime, nodes);
                wave += churn.period;
            }
        }
    }
    if let Some(crash) = scenario.environment.crash {
        if crash.count > 0 {
            sim.schedule_crash(crash.round, sample_failures(n, crash.count.min(n), env_rng));
        }
    }
}

/// The effective round bound of a run: the `rounds:` budget where one is set
/// (validation guarantees it does not exceed the hard cap), the scenario's
/// hard cap otherwise.
fn round_limit(scenario: &Scenario) -> u64 {
    match scenario.stop {
        StopRule::Rounds(r) => r,
        _ => scenario.max_rounds,
    }
}

/// Picks the tracked rumor's source node according to the placement policy.
fn place_rumor(placement: StartPlacement, graph: &Graph, env_rng: &mut SmallRng) -> NodeId {
    let n = graph.num_nodes();
    match placement {
        StartPlacement::Random => env_rng.gen_range(0..n) as NodeId,
        StartPlacement::MinDegree => {
            graph.nodes().min_by_key(|&v| (graph.degree(v), v)).expect("non-empty graph")
        }
        StartPlacement::MaxDegree => graph
            .nodes()
            .max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v)))
            .expect("non-empty graph"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;
    use proptest::prelude::*;

    fn er(n: usize) -> TopologySpec {
        TopologySpec::ErdosRenyiPaper { n }
    }

    #[test]
    fn clean_scenario_completes_with_full_coverage() {
        let s = Scenario::builder("clean", er(256)).build().unwrap();
        let o = run_scenario(&s, 1, 1);
        assert!(o.completed);
        assert_eq!(o.stopped_by, StoppedBy::Complete);
        assert!(o.rounds > 0);
        assert_eq!(o.coverage, 1.0);
        assert_eq!(o.tracked_coverage, 1.0);
        assert_eq!(o.crashed, 0);
        assert_eq!(o.departed, 0);
        assert!(o.packets_per_node(256) > 0.0);
    }

    #[test]
    fn outcome_is_deterministic_in_the_seed() {
        let s = Scenario::builder("det", er(256)).loss(0.1).churn(0.1, 3, 5).build().unwrap();
        assert_eq!(run_scenario(&s, 9, 1), run_scenario(&s, 9, 1));
        assert_ne!(run_scenario(&s, 9, 1), run_scenario(&s, 10, 1));
    }

    #[test]
    fn outcome_is_identical_for_any_thread_count() {
        let s = Scenario::builder("threads", er(512)).loss(0.2).churn(0.15, 2, 4).build().unwrap();
        let single = run_scenario(&s, 3, 1);
        let multi = run_scenario(&s, 3, 4);
        assert_eq!(single, multi);
    }

    #[test]
    fn lossy_scenario_still_completes_with_more_rounds() {
        let clean = Scenario::builder("clean", er(256)).build().unwrap();
        let lossy = Scenario::builder("lossy", er(256)).loss(0.4).build().unwrap();
        let a = run_scenario(&clean, 5, 1);
        let b = run_scenario(&lossy, 5, 1);
        assert!(a.completed && b.completed);
        assert!(b.rounds >= a.rounds, "loss should not speed gossiping up");
    }

    #[test]
    fn round_budget_is_honoured_exactly() {
        let s = Scenario::builder("budget", er(128)).stop(StopRule::Rounds(7)).build().unwrap();
        let o = run_scenario(&s, 2, 1);
        assert!(o.completed);
        assert_eq!(o.stopped_by, StoppedBy::RoundBudget);
        assert_eq!(o.rounds, 7);
    }

    #[test]
    fn round_budgets_work_for_every_protocol() {
        for protocol in [ProtocolSpec::PushPull, ProtocolSpec::FastGossiping, ProtocolSpec::Memory]
        {
            let s = Scenario::builder("budget", er(128))
                .protocol(protocol)
                .stop(StopRule::Rounds(5))
                .build()
                .unwrap();
            let o = run_scenario(&s, 3, 1);
            assert_eq!(o.rounds, 5, "{}", protocol.name());
            assert_eq!(o.stopped_by, StoppedBy::RoundBudget, "{}", protocol.name());
            assert!(o.total_packets > 0, "{}", protocol.name());
        }
    }

    #[test]
    fn coverage_stop_halts_before_completion() {
        let s = Scenario::builder("cov", er(512))
            .placement(StartPlacement::MinDegree)
            .stop(StopRule::Coverage(0.5))
            .build()
            .unwrap();
        let o = run_scenario(&s, 4, 1);
        assert!(o.completed);
        assert_eq!(o.stopped_by, StoppedBy::CoverageReached);
        assert!(o.tracked_coverage >= 0.5);
        let full = Scenario::builder("full", er(512)).build().unwrap();
        assert!(o.rounds < run_scenario(&full, 4, 1).rounds);
    }

    #[test]
    fn coverage_stop_works_for_phase_protocols() {
        for protocol in [ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
            let s = Scenario::builder("cov", er(256))
                .protocol(protocol)
                .stop(StopRule::Coverage(0.8))
                .build()
                .unwrap();
            let o = run_scenario(&s, 5, 1);
            assert!(o.completed, "{}", protocol.name());
            assert_eq!(o.stopped_by, StoppedBy::CoverageReached, "{}", protocol.name());
            assert!(o.tracked_coverage >= 0.8, "{}", protocol.name());
        }
    }

    #[test]
    fn coverage_target_follows_the_crash_burst_population() {
        // 192 of 256 nodes crash at round 1. Against the full population a
        // 0.95 threshold (244 knowers) would be unreachable — only 64 nodes
        // stay alive; against the crash-adjusted population the bar is
        // ⌈0.95 · 64⌉ = 61 knowers, which push-pull reaches.
        let s = Scenario::builder("crash-cov", er(256))
            .crash(1, 192)
            .stop(StopRule::Coverage(0.95))
            .build()
            .unwrap();
        let o = run_scenario(&s, 8, 1);
        assert_eq!(o.crashed, 192);
        assert_eq!(o.stopped_by, StoppedBy::CoverageReached, "rounds: {}", o.rounds);
        assert!(o.completed);
        assert!(o.rounds < s.max_rounds, "rule should fire well before the cap");
    }

    #[test]
    fn coverage_never_fires_on_a_fully_crashed_network() {
        // Every node crashes at round 1, so the alive basis drops to 0 and
        // the target becomes 0 — which must NOT count as reached: a dead
        // network has no coverage to report. The run ends at the cap.
        let s = Scenario::builder("dead", er(64))
            .crash(1, 64)
            .stop(StopRule::Coverage(0.9))
            .max_rounds(5)
            .build()
            .unwrap();
        for o in [run_scenario(&s, 3, 1), run_scenario_unpacked(&s, 3)] {
            assert_eq!(o.crashed, 64);
            assert!(!o.completed);
            assert_eq!(o.stopped_by, StoppedBy::MaxRoundsExhausted);
        }
    }

    #[test]
    fn unreachable_stop_reports_max_rounds_exhausted() {
        // One round cannot spread the rumor to 90% of 256 nodes, so a tight
        // cap exhausts without the rule firing — and says so.
        let s = Scenario::builder("tight", er(256))
            .stop(StopRule::Coverage(0.9))
            .max_rounds(1)
            .build()
            .unwrap();
        let o = run_scenario(&s, 6, 1);
        assert!(!o.completed);
        assert_eq!(o.stopped_by, StoppedBy::MaxRoundsExhausted);
        assert_eq!(o.rounds, 1);
    }

    #[test]
    fn crash_burst_reduces_final_coverage_population() {
        let s = Scenario::builder("crash", er(256))
            .crash(2, 64)
            .stop(StopRule::Rounds(30))
            .build()
            .unwrap();
        let o = run_scenario(&s, 6, 1);
        assert_eq!(o.crashed, 64);
        assert_eq!(o.departed, 0);
    }

    #[test]
    fn churn_departs_and_rejoins_nodes() {
        // Downtime longer than the residual run leaves the last wave out.
        let s = Scenario::builder("churn", er(256))
            .churn(0.2, 5, 1000)
            .stop(StopRule::Rounds(12))
            .build()
            .unwrap();
        let o = run_scenario(&s, 7, 1);
        assert!(o.departed > 0, "last churn wave should still be away");
    }

    #[test]
    fn phase_protocols_run_under_hostile_environments() {
        for protocol in [ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
            let s = Scenario::builder("hostile", er(256))
                .protocol(protocol)
                .loss(0.05)
                .crash(4, 16)
                .build()
                .unwrap();
            let o = run_scenario(&s, 8, 1);
            assert!(o.rounds > 0, "{} executed no rounds", protocol.name());
            assert_eq!(o.crashed, 16);
        }
    }

    #[test]
    fn adversarial_placement_tracks_the_min_degree_node() {
        let s =
            Scenario::builder("adv", er(256)).placement(StartPlacement::MinDegree).build().unwrap();
        let o = run_scenario(&s, 11, 1);
        let graph = s.topology.build().generate(derive_seed(11, STREAM_GRAPH, 0));
        let min_deg = graph.nodes().map(|v| graph.degree(v)).min().unwrap();
        assert_eq!(graph.degree(o.tracked_source), min_deg);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_progress() {
        let s = Scenario::builder("traced", er(128)).loss(0.1).build().unwrap();
        let plain = run_scenario(&s, 13, 1);
        let (traced, trace) = run_scenario_traced(&s, 13, 1);
        assert_eq!(plain, traced, "tracing must not perturb the run");
        // One record per stop-rule evaluation: rounds + the final check.
        assert_eq!(trace.rounds.len() as u64, traced.rounds + 1);
        let last = trace.rounds.last().unwrap();
        assert_eq!(last.round, traced.rounds);
        assert_eq!(last.packets, traced.total_packets);
        assert!(trace.rounds.windows(2).all(|w| w[0].fully_informed <= w[1].fully_informed));
        // Push-pull driving marks no phases.
        assert!(trace.phases.is_empty());
    }

    #[test]
    fn phase_protocol_traces_record_every_round() {
        for protocol in [ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
            let s = Scenario::builder("traced", er(128)).protocol(protocol).build().unwrap();
            let plain = run_scenario(&s, 14, 1);
            let (traced, trace) = run_scenario_traced(&s, 14, 1);
            assert_eq!(plain, traced, "tracing must not perturb {}", protocol.name());
            assert_eq!(trace.rounds.len() as u64, traced.rounds + 1, "{}", protocol.name());
            let last = trace.rounds.last().unwrap();
            assert_eq!(last.round, traced.rounds);
            assert_eq!(last.packets, traced.total_packets);
            assert!(!trace.phases.is_empty(), "{} must mark phases", protocol.name());
        }
    }

    #[test]
    fn arena_run_matches_fresh_run_on_a_hostile_scenario() {
        let s = Scenario::builder("arena", er(192))
            .loss(0.15)
            .churn(0.1, 3, 4)
            .crash(5, 12)
            .placement(StartPlacement::MaxDegree)
            .build()
            .unwrap();
        let mut arena = ScenarioArena::default();
        for seed in [1u64, 21, 77] {
            let (fresh, fresh_trace) = run_scenario_traced(&s, seed, 1);
            let (reused, reused_trace) = run_scenario_traced_in(&mut arena, &s, seed, 1);
            assert_eq!(fresh, reused, "outcome diverged at seed {seed}");
            assert_eq!(fresh_trace, reused_trace, "trace diverged at seed {seed}");
            assert_eq!(run_scenario_in(&mut arena, &s, seed, 1), fresh);
        }
    }

    #[test]
    fn unpacked_oracle_agrees_on_a_hostile_scenario() {
        let s = Scenario::builder("oracle", er(192))
            .loss(0.15)
            .churn(0.1, 3, 4)
            .crash(5, 12)
            .placement(StartPlacement::MaxDegree)
            .build()
            .unwrap();
        let (packed, packed_trace) = run_scenario_traced(&s, 21, 1);
        let (unpacked, unpacked_trace) = run_scenario_unpacked_traced(&s, 21);
        assert_eq!(packed, unpacked);
        assert_eq!(packed_trace, unpacked_trace);
        assert_eq!(run_scenario_unpacked(&s, 21), unpacked);
    }

    #[test]
    fn single_node_scenario_is_trivially_complete() {
        let s = Scenario::builder("one", TopologySpec::Complete { n: 1 }).build().unwrap();
        for (o, trace) in [run_scenario_traced(&s, 1, 1), run_scenario_unpacked_traced(&s, 1)] {
            assert!(o.completed);
            assert_eq!(o.rounds, 0, "a single node has nothing to learn");
            assert_eq!(o.total_packets, 0);
            assert_eq!(o.coverage, 1.0);
            assert_eq!(o.tracked_coverage, 1.0);
            assert_eq!(trace.rounds.len(), 1, "only the initial stop-rule check runs");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The unified stepper under [`StopRule::Complete`] must reproduce
        /// the legacy block `run_on_engine` outcome bit for bit, for every
        /// protocol: same graph, same engine seed, same rounds, packets and
        /// exchanges.
        #[test]
        fn stepped_complete_runs_equal_block_run_on_engine(
            n in 48usize..128,
            protocol_pick in 0u8..3,
            seed in 0u64..10_000,
        ) {
            let protocol = match protocol_pick {
                0 => ProtocolSpec::PushPull,
                1 => ProtocolSpec::FastGossiping,
                _ => ProtocolSpec::Memory,
            };
            let s = Scenario::builder("step-vs-block", er(n)).protocol(protocol).build().unwrap();
            let stepped = run_scenario(&s, seed, 1);

            // The block run on an identically seeded engine over the same graph.
            let graph = s.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
            let mut sim = Simulation::new(&graph, derive_seed(seed, STREAM_RUN, 0));
            let block = s.protocol.run_on_engine(n, &mut sim);

            prop_assert_eq!(stepped.rounds, block.rounds());
            prop_assert_eq!(stepped.total_packets, block.total_packets());
            prop_assert_eq!(stepped.total_exchanges, block.total_exchanges());
            prop_assert_eq!(stepped.completed, block.completed());
        }
    }
}
